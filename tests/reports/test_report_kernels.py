"""Kernel parity: every vectorized metric agrees with its scalar original.

The batched kernels must reproduce, draw for draw, what the scalar
:mod:`repro.core` / :mod:`repro.analysis` functions compute on each
slice — that is the contract that lets the experiment drivers and the
report pipeline share one implementation.
"""

import numpy as np
import pytest

from repro.analysis.desync import desync_onset, overlap_efficiency, skew_spread
from repro.analysis.fourier import skew_spectrum
from repro.core.decay import measure_decay
from repro.core.idle_wave import default_threshold, wave_front
from repro.core.speed import measure_speed
from repro.reports import BatchedTiming, MetricContext, get_kernel, kernel_names
from repro.reports.errors import ReportError
from repro.reports.kernels import (
    batched_default_threshold,
    batched_wave_front,
    register_kernel,
)
from repro.scenarios import compile_scenario, load_bundled_scenario
from repro.scenarios.runner import run_scenario

N_DRAWS = 6


def build_batch(name="fig8_decay_rate", seeds=range(N_DRAWS)):
    spec = load_bundled_scenario(name).without_sweep()
    compiled = compile_scenario(spec)
    runs = [run_scenario(compiled, seed=s) for s in seeds]
    batch = BatchedTiming.from_timings([r.timing for r in runs])
    return compiled, batch


@pytest.fixture(scope="module")
def noisy():
    return build_batch("fig8_decay_rate")


@pytest.fixture(scope="module")
def silent():
    return build_batch("fig4_single_delay", seeds=range(2))


def assert_field(arr, expected, name):
    np.testing.assert_allclose(arr, expected, rtol=1e-9, atol=0,
                               equal_nan=True, err_msg=name)


class TestThresholdAndFront:
    def test_threshold_matches_scalar(self, noisy):
        _, batch = noisy
        thr = batched_default_threshold(batch)
        for b in range(batch.n_batch):
            assert thr[b] == pytest.approx(
                default_threshold(batch[b]), rel=1e-12)

    def test_front_matches_scalar_walk(self, noisy):
        compiled, batch = noisy
        source = compiled.cfg.delays[0].rank
        front = batched_wave_front(batch, source, periodic=True)
        for b in range(batch.n_batch):
            scalar = wave_front(batch[b], source, periodic=True)
            n = front.n_hops[b]
            assert n == len(scalar)
            np.testing.assert_array_equal(
                front.arrival_steps[b, :n], scalar.arrival_steps)
            np.testing.assert_allclose(
                front.arrival_times[b, :n], scalar.arrival_times, rtol=1e-12)
            np.testing.assert_allclose(
                front.amplitudes[b, :n], scalar.amplitudes, rtol=1e-12)

    def test_front_is_cached_per_batch(self, noisy):
        compiled, batch = noisy
        source = compiled.cfg.delays[0].rank
        a = batched_wave_front(batch, source, periodic=True)
        b = batched_wave_front(batch, source, periodic=True)
        assert a is b

    def test_bad_direction_rejected(self, noisy):
        _, batch = noisy
        with pytest.raises(ValueError, match="direction"):
            batched_wave_front(batch, 0, direction=2)

    def test_bad_source_rejected(self, noisy):
        _, batch = noisy
        with pytest.raises(IndexError, match="source rank"):
            batched_wave_front(batch, batch.n_ranks)


class TestKernelParity:
    def ctx(self, compiled):
        return MetricContext(compiled=compiled)

    def test_runtime(self, noisy):
        compiled, batch = noisy
        out = get_kernel("runtime").compute(batch, self.ctx(compiled))
        for b in range(batch.n_batch):
            timing = batch[b]
            assert_field(out["total_runtime"][b], timing.total_runtime(),
                         "total_runtime")
            assert_field(out["total_idle"][b], timing.total_idle(),
                         "total_idle")
            assert_field(out["mean_idle_per_rank"][b],
                         float(np.mean(timing.idle_by_rank())),
                         "mean_idle_per_rank")

    def test_decay_rate(self, noisy):
        compiled, batch = noisy
        source = compiled.cfg.delays[0].rank
        out = get_kernel("decay_rate").compute(batch, self.ctx(compiled))
        for b in range(batch.n_batch):
            meas = measure_decay(batch[b], source, direction=+1, periodic=True)
            assert_field(out["beta"][b], meas.beta, "beta")
            assert_field(out["slope_beta"][b], meas.slope_beta, "slope_beta")
            assert_field(out["initial_amplitude"][b], meas.initial_amplitude,
                         "initial_amplitude")
            assert_field(out["survival_hops"][b], meas.survival_hops,
                         "survival_hops")

    def test_wave_speed(self, silent):
        compiled, batch = silent
        source = compiled.cfg.delays[0].rank
        out = get_kernel("wave_speed").compute(batch, self.ctx(compiled))
        for b in range(batch.n_batch):
            meas = measure_speed(batch[b], source, direction=+1,
                                 periodic=False)
            assert_field(out["measured_speed"][b], meas.speed, "speed")
        assert np.all(out["predicted_speed"] > 0)

    def test_desync(self, noisy):
        compiled, batch = noisy
        out = get_kernel("desync").compute(batch, self.ctx(compiled))
        for b in range(batch.n_batch):
            timing = batch[b]
            spread = skew_spread(timing)
            assert_field(out["final_skew"][b], spread[-1], "final_skew")
            assert_field(out["max_skew"][b], spread.max(), "max_skew")
            assert_field(out["mean_skew"][b], spread.mean(), "mean_skew")
            onset = desync_onset(timing)
            expected = float("nan") if onset is None else float(onset)
            assert_field(out["desync_onset_step"][b], expected, "onset")
            assert_field(out["overlap_efficiency"][b],
                         overlap_efficiency(timing), "overlap")

    def test_idle_histogram(self, noisy):
        _, batch = noisy
        compiled, _ = noisy
        out = get_kernel("idle_histogram").compute(batch, self.ctx(compiled))
        for b in range(batch.n_batch):
            idle = batch[b].idle
            positive = idle[idle > 0]
            assert_field(out["n_idle_periods"][b], positive.size, "count")
            assert_field(out["mean_idle"][b],
                         positive.mean() if positive.size else 0.0, "mean")
            assert_field(out["max_idle"][b],
                         positive.max() if positive.size else 0.0, "max")
            if positive.size:
                assert_field(out["p95_idle"][b],
                             np.percentile(positive, 95), "p95")

    def test_fourier(self, noisy):
        compiled, batch = noisy
        out = get_kernel("fourier").compute(batch, self.ctx(compiled))
        for b in range(batch.n_batch):
            spectrum = skew_spectrum(batch[b], batch.n_steps - 1)
            assert_field(out["dominant_mode"][b], spectrum.dominant_mode(),
                         "mode")
            assert_field(out["dominant_wavelength"][b],
                         spectrum.dominant_wavelength(), "wavelength")
            assert_field(out["mode_fraction"][b],
                         spectrum.mode_fraction(spectrum.dominant_mode()),
                         "fraction")

    def test_fourier_step_param(self, noisy):
        compiled, batch = noisy
        out = get_kernel("fourier").compute(batch, self.ctx(compiled), step=3)
        spectrum = skew_spectrum(batch[0], 3)
        assert_field(out["dominant_mode"][0], spectrum.dominant_mode(), "mode")

    def test_fourier_step_out_of_range(self, noisy):
        compiled, batch = noisy
        with pytest.raises(IndexError, match="out of range"):
            get_kernel("fourier").compute(batch, self.ctx(compiled),
                                          step=batch.n_steps)


class TestEdgeCases:
    def test_unmeasurable_wave_is_nan_not_error(self):
        # A quiet run: no delay wave anywhere -> speed/decay NaN per draw.
        compiled, batch = build_batch("fig4_single_delay", seeds=range(2))
        quiet = BatchedTiming(
            exec_end=batch.exec_end.copy(),
            completion=batch.completion.copy(),
            idle=np.zeros_like(batch.idle),
            meta=dict(batch.meta),
        )
        ctx = MetricContext(compiled=compiled)
        speed = get_kernel("wave_speed").compute(quiet, ctx)
        assert np.all(np.isnan(speed["measured_speed"]))
        decay = get_kernel("decay_rate").compute(quiet, ctx)
        assert np.all(np.isnan(decay["beta"]))

    def test_histogram_without_idle(self):
        compiled, batch = build_batch("fig4_single_delay", seeds=range(2))
        quiet = BatchedTiming(
            exec_end=batch.exec_end.copy(),
            completion=batch.completion.copy(),
            idle=np.zeros_like(batch.idle),
            meta=dict(batch.meta),
        )
        out = get_kernel("idle_histogram").compute(
            quiet, MetricContext(compiled=compiled))
        assert np.all(out["n_idle_periods"] == 0)
        assert np.all(out["mean_idle"] == 0)
        assert np.all(np.isnan(out["p95_idle"]))

    def test_needs_delay_context(self):
        spec = load_bundled_scenario("campaign_rate_sweep").without_sweep()
        ctx = MetricContext(compiled=compile_scenario(spec))
        with pytest.raises(ReportError, match="declares none"):
            ctx.source


class TestRegistry:
    def test_known_kernels_registered(self):
        assert {"runtime", "wave_speed", "decay_rate", "desync",
                "idle_histogram", "fourier"} <= set(kernel_names())

    def test_unknown_kernel_names_alternatives(self):
        with pytest.raises(ReportError, match="registered kernels"):
            get_kernel("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel("runtime", fields=("x",))(lambda b, c: {"x": []})
