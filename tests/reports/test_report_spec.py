"""Tests for report spec parsing and validation."""

import pytest

from repro.reports import ReportError, ReportSpec
from repro.reports.loader import load_report_file, parse_report_text

MINIMAL = {
    "name": "r",
    "scenario": "fig4_single_delay",
    "metrics": [{"name": "runtime"}],
}


def doc(**overrides) -> dict:
    """Minimal valid document with overrides; a ``None`` drops the key."""
    out = {k: v for k, v in MINIMAL.items()}
    out.update(overrides)
    return {k: v for k, v in out.items() if v is not None}


class TestParsing:
    def test_minimal_document(self):
        spec = ReportSpec.from_dict(doc())
        assert spec.scenarios == ("fig4_single_delay",)
        assert spec.aggregate == ("mean",)
        assert spec.metrics[0].name == "runtime"
        assert spec.artifacts == ()

    def test_round_trip(self):
        spec = ReportSpec.from_dict(doc(
            description="d",
            seeds=[3, 4],
            group_by=["comm.direction"],
            aggregate=["median", "p95"],
            metrics=[{"name": "wave_speed", "alias": "speed",
                      "params": {"direction": 1}}],
            artifacts=[{"kind": "csv"}, {"kind": "ascii", "path": "x.txt"}],
        ))
        assert ReportSpec.from_dict(spec.to_dict()) == spec

    def test_multi_scenario_round_trip(self):
        spec = ReportSpec.from_dict(doc(
            scenario=None, scenarios=["a", "b"]))
        assert spec.scenarios == ("a", "b")
        assert ReportSpec.from_dict(spec.to_dict()) == spec

    def test_name_from_file_stem(self, tmp_path):
        path = tmp_path / "my_report.toml"
        path.write_text(
            'scenario = "fig4_single_delay"\n[[metrics]]\nname = "runtime"\n')
        assert load_report_file(path).name == "my_report"


class TestRejections:
    def case(self, match, **overrides):
        with pytest.raises(ReportError, match=match):
            ReportSpec.from_dict(doc(**overrides))

    def test_unknown_key(self):
        self.case("unknown key", extra=1)

    def test_scenario_and_scenarios_both(self):
        self.case("exactly one", scenarios=["a"])

    def test_neither_scenario_form(self):
        self.case("exactly one", scenario=None)

    def test_empty_scenarios(self):
        self.case("must not be empty", scenario=None, scenarios=[])

    def test_no_metrics(self):
        self.case("at least one metric", metrics=[])

    def test_duplicate_metric_labels(self):
        self.case("duplicate metric label",
                  metrics=[{"name": "runtime"}, {"name": "runtime"}])

    def test_alias_disambiguates(self):
        spec = ReportSpec.from_dict(doc(metrics=[
            {"name": "runtime"}, {"name": "runtime", "alias": "rt2"}]))
        assert [m.label for m in spec.metrics] == ["runtime", "rt2"]

    def test_bad_statistic(self):
        self.case("not a known statistic", aggregate=["p101"])
        self.case("not a known statistic", aggregate=["variance"])

    def test_percentile_statistic_accepted(self):
        spec = ReportSpec.from_dict(doc(aggregate=["p5", "p99.9", "p100"]))
        assert spec.aggregate == ("p5", "p99.9", "p100")

    def test_bad_artifact_kind(self):
        self.case("not one of", artifacts=[{"kind": "pdf"}])

    def test_bad_engine(self):
        self.case("is not one of", engine="vectorized")

    def test_empty_seeds(self):
        self.case("must not be empty", seeds=[])

    def test_duplicate_seeds(self):
        self.case("duplicate seeds", seeds=[1, 1])

    def test_non_int_seed(self):
        self.case("expected int", seeds=[1.5])

    def test_seeds_and_base_seed_conflict(self):
        self.case("no effect", seeds=[1], base_seed=2)

    def test_error_names_dotted_path(self):
        try:
            ReportSpec.from_dict(doc(metrics=[{"name": "runtime", "bad": 1}]))
        except ReportError as exc:
            assert "metrics[0]" in str(exc)
        else:
            pytest.fail("expected ReportError")


class TestLoader:
    def test_invalid_toml(self):
        with pytest.raises(ReportError, match="invalid TOML"):
            parse_report_text("= nope", fmt="toml", name="x")

    def test_invalid_json(self):
        with pytest.raises(ReportError, match="invalid JSON"):
            parse_report_text("{", fmt="json", name="x")

    def test_unknown_format(self):
        with pytest.raises(ReportError, match="unknown report format"):
            parse_report_text("", fmt="yaml")

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "r.yaml"
        path.write_text("")
        with pytest.raises(ReportError, match="unsupported report file type"):
            load_report_file(path)

    def test_error_names_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("scenario = 3\n")
        with pytest.raises(ReportError, match="broken.toml"):
            load_report_file(path)
