"""Tests for the ``report`` CLI group (and its main-CLI wiring)."""

import json

import pytest

from repro.cli import main as repro_main
from repro.reports.cli import report_main


class TestList:
    def test_lists_bundled_reports(self, capsys):
        assert report_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig7_speed", "fig8_decay", "campaign_rate_response",
                     "cross_scenario_waves", "hybrid_desync_profile"):
            assert name in out
        assert "registered metric kernels" in out

    def test_json_lists_kernels(self, capsys):
        assert report_main(["list", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {r["name"] for r in doc["reports"]} >= {"fig7_speed"}
        kernels = {k["name"]: k for k in doc["kernels"]}
        assert "beta" in kernels["decay_rate"]["fields"]


class TestValidate:
    def test_all_bundled_reports_valid(self, capsys):
        assert report_main(["validate"]) == 0
        assert "report(s) valid" in capsys.readouterr().out

    def test_invalid_file_fails_with_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('scenario = "fig4_single_delay"\n'
                       '[[metrics]]\nname = "nope"\n')
        assert report_main(["validate", str(bad)]) == 1
        assert "metrics[0].name" in capsys.readouterr().out


class TestRun:
    def test_run_prints_table(self, capsys):
        assert report_main(["run", "cross_scenario_waves"]) == 0
        out = capsys.readouterr().out
        assert "=== report cross_scenario_waves" in out
        assert "fig4_single_delay" in out

    def test_run_with_store_and_artifacts(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        out_dir = tmp_path / "out"
        argv = ["run", "campaign_rate_response", "--cache-dir", cache,
                "--out", str(out_dir)]
        assert report_main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 from store" in cold
        assert (out_dir / "campaign_rate_response.csv").exists()
        assert (out_dir / "viz" / "campaign_rate_response.txt").exists()

        assert report_main(argv[:-2]) == 0  # warm, no artifacts
        warm = capsys.readouterr().out
        assert "12 from store, 0 executed" in warm

    def test_unknown_report_exits_2(self, capsys):
        assert report_main(["run", "nope"]) == 2
        assert "report error" in capsys.readouterr().err


class TestResume:
    def test_resume_links_the_new_run_to_the_old_one(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        cache = str(tmp_path / "cache")
        assert report_main(["run", "campaign_rate_response",
                            "--cache-dir", cache]) == 0
        (first,) = RunLedger(cache).records()
        capsys.readouterr()

        assert report_main(["run", "campaign_rate_response",
                            "--cache-dir", cache,
                            "--resume", first["id"]]) == 0
        assert "12 from store, 0 executed" in capsys.readouterr().out
        records = list(RunLedger(cache).records())
        assert len(records) == 2
        assert records[-1]["resumed_from"] == first["id"]

    def test_resume_requires_cache_dir(self, capsys):
        assert report_main(["run", "campaign_rate_response",
                            "--resume", "run-deadbeef"]) == 2
        assert "--resume requires --cache-dir" in capsys.readouterr().err

    def test_resume_of_unknown_run_exits_2(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert report_main(["run", "campaign_rate_response",
                            "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert report_main(["run", "campaign_rate_response",
                            "--cache-dir", cache,
                            "--resume", "nosuchrun"]) == 2
        assert "no run 'nosuchrun'" in capsys.readouterr().err


class TestMainWiring:
    def test_main_dispatches_report(self, capsys):
        assert repro_main(["report", "list"]) == 0
        assert "fig7_speed" in capsys.readouterr().out

    def test_report_must_come_first(self, capsys):
        assert repro_main(["--seed", "3", "report"]) == 2
        assert "must come first" in capsys.readouterr().err
