"""Acceptance parity: the fig7/fig8 report specs reproduce the
corresponding ``experiments/`` quantities to 1e-9.

The experiment drivers and the report kernels share one measurement
implementation (:mod:`repro.reports.kernels`); the remaining differences
between the two paths — DAG vs. lockstep engine for Fig. 7, per-seed vs.
batched recurrence for Fig. 8, preset-collapsed vs. literal network
parameters — must all stay below 1e-9 relative.
"""

import pytest

from repro.experiments.fig7_speed_d2 import run as fig7_run
from repro.experiments.fig8_decay_rate import run as fig8_run
from repro.reports import compile_report, load_bundled_report, run_report

RTOL = 1e-9


class TestFig7Parity:
    @pytest.fixture(scope="class")
    def pair(self):
        experiment = fig7_run(fast=True, seed=0)
        report = run_report(compile_report(load_bundled_report("fig7_speed")))
        rows = {row.group["comm.direction"]: row for row in report.rows}
        return experiment, rows

    @pytest.mark.parametrize("panel,direction", [
        ("(a) unidirectional", "unidirectional"),
        ("(b) bidirectional", "bidirectional"),
    ])
    def test_measured_speed(self, pair, panel, direction):
        experiment, rows = pair
        assert rows[direction].values["wave_speed.measured_speed.mean"] == \
            pytest.approx(experiment.data[panel]["speed"], rel=RTOL)

    @pytest.mark.parametrize("panel,direction", [
        ("(a) unidirectional", "unidirectional"),
        ("(b) bidirectional", "bidirectional"),
    ])
    def test_eq2_prediction(self, pair, panel, direction):
        experiment, rows = pair
        assert rows[direction].values["wave_speed.predicted_speed.mean"] == \
            pytest.approx(experiment.data[panel]["model"], rel=RTOL)

    def test_sigma_ratio(self, pair):
        _, rows = pair
        ratio = (rows["bidirectional"].values["wave_speed.measured_speed.mean"]
                 / rows["unidirectional"].values["wave_speed.measured_speed.mean"])
        assert ratio == pytest.approx(2.0, rel=0.01)


class TestFig8Parity:
    @pytest.fixture(scope="class")
    def pair(self):
        experiment = fig8_run(fast=True, seed=0)
        report = run_report(compile_report(load_bundled_report("fig8_decay")))
        rows = {row.group["noise.level"]: row for row in report.rows}
        return experiment.data["series"]["Simulated"], rows

    def test_levels_match_fast_mode(self, pair):
        series, rows = pair
        assert sorted(rows) == [pt["E"] for pt in series]

    @pytest.mark.parametrize("stat,attr", [
        ("median", "median"), ("min", "minimum"), ("max", "maximum"),
    ])
    def test_decay_statistics(self, pair, stat, attr):
        series, rows = pair
        for point in series:
            row = rows[point["E"]]
            assert row.n_draws == 5
            assert row.values[f"decay_rate.beta.{stat}"] == \
                pytest.approx(getattr(point["stats"], attr), rel=RTOL)
