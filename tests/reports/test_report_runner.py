"""Tests for report compilation, execution, and artifact generation."""

import json

import numpy as np
import pytest

from repro.reports import (
    ReportError,
    ReportSpec,
    compile_report,
    load_bundled_report,
    run_report,
    write_artifacts,
)
from repro.runtime import ResultStore


def make_spec(**overrides) -> ReportSpec:
    doc = {
        "name": "t",
        "scenario": "campaign_rate_sweep",
        "metrics": [{"name": "runtime"}],
    }
    doc.update(overrides)
    return ReportSpec.from_dict({k: v for k, v in doc.items() if v is not None})


class TestCompile:
    def test_group_by_defaults_to_sweep_axes(self):
        compiled = compile_report(make_spec())
        assert compiled.group_by == ("campaign.rate",)

    def test_cross_scenario_default_group(self):
        compiled = compile_report(make_spec(
            scenario=None,
            scenarios=["fig4_single_delay", "inline_slow_network"]))
        assert compiled.group_by == ("scenario",)

    def test_unknown_scenario(self):
        with pytest.raises(ReportError, match="does not resolve"):
            compile_report(make_spec(scenario="nope"))

    def test_unknown_metric_names_path(self):
        with pytest.raises(ReportError, match=r"metrics\[0\].name"):
            compile_report(make_spec(metrics=[{"name": "nope"}]))

    def test_unknown_kernel_param(self):
        with pytest.raises(ReportError, match="does not take parameter"):
            compile_report(make_spec(
                metrics=[{"name": "runtime", "params": {"bogus": 1}}]))

    def test_bad_param_value_fails_at_compile_time(self):
        with pytest.raises(ReportError, match=r"metrics\[0\].params.*out of "
                                              "range"):
            compile_report(make_spec(
                metrics=[{"name": "fourier", "params": {"step": 99}}]))

    def test_bad_desync_fraction_fails_at_compile_time(self):
        with pytest.raises(ReportError, match="fraction must be > 0"):
            compile_report(make_spec(
                metrics=[{"name": "desync", "params": {"fraction": 0}}]))

    def test_bad_direction_fails_at_compile_time(self):
        with pytest.raises(ReportError, match="direction must be"):
            compile_report(make_spec(
                scenario="fig4_single_delay",
                metrics=[{"name": "wave_speed", "params": {"direction": 2}}]))

    def test_group_path_must_be_common_axis(self):
        with pytest.raises(ReportError, match="not a sweep axis"):
            compile_report(make_spec(group_by=["workload.threads"]))

    def test_wave_metric_needs_delay(self):
        with pytest.raises(ReportError, match="without any 'delays'"):
            compile_report(make_spec(metrics=[{"name": "wave_speed"}]))

    def test_explicit_seeds_replace_replicates(self):
        compiled = compile_report(make_spec(seeds=[7, 8, 9]))
        target = compiled.targets[0]
        assert target.draws_per_point == 3
        # 3 rate grid points x 3 seeds
        assert target.sweep.size == 9
        assert not target.sweep.seeded


class TestRun:
    def test_groups_and_aggregates(self):
        compiled = compile_report(make_spec(aggregate=["mean", "min", "max"]))
        result = run_report(compiled)
        rates = [row.group["campaign.rate"] for row in result.rows]
        assert rates == [0.001, 0.01, 0.05]
        # 4 replicates pooled per rate point.
        assert all(row.n_draws == 4 for row in result.rows)
        for row in result.rows:
            vals = row.values
            assert (vals["runtime.total_runtime.min"]
                    <= vals["runtime.total_runtime.mean"]
                    <= vals["runtime.total_runtime.max"])
        # A denser delay climate costs runtime.
        assert (result.rows[-1].values["runtime.total_runtime.mean"]
                > result.rows[0].values["runtime.total_runtime.mean"])

    def test_render_mentions_provenance(self):
        result = run_report(compile_report(make_spec()))
        text = result.render()
        assert "0 from store" in text and "12 executed" in text
        assert "campaign.rate" in text

    def test_batched_and_unbatched_agree(self):
        compiled = compile_report(make_spec(aggregate=["mean", "std"]))
        batched = run_report(compiled, batch=True)
        unbatched = run_report(compiled, batch=False)
        assert [r.values for r in batched.rows] == \
            [r.values for r in unbatched.rows]

    def test_cross_scenario_rows(self):
        compiled = compile_report(make_spec(
            scenario=None,
            scenarios=["fig4_single_delay", "inline_slow_network"],
            metrics=[{"name": "wave_speed"}, {"name": "runtime"}],
            seeds=[0]))
        result = run_report(compiled)
        names = [row.group["scenario"] for row in result.rows]
        assert names == ["fig4_single_delay", "inline_slow_network"]
        for row in result.rows:
            measured = row.values["wave_speed.measured_speed.mean"]
            predicted = row.values["wave_speed.predicted_speed.mean"]
            assert measured == pytest.approx(predicted, rel=0.05)


class TestStoreBacked:
    def test_cold_then_warm_zero_engine_invocations(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        compiled = compile_report(make_spec())
        cold = run_report(compiled, store=store)
        assert cold.n_executed == cold.n_tasks and cold.n_loaded == 0

        # Poison every engine entry point: a warm report must not simulate.
        import repro.scenarios.runner as runner_mod
        import repro.sim.engine as engine_mod
        import repro.sim.lockstep as lockstep_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("engine invoked on a warm report")

        monkeypatch.setattr(lockstep_mod, "simulate_lockstep", boom)
        monkeypatch.setattr(lockstep_mod, "simulate_lockstep_batch", boom)
        monkeypatch.setattr(engine_mod, "simulate_dag", boom)
        monkeypatch.setattr(engine_mod, "simulate_dag_batch", boom)
        monkeypatch.setattr(runner_mod, "simulate_lockstep", boom)
        monkeypatch.setattr(runner_mod, "simulate_lockstep_batch", boom)
        monkeypatch.setattr(runner_mod, "simulate_dag", boom)
        monkeypatch.setattr(runner_mod, "simulate_dag_batch", boom)
        monkeypatch.setattr(runner_mod, "prepare_scenario_run", boom)

        warm = run_report(compiled, store=store)
        assert warm.n_executed == 0
        assert warm.n_loaded == warm.n_tasks
        assert [r.values for r in warm.rows] == [r.values for r in cold.rows]

    def test_partial_cache_fills_the_gap(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        compiled = compile_report(make_spec())
        cold = run_report(compiled, store=store)
        # Drop one record: the rerun must re-execute exactly that task.
        key = next(iter(store.keys()))
        store.path_for(key).unlink()
        again = run_report(compiled, store=store)
        assert again.n_executed == 1
        assert again.n_loaded == again.n_tasks - 1
        assert [r.values for r in again.rows] == [r.values for r in cold.rows]

    def test_report_variation_reuses_the_same_cache(self, tmp_path):
        """Changing metrics/aggregation must not invalidate cached runs."""
        store = ResultStore(tmp_path / "store")
        run_report(compile_report(make_spec()), store=store)
        other = compile_report(make_spec(
            metrics=[{"name": "idle_histogram"}, {"name": "desync"}],
            aggregate=["median"]))
        result = run_report(other, store=store)
        assert result.n_executed == 0
        assert result.n_loaded == result.n_tasks


class TestArtifacts:
    @pytest.fixture(scope="class")
    def result(self):
        spec = make_spec(artifacts=[
            {"kind": "csv"}, {"kind": "json"}, {"kind": "npz"},
            {"kind": "ascii"},
        ])
        return run_report(compile_report(spec))

    def test_writes_all_kinds(self, result, tmp_path):
        paths = write_artifacts(result, tmp_path)
        assert [p.name for p in paths] == ["t.csv", "t.json", "t.npz", "t.txt"]
        assert (tmp_path / "viz" / "t.txt").exists()

    def test_csv_round_trips_values(self, result, tmp_path):
        import csv as csv_mod

        (path,) = write_artifacts(result, tmp_path)[:1]
        with path.open() as fh:
            rows = list(csv_mod.DictReader(fh))
        assert len(rows) == len(result.rows)
        first = result.rows[0]
        assert float(rows[0]["campaign.rate"]) == first.group["campaign.rate"]
        assert (float(rows[0]["runtime.total_runtime.mean"])
                == first.values["runtime.total_runtime.mean"])

    def test_json_document(self, result, tmp_path):
        write_artifacts(result, tmp_path)
        doc = json.loads((tmp_path / "t.json").read_text())
        assert doc["provenance"]["n_tasks"] == result.n_tasks
        assert len(doc["rows"]) == len(result.rows)

    def test_npz_holds_raw_draws(self, result, tmp_path):
        write_artifacts(result, tmp_path)
        with np.load(tmp_path / "t.npz") as npz:
            assert list(npz["group/campaign.rate"]) == \
                [str(r.group["campaign.rate"]) for r in result.rows]
            draws = npz["draws/0/runtime.total_runtime"]
            assert draws.shape == (result.rows[0].n_draws,)

    def test_path_override(self, tmp_path):
        spec = make_spec(artifacts=[{"kind": "csv", "path": "sub/out.csv"}])
        result = run_report(compile_report(spec))
        (path,) = write_artifacts(result, tmp_path)
        assert path == tmp_path / "sub" / "out.csv"
