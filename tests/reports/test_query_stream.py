"""Streaming campaign reads: laziness, counts, and miss fallback."""

import numpy as np
import pytest

from repro.reports.query import (
    CampaignStream,
    fetch_campaign,
    load_cached,
    stream_campaign,
)
from repro.runtime import ResultStore, RunSpec, run_campaign

FN = "repro.runtime.tasks:rng_probe_task"


def make_specs(n: int) -> "tuple[RunSpec, ...]":
    return tuple(
        RunSpec(fn=FN, params={"n": 3, "replicate": i}, seed=i, index=i)
        for i in range(n)
    )


class RecordingStore:
    """Store wrapper that logs every get() the stream performs."""

    def __init__(self, inner):
        self.inner = inner
        self.gets: "list[str]" = []

    def __contains__(self, key):
        return key in self.inner

    def get(self, key, mmap=False):
        self.gets.append(key)
        return self.inner.get(key, mmap=mmap)

    def put(self, key, value, spec=None):
        return self.inner.put(key, value, spec=spec)


@pytest.fixture
def warm(tmp_path):
    """A store with a 6-task campaign fully cached, plus its specs."""
    store = ResultStore(tmp_path / "cache", layout="packed")
    specs = make_specs(6)
    run_campaign(specs, store=store)
    return store, specs


class TestStreamLazy:
    def test_blocks_load_only_when_consumed(self, warm):
        store, specs = warm
        recording = RecordingStore(store)
        stream = stream_campaign(specs, store=recording)
        blocks = stream.blocks(2)
        assert recording.gets == []  # nothing read yet
        first = next(blocks)
        assert len(first) == 2
        assert recording.gets == [s.key for s in specs[:2]]
        next(blocks)
        assert recording.gets == [s.key for s in specs[:4]]
        assert list(blocks) and recording.gets == [s.key for s in specs]

    def test_counts_complete_after_exhaustion(self, warm):
        store, specs = warm
        stream = stream_campaign(specs, store=store)
        blocks = list(stream.blocks(4))
        assert [len(b) for b in blocks] == [4, 2]  # trailing partial block
        assert stream.n_tasks == 6
        assert stream.n_loaded == 6 and stream.n_executed == 0

    def test_values_match_eager_fetch(self, warm):
        store, specs = warm
        eager = fetch_campaign(specs, store=store)
        streamed = [
            value
            for block in stream_campaign(specs, store=store).blocks(2)
            for value in block
        ]
        assert len(streamed) == len(eager.values)
        for got, want in zip(streamed, eager.values):
            assert got["seed"] == want["seed"]
            assert got["draws"] == want["draws"]

    def test_mmap_views_are_read_only(self, warm):
        store, specs = warm
        # Plant a packed record with an array field under a real spec key.
        store.put(specs[0].key, {"values": np.arange(4.0)})
        (block,) = list(stream_campaign(specs[:1], store=store).blocks(1))
        arr = block[0]["values"]
        assert isinstance(arr, np.ndarray) and not arr.flags.writeable

    def test_bad_block_size_rejected(self, warm):
        store, specs = warm
        with pytest.raises(ValueError, match="block size"):
            next(stream_campaign(specs, store=store).blocks(0))


class TestStreamFallback:
    def test_miss_degrades_to_eager_fetch(self, warm):
        store, specs = warm
        extra = make_specs(8)[6:]  # two uncached tasks
        stream = stream_campaign(specs + extra, store=store)
        blocks = list(stream.blocks(4))
        assert sum(len(b) for b in blocks) == 8
        assert stream.n_loaded == 6 and stream.n_executed == 2
        # The recomputed tasks are now cached for the next stream.
        follow = stream_campaign(specs + extra, store=store)
        list(follow.blocks(4))
        assert follow.n_loaded == 8 and follow.n_executed == 0

    def test_no_store_executes_everything(self):
        specs = make_specs(3)
        stream = stream_campaign(specs, store=None)
        blocks = list(stream.blocks(2))
        assert sum(len(b) for b in blocks) == 3
        assert stream.n_loaded == 0 and stream.n_executed == 3

    def test_probe_race_recomputes_single_task(self, warm):
        store, specs = warm

        class VanishingStore(RecordingStore):
            """Passes the presence probe, then loses one record."""

            def get(self, key, mmap=False):
                self.gets.append(key)
                if key == specs[1].key:
                    return None  # gc'd between probe and read
                return self.inner.get(key, mmap=mmap)

        stream = CampaignStream(specs=specs, store=VanishingStore(store))
        values = [v for b in stream.blocks(3) for v in b]
        assert len(values) == 6 and values[1] is not None
        assert stream.n_loaded == 5 and stream.n_executed == 1


class TestLoadCached:
    def test_partition_hits_and_misses(self, warm):
        store, specs = warm
        extra = make_specs(7)[6:]
        values, missing = load_cached(store, specs + extra)
        assert values[-1] is None and all(v is not None for v in values[:6])
        assert missing == list(extra)

    def test_mmap_kwarg_falls_back_for_test_doubles(self, warm):
        store, specs = warm

        class LegacyDouble:
            """Store-like object whose get() lacks the mmap kwarg."""

            def get(self, key):
                return {"ok": key}

        values, missing = load_cached(LegacyDouble(), specs[:2], mmap=True)
        assert not missing and values[0] == {"ok": specs[0].key}
