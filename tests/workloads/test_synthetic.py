"""Unit tests for the synthetic execution-time generators."""

import numpy as np
import pytest

from repro.workloads.synthetic import (
    SyntheticWorkload,
    constant_times,
    imbalanced_times,
    ramp_times,
)


class TestConstantTimes:
    def test_shape_and_value(self):
        t = constant_times(4, 6, 3e-3)
        assert t.shape == (4, 6)
        np.testing.assert_allclose(t, 3e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_times(0, 5, 1e-3)
        with pytest.raises(ValueError):
            constant_times(4, 6, 0.0)


class TestImbalancedTimes:
    def test_slow_ranks_scaled(self):
        t = imbalanced_times(4, 3, 1e-3, slow_ranks=[1], factor=2.0)
        np.testing.assert_allclose(t[1], 2e-3)
        np.testing.assert_allclose(t[0], 1e-3)

    def test_out_of_range_rank(self):
        with pytest.raises(IndexError):
            imbalanced_times(4, 3, 1e-3, slow_ranks=[4], factor=2.0)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            imbalanced_times(4, 3, 1e-3, slow_ranks=[0], factor=0.0)


class TestRampTimes:
    def test_linear_between_bounds(self):
        t = ramp_times(5, 2, 1e-3, 2e-3)
        assert t[0, 0] == pytest.approx(1e-3)
        assert t[-1, 0] == pytest.approx(2e-3)
        assert (np.diff(t[:, 0]) > 0).all()

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            ramp_times(5, 2, 2e-3, 1e-3)


class TestSyntheticWorkload:
    def test_dispatch_constant(self):
        w = SyntheticWorkload(kind="constant", t_exec=2e-3)
        np.testing.assert_allclose(w.generate(3, 4), 2e-3)

    def test_dispatch_imbalanced(self):
        w = SyntheticWorkload(kind="imbalanced", slow_ranks=(0,), factor=3.0)
        t = w.generate(3, 2)
        assert t[0, 0] == pytest.approx(3 * t[1, 0])

    def test_dispatch_ramp(self):
        w = SyntheticWorkload(kind="ramp", t_exec=1e-3)
        t = w.generate(4, 2)
        assert t[-1, 0] == pytest.approx(2e-3)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown"):
            SyntheticWorkload(kind="bogus").generate(2, 2)
