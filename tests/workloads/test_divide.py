"""Unit tests for the compute-bound divide workload."""

import pytest

from repro.cluster import EMMY, MEGGIE
from repro.workloads.divide import DivideWorkload, measure_host_noise


class TestDivideWorkload:
    def test_ideal_duration_from_throughput(self):
        w = DivideWorkload(cpu=EMMY.cpu, n_instructions=1000)
        assert w.ideal_duration == pytest.approx(1000 * 28 / 2.2e9)

    def test_for_duration_inverts(self):
        w = DivideWorkload.for_duration(EMMY.cpu, 3e-3)
        assert w.ideal_duration == pytest.approx(3e-3, rel=1e-4)

    def test_broadwell_needs_more_instructions_for_same_time(self):
        # 16 vs 28 cycles per divide: Broadwell fits more in 3 ms.
        ivb = DivideWorkload.for_duration(EMMY.cpu, 3e-3)
        bdw = DivideWorkload.for_duration(MEGGIE.cpu, 3e-3)
        assert bdw.n_instructions > ivb.n_instructions

    def test_kernel_executes_divisions(self):
        w = DivideWorkload(cpu=EMMY.cpu, n_instructions=2048)
        result = w.run_kernel(value=1.0)
        assert 0 < result < 1.0  # repeatedly divided by >1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            DivideWorkload(cpu=EMMY.cpu, n_instructions=0)
        with pytest.raises(ValueError):
            DivideWorkload.for_duration(EMMY.cpu, 0.0)


class TestMeasureHostNoise:
    def test_returns_nonnegative_deviations(self):
        w = DivideWorkload(cpu=EMMY.cpu, n_instructions=4096)
        samples = measure_host_noise(w, n_phases=10, warmup=1)
        assert samples.shape == (10,)
        assert (samples >= 0).all()
        assert samples.min() == 0.0  # relative to the minimum

    def test_requires_phases(self):
        w = DivideWorkload(cpu=EMMY.cpu, n_instructions=64)
        with pytest.raises(ValueError):
            measure_host_noise(w, n_phases=0)
