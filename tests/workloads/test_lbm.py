"""Unit tests for the D3Q19 LBM kernel and the Fig. 2 workload accounting."""

import numpy as np
import pytest

from repro.cluster import EMMY
from repro.workloads.lbm import D3Q19, LbmKernel, LbmWorkload, lbm_saturation_config


class TestD3Q19:
    def test_nineteen_velocities(self):
        assert D3Q19.C.shape == (19, 3)
        assert D3Q19.Q == 19

    def test_weights_sum_to_one(self):
        assert D3Q19.W.sum() == pytest.approx(1.0)

    def test_velocity_set_is_symmetric(self):
        assert np.asarray(D3Q19.C).sum(axis=0).tolist() == [0, 0, 0]

    def test_opposite_directions(self):
        opp = D3Q19.opposite()
        for i in range(19):
            np.testing.assert_array_equal(D3Q19.C[opp[i]], -D3Q19.C[i])
        assert opp[0] == 0  # rest stays rest

    def test_face_and_edge_counts(self):
        speeds = (D3Q19.C**2).sum(axis=1)
        assert (speeds == 0).sum() == 1
        assert (speeds == 1).sum() == 6
        assert (speeds == 2).sum() == 12


class TestLbmKernel:
    def test_uniform_equilibrium_is_stationary(self):
        k = LbmKernel((6, 6, 6))
        f0 = k.f.copy()
        k.step(3)
        np.testing.assert_allclose(k.f, f0, atol=1e-14)

    def test_mass_conserved_under_perturbation(self):
        k = LbmKernel((8, 8, 8))
        k.perturb(0.05, seed=2)
        m0 = k.total_mass()
        k.step(10)
        assert k.total_mass() == pytest.approx(m0, rel=1e-13)

    def test_momentum_decays_viscously(self):
        k = LbmKernel((8, 8, 8), tau=0.6)
        k.perturb(0.05, seed=2)
        k.step(1)
        u0 = np.abs(k.velocity()).max()
        k.step(30)
        u1 = np.abs(k.velocity()).max()
        assert u1 < u0

    def test_density_positive(self):
        k = LbmKernel((8, 8, 8))
        k.perturb(0.05, seed=4)
        k.step(5)
        assert (k.density() > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            LbmKernel((1, 8, 8))
        with pytest.raises(ValueError):
            LbmKernel((8, 8, 8), tau=0.5)
        with pytest.raises(ValueError):
            LbmKernel((8, 8, 8)).reset(density=0.0)


class TestLbmWorkload:
    def test_paper_scale(self):
        w = LbmWorkload()
        assert w.working_set_bytes > 8e9  # "more than 8 GB"
        assert w.cells_per_rank == pytest.approx(302**3 / 100)

    def test_halo_bytes(self):
        w = LbmWorkload()
        assert w.halo_bytes == pytest.approx(302 * 302 * 5 * 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            LbmWorkload(n_ranks=1)
        with pytest.raises(ValueError):
            LbmWorkload(domain=(50, 302, 302), n_ranks=100)


class TestSaturationBridge:
    def test_configuration_matches_paper(self):
        cfg = lbm_saturation_config(EMMY.with_nodes(8), n_steps=10)
        assert cfg.n_ranks == 100
        assert cfg.mapping.n_nodes_used() == 5  # five nodes
        assert cfg.rendezvous
        assert cfg.pattern.periodic
