"""Unit tests for the STREAM triad workload."""

import numpy as np
import pytest

from repro.cluster import EMMY
from repro.workloads.stream import TriadWorkload, triad_kernel, triad_saturation_config


class TestTriadKernel:
    def test_computes_triad(self):
        b = np.arange(100, dtype=float)
        c = np.ones(100)
        a = np.zeros(100)
        triad_kernel(a, b, c, s=2.0)
        np.testing.assert_allclose(a, b + 2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            triad_kernel(np.zeros(3), np.zeros(4), np.zeros(3), 1.0)


class TestTriadWorkload:
    def test_paper_defaults(self):
        w = TriadWorkload()
        assert w.v_mem == pytest.approx(1.2e9)  # the paper's 1.2 GB
        assert w.flops_per_iteration == pytest.approx(1e8)  # 2 * 5e7

    def test_work_split_evenly(self):
        w = TriadWorkload()
        assert w.work_per_rank(100) == pytest.approx(w.v_mem / 100)

    def test_performance(self):
        w = TriadWorkload()
        assert w.performance(0.1) == pytest.approx(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            TriadWorkload(n_elements=0)
        with pytest.raises(ValueError):
            TriadWorkload().work_per_rank(0)
        with pytest.raises(ValueError):
            TriadWorkload().performance(0.0)


class TestSaturationConfigBridge:
    def test_full_socket_configuration(self):
        cfg = triad_saturation_config(EMMY.with_nodes(8), n_sockets=2, n_steps=5)
        assert cfg.n_ranks == 20
        assert cfg.rendezvous  # 2 MB messages
        assert cfg.pattern.periodic

    def test_ppn_one_configuration(self):
        cfg = triad_saturation_config(EMMY.with_nodes(8), n_sockets=4, ppn=1, n_steps=5)
        assert cfg.n_ranks == 4
        assert cfg.mapping.n_nodes_used() == 4

    def test_explicit_n_ranks(self):
        cfg = triad_saturation_config(
            EMMY.with_nodes(8), n_sockets=1, ppn=6, n_ranks=6, n_steps=5
        )
        assert cfg.n_ranks == 6

    def test_work_scales_inversely_with_ranks(self):
        c20 = triad_saturation_config(EMMY.with_nodes(8), n_sockets=2, n_steps=5)
        c40 = triad_saturation_config(EMMY.with_nodes(8), n_sockets=4, n_steps=5)
        w20 = np.asarray(c20.work_bytes)
        w40 = np.asarray(c40.work_bytes)
        assert float(w20) == pytest.approx(2 * float(w40))

    def test_too_few_ranks_rejected(self):
        with pytest.raises(ValueError, match=">= 2 ranks"):
            triad_saturation_config(EMMY.with_nodes(8), n_sockets=1, ppn=1, n_steps=5)
