"""The telemetry recorder: spans, instruments, snapshots, merging.

The recorder's contracts: zero-cost no-ops while disabled, plain-tuple
span storage with correct parenting while enabled, picklable snapshots,
and a merge that folds worker snapshots under the caller's open span.
"""

import pickle

import pytest

from repro import telemetry
from repro.telemetry.recorder import _NULL_SPAN, Recorder


class TestDisabled:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.current_recorder() is None

    def test_span_is_the_shared_null_singleton(self):
        sp = telemetry.span("engine.dag.propagate", batch=4)
        assert sp is _NULL_SPAN
        assert telemetry.span("anything.else") is sp

    def test_null_span_context_and_set_are_noops(self):
        with telemetry.span("x") as sp:
            assert sp.set(n_nodes=3) is sp
        assert sp.duration == 0.0

    def test_instruments_are_noops(self):
        telemetry.count("dag.cache.hits")
        telemetry.gauge("executor.jobs", 4)
        telemetry.observe("executor.block_size", 8)
        telemetry.merge_snapshot({"counters": {"x": 1}})
        assert telemetry.current_recorder() is None

    def test_timed_span_still_measures_duration(self):
        """The executor derives result timings from timed_span even when
        telemetry is off — duration must be a real measurement."""
        with telemetry.timed_span("executor.task") as sp:
            sum(range(1000))
        assert sp.duration > 0.0
        assert sp.start > 0.0


class TestEnableDisable:
    def test_enable_returns_live_recorder(self):
        rec = telemetry.enable()
        assert telemetry.enabled()
        assert telemetry.current_recorder() is rec

    def test_disable_returns_final_recorder(self):
        rec = telemetry.enable()
        rec.count("x")
        final = telemetry.disable()
        assert final is rec
        assert not telemetry.enabled()
        assert telemetry.disable() is None

    def test_enable_fresh_discards_previous_state(self):
        telemetry.enable().count("stale")
        rec = telemetry.enable()
        assert rec.counters == {}

    def test_enable_not_fresh_is_idempotent(self):
        rec = telemetry.enable()
        rec.count("kept")
        assert telemetry.enable(fresh=False) is rec
        assert rec.counters == {"kept": 1}


class TestSpans:
    def test_nesting_records_parent_ids(self):
        rec = telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        spans = {s[0]: s for s in rec.iter_spans()}
        assert len(spans) == 3
        by_name = {}
        for s in rec.iter_spans():
            by_name.setdefault(s[2], []).append(s)
        (outer,) = by_name["outer"]
        assert outer[1] == -1  # root
        for inner in by_name["inner"]:
            assert inner[1] == outer[0]

    def test_spans_append_on_exit_innermost_first(self):
        rec = telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        assert [s[2] for s in rec.iter_spans()] == ["inner", "outer"]

    def test_attrs_at_creation_and_via_set(self):
        rec = telemetry.enable()
        with telemetry.span("engine.build_dag", cached=False) as sp:
            sp.set(n_nodes=7)
        (span,) = rec.iter_spans()
        assert span[5] == {"cached": False, "n_nodes": 7}

    def test_duration_is_positive_and_ordered(self):
        rec = telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                sum(range(1000))
        inner, outer = rec.iter_spans()
        assert 0.0 < inner[4] <= outer[4]
        assert outer[3] <= inner[3]  # outer starts first

    def test_exception_unwinds_stack_correctly(self):
        rec = telemetry.enable()
        with pytest.raises(RuntimeError):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    raise RuntimeError("boom")
        assert rec._stack == []
        names = {s[2]: s for s in rec.iter_spans()}
        assert names["inner"][1] == names["outer"][0]
        # A new span after the unwind is a root again, not a stray child.
        with telemetry.span("next"):
            pass
        assert {s[2]: s[1] for s in rec.iter_spans()}["next"] == -1


class TestInstruments:
    def test_counters_sum(self):
        rec = telemetry.enable()
        telemetry.count("dag.cache.hits")
        telemetry.count("dag.cache.hits", 4)
        assert rec.counters["dag.cache.hits"] == 5

    def test_gauge_last_writer_wins(self):
        rec = telemetry.enable()
        telemetry.gauge("executor.jobs", 2)
        telemetry.gauge("executor.jobs", 8)
        assert rec.gauges["executor.jobs"] == 8

    def test_histogram_tracks_count_sum_min_max(self):
        rec = telemetry.enable()
        for v in (3.0, 1.0, 2.0):
            telemetry.observe("executor.block_size", v)
        assert rec.hists["executor.block_size"] == [3, 6.0, 1.0, 3.0]


class TestSnapshotAndMerge:
    def _worker_snapshot(self):
        worker = Recorder()
        with worker.span("executor.block", n_tasks=4):
            with worker.span("executor.task"):
                pass
        worker.count("dag.cache.hits", 3)
        worker.gauge("executor.jobs", 2)
        worker.observe("executor.queue_wait_s", 0.5)
        return worker.snapshot()

    def test_snapshot_is_plain_data_and_picklable(self):
        snap = self._worker_snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert isinstance(snap["spans"], list)
        assert all(isinstance(s, tuple) for s in snap["spans"])

    def test_merge_remaps_ids_and_reroots_under_open_span(self):
        """A worker snapshot's roots land under the caller's innermost
        open span — the shape run_campaign produces with --jobs N."""
        rec = telemetry.enable()
        with telemetry.span("campaign.run") as campaign:
            telemetry.merge_snapshot(self._worker_snapshot())
        spans = {s[2]: s for s in rec.iter_spans()}
        campaign_id = spans["campaign.run"][0]
        assert spans["executor.block"][1] == campaign_id
        assert spans["executor.task"][1] == spans["executor.block"][0]
        # remapped ids never collide with the parent's
        ids = [s[0] for s in rec.iter_spans()]
        assert len(ids) == len(set(ids))

    def test_merge_without_open_span_keeps_roots(self):
        rec = telemetry.enable()
        rec.merge(self._worker_snapshot())
        spans = {s[2]: s for s in rec.iter_spans()}
        assert spans["executor.block"][1] == -1

    def test_merge_sums_counters_and_hists_gauges_overwrite(self):
        rec = telemetry.enable()
        rec.count("dag.cache.hits", 1)
        rec.observe("executor.queue_wait_s", 2.0)
        rec.gauge("executor.jobs", 99)
        rec.merge(self._worker_snapshot())
        assert rec.counters["dag.cache.hits"] == 4
        assert rec.hists["executor.queue_wait_s"] == [2, 2.5, 0.5, 2.0]
        assert rec.gauges["executor.jobs"] == 2

    def test_two_merges_do_not_collide(self):
        rec = telemetry.enable()
        rec.merge(self._worker_snapshot())
        rec.merge(self._worker_snapshot())
        ids = [s[0] for s in rec.iter_spans()]
        assert len(ids) == len(set(ids)) == 4
