"""Telemetry test isolation: the recorder is module-global state."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    telemetry.disable()
    yield
    telemetry.disable()
