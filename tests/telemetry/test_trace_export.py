"""Chrome trace export round-trip: profiled runs to a validated timeline.

The acceptance contract (ISSUE 9): a profiled ``--jobs 2`` sweep exports
to trace-event JSON that passes :func:`validate_trace`, carries only
non-negative microsecond timestamps, distinguishes worker tracks by pid,
and — on a warm cache — renders the cache-hit stream as counter events.
"""

import json

import pytest

from repro.scenarios.cli import scenario_main
from repro.telemetry.cli import stats_main
from repro.telemetry.sinks import read_jsonl
from repro.telemetry.trace_export import (
    export_chrome_trace,
    validate_trace,
    write_chrome_trace,
)

SWEEP = """\
description = "trace-export sweep"
n_ranks = 8
n_steps = 10
outputs = ["runtime"]

[machine]
preset = "simulated"

[workload]
kind = "synthetic"
t_exec = 3e-3

[comm]
direction = "bidirectional"
distance = 1
periodic = true
msg_size = 8192
protocol = "eager"

[noise]
model = "none"

[campaign]
rate = 0.01
phases_low = 2.0
phases_high = 8.0

[sweep]
replicates = 8

[[sweep.axes]]
path = "campaign.rate"
values = [0.01, 0.05]
"""


@pytest.fixture
def sweep_toml(tmp_path):
    path = tmp_path / "sweep.toml"
    path.write_text(SWEEP)
    return path


def profiled_sweep(sweep_toml, tmp_path, jobs, out_name="run.jsonl"):
    out = tmp_path / out_name
    assert scenario_main([
        "sweep", str(sweep_toml), "--engine", "dag", "--jobs", str(jobs),
        "--cache-dir", str(tmp_path / "store"),
        "--profile", "--telemetry-out", str(out),
    ]) == 0
    return read_jsonl(str(out)), out


class TestExport:
    def test_pool_trace_validates_with_worker_tracks(
            self, sweep_toml, tmp_path, capsys):
        """The headline: --jobs 2 trace validates and splits by worker."""
        snap, _ = profiled_sweep(sweep_toml, tmp_path, jobs=2)
        trace = export_chrome_trace(snap)
        assert validate_trace(trace) == []

        x_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert x_events
        for e in x_events:
            assert e["ts"] >= 0
            assert e["dur"] >= 0
        # tid 0 is the parent; worker spans land on their pid's track.
        tids = {e["tid"] for e in x_events}
        assert 0 in tids
        assert len(tids) >= 2

        # Worker tracks are named after the worker pid.
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "main" in names
        assert any(n.startswith("worker") for n in names)

    def test_trace_is_pure_json(self, sweep_toml, tmp_path):
        snap, _ = profiled_sweep(sweep_toml, tmp_path, jobs=1)
        trace = export_chrome_trace(snap)
        round_tripped = json.loads(json.dumps(trace))
        assert validate_trace(round_tripped) == []

    def test_warm_run_emits_cache_hit_counters(self, sweep_toml, tmp_path):
        """A fully cached rerun shows the cache-hit counter climbing."""
        profiled_sweep(sweep_toml, tmp_path, jobs=1, out_name="cold.jsonl")
        snap, _ = profiled_sweep(sweep_toml, tmp_path, jobs=1,
                                 out_name="warm.jsonl")
        trace = export_chrome_trace(snap)
        assert validate_trace(trace) == []
        hits = [e for e in trace["traceEvents"]
                if e["ph"] == "C" and e["name"] == "cache hits"]
        assert hits
        final = max(next(iter(e["args"].values())) for e in hits)
        assert final == 16  # every draw of the 16-task sweep was cached

    def test_validator_catches_malformed_traces(self):
        assert validate_trace([]) != []  # not an object
        assert validate_trace({"traceEvents": "nope"}) != []
        bad_phase = {"traceEvents": [
            {"name": "x", "ph": "Z", "pid": 1, "tid": 0, "ts": 0}]}
        assert any("ph" in p for p in validate_trace(bad_phase))
        negative_ts = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 0,
             "ts": -1.0, "dur": 1.0}]}
        assert any("ts" in p for p in validate_trace(negative_ts))


class TestTraceCli:
    def test_stats_trace_writes_default_path(
            self, sweep_toml, tmp_path, capsys):
        _, out = profiled_sweep(sweep_toml, tmp_path, jobs=2)
        capsys.readouterr()
        assert stats_main(["trace", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "chrome trace" in printed
        trace_path = out.parent / (out.name + ".trace.json")
        assert trace_path.exists()
        trace = json.loads(trace_path.read_text())
        assert validate_trace(trace) == []

    def test_stats_trace_explicit_out(self, sweep_toml, tmp_path, capsys):
        _, out = profiled_sweep(sweep_toml, tmp_path, jobs=1)
        capsys.readouterr()
        dest = tmp_path / "timeline.json"
        assert stats_main(["trace", str(out), str(dest)]) == 0
        capsys.readouterr()
        assert validate_trace(json.loads(dest.read_text())) == []

    def test_stats_trace_unreadable_file_fails_cleanly(
            self, tmp_path, capsys):
        assert stats_main(["trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "stats error" in capsys.readouterr().err

    def test_write_refuses_invalid_snapshot(self, tmp_path):
        with pytest.raises(ValueError, match="not a telemetry snapshot"):
            write_chrome_trace({"spans": "bogus"}, tmp_path / "t.json")
