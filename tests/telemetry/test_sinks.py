"""Telemetry sinks: JSONL round-trips and summary analysis math."""

import json

from repro import telemetry
from repro.telemetry.sinks import (
    phase_breakdown,
    read_jsonl,
    render_summary,
    root_span,
    span_name_table,
    summarize,
    write_jsonl,
)


def recorded_snapshot():
    """A small but fully populated run, recorded for real."""
    rec = telemetry.enable()
    with telemetry.span("campaign.run", n_tasks=2):
        with telemetry.span("scenario.prepare"):
            pass
        with telemetry.span("scenario.execute", engine="dag"):
            pass
    telemetry.count("dag.cache.hits", 3)
    telemetry.count("dag.cache.misses", 1)
    telemetry.gauge("executor.jobs", 2)
    telemetry.observe("executor.queue_wait_s", 0.25)
    telemetry.observe("executor.block_size", 4)
    snap = rec.snapshot()
    telemetry.disable()
    return snap


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        snap = recorded_snapshot()
        path = write_jsonl(snap, tmp_path / "run.jsonl", label="test.run")
        back = read_jsonl(path)
        assert back["meta"]["label"] == "test.run"
        assert back["meta"]["version"] == snap["version"]
        assert back["counters"] == snap["counters"]
        assert back["gauges"] == snap["gauges"]
        assert back["hists"] == snap["hists"]
        assert [s[:3] for s in back["spans"]] == \
            [s[:3] for s in snap["spans"]]
        # file starts are normalized to the recorder epoch
        starts = [s[3] for s in back["spans"]]
        assert min(starts) >= 0.0
        assert max(starts) < 60.0

    def test_meta_line_comes_first(self, tmp_path):
        path = write_jsonl(recorded_snapshot(), tmp_path / "run.jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta"

    def test_unknown_record_types_are_skipped(self, tmp_path):
        """The format contract: readers ignore record types they don't
        know, so future writers can extend the schema."""
        path = write_jsonl(recorded_snapshot(), tmp_path / "run.jsonl")
        with path.open("a") as fh:
            fh.write(json.dumps({"type": "flamegraph", "data": [1]}) + "\n")
            fh.write("\n")  # blank lines too
        back = read_jsonl(path)
        assert len(back["spans"]) == 3
        assert back["counters"]["dag.cache.hits"] == 3

    def test_creates_parent_directories(self, tmp_path):
        path = write_jsonl(recorded_snapshot(),
                           tmp_path / "deep" / "nested" / "run.jsonl")
        assert path.exists()


class TestAnalysis:
    def synthetic_snapshot(self):
        """Hand-built spans with exact durations for breakdown math."""
        return {
            "t0": 0.0,
            "spans": [
                # (id, parent, name, start, duration, attrs)
                (0, -1, "campaign.run", 0.0, 10.0, None),
                (1, 0, "scenario.prepare", 0.0, 2.0, None),
                (2, 0, "scenario.execute", 2.0, 3.0, None),
                (3, 0, "scenario.execute", 5.0, 4.0, None),
                (4, 2, "engine.dag.propagate", 2.5, 1.0, None),
                (5, -1, "stray.root", 0.0, 0.5, None),
            ],
            "counters": {"dag.cache.hits": 9, "dag.cache.misses": 1,
                         "store.get.misses": 4},
            "gauges": {},
            "hists": {},
        }

    def test_root_span_is_longest_parentless(self):
        assert root_span(self.synthetic_snapshot())[2] == "campaign.run"
        assert root_span({"spans": []}) is None

    def test_phase_breakdown_aggregates_direct_children(self):
        pb = phase_breakdown(self.synthetic_snapshot())
        assert pb["root"] == "campaign.run"
        assert pb["total_s"] == 10.0
        assert pb["phases"]["scenario.execute"] == {
            "count": 2, "total_s": 7.0, "share": 0.7}
        assert pb["phases"]["scenario.prepare"]["total_s"] == 2.0
        # grandchildren and stray roots are not phases
        assert "engine.dag.propagate" not in pb["phases"]
        assert "stray.root" not in pb["phases"]
        assert pb["coverage"] == 0.9

    def test_phases_sorted_heaviest_first(self):
        pb = phase_breakdown(self.synthetic_snapshot())
        assert list(pb["phases"]) == ["scenario.execute", "scenario.prepare"]

    def test_span_name_table(self):
        rows = span_name_table(self.synthetic_snapshot())
        by_name = {r["name"]: r for r in rows}
        assert by_name["scenario.execute"]["count"] == 2
        assert by_name["scenario.execute"]["total_s"] == 7.0
        assert by_name["scenario.execute"]["max_s"] == 4.0
        assert rows[0]["name"] == "campaign.run"  # heaviest first

    def test_summarize_hit_rates(self):
        s = summarize(self.synthetic_snapshot())
        assert s["dag_cache_hit_rate"] == 0.9
        assert s["store_hit_rate"] == 0.0  # misses only: rate 0, not None
        assert s["campaign_cache_hit_rate"] is None  # no counters at all
        assert s["n_spans"] == 6

    def test_summarize_empty_snapshot(self):
        s = summarize({"spans": [], "counters": {}, "gauges": {},
                       "hists": {}})
        assert s["phase_breakdown"]["coverage"] is None
        assert s["dag_cache_hit_rate"] is None


class TestRenderSummary:
    def test_render_smoke(self):
        out = render_summary(recorded_snapshot())
        assert "telemetry summary" in out
        assert "campaign.run" in out
        assert "dag" in out and "75.0%" in out  # 3 hits / 4
        assert "scenario.execute" in out

    def test_non_time_histograms_render_unitless(self):
        """Only the `_s` suffix means seconds — a block-size histogram
        must not be rendered as a duration."""
        out = render_summary(recorded_snapshot())
        block_line = next(line for line in out.splitlines()
                          if "executor.block_size" in line)
        assert "ms" not in block_line and "us" not in block_line
        wait_line = next(line for line in out.splitlines()
                         if "executor.queue_wait_s" in line)
        assert "ms" in wait_line or "s" in wait_line
