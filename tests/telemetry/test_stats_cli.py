"""End-to-end telemetry acceptance: profiled runs through the real CLI.

The headline contract (ISSUE 6): a 64-draw forced-DAG sweep run with
``--profile --telemetry-out`` produces a JSONL file from which
``repro stats summarize`` reports the structure-cache hit rate, the
store hit rate, and a per-phase breakdown covering >= 90% of the wall
time.  Worker-process telemetry must merge back through the executor's
result channel for ``--jobs N``.
"""

import json

import pytest

from repro.cli import main
from repro.scenarios.cli import scenario_main
from repro.telemetry.cli import stats_main
from repro.telemetry.sinks import read_jsonl

SWEEP_64 = """\
description = "64-draw forced-DAG acceptance sweep"
n_ranks = 8
n_steps = 10
outputs = ["runtime"]

[machine]
preset = "simulated"

[workload]
kind = "synthetic"
t_exec = 3e-3

[comm]
direction = "bidirectional"
distance = 1
periodic = true
msg_size = 8192
protocol = "eager"

[noise]
model = "none"

[campaign]
rate = 0.01
phases_low = 2.0
phases_high = 8.0

[sweep]
replicates = 32

[[sweep.axes]]
path = "campaign.rate"
values = [0.01, 0.05]
"""


@pytest.fixture
def sweep_toml(tmp_path):
    path = tmp_path / "sweep64.toml"
    path.write_text(SWEEP_64)
    return path


class TestAcceptance:
    def test_64_draw_forced_dag_sweep_profile_summarize(
            self, sweep_toml, tmp_path, capsys):
        """The ISSUE acceptance criterion, end to end through the CLI."""
        out = tmp_path / "run.jsonl"
        assert scenario_main([
            "sweep", str(sweep_toml), "--engine", "dag",
            "--cache-dir", str(tmp_path / "store"),
            "--profile", "--telemetry-out", str(out),
        ]) == 0
        printed = capsys.readouterr().out
        assert "telemetry summary" in printed
        assert out.exists()

        assert stats_main(["summarize", str(out), "--json",
                           "--store", str(tmp_path / "store")]) == 0
        s = json.loads(capsys.readouterr().out)

        # structure-cache hit rate: every batched block after the first
        # reuses the one cold build (batching already amortizes build_dag
        # within a block, so the draw count does not inflate the rate)
        assert s["dag_cache_hit_rate"] is not None
        assert 0.0 < s["dag_cache_hit_rate"] < 1.0
        # store hit rate is reported (cold run: all misses)
        assert s["store_hit_rate"] == 0.0
        assert s["counters"]["store.get.misses"] == 64
        assert s["counters"]["store.puts"] == 64
        # per-phase breakdown sums to within 10% of total wall time
        pb = s["phase_breakdown"]
        assert pb["root"] == "scenario.sweep"
        assert pb["coverage"] is not None
        assert pb["coverage"] >= 0.90
        assert sum(p["total_s"] for p in pb["phases"].values()) == \
            pytest.approx(pb["coverage"] * pb["total_s"])
        # the hot engine path was actually instrumented
        span_names = {r["name"] for r in s["spans_by_name"]}
        assert "engine.dag.propagate" in span_names
        assert "campaign.run" in span_names
        # --store reports the persisted record footprint
        assert s["store"]["n_records"] == 64
        assert s["store"]["total_bytes"] > 0

    def test_warm_rerun_reports_full_store_hit_rate(
            self, sweep_toml, tmp_path, capsys):
        store = tmp_path / "store"
        cold = tmp_path / "cold.jsonl"
        warm = tmp_path / "warm.jsonl"
        for out in (cold, warm):
            assert scenario_main([
                "sweep", str(sweep_toml), "--engine", "dag",
                "--cache-dir", str(store), "--telemetry-out", str(out),
            ]) == 0
        capsys.readouterr()
        assert stats_main(["summarize", str(warm), "--json"]) == 0
        s = json.loads(capsys.readouterr().out)
        assert s["store_hit_rate"] == 1.0
        assert s["counters"]["store.get.hits"] == 64
        assert s["campaign_cache_hit_rate"] == 1.0

    def test_profiled_run_persists_record_next_to_store(
            self, sweep_toml, tmp_path, capsys):
        """--profile with a cache dir drops a telemetry record under
        <cache-dir>/telemetry/, outside the store's record globs."""
        store = tmp_path / "store"
        assert scenario_main([
            "sweep", str(sweep_toml), "--engine", "dag",
            "--cache-dir", str(store), "--profile",
        ]) == 0
        records = list((store / "telemetry").glob("scenario.sweep-*.jsonl"))
        assert len(records) == 1
        snap = read_jsonl(records[0])
        assert snap["meta"]["label"] == "scenario.sweep"
        # the store itself does not see the telemetry file as a record
        from repro.runtime.store import ResultStore

        assert len(list(ResultStore(store).entries())) == 64


class TestWorkerMerge:
    def test_jobs_2_worker_spans_merge_into_one_file(
            self, sweep_toml, tmp_path, capsys):
        """Worker-process recorders come back through the executor's
        result channel: block/task spans land under campaign.run."""
        out = tmp_path / "run.jsonl"
        assert scenario_main([
            "sweep", str(sweep_toml), "--engine", "dag", "--jobs", "2",
            "--telemetry-out", str(out),
        ]) == 0
        snap = read_jsonl(out)
        spans = {s[0]: s for s in snap["spans"]}
        by_name = {}
        for s in snap["spans"]:
            by_name.setdefault(s[2], []).append(s)
        campaign_ids = {s[0] for s in by_name["campaign.run"]}
        # every worker block span was re-rooted under the campaign span
        assert by_name["executor.block"]
        for block in by_name["executor.block"]:
            assert block[1] in campaign_ids
        # (fully batched sweeps have no singleton task spans; any that do
        # appear must sit under their block)
        for task in by_name.get("executor.task", []):
            assert spans[task[1]][2] == "executor.block"
        # queue-wait distribution survives the merge
        assert snap["hists"]["executor.queue_wait_s"][0] >= \
            len(by_name["executor.block"])
        assert snap["gauges"]["executor.jobs"] == 2
        # engine spans recorded inside the workers made it back too
        assert by_name["engine.dag.propagate"]

    def test_jobs_2_profiled_values_identical_to_unprofiled_serial(
            self, sweep_toml):
        """Profiling a parallel sweep changes nothing about the results."""
        from repro import telemetry
        from repro.scenarios import run_scenario_sweep
        from repro.scenarios.loader import load_scenario_file

        spec = load_scenario_file(sweep_toml)
        serial = run_scenario_sweep(spec, engine="dag", jobs=1)
        telemetry.enable()
        try:
            parallel = run_scenario_sweep(spec, engine="dag", jobs=2)
        finally:
            telemetry.disable()
        assert parallel.campaign.values() == serial.campaign.values()
        assert parallel.points == serial.points


class TestStatsCli:
    @pytest.fixture
    def run_file(self, sweep_toml, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert scenario_main([
            "sweep", str(sweep_toml), "--engine", "dag",
            "--cache-dir", str(tmp_path / "store"),
            "--telemetry-out", str(out),
        ]) == 0
        capsys.readouterr()
        return out

    def test_show_renders_span_tree(self, run_file, capsys):
        assert stats_main(["show", str(run_file)]) == 0
        out = capsys.readouterr().out
        assert "scenario.sweep" in out
        assert "  campaign.run" in out  # indented child

    def test_show_max_depth_truncates(self, run_file, capsys):
        assert stats_main(["show", str(run_file), "--max-depth", "0"]) == 0
        out = capsys.readouterr().out
        assert "scenario.sweep" in out
        assert "campaign.run" not in out

    def test_summarize_human_readable(self, run_file, capsys):
        assert stats_main(["summarize", str(run_file)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "cache hit rates" in out

    def test_diff_two_runs(self, sweep_toml, tmp_path, capsys):
        store = tmp_path / "store"
        cold = tmp_path / "cold.jsonl"
        warm = tmp_path / "warm.jsonl"
        for out in (cold, warm):
            assert scenario_main([
                "sweep", str(sweep_toml), "--engine", "dag",
                "--cache-dir", str(store), "--telemetry-out", str(out),
            ]) == 0
        capsys.readouterr()
        assert stats_main(["diff", str(cold), str(warm)]) == 0
        out = capsys.readouterr().out
        assert "store hit rate" in out
        assert "0.0%" in out and "100.0%" in out
        assert "store.get.hits" in out  # changed counter

    def test_routed_through_main_cli(self, run_file, capsys):
        """`repro-experiment stats ...` reaches stats_main via argv[0]."""
        assert main(["stats", "summarize", str(run_file)]) == 0
        assert "telemetry summary" in capsys.readouterr().out

    def test_show_meta_only_file_fails_cleanly(self, tmp_path, capsys):
        """A bare meta line means the run recorded nothing — say so and
        exit nonzero instead of rendering an empty tree."""
        empty = tmp_path / "empty.jsonl"
        empty.write_text(json.dumps(
            {"type": "meta", "version": 1, "label": ""}) + "\n")
        assert stats_main(["show", str(empty)]) == 1
        err = capsys.readouterr().err
        assert "stats error" in err
        assert "no telemetry events" in err

    @pytest.mark.parametrize("command", ["show", "summarize"])
    def test_zero_byte_file_fails_cleanly(self, command, tmp_path, capsys):
        empty = tmp_path / "zero.jsonl"
        empty.write_text("")
        assert stats_main([command, str(empty)]) == 1
        assert "stats error" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert stats_main(["show", str(tmp_path / "nope.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "stats error" in err
        assert "cannot read" in err

    def test_non_jsonl_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n")
        assert stats_main(["summarize", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "stats error" in err
        assert "not telemetry JSONL" in err

    def test_diff_with_meta_only_side_fails_cleanly(
            self, run_file, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text(json.dumps(
            {"type": "meta", "version": 1, "label": ""}) + "\n")
        assert stats_main(["diff", str(run_file), str(empty)]) == 1
        assert "stats error" in capsys.readouterr().err

    def test_diff_counter_only_side_shows_na_not_zerodivision(
            self, run_file, tmp_path, capsys):
        """A counter-only file has zero total span time — every speed
        ratio against it must render as n/a, never divide by zero."""
        counters = tmp_path / "counters.jsonl"
        counters.write_text(
            json.dumps({"type": "meta", "version": 1, "label": ""}) + "\n"
            + json.dumps({"type": "counter", "name": "store.get.hits",
                          "value": 7}) + "\n")
        for pair in ([str(run_file), str(counters)],
                     [str(counters), str(run_file)],
                     [str(counters), str(counters)]):
            assert stats_main(["diff", *pair]) == 0
            out = capsys.readouterr().out
            assert "n/a" in out
            assert "inf" not in out
