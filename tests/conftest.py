"""Shared fixtures and Hypothesis profiles for the repro test suite."""

import os

import numpy as np
import pytest
from hypothesis import settings

# Deterministic property testing: the "ci" profile derandomizes Hypothesis
# (fixed example generation, no flaky shrink paths) so CI runs — and the
# coverage gate that rides on them — are reproducible.  Select it with
# HYPOTHESIS_PROFILE=ci; the default "dev" profile keeps randomized
# exploration for local runs.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

import repro
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    SimConfig,
    UniformNetwork,
    build_lockstep_program,
    simulate,
    simulate_lockstep,
)

T_EXEC = 3e-3


@pytest.fixture
def uniform_network():
    return UniformNetwork()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_cfg(
    n_ranks=12,
    n_steps=15,
    t_exec=T_EXEC,
    msg_size=8192,
    direction=Direction.UNIDIRECTIONAL,
    distance=1,
    periodic=False,
    delays=(),
    noise=None,
    seed=0,
):
    """Concise LockstepConfig factory used across the suite."""
    kwargs = dict(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=t_exec,
        msg_size=msg_size,
        pattern=CommPattern(direction=direction, distance=distance, periodic=periodic),
        delays=tuple(delays),
        seed=seed,
    )
    if noise is not None:
        kwargs["noise"] = noise
    return LockstepConfig(**kwargs)


def delayed_cfg(**kw):
    """Config with the canonical mid-chain delay (5 phases at the middle rank)."""
    n_ranks = kw.pop("n_ranks", 12)
    t_exec = kw.pop("t_exec", T_EXEC)
    source = kw.pop("source", n_ranks // 2)
    phases = kw.pop("phases", 5.0)
    return make_cfg(
        n_ranks=n_ranks,
        t_exec=t_exec,
        delays=(DelaySpec(rank=source, step=0, duration=phases * t_exec),),
        **kw,
    )


@pytest.fixture
def fig4_trace(uniform_network):
    """The canonical Fig. 4 run (eager, unidirectional, delay at rank 5)."""
    cfg = make_cfg(
        n_ranks=12,
        n_steps=15,
        delays=(DelaySpec(rank=5, step=0, duration=4.5 * T_EXEC),),
    )
    return simulate(build_lockstep_program(cfg), SimConfig(network=uniform_network))


def run_both_engines(cfg, network=None, protocol=repro.Protocol.AUTO, eager_limit=None):
    """Run the DAG and lockstep engines on identical inputs."""
    from repro.sim.mpi import DEFAULT_EAGER_LIMIT

    net = network or UniformNetwork()
    limit = DEFAULT_EAGER_LIMIT if eager_limit is None else eager_limit
    exec_times = repro.build_exec_times(cfg)
    trace = simulate(
        build_lockstep_program(cfg, exec_times),
        SimConfig(network=net, protocol=protocol, eager_limit=limit),
    )
    result = simulate_lockstep(
        cfg, exec_times=exec_times, network=net, protocol=protocol, eager_limit=limit
    )
    return trace, result
