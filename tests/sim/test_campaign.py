"""Unit tests for random delay campaigns."""

import numpy as np
import pytest

from repro.sim.campaign import DelayCampaign

T = 3e-3


class TestDelayCampaign:
    def campaign(self, rate=0.05):
        return DelayCampaign(rate=rate, duration_low=2 * T, duration_high=8 * T)

    def test_draw_within_bounds(self):
        rng = np.random.default_rng(0)
        specs = self.campaign().draw(40, 30, rng)
        assert specs
        for spec in specs:
            assert 0 <= spec.rank < 40
            assert 0 <= spec.step < 30
            assert spec.duration >= 2 * T

    def test_expected_count_tracks_draws(self):
        rng = np.random.default_rng(1)
        campaign = self.campaign(rate=0.05)
        counts = [len(campaign.draw(40, 30, rng)) for _ in range(30)]
        expected = campaign.expected_count(40, 30)
        # Merged multi-arrival cells make the draw count <= Poisson count.
        assert np.mean(counts) == pytest.approx(expected, rel=0.15)

    def test_expected_injected_time(self):
        campaign = self.campaign(rate=0.01)
        assert campaign.expected_injected_time(100, 20) == pytest.approx(
            0.01 * 100 * 20 * 5 * T
        )

    def test_zero_rate_injects_nothing(self):
        rng = np.random.default_rng(2)
        campaign = DelayCampaign(rate=0.0, duration_low=T, duration_high=T)
        assert campaign.draw(10, 10, rng) == ()

    def test_at_most_one_spec_per_cell(self):
        rng = np.random.default_rng(3)
        specs = self.campaign(rate=2.0).draw(5, 5, rng)  # heavy multi-arrivals
        cells = [(s.rank, s.step) for s in specs]
        assert len(cells) == len(set(cells))

    def test_multi_arrivals_merge_durations(self):
        rng = np.random.default_rng(4)
        specs = DelayCampaign(rate=5.0, duration_low=T, duration_high=T).draw(2, 2, rng)
        # With rate 5 per cell and fixed duration T, merged cells exceed T.
        assert max(s.duration for s in specs) > 1.5 * T

    def test_deterministic_given_rng(self):
        a = self.campaign().draw(20, 20, np.random.default_rng(9))
        b = self.campaign().draw(20, 20, np.random.default_rng(9))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayCampaign(rate=-1, duration_low=0, duration_high=1)
        with pytest.raises(ValueError):
            DelayCampaign(rate=1, duration_low=2, duration_high=1)
        with pytest.raises(ValueError):
            self.campaign().draw(0, 5, np.random.default_rng(0))
