"""Unit tests for random delay campaigns."""

import numpy as np
import pytest

from repro.sim.campaign import DelayCampaign

T = 3e-3


class TestDelayCampaign:
    def campaign(self, rate=0.05):
        return DelayCampaign(rate=rate, duration_low=2 * T, duration_high=8 * T)

    def test_draw_within_bounds(self):
        rng = np.random.default_rng(0)
        specs = self.campaign().draw(40, 30, rng)
        assert specs
        for spec in specs:
            assert 0 <= spec.rank < 40
            assert 0 <= spec.step < 30
            assert spec.duration >= 2 * T

    def test_expected_count_tracks_draws(self):
        rng = np.random.default_rng(1)
        campaign = self.campaign(rate=0.05)
        counts = [len(campaign.draw(40, 30, rng)) for _ in range(30)]
        expected = campaign.expected_count(40, 30)
        # Merged multi-arrival cells make the draw count <= Poisson count.
        assert np.mean(counts) == pytest.approx(expected, rel=0.15)

    def test_expected_injected_time(self):
        campaign = self.campaign(rate=0.01)
        assert campaign.expected_injected_time(100, 20) == pytest.approx(
            0.01 * 100 * 20 * 5 * T
        )

    def test_zero_rate_injects_nothing(self):
        rng = np.random.default_rng(2)
        campaign = DelayCampaign(rate=0.0, duration_low=T, duration_high=T)
        assert campaign.draw(10, 10, rng) == ()

    def test_at_most_one_spec_per_cell(self):
        rng = np.random.default_rng(3)
        specs = self.campaign(rate=2.0).draw(5, 5, rng)  # heavy multi-arrivals
        cells = [(s.rank, s.step) for s in specs]
        assert len(cells) == len(set(cells))

    def test_multi_arrivals_merge_durations(self):
        rng = np.random.default_rng(4)
        specs = DelayCampaign(rate=5.0, duration_low=T, duration_high=T).draw(2, 2, rng)
        # With rate 5 per cell and fixed duration T, merged cells exceed T.
        assert max(s.duration for s in specs) > 1.5 * T

    def test_deterministic_given_rng(self):
        a = self.campaign().draw(20, 20, np.random.default_rng(9))
        b = self.campaign().draw(20, 20, np.random.default_rng(9))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayCampaign(rate=-1, duration_low=0, duration_high=1)
        with pytest.raises(ValueError):
            DelayCampaign(rate=1, duration_low=2, duration_high=1)
        with pytest.raises(ValueError):
            self.campaign().draw(0, 5, np.random.default_rng(0))

    def test_rejects_non_generator_non_int(self):
        with pytest.raises(TypeError, match="Generator or an integer seed"):
            self.campaign().draw(10, 10, rng="not-a-seed")


class TestIntegerSeedDraws:
    def campaign(self, rate=0.05):
        return DelayCampaign(rate=rate, duration_low=2 * T, duration_high=8 * T)

    def test_int_seed_matches_generator(self):
        campaign = self.campaign()
        assert campaign.draw(20, 20, 9) == campaign.draw(
            20, 20, np.random.default_rng(9)
        )

    def test_numpy_integer_seed_accepted(self):
        campaign = self.campaign()
        assert campaign.draw(20, 20, np.int64(9)) == campaign.draw(20, 20, 9)

    def test_distinct_seeds_distinct_schedules(self):
        campaign = self.campaign()
        assert campaign.draw(20, 20, 1) != campaign.draw(20, 20, 2)

    def test_n_merge_deterministic_across_processes(self):
        """Multi-arrival merge must be bit-identical in a worker process.

        rate=5 forces n>1 Poisson arrivals per cell, so the merged-sum
        path (``rng.uniform(..., size=n).sum()``) is exercised, not just
        single draws.  The campaign runtime executes the same draw in a
        process-pool worker; parent and worker schedules must agree
        exactly, including the merged durations.
        """
        from repro.runtime import RunSpec, run_campaign

        params = {"rate": 5.0, "duration_low": T, "duration_high": 2 * T,
                  "n_ranks": 3, "n_steps": 3}
        seed = 1234
        local = DelayCampaign(rate=5.0, duration_low=T,
                              duration_high=2 * T).draw(3, 3, seed)
        assert local and max(
            s.duration for s in local) > 2 * T  # merged cells present

        # Two tasks so the pool backend actually engages (a single
        # pending task is executed in-process as an optimization).
        specs = [
            RunSpec(fn="repro.runtime.tasks:campaign_draw_task",
                    params=params, seed=seed, index=0),
            RunSpec(fn="repro.runtime.tasks:campaign_draw_task",
                    params=params, seed=seed + 1, index=1),
        ]
        campaign = run_campaign(specs, jobs=2).raise_failures()
        remote = campaign.values()[0]
        assert remote["ranks"] == [s.rank for s in local]
        assert remote["steps"] == [s.step for s in local]
        assert remote["durations"] == [s.duration for s in local]
