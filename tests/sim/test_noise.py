"""Unit tests for the noise generators."""

import numpy as np
import pytest

from repro.sim.noise import (
    BimodalNoise,
    ExponentialNoise,
    GammaNoise,
    NoNoise,
    TraceNoise,
    UniformNoise,
    exponential_for_level,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


ALL_MODELS = [
    NoNoise(),
    ExponentialNoise(2.4e-6),
    BimodalNoise(),
    UniformNoise(0.0, 5e-6),
    GammaNoise(2.4e-6, shape_k=2.0),
    TraceNoise(samples=(1e-6, 2e-6, 3e-6)),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestNoiseContract:
    def test_samples_nonnegative(self, model, rng):
        s = model.sample(rng, (1000,))
        assert (s >= 0).all()

    def test_shape_respected(self, model, rng):
        assert model.sample(rng, (4, 7)).shape == (4, 7)

    def test_mean_matches_samples(self, model, rng):
        s = model.sample(rng, (200_000,))
        if model.mean() == 0:
            assert s.sum() == 0
        else:
            assert s.mean() == pytest.approx(model.mean(), rel=0.1)

    def test_deterministic_given_seed(self, model):
        a = model.sample(np.random.default_rng(3), (100,))
        b = model.sample(np.random.default_rng(3), (100,))
        np.testing.assert_array_equal(a, b)


class TestExponentialNoise:
    def test_relative_level(self):
        noise = ExponentialNoise(mean_delay=0.3e-3)
        assert noise.relative_level(3e-3) == pytest.approx(0.1)

    def test_exponential_for_level_inverts_relative_level(self):
        noise = exponential_for_level(0.25, 3e-3)
        assert noise.relative_level(3e-3) == pytest.approx(0.25)

    def test_zero_mean_is_silent(self, rng):
        assert ExponentialNoise(0.0).sample(rng, (10,)).sum() == 0

    def test_distribution_is_exponential(self, rng):
        # Exponential: std == mean.
        s = ExponentialNoise(5e-6).sample(rng, (500_000,))
        assert s.std() == pytest.approx(s.mean(), rel=0.02)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            ExponentialNoise(-1e-6)


class TestBimodalNoise:
    def test_mean_includes_spike_contribution(self):
        noise = BimodalNoise(
            base=ExponentialNoise(2e-6), spike_delay=600e-6, spike_probability=0.01
        )
        assert noise.mean() == pytest.approx(2e-6 + 6e-6)

    def test_spikes_present_at_expected_rate(self, rng):
        noise = BimodalNoise(
            base=ExponentialNoise(2e-6), spike_delay=600e-6, spike_probability=0.02
        )
        s = noise.sample(rng, (200_000,))
        frac = (s > 300e-6).mean()
        assert frac == pytest.approx(0.02, rel=0.15)

    def test_no_spikes_when_probability_zero(self, rng):
        noise = BimodalNoise(base=ExponentialNoise(2e-6), spike_probability=0.0)
        s = noise.sample(rng, (100_000,))
        assert s.max() < 100e-6

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            BimodalNoise(spike_probability=1.5)


class TestUniformNoise:
    def test_bounds_respected(self, rng):
        s = UniformNoise(1e-6, 2e-6).sample(rng, (10_000,))
        assert s.min() >= 1e-6
        assert s.max() <= 2e-6

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformNoise(2e-6, 1e-6)


class TestGammaNoise:
    def test_shape_one_matches_exponential_statistics(self, rng):
        g = GammaNoise(5e-6, shape_k=1.0).sample(rng, (300_000,))
        assert g.std() == pytest.approx(g.mean(), rel=0.02)

    def test_higher_shape_reduces_variance(self, rng):
        lo = GammaNoise(5e-6, shape_k=4.0).sample(rng, (100_000,)).std()
        hi = GammaNoise(5e-6, shape_k=1.0).sample(rng, (100_000,)).std()
        assert lo < hi


class TestTraceNoise:
    def test_draws_only_recorded_values(self, rng):
        noise = TraceNoise(samples=(1e-6, 5e-6))
        s = noise.sample(rng, (1000,))
        assert set(np.unique(s)) <= {1e-6, 5e-6}

    def test_from_array(self, rng):
        noise = TraceNoise.from_array(np.array([[1e-6], [2e-6]]))
        assert noise.mean() == pytest.approx(1.5e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceNoise(samples=())

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            TraceNoise(samples=(-1e-6,))
