"""Unit tests for machine topology and rank placement."""

import pytest

from repro.sim.topology import (
    CommDomain,
    MachineTopology,
    ProcessMapping,
    single_switch_mapping,
)


class TestMachineTopology:
    def test_defaults_are_dual_socket_ten_core(self):
        topo = MachineTopology()
        assert topo.cores_per_node == 20
        assert topo.total_cores == 20

    def test_total_cores_scales_with_nodes(self):
        topo = MachineTopology(cores_per_socket=10, sockets_per_node=2, n_nodes=5)
        assert topo.total_cores == 100

    def test_smt_multiplies_hw_threads(self):
        topo = MachineTopology(smt=2)
        assert topo.total_hw_threads == 2 * topo.total_cores

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cores_per_socket", 0),
            ("sockets_per_node", 0),
            ("n_nodes", 0),
            ("smt", 0),
        ],
    )
    def test_rejects_non_positive_dimensions(self, field, value):
        with pytest.raises(ValueError):
            MachineTopology(**{field: value})


class TestProcessMapping:
    def topo(self, n_nodes=4):
        return MachineTopology(cores_per_socket=10, sockets_per_node=2, n_nodes=n_nodes)

    def test_node_of_blocks_ranks_by_ppn(self):
        m = ProcessMapping(self.topo(), n_ranks=40, ppn=20)
        assert m.node_of(0) == 0
        assert m.node_of(19) == 0
        assert m.node_of(20) == 1

    def test_default_ppn_fills_all_cores(self):
        m = ProcessMapping(self.topo(), n_ranks=40)
        assert m.ppn == 20

    def test_socket_blocks_within_node(self):
        m = ProcessMapping(self.topo(), n_ranks=40, ppn=20)
        # first 10 local ranks on socket 0, next 10 on socket 1
        assert m.socket_of(0) == 0
        assert m.socket_of(9) == 0
        assert m.socket_of(10) == 1
        assert m.socket_of(20) == 2  # node 1, socket 0 -> global socket 2

    def test_socket_local_rank(self):
        m = ProcessMapping(self.topo(), n_ranks=40, ppn=20)
        assert m.socket_local_rank(0) == 0
        assert m.socket_local_rank(9) == 9
        assert m.socket_local_rank(10) == 0

    def test_ranks_on_socket_inverse_of_socket_of(self):
        m = ProcessMapping(self.topo(), n_ranks=40, ppn=20)
        for s in range(m.n_sockets_used()):
            for r in m.ranks_on_socket(s):
                assert m.socket_of(r) == s

    def test_domain_classification(self):
        m = ProcessMapping(self.topo(), n_ranks=40, ppn=20)
        assert m.domain(3, 3) == CommDomain.SELF
        assert m.domain(0, 5) == CommDomain.INTRA_SOCKET
        assert m.domain(0, 15) == CommDomain.INTER_SOCKET
        assert m.domain(0, 25) == CommDomain.INTER_NODE

    def test_domain_is_symmetric(self):
        m = ProcessMapping(self.topo(), n_ranks=40, ppn=20)
        for a, b in [(0, 5), (0, 15), (0, 25), (19, 20)]:
            assert m.domain(a, b) == m.domain(b, a)

    def test_ppn_one_gives_one_rank_per_node(self):
        m = ProcessMapping(self.topo(), n_ranks=4, ppn=1)
        assert [m.node_of(r) for r in range(4)] == [0, 1, 2, 3]
        assert m.domain(0, 1) == CommDomain.INTER_NODE

    def test_partial_socket_fill(self):
        # 12 ranks per node -> 6 per socket
        m = ProcessMapping(self.topo(), n_ranks=24, ppn=12)
        assert m.ranks_per_socket() == 6
        assert m.socket_of(5) == 0
        assert m.socket_of(6) == 1
        assert m.socket_of(12) == 2

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError, match="need"):
            ProcessMapping(self.topo(n_nodes=1), n_ranks=40, ppn=20)

    def test_ppn_above_hw_threads_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            ProcessMapping(self.topo(), n_ranks=10, ppn=50)

    def test_out_of_range_rank_raises(self):
        m = ProcessMapping(self.topo(), n_ranks=10, ppn=10)
        with pytest.raises(IndexError):
            m.node_of(10)
        with pytest.raises(IndexError):
            m.domain(0, 10)

    def test_n_sockets_and_nodes_used(self):
        m = ProcessMapping(self.topo(), n_ranks=25, ppn=20)
        assert m.n_nodes_used() == 2
        assert m.n_sockets_used() == 3  # 20 ranks fill node 0; 5 on node 1 socket 0


class TestSingleSwitchMapping:
    def test_allocates_just_enough_nodes(self):
        m = single_switch_mapping(100, ppn=20)
        assert m.topology.n_nodes == 5
        assert m.n_ranks == 100

    def test_rounds_up_nodes(self):
        m = single_switch_mapping(21, ppn=20)
        assert m.topology.n_nodes == 2

    def test_custom_shape(self):
        m = single_switch_mapping(8, ppn=2, cores_per_socket=1, sockets_per_node=2)
        assert m.topology.n_nodes == 4
        assert m.domain(0, 1) == CommDomain.INTER_SOCKET
