"""Unit tests for protocol selection and message matching."""

import pytest

from repro.sim.mpi import (
    DEFAULT_EAGER_LIMIT,
    MessageMatcher,
    Protocol,
    select_protocol,
)


class TestSelectProtocol:
    def test_small_messages_go_eager(self):
        assert select_protocol(8192) == Protocol.EAGER

    def test_limit_is_inclusive(self):
        assert select_protocol(DEFAULT_EAGER_LIMIT) == Protocol.EAGER
        assert select_protocol(DEFAULT_EAGER_LIMIT + 1) == Protocol.RENDEZVOUS

    def test_forced_protocol_overrides_size(self):
        assert select_protocol(8, forced=Protocol.RENDEZVOUS) == Protocol.RENDEZVOUS
        assert select_protocol(10**9, forced=Protocol.EAGER) == Protocol.EAGER

    def test_custom_limit(self):
        assert select_protocol(100, eager_limit=50) == Protocol.RENDEZVOUS

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            select_protocol(-1)


class TestMessageMatcher:
    def test_send_then_recv_matches(self):
        m = MessageMatcher()
        assert m.add_send(0, 1, tag=0, size=8, node=10) is None
        match = m.add_recv(0, 1, tag=0, node=20)
        assert match is not None
        assert (match.send_node, match.recv_node) == (10, 20)
        assert match.size == 8

    def test_recv_then_send_matches(self):
        m = MessageMatcher()
        assert m.add_recv(0, 1, tag=0, node=20) is None
        match = m.add_send(0, 1, tag=0, size=8, node=10)
        assert match is not None

    def test_fifo_order_per_channel(self):
        """MPI non-overtaking: n-th send matches n-th recv."""
        m = MessageMatcher()
        m.add_send(0, 1, tag=0, size=8, node=1)
        m.add_send(0, 1, tag=0, size=8, node=2)
        first = m.add_recv(0, 1, tag=0, node=11)
        second = m.add_recv(0, 1, tag=0, node=12)
        assert first.send_node == 1
        assert second.send_node == 2

    def test_tags_separate_channels(self):
        m = MessageMatcher()
        m.add_send(0, 1, tag=7, size=8, node=1)
        assert m.add_recv(0, 1, tag=8, node=2) is None  # different tag
        assert m.add_recv(0, 1, tag=7, node=3) is not None

    def test_directions_are_distinct_channels(self):
        m = MessageMatcher()
        m.add_send(0, 1, tag=0, size=8, node=1)
        assert m.add_recv(1, 0, tag=0, node=2) is None  # 1->0, not 0->1

    def test_finish_returns_all_matches(self):
        m = MessageMatcher()
        for i in range(3):
            m.add_send(0, 1, tag=i, size=8, node=i)
            m.add_recv(0, 1, tag=i, node=100 + i)
        assert len(m.finish()) == 3

    def test_finish_rejects_unmatched_send(self):
        m = MessageMatcher()
        m.add_send(0, 1, tag=0, size=8, node=1)
        with pytest.raises(ValueError, match="unmatched"):
            m.finish()

    def test_finish_rejects_unmatched_recv(self):
        m = MessageMatcher()
        m.add_recv(0, 1, tag=0, node=1)
        with pytest.raises(ValueError, match="unmatched"):
            m.finish()
