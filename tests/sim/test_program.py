"""Unit tests for communication patterns and program construction."""

import numpy as np
import pytest

from repro.sim.delay import DelaySpec
from repro.sim.noise import ExponentialNoise
from repro.sim.program import (
    CommPattern,
    Direction,
    LockstepConfig,
    Op,
    OpKind,
    build_exec_times,
    build_lockstep_program,
)


class TestCommPattern:
    def test_uni_sends_up_receives_down(self):
        p = CommPattern(direction=Direction.UNIDIRECTIONAL, distance=1)
        assert p.send_targets(3, 10) == [4]
        assert p.recv_sources(3, 10) == [2]

    def test_bi_exchanges_both_ways(self):
        p = CommPattern(direction=Direction.BIDIRECTIONAL, distance=1)
        assert sorted(p.send_targets(3, 10)) == [2, 4]
        assert sorted(p.recv_sources(3, 10)) == [2, 4]

    def test_distance_two_partners(self):
        p = CommPattern(direction=Direction.UNIDIRECTIONAL, distance=2)
        assert p.send_targets(3, 10) == [4, 5]
        assert p.recv_sources(3, 10) == [2, 1]

    def test_open_boundary_truncates(self):
        p = CommPattern(direction=Direction.UNIDIRECTIONAL, distance=2)
        assert p.send_targets(9, 10) == []
        assert p.send_targets(8, 10) == [9]
        assert p.recv_sources(0, 10) == []

    def test_periodic_wraps(self):
        p = CommPattern(direction=Direction.UNIDIRECTIONAL, distance=1, periodic=True)
        assert p.send_targets(9, 10) == [0]
        assert p.recv_sources(0, 10) == [9]

    def test_send_recv_consistency(self):
        """j receives from i iff i sends to j — for every flavor."""
        for direction in Direction:
            for periodic in (False, True):
                for d in (1, 2, 3):
                    p = CommPattern(direction=direction, distance=d, periodic=periodic)
                    n = 9
                    sends = {(i, j) for i in range(n) for j in p.send_targets(i, n)}
                    recvs = {(j, i) for i in range(n) for j in p.recv_sources(i, n)}
                    assert sends == recvs, (direction, periodic, d)

    def test_small_ring_aliases_deduplicated(self):
        p = CommPattern(direction=Direction.BIDIRECTIONAL, distance=1, periodic=True)
        assert p.send_targets(0, 2) == [1]
        assert p.recv_sources(1, 2) == [0]

    def test_no_self_messages_ever(self):
        for direction in Direction:
            for n in (2, 3, 4, 5):
                p = CommPattern(direction=direction, distance=2, periodic=True)
                for i in range(n):
                    assert i not in p.send_targets(i, n)
                    assert i not in p.recv_sources(i, n)

    def test_distance_zero_rejected(self):
        with pytest.raises(ValueError):
            CommPattern(distance=0)

    def test_rank_out_of_range(self):
        with pytest.raises(IndexError):
            CommPattern().send_targets(10, 10)


class TestOp:
    def test_comp_requires_nonnegative_duration(self):
        with pytest.raises(ValueError):
            Op(kind=OpKind.COMP, duration=-1.0)

    def test_isend_requires_peer(self):
        with pytest.raises(ValueError):
            Op(kind=OpKind.ISEND, peer=-1, size=8)


class TestBuildExecTimes:
    def cfg(self, **kw):
        base = dict(n_ranks=6, n_steps=8, t_exec=3e-3)
        base.update(kw)
        return LockstepConfig(**base)

    def test_baseline_is_constant(self):
        times = build_exec_times(self.cfg())
        np.testing.assert_allclose(times, 3e-3)

    def test_noise_adds_on_top(self):
        cfg = self.cfg(noise=ExponentialNoise(1e-4))
        times = build_exec_times(cfg)
        assert (times >= 3e-3).all()
        assert times.max() > 3e-3

    def test_delay_lands_on_target_cell(self):
        cfg = self.cfg(delays=(DelaySpec(rank=2, step=3, duration=10e-3),))
        times = build_exec_times(cfg)
        assert times[2, 3] == pytest.approx(13e-3)
        assert times.sum() == pytest.approx(6 * 8 * 3e-3 + 10e-3)

    def test_seed_determines_noise(self):
        cfg = self.cfg(noise=ExponentialNoise(1e-4), seed=9)
        np.testing.assert_array_equal(build_exec_times(cfg), build_exec_times(cfg))


class TestBuildLockstepProgram:
    def test_ops_per_step_structure(self):
        cfg = LockstepConfig(n_ranks=5, n_steps=3)
        prog = build_lockstep_program(cfg)
        # Interior rank: COMP + IRECV + ISEND + WAITALL per step.
        ops = prog.ops[2]
        kinds = [op.kind for op in ops[:4]]
        assert kinds == [OpKind.COMP, OpKind.IRECV, OpKind.ISEND, OpKind.WAITALL]
        assert len(ops) == 3 * 4

    def test_boundary_ranks_have_fewer_message_ops(self):
        cfg = LockstepConfig(n_ranks=5, n_steps=1)
        prog = build_lockstep_program(cfg)
        # Rank 0 (uni): no receive; rank 4: no send.
        kinds0 = [op.kind for op in prog.ops[0]]
        kinds4 = [op.kind for op in prog.ops[4]]
        assert OpKind.IRECV not in kinds0
        assert OpKind.ISEND not in kinds4

    def test_custom_exec_times_used(self):
        cfg = LockstepConfig(n_ranks=3, n_steps=2)
        times = np.full((3, 2), 1e-3)
        times[1, 0] = 9e-3
        prog = build_lockstep_program(cfg, times)
        comp = [op for op in prog.ops[1] if op.kind == OpKind.COMP]
        assert comp[0].duration == pytest.approx(9e-3)

    def test_wrong_shape_rejected(self):
        cfg = LockstepConfig(n_ranks=3, n_steps=2)
        with pytest.raises(ValueError, match="shape"):
            build_lockstep_program(cfg, np.zeros((2, 2)))

    def test_negative_exec_times_rejected(self):
        cfg = LockstepConfig(n_ranks=3, n_steps=2)
        with pytest.raises(ValueError, match="non-negative"):
            build_lockstep_program(cfg, np.full((3, 2), -1.0))

    def test_op_count(self):
        cfg = LockstepConfig(n_ranks=4, n_steps=2)
        prog = build_lockstep_program(cfg)
        assert prog.op_count() == sum(len(r) for r in prog.ops)

    def test_delay_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LockstepConfig(
                n_ranks=4, n_steps=2,
                delays=(DelaySpec(rank=4, step=0, duration=1e-3),),
            )
        with pytest.raises(ValueError):
            LockstepConfig(
                n_ranks=4, n_steps=2,
                delays=(DelaySpec(rank=0, step=2, duration=1e-3),),
            )
