"""The build-once/propagate-many StaticDag engine core.

Covers the structure cache (hits across draws, invalidation on any
structural or config change), the batched propagate contract, the typed
:class:`~repro.sim.engine.EngineError`, and columnar trace
materialization.
"""

import numpy as np
import pytest

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    EngineError,
    ExponentialNoise,
    LockstepConfig,
    Protocol,
    SimConfig,
    UniformNetwork,
    build_dag,
    build_exec_times,
    build_lockstep_program,
    clear_dag_cache,
    dag_cache_info,
    simulate,
    simulate_dag,
    simulate_dag_batch,
)
from repro.sim.program import Op, OpKind, Program

T = 3e-3


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_dag_cache()
    yield
    clear_dag_cache()


def make_cfg(**kw):
    kw.setdefault("n_ranks", 8)
    kw.setdefault("n_steps", 6)
    kw.setdefault("t_exec", T)
    kw.setdefault("noise", ExponentialNoise(2e-4))
    return LockstepConfig(**kw)


def deadlock_program():
    """Two ranks that each wait for their send before posting the recv —
    a rendezvous cycle (classic head-to-head deadlock)."""
    ops = [
        [Op(kind=OpKind.COMP, duration=T, step=0),
         Op(kind=OpKind.ISEND, peer=1, size=10_000_000, tag=0, step=0),
         Op(kind=OpKind.WAITALL, step=0),
         Op(kind=OpKind.IRECV, peer=1, size=10_000_000, tag=1, step=0),
         Op(kind=OpKind.WAITALL, step=0)],
        [Op(kind=OpKind.COMP, duration=T, step=0),
         Op(kind=OpKind.ISEND, peer=0, size=10_000_000, tag=1, step=0),
         Op(kind=OpKind.WAITALL, step=0),
         Op(kind=OpKind.IRECV, peer=0, size=10_000_000, tag=0, step=0),
         Op(kind=OpKind.WAITALL, step=0)],
    ]
    return Program(ops=ops, n_steps=1)


class TestStructure:
    def test_csr_shape_and_levels(self):
        cfg = make_cfg()
        dag = build_dag(build_lockstep_program(cfg, build_exec_times(cfg)))
        assert dag.succ_indptr.shape == (dag.n_nodes + 1,)
        assert dag.succ_index.shape == (dag.n_edges,)
        assert dag.edge_delay.shape == (dag.n_edges,)
        assert int(dag.succ_indptr[-1]) == dag.n_edges
        # the level order is a permutation, and every edge points to a
        # strictly later level
        assert sorted(dag.level_order.tolist()) == list(range(dag.n_nodes))
        level_of = np.empty(dag.n_nodes, dtype=int)
        for lv in range(dag.n_levels):
            level_of[dag.level_order[dag.level_ptr[lv]:dag.level_ptr[lv + 1]]] = lv
        assert np.all(level_of[dag.edge_src_lv] < level_of[dag.edge_dst_lv])

    def test_propagate_default_durations_zero_comp(self):
        cfg = make_cfg(noise=ExponentialNoise(0.0))
        dag = build_dag(build_lockstep_program(cfg, build_exec_times(cfg)))
        end = dag.propagate()
        assert end.shape == (dag.n_nodes,)
        assert np.all(np.isfinite(end))

    def test_propagate_rejects_bad_shapes(self):
        cfg = make_cfg()
        dag = build_dag(build_lockstep_program(cfg, build_exec_times(cfg)))
        with pytest.raises(ValueError, match="n_nodes"):
            dag.propagate(np.zeros(3))
        with pytest.raises(ValueError, match="edge_delays"):
            dag.propagate(edge_delays=np.zeros(3))
        with pytest.raises(ValueError, match="exec_times"):
            dag.durations_from_exec(np.zeros((2, 3)))

    def test_direct_construction_from_public_fields(self):
        """StaticDag is public API: an instance rebuilt from another's
        declared fields must be fully functional (derived state is
        computed in __post_init__, not patched on by the builder)."""
        import dataclasses

        cfg = make_cfg()
        program = build_lockstep_program(cfg, build_exec_times(cfg))
        built = build_dag(program)
        init_fields = {f.name: getattr(built, f.name)
                       for f in dataclasses.fields(built) if f.init}
        from repro.sim import StaticDag

        clone = StaticDag(**init_fields)
        assert np.array_equal(clone.propagate(built.durations_for(program)),
                              built.propagate(built.durations_for(program)))
        assert clone.lockstep_shaped == built.lockstep_shaped

    def test_multi_comp_cell_rejects_dense_exec_times(self):
        """Two COMP phases in one cell cannot be addressed by a (P, S)
        matrix; the scatter must refuse instead of double-counting."""
        ops = [
            [Op(kind=OpKind.COMP, duration=T, step=0),
             Op(kind=OpKind.COMP, duration=2 * T, step=0),
             Op(kind=OpKind.ISEND, peer=1, size=8, tag=0, step=0),
             Op(kind=OpKind.WAITALL, step=0)],
            [Op(kind=OpKind.COMP, duration=T, step=0),
             Op(kind=OpKind.IRECV, peer=0, size=8, tag=0, step=0),
             Op(kind=OpKind.WAITALL, step=0)],
        ]
        program = Program(ops=ops, n_steps=1)
        dag = build_dag(program)
        with pytest.raises(ValueError, match="several COMP phases"):
            dag.durations_from_exec(np.full((2, 1), T))
        # the per-op gather remains exact
        end = dag.propagate(dag.durations_for(program))
        assert np.isfinite(end).all()

    def test_edge_delay_override_shifts_eager_arrivals(self):
        cfg = make_cfg(noise=ExponentialNoise(0.0))
        program = build_lockstep_program(cfg, build_exec_times(cfg))
        dag = build_dag(program, SimConfig(protocol=Protocol.EAGER))
        base_end = dag.propagate(dag.durations_for(program))
        slower = dag.propagate(dag.durations_for(program),
                               edge_delays=dag.edge_delay * 10)
        assert slower.max() > base_end.max()


class TestBatchedPropagate:
    def test_batch_slices_bitwise_equal_scalar(self):
        cfg = make_cfg(pattern=CommPattern(direction=Direction.BIDIRECTIONAL),
                       delays=(DelaySpec(rank=2, step=1, duration=5 * T),))
        stacked = np.stack([
            build_exec_times(cfg, np.random.default_rng(s)) for s in range(6)
        ])
        batch = simulate_dag_batch(cfg, stacked,
                                   SimConfig(protocol=Protocol.RENDEZVOUS))
        assert len(batch) == 6
        for b in range(6):
            single = simulate_dag(
                build_lockstep_program(cfg, stacked[b]),
                SimConfig(protocol=Protocol.RENDEZVOUS),
            )
            assert np.array_equal(batch[b].completion, single.completion)
            assert np.array_equal(batch[b].exec_end, single.exec_end)
            assert np.array_equal(batch[b].idle, single.idle)
            assert np.array_equal(batch[b].exec_start, single.exec_start)

    def test_batch_shape_validation(self):
        cfg = make_cfg()
        with pytest.raises(ValueError, match="exec_times shape"):
            simulate_dag_batch(cfg, np.zeros((cfg.n_ranks, cfg.n_steps)))
        with pytest.raises(ValueError, match="at least one run"):
            simulate_dag_batch(cfg, np.zeros((0, cfg.n_ranks, cfg.n_steps)))

    def test_total_runtimes_match_slices(self):
        cfg = make_cfg()
        stacked = np.stack([
            build_exec_times(cfg, np.random.default_rng(s)) for s in range(4)
        ])
        batch = simulate_dag_batch(cfg, stacked)
        per_run = [batch[b].total_runtime() for b in range(4)]
        assert np.allclose(batch.total_runtimes(), per_run)


class TestColumnarTrace:
    def test_dag_result_matches_full_trace_matrices(self):
        cfg = make_cfg(delays=(DelaySpec(rank=1, step=2, duration=4 * T),))
        et = build_exec_times(cfg)
        program = build_lockstep_program(cfg, et)
        trace = simulate(program)
        result = simulate_dag(program)
        assert np.array_equal(result.exec_end, trace.exec_end_matrix())
        assert np.array_equal(result.exec_start, trace.exec_start_matrix())
        assert np.array_equal(result.completion, trace.completion_matrix())
        assert np.array_equal(result.idle, trace.idle_matrix())
        assert result.meta == trace.meta

    def test_lazy_trace_is_valid_and_matches(self):
        cfg = make_cfg()
        program = build_lockstep_program(cfg, build_exec_times(cfg))
        result = simulate_dag(program)
        assert result.exact_trace
        lazy = result.to_trace()
        lazy.validate()
        assert np.array_equal(lazy.completion_matrix(), result.completion)
        assert np.array_equal(lazy.exec_end_matrix(), result.exec_end)

    def test_irregular_program_refuses_lazy_trace(self):
        """Two Waitalls per step: matrices stay exact (idle accumulates,
        matching the full trace), but record reconstruction must refuse."""
        ops = [
            [Op(kind=OpKind.COMP, duration=T, step=0),
             Op(kind=OpKind.ISEND, peer=1, size=8, tag=0, step=0),
             Op(kind=OpKind.WAITALL, step=0),
             Op(kind=OpKind.ISEND, peer=1, size=8, tag=1, step=0),
             Op(kind=OpKind.WAITALL, step=0)],
            [Op(kind=OpKind.COMP, duration=3 * T, step=0),
             Op(kind=OpKind.IRECV, peer=0, size=8, tag=0, step=0),
             Op(kind=OpKind.WAITALL, step=0),
             Op(kind=OpKind.IRECV, peer=0, size=8, tag=1, step=0),
             Op(kind=OpKind.WAITALL, step=0)],
        ]
        program = Program(ops=ops, n_steps=1)
        result = simulate_dag(program)
        trace = simulate(program)
        assert np.array_equal(result.idle, trace.idle_matrix())
        assert np.array_equal(result.completion, trace.completion_matrix())
        assert not result.exact_trace
        with pytest.raises(ValueError, match="not lockstep-shaped"):
            result.to_trace()


class TestStructureCache:
    def test_draws_share_one_structure(self):
        cfg = make_cfg()
        for seed in range(5):
            et = build_exec_times(cfg, np.random.default_rng(seed))
            simulate_dag(build_lockstep_program(cfg, et))
        info = dag_cache_info()
        assert info["misses"] == 1 and info["hits"] == 4 and info["size"] == 1

    def test_structure_change_misses(self):
        cfg = make_cfg()
        simulate_dag(build_lockstep_program(cfg, build_exec_times(cfg)))
        other = make_cfg(pattern=CommPattern(direction=Direction.BIDIRECTIONAL))
        simulate_dag(build_lockstep_program(other, build_exec_times(other)))
        assert dag_cache_info()["misses"] == 2

    def test_config_change_misses(self):
        cfg = make_cfg()
        program = build_lockstep_program(cfg, build_exec_times(cfg))
        simulate_dag(program, SimConfig(protocol=Protocol.EAGER))
        simulate_dag(program, SimConfig(protocol=Protocol.RENDEZVOUS))
        simulate_dag(program, SimConfig(network=UniformNetwork(latency=9e-6)))
        assert dag_cache_info()["misses"] == 3

    def test_cache_opt_out_and_clear(self):
        cfg = make_cfg()
        program = build_lockstep_program(cfg, build_exec_times(cfg))
        build_dag(program, cache=False)
        assert dag_cache_info()["size"] == 0
        build_dag(program)
        assert dag_cache_info()["size"] == 1
        clear_dag_cache()
        assert dag_cache_info() == {"size": 0, "max_size": 16,
                                    "hits": 0, "misses": 0, "evictions": 0}

    def test_lru_eviction_is_counted(self):
        clear_dag_cache()
        for n_steps in range(2, 2 + 18):  # 18 shapes vs max_size 16
            cfg = make_cfg(n_ranks=4, n_steps=n_steps)
            build_dag(build_lockstep_program(cfg, build_exec_times(cfg)))
        info = dag_cache_info()
        assert info["size"] == info["max_size"] == 16
        assert info["evictions"] == 2
        assert info["misses"] == 18

    def test_cached_structure_is_duration_independent(self):
        """A cache hit must not leak the first draw's COMP durations."""
        cfg = make_cfg(noise=ExponentialNoise(0.0))
        et0 = build_exec_times(cfg)
        et1 = et0 * 3.0
        r0 = simulate_dag(build_lockstep_program(cfg, et0))
        r1 = simulate_dag(build_lockstep_program(cfg, et1))
        assert dag_cache_info()["hits"] == 1
        assert r1.completion.max() > 2.5 * r0.completion.max()


class TestEngineError:
    def test_deadlock_raises_typed_error(self):
        with pytest.raises(EngineError, match="dependency cycle") as exc_info:
            simulate(deadlock_program(), SimConfig(protocol=Protocol.RENDEZVOUS))
        err = exc_info.value
        assert err.n_unprocessed > 0
        assert err.first_blocked_rank == 0
        assert isinstance(err, RuntimeError)  # backwards-compatible

    def test_deadlock_detected_at_build_time(self):
        with pytest.raises(EngineError):
            build_dag(deadlock_program(),
                      SimConfig(protocol=Protocol.RENDEZVOUS), cache=False)

    def test_eager_variant_does_not_deadlock(self):
        trace = simulate(deadlock_program(), SimConfig(protocol=Protocol.EAGER))
        trace.validate()
