"""DAG-engine tests with hand-built (non-lockstep) programs.

The engine is more general than the lockstep builder: programs may mix
message sizes (and therefore protocols), have asymmetric op sequences, or
use several communication phases per step.  These tests pin that
generality.
"""

import pytest

from repro.sim import Protocol, SimConfig, UniformNetwork, simulate
from repro.sim.program import Op, OpKind, Program

T = 3e-3


def op_comp(duration, step=0):
    return Op(kind=OpKind.COMP, duration=duration, step=step)


def op_send(peer, size, tag, step=0):
    return Op(kind=OpKind.ISEND, peer=peer, size=size, tag=tag, step=step)


def op_recv(peer, size, tag, step=0):
    return Op(kind=OpKind.IRECV, peer=peer, size=size, tag=tag, step=step)


def op_wait(step=0):
    return Op(kind=OpKind.WAITALL, step=step)


class TestMixedProtocols:
    def test_small_and_large_messages_in_one_program(self):
        """Rank 1 sends small (eager) to 0 and large (rendezvous) to 2;
        only the rendezvous leg couples rank 1 to its receiver's posting."""
        big = 10_000_000  # far beyond the eager limit
        ops = [
            # rank 0: computes briefly, receives the eager message late.
            [op_comp(5 * T), op_recv(1, 8, tag=0), op_wait()],
            # rank 1: fires both sends immediately.
            [op_comp(0.0), op_send(0, 8, tag=0), op_send(2, big, tag=1), op_wait()],
            # rank 2: long compute delays its rendezvous posting.
            [op_comp(5 * T), op_recv(1, big, tag=1), op_wait()],
        ]
        net = UniformNetwork()
        trace = simulate(Program(ops=ops, n_steps=1), SimConfig(network=net))
        trace.validate()
        waits = {r.rank: r for r in trace.records if r.kind == OpKind.WAITALL}
        from repro.sim.topology import CommDomain

        flight = net.transfer_time(big, CommDomain.INTER_NODE)
        # Eager to rank 0: rank 1 is NOT blocked by 0's late recv... but the
        # rendezvous to rank 2 blocks it until 2 posts (5 T) + the transfer.
        assert waits[1].end == pytest.approx(5 * T + flight, rel=0.01)
        assert waits[2].end == pytest.approx(5 * T + flight, rel=0.01)
        # Rank 0 completes right after its own compute (message arrived early).
        assert waits[0].end == pytest.approx(5 * T, rel=0.01)

    def test_forced_protocol_applies_to_all_sizes(self):
        ops = [
            [op_comp(0.0), op_send(1, 8, tag=0), op_wait()],
            [op_comp(3 * T), op_recv(0, 8, tag=0), op_wait()],
        ]
        trace = simulate(
            Program(ops=ops, n_steps=1),
            SimConfig(network=UniformNetwork(), protocol=Protocol.RENDEZVOUS),
        )
        waits = {r.rank: r for r in trace.records if r.kind == OpKind.WAITALL}
        # Rendezvous: the tiny message still blocks the sender on the recv post.
        assert waits[0].end >= 3 * T


class TestAsymmetricPrograms:
    def test_pipeline_chain(self):
        """A 3-stage pipeline: each stage computes then forwards."""
        ops = [
            [op_comp(T), op_send(1, 8, tag=0), op_wait()],
            [op_recv(0, 8, tag=0), op_wait(), op_comp(T), op_send(2, 8, tag=1), op_wait()],
            [op_recv(1, 8, tag=1), op_wait(), op_comp(T)],
        ]
        trace = simulate(Program(ops=ops, n_steps=1), SimConfig(network=UniformNetwork()))
        # Stage 2 finishes after ~3 serial phases.
        assert trace.rank_runtime(2) == pytest.approx(3 * T, rel=0.05)

    def test_multiple_comm_phases_per_step(self):
        ops = [
            [op_comp(T), op_send(1, 8, tag=0), op_wait(),
             op_comp(T), op_send(1, 8, tag=1), op_wait()],
            [op_comp(T), op_recv(0, 8, tag=0), op_wait(),
             op_comp(T), op_recv(0, 8, tag=1), op_wait()],
        ]
        trace = simulate(Program(ops=ops, n_steps=1), SimConfig(network=UniformNetwork()))
        trace.validate()
        assert trace.total_runtime() == pytest.approx(2 * T, rel=0.05)

    def test_tag_mismatch_detected(self):
        ops = [
            [op_send(1, 8, tag=0), op_wait()],
            [op_recv(0, 8, tag=99), op_wait()],
        ]
        with pytest.raises(ValueError, match="unmatched"):
            simulate(Program(ops=ops, n_steps=1), SimConfig())
