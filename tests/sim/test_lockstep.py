"""Unit tests for the vectorized lockstep engine."""

import numpy as np
import pytest

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    LockstepConfig,
    Protocol,
    UniformNetwork,
    simulate_lockstep,
)

T = 3e-3


def cfg(**kw):
    base = dict(n_ranks=10, n_steps=12, t_exec=T, msg_size=8192)
    base.update(kw)
    pattern_kw = {}
    for key in ("direction", "distance", "periodic"):
        if key in base:
            pattern_kw[key] = base.pop(key)
    if pattern_kw:
        base["pattern"] = CommPattern(**pattern_kw)
    return LockstepConfig(**base)


class TestLockstepResult:
    def test_matrix_shapes(self):
        res = simulate_lockstep(cfg())
        assert res.exec_end.shape == (10, 12)
        assert res.completion.shape == (10, 12)
        assert res.n_ranks == 10 and res.n_steps == 12

    def test_monotone_time_per_rank(self):
        res = simulate_lockstep(cfg(noise=ExponentialNoise(1e-4)))
        assert (np.diff(res.completion, axis=1) > 0).all()
        assert (res.completion >= res.post_end).all()
        assert (res.post_end >= res.exec_end).all()
        assert (res.exec_end > res.exec_start).all()

    def test_idle_matrix_nonnegative(self):
        res = simulate_lockstep(cfg(noise=ExponentialNoise(2e-4), seed=3))
        assert (res.idle_matrix() >= 0).all()

    def test_total_runtime_is_last_completion(self):
        res = simulate_lockstep(cfg())
        assert res.total_runtime() == res.completion[:, -1].max()

    def test_to_trace_roundtrip(self):
        res = simulate_lockstep(cfg(noise=ExponentialNoise(1e-4)))
        trace = res.to_trace()
        trace.validate()
        np.testing.assert_allclose(trace.completion_matrix(), res.completion)
        np.testing.assert_allclose(trace.exec_end_matrix(), res.exec_end)
        np.testing.assert_allclose(trace.idle_matrix(), res.idle_matrix(), atol=1e-15)


class TestLockstepSemantics:
    def test_delay_propagates_forward_eager(self):
        c = cfg(delays=(DelaySpec(rank=3, step=0, duration=5 * T),))
        res = simulate_lockstep(c)
        idle = res.idle_matrix()
        assert idle[4, 0] > T
        assert idle[2].max() < 0.1 * T

    def test_rendezvous_blocks_sender(self):
        c = cfg(delays=(DelaySpec(rank=3, step=0, duration=5 * T),))
        res = simulate_lockstep(c, protocol=Protocol.RENDEZVOUS)
        assert res.idle_matrix()[2, 0] > T

    def test_sigma_two_coupling_for_bidirectional_rendezvous(self):
        c = cfg(
            direction=Direction.BIDIRECTIONAL,
            delays=(DelaySpec(rank=5, step=0, duration=5 * T),),
        )
        res = simulate_lockstep(c, protocol=Protocol.RENDEZVOUS)
        idle = res.idle_matrix()
        assert idle[7, 0] > T  # two hops in step 0
        assert idle[8, 0] < 0.1 * T

    def test_exec_times_override(self):
        c = cfg(n_ranks=4, n_steps=3)
        times = np.full((4, 3), 2 * T)
        res = simulate_lockstep(c, exec_times=times)
        assert res.total_runtime() == pytest.approx(6 * T, rel=0.01)

    def test_wrong_exec_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            simulate_lockstep(cfg(), exec_times=np.zeros((3, 3)))

    def test_custom_network_changes_comm_time(self):
        # On a 10-rank open chain the critical path crosses at most 9 links,
        # so 1 ms of extra latency adds ~9 ms.
        slow = UniformNetwork(latency=1e-3, bandwidth=1e9)
        res_fast = simulate_lockstep(cfg())
        res_slow = simulate_lockstep(cfg(), network=slow)
        assert res_slow.total_runtime() > res_fast.total_runtime() + 8e-3

    def test_meta_records_protocol_and_flight(self):
        res = simulate_lockstep(cfg(msg_size=500_000))
        assert res.meta["protocol"] == "rendezvous"
        assert res.meta["flight"] > 0

    def test_two_rank_periodic_ring_runs(self):
        c = cfg(n_ranks=2, direction=Direction.BIDIRECTIONAL, periodic=True)
        res = simulate_lockstep(c)
        assert res.total_runtime() == pytest.approx(12 * T, rel=0.01)
