"""Unit tests for trace serialization."""

import io

import numpy as np
import pytest

from repro.sim import (
    DelaySpec,
    LockstepConfig,
    SimConfig,
    build_lockstep_program,
    simulate,
)
from repro.sim.traceio import read_jsonl, write_csv, write_jsonl

T = 3e-3


@pytest.fixture
def trace():
    cfg = LockstepConfig(
        n_ranks=5, n_steps=4, t_exec=T,
        delays=(DelaySpec(rank=2, step=0, duration=2 * T),),
    )
    return simulate(build_lockstep_program(cfg), SimConfig())


class TestJsonlRoundtrip:
    def test_roundtrip_preserves_records(self, trace):
        buf = io.StringIO()
        write_jsonl(trace, buf)
        buf.seek(0)
        back = read_jsonl(buf)
        assert back.n_ranks == trace.n_ranks
        assert back.n_steps == trace.n_steps
        assert len(back.records) == len(trace.records)
        np.testing.assert_allclose(
            back.completion_matrix(), trace.completion_matrix()
        )
        np.testing.assert_allclose(back.idle_matrix(), trace.idle_matrix())

    def test_roundtrip_via_file(self, trace, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(trace, path)
        back = read_jsonl(path)
        back.validate()
        assert back.total_runtime() == pytest.approx(trace.total_runtime())

    def test_meta_survives_where_serializable(self, trace):
        buf = io.StringIO()
        write_jsonl(trace, buf)
        buf.seek(0)
        back = read_jsonl(buf)
        assert back.meta["t_exec"] == pytest.approx(T)
        # Non-serializable entries (pattern objects, delay tuples) become strings.
        assert isinstance(back.meta["pattern"], str)


class TestJsonlErrors:
    def test_empty_file_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            read_jsonl(io.StringIO(""))

    def test_foreign_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro trace"):
            read_jsonl(io.StringIO('{"format": "otel"}\n'))

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            read_jsonl(io.StringIO(
                '{"format": "repro-trace", "version": 99, "n_ranks": 1, "n_steps": 1}\n'
            ))

    def test_malformed_record_rejected(self):
        buf = io.StringIO(
            '{"format": "repro-trace", "version": 1, "n_ranks": 1, "n_steps": 1}\n'
            '{"rank": 0}\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(buf)


class TestCsv:
    def test_header_and_row_count(self, trace):
        buf = io.StringIO()
        write_csv(trace, buf)
        lines = buf.getvalue().splitlines()
        assert lines[0] == "rank,step,kind,start,end,peer,size"
        assert len(lines) == 1 + len(trace.records)

    def test_csv_to_file(self, trace, tmp_path):
        path = tmp_path / "run.csv"
        write_csv(trace, path)
        assert path.read_text().startswith("rank,step,kind")
