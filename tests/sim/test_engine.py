"""Unit tests for the DAG discrete-event engine: mechanism-level semantics."""

import numpy as np
import pytest

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    Protocol,
    SimConfig,
    UniformNetwork,
    build_lockstep_program,
    simulate,
)
from repro.sim.program import Op, OpKind, Program
from repro.sim.topology import single_switch_mapping

T = 3e-3


def run(cfg, protocol=Protocol.AUTO, network=None, mapping=None, eager_limit=None):
    from repro.sim.mpi import DEFAULT_EAGER_LIMIT

    return simulate(
        build_lockstep_program(cfg),
        SimConfig(
            network=network or UniformNetwork(),
            protocol=protocol,
            mapping=mapping,
            eager_limit=DEFAULT_EAGER_LIMIT if eager_limit is None else eager_limit,
        ),
    )


def cfg_with_delay(direction, periodic=False, d=1, n_ranks=12, n_steps=14, source=5,
                   phases=4.5, msg=8192, **kw):
    return LockstepConfig(
        n_ranks=n_ranks, n_steps=n_steps, t_exec=T, msg_size=msg,
        pattern=CommPattern(direction=direction, distance=d, periodic=periodic),
        delays=(DelaySpec(rank=source, step=0, duration=phases * T),),
        **kw,
    )


class TestBasicTiming:
    def test_noise_free_runtime_is_steps_times_phase(self):
        cfg = LockstepConfig(n_ranks=4, n_steps=10, t_exec=T, msg_size=8192)
        trace = run(cfg)
        # Runtime ~= steps * (T_exec + T_comm); comm is microseconds here.
        assert trace.total_runtime() == pytest.approx(10 * T, rel=0.01)

    def test_all_ranks_finish_together_noise_free(self):
        cfg = LockstepConfig(n_ranks=6, n_steps=8, t_exec=T, msg_size=8192)
        trace = run(cfg)
        finals = trace.completion_matrix()[:, -1]
        # Boundary ranks of an open chain differ by microseconds only.
        assert finals.max() - finals.min() < 100e-6

    def test_trace_validates(self):
        trace = run(cfg_with_delay(Direction.BIDIRECTIONAL, periodic=True))
        trace.validate()

    def test_delay_extends_comp_record(self):
        trace = run(cfg_with_delay(Direction.UNIDIRECTIONAL, source=5, phases=4.5))
        comp = [
            r for r in trace.records
            if r.kind == OpKind.COMP and r.rank == 5 and r.step == 0
        ]
        assert comp[0].duration == pytest.approx(5.5 * T)


class TestEagerMechanism:
    def test_no_backward_propagation(self):
        """Fig. 4: ranks below the injection are unaffected under eager."""
        trace = run(cfg_with_delay(Direction.UNIDIRECTIONAL))
        idle = trace.idle_matrix()
        assert idle[:5].max() < 0.1 * T

    def test_forward_wave_one_rank_per_step(self):
        trace = run(cfg_with_delay(Direction.UNIDIRECTIONAL))
        idle = trace.idle_matrix()
        for hop in range(1, 5):
            rank = 5 + hop
            step = np.argmax(idle[rank] > T)
            assert step == hop - 1, f"hop {hop} arrived at step {step}"

    def test_periodic_wave_dies_at_injection_rank(self):
        """Fig. 5(b): the wrapped wave runs out at the delayed rank."""
        cfg = cfg_with_delay(Direction.UNIDIRECTIONAL, periodic=True, n_steps=20)
        trace = run(cfg)
        idle = trace.idle_matrix()
        # After one full traversal (~12 steps + delay width) everything quiet.
        assert idle[:, 15:].max() < 0.1 * T


class TestRendezvousMechanism:
    def test_backward_propagation_appears(self):
        """Fig. 5(e): under rendezvous the wave also travels downward."""
        cfg = cfg_with_delay(Direction.UNIDIRECTIONAL, msg=300_000)
        trace = run(cfg)
        idle = trace.idle_matrix()
        assert idle[4].max() > T  # direct predecessor blocked
        assert idle[2].max() > T  # wave keeps going down

    def test_forced_protocol_beats_size_rule(self):
        cfg = cfg_with_delay(Direction.UNIDIRECTIONAL, msg=8192)
        trace = run(cfg, protocol=Protocol.RENDEZVOUS)
        assert trace.idle_matrix()[4].max() > T

    def test_bidirectional_rendezvous_reaches_two_ranks_first_step(self):
        """σ = 2: the delay 'reaches out' two ranks in either direction."""
        cfg = cfg_with_delay(Direction.BIDIRECTIONAL, msg=300_000)
        trace = run(cfg)
        idle = trace.idle_matrix()
        assert idle[6, 0] > T and idle[7, 0] > T
        assert idle[4, 0] > T and idle[3, 0] > T
        assert idle[8, 0] < 0.1 * T  # but not three ranks

    def test_eager_bidirectional_reaches_one_rank_first_step(self):
        cfg = cfg_with_delay(Direction.BIDIRECTIONAL, msg=8192)
        trace = run(cfg)
        idle = trace.idle_matrix()
        assert idle[6, 0] > T
        assert idle[7, 0] < 0.1 * T


class TestTopologyAwareness:
    def test_intra_socket_messages_cheaper_with_mapping(self):
        from repro.sim.network import HockneyModel

        n = 4
        cfg = LockstepConfig(n_ranks=n, n_steps=6, t_exec=T, msg_size=100_000)
        mapped = run(cfg, network=HockneyModel(), mapping=single_switch_mapping(n, ppn=4))
        unmapped = run(cfg, network=HockneyModel(), mapping=None)
        # All pairs intra-node when mapped -> lower total runtime.
        assert mapped.total_runtime() < unmapped.total_runtime()


class TestEngineErrors:
    def test_unmatched_requests_rejected(self):
        ops = [
            [Op(kind=OpKind.ISEND, peer=1, size=8, tag=0, step=0),
             Op(kind=OpKind.WAITALL, step=0)],
            [Op(kind=OpKind.COMP, duration=1e-3, step=0)],
        ]
        with pytest.raises(ValueError, match="unmatched"):
            simulate(Program(ops=ops, n_steps=1), SimConfig())

    def test_requests_without_waitall_rejected(self):
        ops = [
            [Op(kind=OpKind.ISEND, peer=1, size=8, tag=0, step=0)],
            [Op(kind=OpKind.IRECV, peer=0, size=8, tag=0, step=0),
             Op(kind=OpKind.WAITALL, step=0)],
        ]
        with pytest.raises(ValueError, match="not covered"):
            simulate(Program(ops=ops, n_steps=1), SimConfig())


class TestDeterminism:
    def test_identical_configs_identical_traces(self):
        cfg = cfg_with_delay(Direction.BIDIRECTIONAL, periodic=True)
        a = run(cfg)
        b = run(cfg)
        ma, mb = a.completion_matrix(), b.completion_matrix()
        np.testing.assert_array_equal(ma, mb)
