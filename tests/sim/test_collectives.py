"""Unit tests for collective round schedules and program construction."""

import numpy as np
import pytest

from repro.core.timing import RunTiming
from repro.sim import DelaySpec, SimConfig, UniformNetwork, simulate
from repro.sim.collectives import (
    Collective,
    CollectiveConfig,
    barrier_rounds,
    build_collective_program,
    recursive_doubling_rounds,
    ring_allreduce_rounds,
    tree_bcast_rounds,
)

T = 3e-3


class TestBarrierRounds:
    def test_round_count_is_ceil_log2(self):
        assert len(barrier_rounds(2)) == 1
        assert len(barrier_rounds(8)) == 3
        assert len(barrier_rounds(9)) == 4
        assert len(barrier_rounds(16)) == 4

    def test_every_rank_sends_every_round(self):
        for pairs in barrier_rounds(6):
            assert sorted(src for src, _ in pairs) == list(range(6))

    def test_offsets_double(self):
        rounds = barrier_rounds(8)
        for k, pairs in enumerate(rounds):
            for src, dst in pairs:
                assert dst == (src + 2**k) % 8

    def test_too_small(self):
        with pytest.raises(ValueError):
            barrier_rounds(1)


class TestRecursiveDoubling:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            recursive_doubling_rounds(6)

    def test_partners_are_involutions(self):
        for pairs in recursive_doubling_rounds(8):
            mapping = dict(pairs)
            for a, b in pairs:
                assert mapping[b] == a  # partner's partner is self

    def test_round_count(self):
        assert len(recursive_doubling_rounds(16)) == 4


class TestRingAllreduce:
    def test_round_count_is_2p_minus_2(self):
        assert len(ring_allreduce_rounds(5)) == 8

    def test_each_round_is_the_ring(self):
        for pairs in ring_allreduce_rounds(4):
            assert set(pairs) == {(0, 1), (1, 2), (2, 3), (3, 0)}


class TestTreeBcast:
    def test_holders_double_each_round(self):
        rounds = tree_bcast_rounds(8, root=0)
        assert [len(p) for p in rounds] == [1, 2, 4]

    def test_every_rank_reached_exactly_once(self):
        received = set()
        for pairs in tree_bcast_rounds(11, root=3):
            for _, dst in pairs:
                assert dst not in received
                received.add(dst)
        assert received == set(range(11)) - {3}

    def test_senders_already_hold_the_data(self):
        holders = {0}
        for pairs in tree_bcast_rounds(8, root=0):
            for src, dst in pairs:
                assert src in holders
            holders.update(dst for _, dst in pairs)

    def test_root_bounds(self):
        with pytest.raises(IndexError):
            tree_bcast_rounds(8, root=8)


class TestBuildCollectiveProgram:
    def run(self, collective, n_ranks=8, delays=(), n_steps=4):
        cfg = CollectiveConfig(
            n_ranks=n_ranks, n_steps=n_steps, collective=collective,
            t_exec=T, delays=tuple(delays),
        )
        prog = build_collective_program(cfg)
        return simulate(prog, SimConfig(network=UniformNetwork()))

    @pytest.mark.parametrize("collective", list(Collective))
    def test_runs_and_validates(self, collective):
        trace = self.run(collective)
        trace.validate()
        # Noise-free: runtime ~= steps * (T + rounds * t_round).
        assert trace.total_runtime() > 4 * T

    @pytest.mark.parametrize("collective", list(Collective))
    def test_deterministic(self, collective):
        a = self.run(collective).completion_matrix()
        b = self.run(collective).completion_matrix()
        np.testing.assert_array_equal(a, b)

    def test_barrier_synchronizes_all_ranks(self):
        """A delayed rank holds up everyone's next step under a barrier."""
        trace = self.run(
            Collective.BARRIER,
            delays=[DelaySpec(rank=3, step=1, duration=5 * T)],
        )
        timing = RunTiming.of(trace)
        # Step 1 completion of every rank is pushed past the delay.
        base = self.run(Collective.BARRIER)
        delta = timing.completion[:, 1] - RunTiming.of(base).completion[:, 1]
        assert (delta > 4 * T).all()

    def test_tree_bcast_leaf_delay_hits_fewer_ranks(self):
        trace = self.run(
            Collective.BCAST_TREE,
            delays=[DelaySpec(rank=5, step=1, duration=5 * T)],
        )
        base = self.run(Collective.BCAST_TREE)
        delta = (
            RunTiming.of(trace).completion[:, 1]
            - RunTiming.of(base).completion[:, 1]
        )
        # A leaf's delay does not synchronize the whole communicator within
        # the same step (no reduction direction in a bcast).
        assert (delta > 4 * T).sum() < 8

    def test_delay_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CollectiveConfig(
                n_ranks=4, n_steps=2,
                delays=(DelaySpec(rank=9, step=0, duration=1e-3),),
            )

    def test_multiple_waitalls_accumulate_idle(self):
        trace = self.run(Collective.ALLREDUCE_RING, n_ranks=4)
        idle = trace.idle_matrix()
        assert idle.shape == (4, 4)
        assert (idle >= 0).all()
