"""Unit tests for the processor-sharing saturation simulator."""

import numpy as np
import pytest

from repro.sim.delay import DelaySpec
from repro.sim.noise import ExponentialNoise
from repro.sim.program import CommPattern, Direction
from repro.sim.saturation import SaturationConfig, simulate_saturation
from repro.sim.topology import single_switch_mapping

B_CORE = 6.5e9
B_SOCKET = 40e9


def make_cfg(n_ranks=10, ppn=20, n_steps=5, work=65e6, **kw):
    # ppn=20 on the default dual-socket 10-core nodes puts the first ten
    # ranks on one socket (block-wise placement).
    base = dict(
        mapping=single_switch_mapping(n_ranks, ppn=ppn),
        n_steps=n_steps,
        work_bytes=work,
        b_core=B_CORE,
        b_socket=B_SOCKET,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1, periodic=True),
        t_flight=1e-4,
        o_post=1e-6,
    )
    base.update(kw)
    return SaturationConfig(**base)


class TestSingleRank:
    def test_lone_rank_runs_at_core_bandwidth(self):
        cfg = make_cfg(n_ranks=2, ppn=1, work=B_CORE * 1e-3)  # 1 ms at b_core
        res = simulate_saturation(cfg)
        durations = res.exec_end - res.exec_start
        assert durations[0, 0] == pytest.approx(1e-3, rel=1e-6)


class TestSaturation:
    def test_full_socket_shares_bandwidth(self):
        # 10 ranks on one socket, each streaming 40 MB -> socket-limited:
        # each effective bw = 4 GB/s -> 10 ms per phase.
        cfg = make_cfg(n_ranks=10, ppn=20, work=40e6, n_steps=3)
        res = simulate_saturation(cfg)
        durations = res.exec_end - res.exec_start
        assert durations[:, 0].mean() == pytest.approx(40e6 / (B_SOCKET / 10), rel=0.01)

    def test_few_ranks_not_saturated(self):
        # 4 ranks: 4 * 6.5 = 26 GB/s < 40 GB/s -> each runs at b_core.
        cfg = make_cfg(n_ranks=4, ppn=4, work=6.5e6, n_steps=3)
        res = simulate_saturation(cfg)
        durations = res.exec_end - res.exec_start
        assert durations[:, 0].mean() == pytest.approx(1e-3, rel=0.01)

    def test_two_sockets_double_throughput(self):
        cfg1 = make_cfg(n_ranks=10, ppn=20, work=40e6, n_steps=3)  # one socket
        cfg2 = make_cfg(n_ranks=20, ppn=20, work=40e6, n_steps=3)  # two sockets
        r1 = simulate_saturation(cfg1)
        r2 = simulate_saturation(cfg2)
        d1 = (r1.exec_end - r1.exec_start)[:, 0].mean()
        d2 = (r2.exec_end - r2.exec_start)[:, 0].mean()
        assert d2 == pytest.approx(d1, rel=0.05)  # same per-socket load


class TestStaggeringBenefit:
    def test_desynchronized_start_overlaps_contention(self):
        """A delayed rank streams alone while the others idle -> it runs faster
        than the saturated share (the Fig. 1 overlap mechanism)."""
        delay = 20e-3
        cfg = make_cfg(
            n_ranks=10, ppn=10, work=40e6, n_steps=2,
            delays=(DelaySpec(rank=0, step=0, duration=delay),),
        )
        res = simulate_saturation(cfg)
        durations = res.exec_end - res.exec_start
        # Rank 0 step 1: the others are stuck waiting for its step-0 message,
        # so it streams with less contention than the full-socket share.
        saturated = 40e6 / (B_SOCKET / 10)
        assert durations[0, 1] < saturated * 0.9


class TestCommunication:
    def test_flight_time_adds_to_cycle(self):
        fast = simulate_saturation(make_cfg(t_flight=0.0, n_steps=4))
        slow = simulate_saturation(make_cfg(t_flight=5e-3, n_steps=4))
        assert slow.total_runtime() > fast.total_runtime() + 3 * 5e-3

    def test_rendezvous_couples_both_directions(self):
        cfg_e = make_cfg(
            n_steps=3, rendezvous=False,
            pattern=CommPattern(direction=Direction.UNIDIRECTIONAL, periodic=True),
            delays=(DelaySpec(rank=5, step=0, duration=30e-3),),
        )
        cfg_r = make_cfg(
            n_steps=3, rendezvous=True,
            pattern=CommPattern(direction=Direction.UNIDIRECTIONAL, periodic=True),
            delays=(DelaySpec(rank=5, step=0, duration=30e-3),),
        )
        idle_e = simulate_saturation(cfg_e).idle_matrix()
        idle_r = simulate_saturation(cfg_r).idle_matrix()
        # Rank 4 (sender to 5) only waits under rendezvous.
        assert idle_r[4, 0] > 10e-3
        assert idle_e[4, 0] < 1e-3


class TestNoiseAndSerial:
    def test_serial_tail_adds_fixed_time(self):
        cfg0 = make_cfg(t_serial=0.0, n_steps=3)
        cfg1 = make_cfg(t_serial=2e-3, n_steps=3)
        r0 = simulate_saturation(cfg0)
        r1 = simulate_saturation(cfg1)
        assert r1.total_runtime() == pytest.approx(r0.total_runtime() + 3 * 2e-3, rel=0.05)

    def test_noise_increases_runtime(self):
        r0 = simulate_saturation(make_cfg(seed=1))
        r1 = simulate_saturation(make_cfg(noise=ExponentialNoise(1e-3), seed=1))
        assert r1.total_runtime() > r0.total_runtime()

    def test_deterministic_given_seed(self):
        a = simulate_saturation(make_cfg(noise=ExponentialNoise(1e-4), seed=5))
        b = simulate_saturation(make_cfg(noise=ExponentialNoise(1e-4), seed=5))
        np.testing.assert_array_equal(a.completion, b.completion)


class TestValidation:
    def test_work_matrix_broadcasting(self):
        cfg = make_cfg(work=np.full(10, 1e6))
        assert cfg.work_matrix().shape == (10, cfg.n_steps)

    def test_bad_work_vector_rejected(self):
        with pytest.raises(ValueError, match="length"):
            make_cfg(work=np.ones(3)).work_matrix()

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            make_cfg(work=-1.0).work_matrix()

    def test_result_monotone_and_valid(self):
        res = simulate_saturation(make_cfg(noise=ExponentialNoise(1e-4), n_steps=6))
        assert (np.diff(res.completion, axis=1) > 0).all()
        res.to_trace().validate()

    def test_delay_outside_run_rejected(self):
        cfg = make_cfg(delays=(DelaySpec(rank=0, step=99, duration=1e-3),))
        with pytest.raises(ValueError, match="outside"):
            simulate_saturation(cfg)
