"""Unit tests for the hybrid MPI/OpenMP proxy."""

import numpy as np
import pytest

from repro.sim import ExponentialNoise, simulate_lockstep
from repro.sim.delay import DelaySpec
from repro.sim.hybrid import HybridConfig, hybrid_exec_times, hybrid_lockstep_config
from repro.sim.noise import NoNoise

T = 3e-3


def cfg(threads=4, n_processes=8, noise=None, **kw):
    return HybridConfig(
        n_processes=n_processes,
        threads=threads,
        n_steps=10,
        t_exec=T,
        noise=noise or ExponentialNoise(1e-4),
        **kw,
    )


class TestHybridExecTimes:
    def test_shape_is_per_process(self):
        times = hybrid_exec_times(cfg())
        assert times.shape == (8, 10)

    def test_single_thread_equals_plain_noise_draw(self):
        c = cfg(threads=1)
        times = hybrid_exec_times(c)
        rng = np.random.default_rng(c.seed)
        expected = T + c.noise.sample(rng, (8, 1, 10)).max(axis=1)
        np.testing.assert_allclose(times, expected)

    def test_group_max_raises_effective_noise(self):
        mean_noise = {
            t: hybrid_exec_times(cfg(threads=t, seed=1)).mean() - T
            for t in (1, 4, 16)
        }
        assert mean_noise[1] < mean_noise[4] < mean_noise[16]

    def test_noise_free_groups_have_exact_phases(self):
        times = hybrid_exec_times(cfg(noise=NoNoise()))
        np.testing.assert_allclose(times, T)

    def test_delay_lands_on_process(self):
        c = cfg(delays=(DelaySpec(rank=2, step=3, duration=9e-3),), noise=NoNoise())
        times = hybrid_exec_times(c)
        assert times[2, 3] == pytest.approx(T + 9e-3)

    def test_deterministic(self):
        np.testing.assert_array_equal(hybrid_exec_times(cfg()), hybrid_exec_times(cfg()))

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(n_processes=1, threads=2, n_steps=5)
        with pytest.raises(ValueError):
            HybridConfig(n_processes=4, threads=0, n_steps=5)
        with pytest.raises(ValueError):
            HybridConfig(
                n_processes=4, threads=2, n_steps=5,
                delays=(DelaySpec(rank=4, step=0, duration=1e-3),),
            )


class TestHybridLockstepBridge:
    def test_config_projects_processes(self):
        c = cfg()
        lc = hybrid_lockstep_config(c)
        assert lc.n_ranks == c.n_processes
        assert lc.t_exec == c.t_exec

    def test_end_to_end_run(self):
        c = cfg()
        res = simulate_lockstep(hybrid_lockstep_config(c), exec_times=hybrid_exec_times(c))
        assert res.total_runtime() > 10 * T

    def test_total_cores_property(self):
        assert cfg(threads=4, n_processes=8).total_cores == 32
