"""Unit tests for trace records and matrices."""

import numpy as np
import pytest

from repro.sim.program import OpKind
from repro.sim.trace import OpRecord, Trace


def rec(rank, step, kind, start, end, **kw):
    return OpRecord(rank=rank, step=step, kind=kind, start=start, end=end, **kw)


def small_trace():
    """2 ranks x 2 steps of COMP + WAITALL."""
    records = [
        rec(0, 0, OpKind.COMP, 0.0, 1.0),
        rec(0, 0, OpKind.WAITALL, 1.0, 1.5),
        rec(0, 1, OpKind.COMP, 1.5, 2.5),
        rec(0, 1, OpKind.WAITALL, 2.5, 2.5),
        rec(1, 0, OpKind.COMP, 0.0, 2.0),
        rec(1, 0, OpKind.WAITALL, 2.0, 2.0),
        rec(1, 1, OpKind.COMP, 2.0, 3.0),
        rec(1, 1, OpKind.WAITALL, 3.0, 3.2),
    ]
    return Trace(n_ranks=2, n_steps=2, records=records)


class TestMatrices:
    def test_exec_end_matrix(self):
        m = small_trace().exec_end_matrix()
        np.testing.assert_allclose(m, [[1.0, 2.5], [2.0, 3.0]])

    def test_completion_matrix(self):
        m = small_trace().completion_matrix()
        np.testing.assert_allclose(m, [[1.5, 2.5], [2.0, 3.2]])

    def test_idle_matrix(self):
        m = small_trace().idle_matrix()
        np.testing.assert_allclose(m, [[0.5, 0.0], [0.0, 0.2]])

    def test_missing_cells_are_nan(self):
        t = Trace(n_ranks=2, n_steps=2, records=[rec(0, 0, OpKind.COMP, 0, 1)])
        m = t.exec_end_matrix()
        assert m[0, 0] == 1.0
        assert np.isnan(m[1, 1])


class TestAggregates:
    def test_total_runtime(self):
        assert small_trace().total_runtime() == 3.2

    def test_rank_runtime(self):
        assert small_trace().rank_runtime(0) == 2.5

    def test_total_idle_time(self):
        assert small_trace().total_idle_time() == pytest.approx(0.7)

    def test_empty_trace_runtime_zero(self):
        assert Trace(n_ranks=1, n_steps=0).total_runtime() == 0.0


class TestAccessors:
    def test_by_rank_sorted(self):
        recs = small_trace().by_rank(0)
        starts = [r.start for r in recs]
        assert starts == sorted(starts)

    def test_by_rank_out_of_range(self):
        with pytest.raises(IndexError):
            small_trace().by_rank(2)

    def test_of_kind_filters(self):
        waits = list(small_trace().of_kind(OpKind.WAITALL))
        assert len(waits) == 4
        assert all(r.kind == OpKind.WAITALL for r in waits)

    def test_duration_property(self):
        r = rec(0, 0, OpKind.COMP, 1.0, 2.5)
        assert r.duration == pytest.approx(1.5)


class TestValidation:
    def test_valid_trace_passes(self):
        small_trace().validate()

    def test_overlap_detected(self):
        t = Trace(
            n_ranks=1,
            n_steps=1,
            records=[
                rec(0, 0, OpKind.COMP, 0.0, 1.0),
                rec(0, 0, OpKind.WAITALL, 0.5, 1.5),
            ],
        )
        with pytest.raises(ValueError, match="overlap"):
            t.validate()

    def test_reversed_interval_detected(self):
        t = Trace(n_ranks=1, n_steps=1, records=[rec(0, 0, OpKind.COMP, 1.0, 0.5)])
        with pytest.raises(ValueError, match="end < start"):
            t.validate()

    def test_out_of_range_rank_detected(self):
        t = Trace(n_ranks=1, n_steps=1, records=[rec(5, 0, OpKind.COMP, 0, 1)])
        with pytest.raises(ValueError, match="rank"):
            t.validate()

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Trace(n_ranks=0, n_steps=1)
