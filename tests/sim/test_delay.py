"""Unit tests for one-off delay specification and injection helpers."""

import numpy as np
import pytest

from repro.sim.delay import DelaySpec, delays_at_local_rank, random_delays
from repro.sim.topology import single_switch_mapping


class TestDelaySpec:
    def test_in_phases(self):
        spec = DelaySpec(rank=5, step=0, duration=13.5e-3)
        assert spec.in_phases(3e-3) == pytest.approx(4.5)

    @pytest.mark.parametrize("kwargs", [
        dict(rank=-1, step=0, duration=1e-3),
        dict(rank=0, step=-1, duration=1e-3),
        dict(rank=0, step=0, duration=-1e-3),
    ])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DelaySpec(**kwargs)

    def test_in_phases_requires_positive_t_exec(self):
        with pytest.raises(ValueError):
            DelaySpec(rank=0, step=0, duration=1e-3).in_phases(0)


class TestDelaysAtLocalRank:
    def test_fig6_pattern_targets_sixth_process_per_socket(self):
        mapping = single_switch_mapping(100, ppn=20)
        specs = delays_at_local_rank(mapping, 5, [1e-3] * 10)
        assert len(specs) == 10
        # Socket s starts at rank 10*s; local rank 5 -> global 10*s + 5.
        assert [s.rank for s in specs] == [10 * s + 5 for s in range(10)]

    def test_zero_durations_skipped(self):
        mapping = single_switch_mapping(40, ppn=20)  # 4 sockets
        specs = delays_at_local_rank(mapping, 0, [1e-3, 0.0, 0.0, 0.0])
        assert len(specs) == 1
        assert specs[0].rank == 0

    def test_wrong_duration_count_rejected(self):
        mapping = single_switch_mapping(40, ppn=20)
        with pytest.raises(ValueError, match="durations"):
            delays_at_local_rank(mapping, 0, [1e-3] * 3)

    def test_local_rank_out_of_range_rejected(self):
        mapping = single_switch_mapping(40, ppn=20)  # 10 ranks per socket
        with pytest.raises(ValueError, match="local_rank"):
            delays_at_local_rank(mapping, 10, [1e-3] * 4)

    def test_step_propagated(self):
        mapping = single_switch_mapping(40, ppn=20)
        specs = delays_at_local_rank(mapping, 2, [1e-3] * 4, step=3)
        assert all(s.step == 3 for s in specs)


class TestRandomDelays:
    def test_durations_within_bounds(self):
        mapping = single_switch_mapping(100, ppn=20)
        rng = np.random.default_rng(0)
        specs = random_delays(mapping, 5, rng, low=1e-3, high=2e-3)
        assert len(specs) == 10
        assert all(1e-3 <= s.duration <= 2e-3 for s in specs)

    def test_reproducible_given_seed(self):
        mapping = single_switch_mapping(60, ppn=20)
        a = random_delays(mapping, 5, np.random.default_rng(1), 1e-3, 2e-3)
        b = random_delays(mapping, 5, np.random.default_rng(1), 1e-3, 2e-3)
        assert [s.duration for s in a] == [s.duration for s in b]

    def test_invalid_bounds_rejected(self):
        mapping = single_switch_mapping(40, ppn=20)
        with pytest.raises(ValueError):
            random_delays(mapping, 5, np.random.default_rng(0), 2e-3, 1e-3)
