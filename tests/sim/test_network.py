"""Unit tests for the transfer-time models."""

import pytest

from repro.sim.network import HockneyModel, LogGPModel, UniformNetwork
from repro.sim.topology import CommDomain


class TestUniformNetwork:
    def test_transfer_time_is_latency_plus_bandwidth_term(self):
        net = UniformNetwork(latency=1e-6, bandwidth=1e9, overhead=0.0)
        assert net.transfer_time(1000, CommDomain.INTER_NODE) == pytest.approx(2e-6)

    def test_self_domain_is_free(self):
        net = UniformNetwork()
        assert net.transfer_time(8192, CommDomain.SELF) == 0.0
        assert net.send_overhead(CommDomain.SELF) == 0.0

    def test_all_domains_equal(self):
        net = UniformNetwork()
        times = [
            net.transfer_time(8192, d)
            for d in (CommDomain.INTRA_SOCKET, CommDomain.INTER_SOCKET, CommDomain.INTER_NODE)
        ]
        assert len(set(times)) == 1

    def test_total_pingpong_includes_overheads(self):
        net = UniformNetwork(latency=1e-6, bandwidth=1e9, overhead=5e-7)
        expected = 5e-7 + (1e-6 + 1000 / 1e9) + 5e-7
        assert net.total_pingpong_time(1000, CommDomain.INTER_NODE) == pytest.approx(expected)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UniformNetwork().transfer_time(-1, CommDomain.INTER_NODE)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            UniformNetwork(latency=-1)
        with pytest.raises(ValueError):
            UniformNetwork(bandwidth=0)


class TestHockneyModel:
    def test_domains_have_distinct_costs(self):
        net = HockneyModel()
        t_intra = net.transfer_time(8192, CommDomain.INTRA_SOCKET)
        t_inter = net.transfer_time(8192, CommDomain.INTER_NODE)
        assert t_intra < t_inter

    def test_monotone_in_size(self):
        net = HockneyModel()
        sizes = [0, 100, 10_000, 1_000_000]
        times = [net.transfer_time(s, CommDomain.INTER_NODE) for s in sizes]
        assert times == sorted(times)
        assert times[0] > 0  # latency floor

    def test_missing_domain_raises(self):
        net = HockneyModel(latency={CommDomain.INTER_NODE: 1e-6})
        with pytest.raises(KeyError, match="latency"):
            net.transfer_time(8, CommDomain.INTRA_SOCKET)


class TestLogGPModel:
    def test_flight_time_formula(self):
        net = LogGPModel()
        L = net.L[CommDomain.INTER_NODE]
        G = net.G[CommDomain.INTER_NODE]
        assert net.transfer_time(1, CommDomain.INTER_NODE) == pytest.approx(L)
        assert net.transfer_time(1001, CommDomain.INTER_NODE) == pytest.approx(L + 1000 * G)

    def test_overheads_come_from_o(self):
        net = LogGPModel()
        assert net.send_overhead(CommDomain.INTER_NODE) == net.o[CommDomain.INTER_NODE]
        assert net.recv_overhead(CommDomain.SELF) == 0.0

    def test_zero_size_message(self):
        net = LogGPModel()
        assert net.transfer_time(0, CommDomain.INTER_NODE) == pytest.approx(
            net.L[CommDomain.INTER_NODE]
        )
