"""Golden-trace regression tests: absolute engine timestamps, pinned.

Property tests guard that the engines agree with *each other*; the golden
corpus (``tests/golden/*.json``, regenerated via ``python -m repro golden
--regen``) guards that they still produce the *same numbers* as when the
fixtures were recorded — a joint drift of both engines cannot hide.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.golden import (
    GOLDEN_RTOL,
    golden_cases,
    compute_golden_record,
    verify_golden_record,
    write_golden_corpus,
)

GOLDEN_DIR = Path(__file__).parents[1] / "golden"
FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))


def load(path: Path) -> dict:
    return json.loads(path.read_text())


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_replays_exactly(path):
    verify_golden_record(load(path))


class TestCorpusShape:
    def test_fixtures_exist_for_every_case(self):
        assert {p.stem for p in FIXTURES} == {c.name for c in golden_cases()}

    def test_corpus_covers_both_engines(self):
        engines = {load(p)["engine"] for p in FIXTURES}
        assert engines == {"lockstep", "dag"}

    def test_corpus_covers_hierarchical_placement(self):
        assert any(
            load(p)["scenario"].get("machine", {}).get("ppn") is not None
            for p in FIXTURES
        )

    def test_corpus_covers_a_delay_campaign(self):
        assert any("campaign" in load(p)["scenario"] for p in FIXTURES)

    def test_fixture_matrices_have_declared_shape(self):
        for path in FIXTURES:
            record = load(path)
            shape = (record["n_ranks"], record["n_steps"])
            assert np.asarray(record["completion"]).shape == shape
            assert np.asarray(record["exec_end"]).shape == shape


class TestRegenRoundTrip:
    def test_checked_in_fixtures_match_regenerated_corpus(self, tmp_path):
        """The corpus definitions and the checked-in fixtures agree.

        Guards drift between ``repro.golden.golden_cases`` and
        ``tests/golden/``: an edited case without a ``--regen``, or a
        hand-edited fixture, fails here.  Matrices compare within the
        golden tolerance (not byte equality) so the test is robust to
        last-ulp noise-stream differences across numpy builds.
        """
        paths = write_golden_corpus(tmp_path)
        assert {p.name for p in paths} == {p.name for p in FIXTURES}
        for fresh_path in paths:
            fresh = load(fresh_path)
            checked_in = load(GOLDEN_DIR / fresh_path.name)
            for key in ("name", "scenario", "seed", "engine",
                        "requested_engine", "n_ranks", "n_steps"):
                assert fresh[key] == checked_in[key], (
                    f"{fresh_path.name}: field {key!r} drifted — regenerate "
                    "with 'python -m repro golden --regen'"
                )
            np.testing.assert_allclose(
                np.asarray(fresh["completion"]),
                np.asarray(checked_in["completion"]),
                rtol=GOLDEN_RTOL, atol=0.0,
            )

    def test_tampered_fixture_is_detected(self):
        record = load(FIXTURES[0])
        record["completion"][0][0] += 1e-3
        with pytest.raises(AssertionError):
            verify_golden_record(record)

    def test_wrong_engine_dispatch_is_detected(self):
        record = compute_golden_record(golden_cases()[0])
        record["engine"] = "dag" if record["engine"] == "lockstep" else "lockstep"
        with pytest.raises(AssertionError, match="dispatched"):
            verify_golden_record(record)


class TestBatchedPathsReproduceGolden:
    """The batched engine paths replay every fixture within tolerance.

    The corpus was recorded through the serial ``run_scenario`` path;
    ``run_scenario_batch`` — the lockstep recurrence for auto-dispatched
    fixtures, one batched ``StaticDag`` propagation for the forced-DAG
    fixture — must reproduce the same timestamps even when the golden
    seed is buried inside a larger batch.
    """

    @pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
    def test_batched_run_matches_fixture(self, path):
        from repro.scenarios.runner import run_scenario_batch
        from repro.scenarios.spec import ScenarioSpec

        record = load(path)
        seeds = [record["seed"], record["seed"] + 1, record["seed"] + 2]
        runs = run_scenario_batch(
            ScenarioSpec.from_dict(record["scenario"]), seeds,
            engine=record["requested_engine"],
        )
        assert runs[0].compiled.engine == record["engine"]
        np.testing.assert_allclose(
            runs[0].timing.completion, np.asarray(record["completion"]),
            rtol=GOLDEN_RTOL, atol=0.0,
            err_msg=f"golden {record['name']}: batched completion drifted",
        )
        np.testing.assert_allclose(
            runs[0].timing.exec_end, np.asarray(record["exec_end"]),
            rtol=GOLDEN_RTOL, atol=0.0,
            err_msg=f"golden {record['name']}: batched exec_end drifted",
        )

    @pytest.mark.parametrize(
        "path",
        [p for p in FIXTURES if load(p)["engine"] == "dag"],
        ids=lambda p: p.stem,
    )
    def test_dag_fixture_batches_bitwise_with_serial(self, path):
        from repro.scenarios.runner import run_scenario, run_scenario_batch
        from repro.scenarios.spec import ScenarioSpec

        record = load(path)
        spec = ScenarioSpec.from_dict(record["scenario"])
        seeds = [record["seed"], record["seed"] + 7]
        batched = run_scenario_batch(spec, seeds, engine="dag")
        for seed, run in zip(seeds, batched):
            serial = run_scenario(spec, seed=seed, engine="dag")
            assert np.array_equal(run.timing.completion,
                                  serial.timing.completion)
            assert np.array_equal(run.timing.idle, serial.timing.idle)
            assert run.data == serial.data


class TestGoldenCli:
    def test_check_passes_on_checked_in_corpus(self, capsys):
        from repro.cli import main

        assert main(["golden", "--check", "--dir", str(GOLDEN_DIR)]) == 0
        out = capsys.readouterr().out
        assert "verified" in out

    def test_regen_writes_all_fixtures(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["golden", "--regen", "--dir", str(tmp_path)]) == 0
        assert len(list(tmp_path.glob("*.json"))) == len(golden_cases())

    def test_check_on_empty_dir_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["golden", "--check", "--dir", str(tmp_path)]) == 2
