"""Unit tests for the shared experiment result container."""

from repro.experiments.base import ExperimentResult


class TestExperimentResult:
    def test_render_includes_all_sections(self):
        r = ExperimentResult(
            name="demo",
            title="A demo experiment",
            tables={"first": "a | b\n1 | 2", "second": "x"},
            notes=["observation one", "observation two"],
        )
        text = r.render()
        assert "=== demo: A demo experiment ===" in text
        assert "--- first ---" in text
        assert "--- second ---" in text
        assert "* observation one" in text

    def test_render_without_notes(self):
        r = ExperimentResult(name="n", title="t", tables={"s": "body"})
        assert "Notes:" not in r.render()

    def test_defaults_empty(self):
        r = ExperimentResult(name="n", title="t")
        assert r.tables == {}
        assert r.data == {}
        assert r.notes == []
