"""Smoke + shape tests for every experiment driver.

Each driver must run in its fast variant and produce the paper's
qualitative shape; the render must be printable text.
"""

import math

import pytest

from repro.experiments import EXPERIMENTS, run_experiment


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_driver_runs_and_renders(name):
    if name in ("fig1", "fig2"):
        pytest.skip("covered by the dedicated shape tests below (slow)")
    result = run_experiment(name, fast=True)
    text = result.render()
    assert result.name == name
    assert result.tables
    assert isinstance(text, str) and len(text) > 100


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("fig99")


class TestFig3Shape:
    def test_means_and_bimodality(self):
        r = run_experiment("fig3", fast=True)
        hists = r.data["histograms"]
        emmy_on = hists["Emmy (InfiniBand) / SMT on"]
        meggie_on = hists["Meggie (Omni-Path) / SMT on"]
        meggie_off = hists["Meggie (Omni-Path) / SMT off"]
        assert emmy_on.mean == pytest.approx(2.4e-6, rel=0.1)
        assert meggie_on.mean == pytest.approx(2.8e-6, rel=0.1)
        assert meggie_off.is_bimodal(min_separation=100e-6)
        second = meggie_off.modes(min_separation=100e-6)[1]
        assert second == pytest.approx(660e-6, rel=0.1)


class TestFig4Shape:
    def test_speed_matches_model(self):
        r = run_experiment("fig4", fast=True)
        assert r.data["speed"] == pytest.approx(r.data["model_speed"], rel=0.01)
        assert r.data["downward_reach"] == 0


class TestFig5Shape:
    def test_all_eight_panels_present(self):
        r = run_experiment("fig5", fast=True)
        assert len(r.data) == 8

    def test_rendezvous_bidirectional_doubles(self):
        r = run_experiment("fig5", fast=True)
        v_uni = r.data["(e) rdv uni open"]["speed_up"]
        v_bi = r.data["(g) rdv bi open"]["speed_up"]
        assert v_bi / v_uni == pytest.approx(2.0, rel=0.02)

    def test_cancellation_rank_matches_paper(self):
        r = run_experiment("fig5", fast=True)
        assert r.data["(d) eager bi periodic"]["meeting_ranks"] == [14]


class TestFig6Shape:
    def test_resync_ordering(self):
        r = run_experiment("fig6", fast=True)
        equal = r.data["equal"]["resync_step"]
        half = r.data["half"]["resync_step"]
        rand = r.data["random"]["resync_step"]
        assert equal is not None and half is not None
        assert equal < half
        assert rand is None

    def test_all_defects_negative(self):
        r = run_experiment("fig6", fast=True)
        for scenario in ("equal", "half", "random"):
            assert r.data[scenario]["superposition_defect"] < 0


class TestFig7Shape:
    def test_ratio_two(self):
        r = run_experiment("fig7", fast=True)
        assert r.data["ratio"] == pytest.approx(2.0, rel=0.01)


class TestEq2Shape:
    def test_max_error_below_one_percent(self):
        r = run_experiment("eq2", fast=True)
        assert r.data["max_error_pct"] < 1.0


class TestFig8Shape:
    def test_positive_correlation_everywhere(self):
        r = run_experiment("fig8", fast=True)
        for system, series in r.data["series"].items():
            medians = [pt["stats"].median for pt in series]
            assert medians[-1] > medians[0] > 0, system


class TestFig9Shape:
    def test_elimination_trend(self):
        r = run_experiment("fig9", fast=True)
        points = r.data["points"]
        assert points[0].excess == pytest.approx(r.data["delay"], rel=0.01)
        assert points[-1].excess < points[0].excess
