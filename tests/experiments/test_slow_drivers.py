"""Shape tests for the two heavier motivating-experiment drivers.

Marked slow-ish but still bounded (< ~30 s together); they pin the paper's
two desynchronization observations.
"""

import pytest

from repro.experiments import run_experiment


class TestFig1Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig1", fast=True)

    def test_execution_beats_model_at_scale(self, result):
        """The paper's core observation: measured exec perf > linear model."""
        for point in result.data["a"]:
            if point["sockets"] >= 4:
                assert point["p_exec"] > 1.05 * point["model_exec"], point

    def test_waits_cost_total_performance(self, result):
        """Communication waits make the *total* performance fall short of
        the execution-only performance — the gap the paper's Fig. 1a shows
        between the blue squares and blue diamonds."""
        for point in result.data["a"]:
            if point["sockets"] >= 3:
                assert point["p_total"] < point["p_exec"]

    def test_ppn1_model_accurate(self, result):
        """Fig. 1(c): with one process per node the model is good."""
        for point in result.data["c"]:
            rel_err = abs(point["p_total"] - point["model_total"]) / point["model_total"]
            assert rel_err < 0.10, point

    def test_node_level_saturation(self, result):
        """Fig. 1(b): performance saturates across one socket."""
        rows = {p["processes"]: p["p_total"] for p in result.data["b"]}
        # Scaling 2 -> 10 processes is strongly sublinear (saturation).
        assert rows[10] < 5 * rows[2] * 1.1
        assert rows[10] > rows[2]


class TestFig2Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig2", fast=True)

    def test_long_wavelength_pattern_emerges(self, result):
        """By mid-run the dominant wavelength is a large fraction of the
        100-rank system (paper: wavelength = system size)."""
        late = [s for s in result.data["snapshots"] if s["step"] >= 100]
        assert any(s["wavelength"] >= 50 for s in late)

    def test_spread_grows_from_microseconds_to_milliseconds(self, result):
        snaps = result.data["snapshots"]
        first, last = snaps[0], snaps[-1]
        assert first["spread"] < 1e-3
        assert last["spread"] > 10e-3

    def test_runtime_beats_nonoverlapping_model(self, result):
        """Paper: actual runtime ~2.5% below the model at t=10000."""
        assert 0.0 < result.data["deviation"] < 0.15
