"""Shape tests for the three Sec.-VII extension experiments."""

import pytest

from repro.experiments import run_experiment


class TestExtCollectives:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_collectives", fast=True)

    def test_synchronizing_collectives_reach_everyone_in_one_step(self, result):
        for name in ("barrier", "allreduce_recdoub", "allreduce_ring"):
            assert result.data[name]["reach_one_step"] == 15, name

    def test_tree_bcast_spreads_less(self, result):
        assert result.data["bcast_tree"]["reach_one_step"] < 15

    def test_full_delay_enters_runtime(self, result):
        from repro.experiments.ext_collectives import DELAY

        for name, d in result.data.items():
            assert d["excess"] == pytest.approx(DELAY, rel=0.05), name


class TestExtHybrid:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_hybrid", fast=True)

    def test_effective_noise_grows_with_group_size(self, result):
        noises = [result.data[t]["effective_noise"] for t in sorted(result.data)]
        assert all(b > a for a, b in zip(noises, noises[1:]))

    def test_skew_shrinks_with_group_size(self, result):
        skews = [result.data[t]["skew"] for t in sorted(result.data)]
        assert skews[-1] < skews[0]

    def test_wave_survival_bounded_by_ring(self, result):
        for threads, d in result.data.items():
            n_ranks = 64 // threads
            assert d["survival_hops"] <= n_ranks - 1


class TestExtCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_campaign", fast=True)

    def test_marginal_cost_falls_with_rate(self, result):
        rates = sorted(result.data)
        ratios = [result.data[r]["cost_ratio"] for r in rates]
        assert all(b < a for a, b in zip(ratios, ratios[1:]))

    def test_sparse_campaign_costs_nearly_full(self, result):
        sparse = result.data[min(result.data)]
        assert sparse["cost_ratio"] > 0.8

    def test_dense_campaign_heavily_absorbed(self, result):
        dense = result.data[max(result.data)]
        assert dense["cost_ratio"] < 0.5


class TestExtMembound:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("ext_membound", fast=True)

    def test_core_bound_excess_is_full_delay(self, result):
        assert result.data["core-bound (scalable)"]["excess_fraction"] == pytest.approx(
            1.0, rel=0.02
        )

    def test_memory_bound_absorbs_part_of_the_delay(self, result):
        frac = result.data["memory-bound (saturated)"]["excess_fraction"]
        assert frac < 0.85

    def test_ranks_behind_wave_speed_up(self, result):
        mb = result.data["memory-bound (saturated)"]
        assert mb["fastest_phase"] < 0.8 * mb["base_phase"]
