"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_all_keyword(self):
        args = build_parser().parse_args(["all", "--seed", "3"])
        assert args.experiment == "all"
        assert args.seed == 3

    def test_full_flag(self):
        assert build_parser().parse_args(["fig4", "--full"]).full
        assert not build_parser().parse_args(["fig4"]).full

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_runtime_flags(self):
        args = build_parser().parse_args(
            ["ext_campaign", "--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache

    def test_runtime_flag_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_negative_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ext_campaign", "--jobs", "-1"])
        assert "--jobs must be >= 0" in capsys.readouterr().err

    def test_jobs_zero_means_auto(self):
        assert build_parser().parse_args(["ext_campaign", "--jobs", "0"]).jobs == 0


class TestListCommand:
    def test_lists_every_experiment_with_description(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "Eq. 2" in out  # a description made it through

    def test_json_output(self, capsys):
        import json

        from repro.cli import main

        assert main(["list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["id"] for r in rows} == set(EXPERIMENTS)
        assert all(r["description"] for r in rows)


class TestMain:
    def test_runs_single_experiment(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "ranks/s" in out

    def test_seed_propagates(self, capsys):
        assert main(["fig4", "--seed", "42"]) == 0
        assert "completed" in capsys.readouterr().out

    def test_jobs_and_cache_dir_flow_into_campaign(self, capsys, tmp_path):
        cache = tmp_path / "store"
        assert main(["ext_campaign", "--jobs", "2", "--cache-dir",
                     str(cache)]) == 0
        out = capsys.readouterr().out
        assert "16 simulated on 2 worker(s)" in out
        assert cache.exists()

        # Warm rerun: everything served from the store.
        assert main(["ext_campaign", "--cache-dir", str(cache)]) == 0
        assert "16 from cache, 0 simulated" in capsys.readouterr().out

    def test_no_cache_bypasses_store(self, capsys, tmp_path):
        cache = tmp_path / "store"
        assert main(["ext_campaign", "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        assert main(["ext_campaign", "--cache-dir", str(cache),
                     "--no-cache"]) == 0
        assert "0 from cache" in capsys.readouterr().out


class TestMainFailureHandling:
    @pytest.fixture
    def broken_fig4(self, monkeypatch):
        import repro.experiments as experiments

        def boom(fast=True, seed=0, **kwargs):
            raise RuntimeError("synthetic driver failure")

        monkeypatch.setitem(experiments.EXPERIMENTS, "fig4", boom)

    def test_single_failure_exits_nonzero(self, broken_fig4, capsys):
        assert main(["fig4"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "synthetic driver failure" in out

    def test_all_continues_past_failure_and_reports(self, broken_fig4,
                                                    monkeypatch, capsys):
        import repro.experiments as experiments

        # Shrink "all" to a failing and a passing experiment: exercising
        # every driver here would just duplicate the driver tests.
        monkeypatch.setattr(
            experiments, "EXPERIMENTS",
            {"fig4": experiments.EXPERIMENTS["fig4"],
             "eq2": experiments.EXPERIMENTS["eq2"]},
        )
        monkeypatch.setattr("repro.cli.EXPERIMENTS", experiments.EXPERIMENTS)

        assert main(["all"]) == 1
        out = capsys.readouterr().out
        assert "eq2" in out and "completed" in out  # kept going
        assert "summary: 1/2 experiments succeeded" in out
        assert "FAILED fig4" in out
