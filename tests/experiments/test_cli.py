"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_all_keyword(self):
        args = build_parser().parse_args(["all", "--seed", "3"])
        assert args.experiment == "all"
        assert args.seed == 3

    def test_full_flag(self):
        assert build_parser().parse_args(["fig4", "--full"]).full
        assert not build_parser().parse_args(["fig4"]).full

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_runs_single_experiment(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "ranks/s" in out

    def test_seed_propagates(self, capsys):
        assert main(["fig4", "--seed", "42"]) == 0
        assert "completed" in capsys.readouterr().out
