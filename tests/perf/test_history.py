"""Performance history: records, adapters, trend analysis, and the
``repro-experiment perf`` CLI.

The ISSUE 9 acceptance: a synthetic 2x wall-time regression makes
``perf check`` exit nonzero and name the metric; the committed seed
history under ``benchmarks/baselines/`` passes clean.
"""

import json
from pathlib import Path

import pytest

from repro.perf import (
    PERF_RECORD_VERSION,
    PerfHistory,
    analyze_history,
    metric_direction,
    metrics_from_bench,
    metrics_from_run_record,
    metrics_from_telemetry,
    new_record,
)
from repro.perf.cli import perf_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def wall_record(wall_s, label="campaign/sweep"):
    return new_record(label, "manual", {"wall_s": wall_s}, ts=1.0)


class TestRecords:
    def test_new_record_shape(self):
        r = new_record("a/b", "manual", {"wall_s": 1.5, "n_tasks": 4},
                       context={"jobs": 2, "drop": None}, ts=123.0)
        assert r["version"] == PERF_RECORD_VERSION
        assert r["ts"] == 123.0
        assert r["metrics"] == {"wall_s": 1.5, "n_tasks": 4.0}
        assert r["context"] == {"jobs": 2}  # None values dropped

    def test_new_record_rejects_junk(self):
        with pytest.raises(ValueError, match="label"):
            new_record("", "manual", {"x": 1})
        with pytest.raises(ValueError, match="source"):
            new_record("a", "nonsense", {"x": 1})
        with pytest.raises(ValueError, match="no numeric"):
            new_record("a", "manual", {"note": "text", "flag": True,
                                       "nan": float("nan")})

    def test_history_round_trip(self, tmp_path):
        history = PerfHistory(tmp_path / "perf")
        history.append(wall_record(1.0))
        history.append(wall_record(1.1))
        history.append(wall_record(0.9, label="other/run"))
        assert history.labels() == ["campaign/sweep", "other/run"]
        assert [r["metrics"]["wall_s"]
                for r in history.records(label="campaign/sweep")] == [1.0, 1.1]
        grouped = history.by_label()
        assert len(grouped["campaign/sweep"]) == 2

    def test_history_accepts_explicit_jsonl_path(self, tmp_path):
        path = tmp_path / "seed.jsonl"
        history = PerfHistory(path)
        history.append(wall_record(1.0))
        assert history.path == path
        assert len(PerfHistory(path).records()) == 1

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            json.dumps(wall_record(1.0)) + "\n"
            + '{"torn": \n'
            + json.dumps({"no_metrics": True}) + "\n"
            + json.dumps(wall_record(2.0)) + "\n")
        assert [r["metrics"]["wall_s"]
                for r in PerfHistory(path).records()] == [1.0, 2.0]


class TestAdapters:
    def test_run_record_adapter(self):
        label, metrics, context = metrics_from_run_record({
            "id": "run-1", "kind": "scenario.sweep", "name": "rate",
            "status": "ok", "jobs": 2, "wall_s": 2.0, "n_tasks": 16,
            "n_cached": 4, "n_executed": 12, "n_failed": 0,
            "cache_hit_rate": 0.25, "n_stalls": 1,
            "worker_rss_peak_bytes": 1 << 20,
        })
        assert label == "scenario.sweep/rate"
        assert metrics["tasks_per_s"] == pytest.approx(8.0)
        assert metrics["n_stalls"] == 1.0
        assert context["run_id"] == "run-1"

    def test_telemetry_adapter_emits_phase_metrics(self, tmp_path):
        from repro.scenarios.cli import scenario_main
        from repro.telemetry.sinks import read_jsonl

        out = tmp_path / "run.jsonl"
        toml = tmp_path / "s.toml"
        toml.write_text(SWEEP_MINI)
        assert scenario_main([
            "sweep", str(toml), "--engine", "dag",
            "--cache-dir", str(tmp_path / "store"),
            "--profile", "--telemetry-out", str(out),
        ]) == 0
        label, metrics, _ = metrics_from_telemetry(read_jsonl(str(out)))
        assert label.startswith("telemetry/")
        assert metrics["total_s"] > 0
        assert any(k.startswith("phase.") for k in metrics)

    def test_bench_adapter(self):
        entries = metrics_from_bench({
            "benchmark": "bench_x", "schema": 1,
            "tests": {"test_a": {"speedup": 1.2, "note": "text"},
                      "test_empty": {"only": "strings"}},
        })
        assert len(entries) == 1
        label, metrics, context = entries[0]
        assert label == "bench/bench_x/test_a"
        assert metrics == {"speedup": 1.2}
        assert context["schema"] == 1


class TestTrend:
    def test_metric_directions(self):
        assert metric_direction("wall_s") == "lower"
        assert metric_direction("phase.campaign.run_s") == "lower"
        assert metric_direction("worker_rss_peak_bytes") == "lower"
        assert metric_direction("n_stalls") == "lower"
        assert metric_direction("speedup") == "higher"
        assert metric_direction("tasks_per_s") == "higher"
        assert metric_direction("cache_hit_rate") is None  # informational

    def test_synthetic_2x_regression_is_flagged(self):
        by_label = {"campaign/sweep": [wall_record(1.0), wall_record(1.05),
                                       wall_record(2.1)]}
        findings = analyze_history(by_label)
        (finding,) = [f for f in findings if f["metric"] == "wall_s"]
        assert finding["status"] == "regression"
        assert finding["ratio"] > 1.9

    def test_improvement_and_ok_statuses(self):
        findings = analyze_history(
            {"a": [wall_record(1.0), wall_record(0.5)],
             "b": [wall_record(1.0), wall_record(1.02)]})
        by_label = {f["label"]: f["status"] for f in findings}
        assert by_label == {"a": "improvement", "b": "ok"}

    def test_single_record_labels_yield_nothing(self):
        assert analyze_history({"a": [wall_record(1.0)]}) == []

    def test_submillisecond_series_are_ignored(self):
        by_label = {"a": [wall_record(1e-5), wall_record(9e-5)]}
        assert analyze_history(by_label) == []

    def test_zero_baseline_flags_any_positive_latest(self):
        records = [new_record("a", "manual", {"n_stalls": 0, "wall_s": 1.0},
                              ts=1.0),
                   new_record("a", "manual", {"n_stalls": 2, "wall_s": 1.0},
                              ts=2.0)]
        findings = {f["metric"]: f for f in analyze_history({"a": records})}
        assert findings["n_stalls"]["status"] == "regression"
        assert findings["n_stalls"]["ratio"] == float("inf")


class TestPerfCli:
    def seed(self, tmp_path, walls):
        history = PerfHistory(tmp_path / "perf")
        for i, wall in enumerate(walls):
            history.append(new_record("campaign/sweep", "manual",
                                      {"wall_s": wall}, ts=float(i)))
        return history

    def test_check_exits_nonzero_on_regression(self, tmp_path, capsys):
        self.seed(tmp_path, [1.0, 1.05, 2.1])
        assert perf_main(["check", "--cache-dir", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "wall_s" in captured.out
        assert "drifted" in captured.err

    def test_check_passes_clean_history(self, tmp_path, capsys):
        self.seed(tmp_path, [1.0, 1.05, 0.98])
        assert perf_main(["check", "--cache-dir", str(tmp_path)]) == 0
        assert "within" in capsys.readouterr().out

    def test_check_empty_history_is_not_a_failure(self, tmp_path, capsys):
        assert perf_main(["check", "--cache-dir", str(tmp_path)]) == 0
        assert "no comparable" in capsys.readouterr().out

    def test_committed_seed_history_passes(self, capsys):
        """The CI gate input: the checked-in baseline must stay green."""
        seed = REPO_ROOT / "benchmarks" / "baselines" / "perf_history.jsonl"
        assert seed.exists()
        assert perf_main(["check", "--history", str(seed)]) == 0

    def test_history_lists_records(self, tmp_path, capsys):
        self.seed(tmp_path, [1.0, 1.1])
        assert perf_main(["history", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign/sweep" in out
        assert "wall_s=1.1" in out
        assert "2 record(s), 1 label(s)" in out

    def test_diff_guards_zero_and_missing_metrics(self, tmp_path, capsys):
        history = PerfHistory(tmp_path / "perf")
        history.append(new_record("a", "manual",
                                  {"wall_s": 0.0, "old_only": 1.0}, ts=1.0))
        history.append(new_record("a", "manual",
                                  {"wall_s": 2.0, "new_only": 3.0}, ts=2.0))
        assert perf_main(["diff", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "n/a" in out  # zero old value and one-sided metrics
        assert "--" in out

    def test_diff_requires_label_when_ambiguous(self, tmp_path, capsys):
        history = PerfHistory(tmp_path / "perf")
        for label in ("a", "b"):
            history.append(new_record(label, "manual", {"wall_s": 1.0},
                                      ts=1.0))
        assert perf_main(["diff", "--cache-dir", str(tmp_path)]) == 1
        assert "--label" in capsys.readouterr().err

    def test_record_ingests_bench_json(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps({
            "benchmark": "bench_x", "schema": 1,
            "tests": {"test_a": {"speedup": 1.2}}}))
        assert perf_main(["record", "--cache-dir", str(tmp_path),
                          "--bench", str(bench)]) == 0
        assert "1 perf record(s)" in capsys.readouterr().out
        records = PerfHistory(tmp_path / "perf").records()
        assert records[0]["label"] == "bench/bench_x/test_a"
        assert records[0]["source"] == "bench"

    def test_record_with_nothing_to_ingest_fails(self, tmp_path, capsys):
        assert perf_main(["record", "--cache-dir", str(tmp_path)]) == 1
        assert "perf error" in capsys.readouterr().err

    def test_needs_a_history_location(self, capsys):
        assert perf_main(["history"]) == 1
        assert "--cache-dir" in capsys.readouterr().err

    def test_record_run_latest_through_main_cli(self, tmp_path, capsys):
        """End to end: observed sweep -> ledger -> perf record -> check."""
        from repro.cli import main

        toml = tmp_path / "s.toml"
        toml.write_text(SWEEP_MINI)
        store = str(tmp_path / "store")
        for _ in range(2):
            assert main(["scenario", "sweep", str(toml), "--engine", "dag",
                         "--cache-dir", store, "--no-progress"]) == 0
            assert main(["perf", "record", "--cache-dir", store,
                         "--run", "latest"]) == 0
        capsys.readouterr()
        assert main(["perf", "check", "--cache-dir", store]) == 0
        out = capsys.readouterr().out
        assert "scenario.sweep/" in out


SWEEP_MINI = """\
description = "perf-history mini sweep"
n_ranks = 8
n_steps = 10
outputs = ["runtime"]

[machine]
preset = "simulated"

[workload]
kind = "synthetic"
t_exec = 3e-3

[comm]
direction = "bidirectional"
distance = 1
periodic = true
msg_size = 8192
protocol = "eager"

[noise]
model = "none"

[campaign]
rate = 0.01
phases_low = 2.0
phases_high = 8.0

[sweep]
replicates = 8
"""
