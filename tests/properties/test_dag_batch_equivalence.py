"""Property-based contract: batched DAG propagation == scalar simulate().

``simulate_dag_batch`` pushes B delay/noise draws through one cached
:class:`~repro.sim.engine.StaticDag` structure; every batch slice must be
**bitwise** equal to a scalar :func:`~repro.sim.engine.simulate` of that
draw's program — for any pattern (eager/rendezvous, uni/bidirectional,
open/periodic) and for hierarchical ``ppn`` placements, where per-message
flights and overheads vary with the rank pair.  This is the property the
campaign runtime's content-addressed cache relies on for forced-DAG
sweeps: batched and per-draw execution may never produce different bytes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    HockneyModel,
    LockstepConfig,
    Protocol,
    SimConfig,
    UniformNetwork,
    build_exec_times,
    build_lockstep_program,
    clear_dag_cache,
    simulate,
    simulate_dag_batch,
)
from repro.sim.topology import single_switch_mapping

T = 3e-3


@st.composite
def dag_batch_scenarios(draw):
    n_ranks = draw(st.integers(min_value=3, max_value=12))
    n_steps = draw(st.integers(min_value=2, max_value=8))
    distance = draw(st.integers(min_value=1, max_value=min(3, (n_ranks - 1) // 2)))
    direction = draw(st.sampled_from(list(Direction)))
    periodic = draw(st.booleans())
    protocol = draw(st.sampled_from([Protocol.EAGER, Protocol.RENDEZVOUS]))
    noise_mean = draw(st.sampled_from([0.0, 1e-5, 3e-4]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_batch = draw(st.integers(min_value=1, max_value=5))
    n_delays = draw(st.integers(min_value=0, max_value=2))
    delays = tuple(
        DelaySpec(
            rank=draw(st.integers(min_value=0, max_value=n_ranks - 1)),
            step=draw(st.integers(min_value=0, max_value=n_steps - 1)),
            duration=draw(st.sampled_from([T, 3 * T, 10 * T])),
        )
        for _ in range(n_delays)
    )
    hierarchical = draw(st.booleans())
    if hierarchical:
        ppn = draw(st.sampled_from([1, 2, 4]))
        mapping = single_switch_mapping(n_ranks, ppn=ppn)
        network = HockneyModel()
    else:
        mapping = None
        network = UniformNetwork()
    cfg = LockstepConfig(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=T,
        msg_size=8192,
        pattern=CommPattern(direction=direction, distance=distance,
                            periodic=periodic),
        noise=ExponentialNoise(noise_mean),
        delays=delays,
        seed=seed,
    )
    config = SimConfig(network=network, mapping=mapping, protocol=protocol)
    return cfg, config, n_batch


@given(dag_batch_scenarios())
@settings(max_examples=50, deadline=None)
def test_batch_slices_bitwise_equal_scalar_simulate(scenario):
    cfg, config, n_batch = scenario
    clear_dag_cache()
    stacked = np.stack([
        build_exec_times(cfg, np.random.default_rng(cfg.seed + b))
        for b in range(n_batch)
    ])
    batch = simulate_dag_batch(cfg, stacked, config)
    for b in range(n_batch):
        trace = simulate(build_lockstep_program(cfg, stacked[b]), config)
        label = f"{cfg.pattern} proto={config.protocol} b={b}"
        assert np.array_equal(batch[b].completion, trace.completion_matrix()), \
            f"completion drift for {label}"
        assert np.array_equal(batch[b].exec_end, trace.exec_end_matrix()), \
            f"exec_end drift for {label}"
        assert np.array_equal(batch[b].idle, trace.idle_matrix()), \
            f"idle drift for {label}"


@given(dag_batch_scenarios())
@settings(max_examples=25, deadline=None)
def test_cached_structure_batch_equals_cold_batch(scenario):
    """A cache-hit batch returns the same bytes as a cold-built one."""
    cfg, config, n_batch = scenario
    stacked = np.stack([
        build_exec_times(cfg, np.random.default_rng(cfg.seed + b))
        for b in range(n_batch)
    ])
    clear_dag_cache()
    cold = simulate_dag_batch(cfg, stacked, config)
    warm = simulate_dag_batch(cfg, stacked, config)  # structure from cache
    assert np.array_equal(cold.completion, warm.completion)
    assert np.array_equal(cold.idle, warm.idle)
