"""Property-based tests of communication-pattern construction.

The matcher's completeness guarantee rests on the send/recv duality of
:class:`~repro.sim.program.CommPattern`; the lockstep engine's position
table must agree with the builder's op ordering.  Both are quantified over
random pattern parameters here.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    CommPattern,
    Direction,
    LockstepConfig,
    SimConfig,
    build_lockstep_program,
    simulate,
)
from repro.sim.lockstep import _send_positions
from repro.sim.program import OpKind


@st.composite
def patterns(draw):
    n_ranks = draw(st.integers(min_value=2, max_value=20))
    distance = draw(st.integers(min_value=1, max_value=4))
    direction = draw(st.sampled_from(list(Direction)))
    periodic = draw(st.booleans())
    return CommPattern(direction=direction, distance=distance, periodic=periodic), n_ranks


@given(patterns())
@settings(max_examples=100, deadline=None)
def test_send_recv_duality(args):
    pattern, n = args
    sends = {(i, j) for i in range(n) for j in pattern.send_targets(i, n)}
    recvs = {(j, i) for i in range(n) for j in pattern.recv_sources(i, n)}
    assert sends == recvs


@given(patterns())
@settings(max_examples=100, deadline=None)
def test_no_self_or_duplicate_partners(args):
    pattern, n = args
    for i in range(n):
        targets = pattern.send_targets(i, n)
        assert i not in targets
        assert len(targets) == len(set(targets))


@given(patterns())
@settings(max_examples=60, deadline=None)
def test_position_table_matches_builder_order(args):
    """The lockstep engine's per-offset send positions must equal the index
    of the corresponding ISEND in the built program."""
    pattern, n = args
    cfg = LockstepConfig(n_ranks=n, n_steps=1, t_exec=1e-3, pattern=pattern)
    prog = build_lockstep_program(cfg)
    spos = _send_positions(pattern, n)
    for rank, ops in enumerate(prog.ops):
        sends = [op for op in ops if op.kind == OpKind.ISEND]
        for idx, op in enumerate(sends, start=1):
            off = op.peer - rank
            if pattern.periodic:
                # Unwrap to the canonical offset in [-n/2, n/2].
                candidates = [o for o in spos if (rank + o) % n == op.peer]
                assert candidates, (rank, op.peer)
                matching = [o for o in candidates if spos[o][rank] == idx]
                assert matching, (rank, op.peer, idx)
            else:
                assert spos[off][rank] == idx


@given(patterns())
@settings(max_examples=40, deadline=None)
def test_built_programs_always_simulate(args):
    """Whatever the pattern, the built program matches completely and runs
    (no unmatched ops, no deadlock)."""
    pattern, n = args
    cfg = LockstepConfig(n_ranks=n, n_steps=2, t_exec=1e-3, pattern=pattern)
    trace = simulate(build_lockstep_program(cfg), SimConfig())
    trace.validate()
    assert np.isfinite(trace.completion_matrix()).all()
