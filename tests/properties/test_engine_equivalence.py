"""Property-based contract: the DAG and lockstep engines agree exactly.

The vectorized lockstep engine is a performance optimization of the
authoritative DAG engine; on their shared domain (uniform network, standard
lockstep pattern) the two must produce identical timestamps for *any*
combination of pattern, protocol, noise, and injected delays.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    LockstepConfig,
    Protocol,
    SimConfig,
    UniformNetwork,
    build_exec_times,
    build_lockstep_program,
    simulate,
    simulate_lockstep,
)

T = 3e-3


@st.composite
def lockstep_scenarios(draw):
    n_ranks = draw(st.integers(min_value=3, max_value=14))
    n_steps = draw(st.integers(min_value=2, max_value=10))
    distance = draw(st.integers(min_value=1, max_value=min(3, (n_ranks - 1) // 2)))
    direction = draw(st.sampled_from(list(Direction)))
    periodic = draw(st.booleans())
    protocol = draw(st.sampled_from([Protocol.EAGER, Protocol.RENDEZVOUS]))
    noise_mean = draw(st.sampled_from([0.0, 1e-5, 3e-4]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_delays = draw(st.integers(min_value=0, max_value=2))
    delays = tuple(
        DelaySpec(
            rank=draw(st.integers(min_value=0, max_value=n_ranks - 1)),
            step=draw(st.integers(min_value=0, max_value=n_steps - 1)),
            duration=draw(st.sampled_from([T, 3 * T, 10 * T])),
        )
        for _ in range(n_delays)
    )
    noise = ExponentialNoise(noise_mean)
    return LockstepConfig(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=T,
        msg_size=8192,
        pattern=CommPattern(direction=direction, distance=distance, periodic=periodic),
        noise=noise,
        delays=delays,
        seed=seed,
    ), protocol


@given(lockstep_scenarios())
@settings(max_examples=60, deadline=None)
def test_engines_produce_identical_timestamps(scenario):
    cfg, protocol = scenario
    net = UniformNetwork()
    exec_times = build_exec_times(cfg)

    trace = simulate(
        build_lockstep_program(cfg, exec_times),
        SimConfig(network=net, protocol=protocol),
    )
    result = simulate_lockstep(cfg, exec_times=exec_times, network=net, protocol=protocol)

    np.testing.assert_allclose(
        result.completion, trace.completion_matrix(), rtol=0, atol=1e-12,
        err_msg=f"completion mismatch for {cfg.pattern} proto={protocol}",
    )
    np.testing.assert_allclose(
        result.exec_end, trace.exec_end_matrix(), rtol=0, atol=1e-12,
    )


@given(lockstep_scenarios())
@settings(max_examples=30, deadline=None)
def test_lockstep_trace_roundtrip_valid(scenario):
    cfg, protocol = scenario
    result = simulate_lockstep(cfg, protocol=protocol)
    result.to_trace().validate()
