"""Property-based tests on noise generators and their simulator coupling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.noise import (
    BimodalNoise,
    ExponentialNoise,
    GammaNoise,
    TraceNoise,
    UniformNoise,
    exponential_for_level,
)


@st.composite
def noise_models(draw):
    kind = draw(st.sampled_from(["exp", "bimodal", "uniform", "gamma", "trace"]))
    if kind == "exp":
        return ExponentialNoise(draw(st.floats(min_value=0.0, max_value=1e-3)))
    if kind == "bimodal":
        return BimodalNoise(
            base=ExponentialNoise(draw(st.floats(min_value=0.0, max_value=1e-4))),
            spike_delay=draw(st.floats(min_value=0.0, max_value=1e-3)),
            spike_probability=draw(st.floats(min_value=0.0, max_value=0.2)),
        )
    if kind == "uniform":
        lo = draw(st.floats(min_value=0.0, max_value=1e-4))
        hi = lo + draw(st.floats(min_value=0.0, max_value=1e-3))
        return UniformNoise(lo, hi)
    if kind == "gamma":
        return GammaNoise(
            mean_delay=draw(st.floats(min_value=0.0, max_value=1e-3)),
            shape_k=draw(st.floats(min_value=0.2, max_value=8.0)),
        )
    samples = draw(
        st.lists(st.floats(min_value=0.0, max_value=1e-3), min_size=1, max_size=20)
    )
    return TraceNoise(samples=tuple(samples))


@given(noise_models(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=80, deadline=None)
def test_samples_nonnegative_and_finite(model, seed):
    s = model.sample(np.random.default_rng(seed), (512,))
    assert np.isfinite(s).all()
    assert (s >= 0).all()


@given(noise_models(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_seed_determinism(model, seed):
    a = model.sample(np.random.default_rng(seed), (128,))
    b = model.sample(np.random.default_rng(seed), (128,))
    np.testing.assert_array_equal(a, b)


@given(noise_models())
@settings(max_examples=40, deadline=None)
def test_sample_mean_tracks_declared_mean(model):
    n = 120_000
    s = model.sample(np.random.default_rng(0), (n,))
    if model.mean() == 0.0:
        # A declared zero mean is either a genuinely silent model (all
        # samples exactly 0) or a range so narrow that the mean
        # *underflows* to 0.0 (e.g. uniform on [0, 5e-324)) — samples
        # then sit in the subnormal basement but cannot exceed it.
        assert s.max() <= np.finfo(float).tiny
        return
    if np.count_nonzero(s) < 30:
        # Ultra-rare-event models (e.g. a spike probability of 1e-6) give
        # too few positive draws for the mean to be estimable at this n;
        # the sample standard error is then meaningless too.
        return
    if isinstance(model, BimodalNoise) and n * model.spike_probability < 30:
        # The spike term can dominate the declared mean while the expected
        # number of observed spikes at this n is ~0 (e.g. a subnormal base
        # mean with spike_probability 1e-6): the sample then consists of
        # nonzero base draws only, and neither the sample mean nor its
        # standard error carries any information about the spikes.
        return
    # Statistically principled bound: the sample mean must sit within
    # ~6 standard errors of the declared mean (heavy-tailed draws with
    # tiny means legitimately exceed any fixed relative tolerance).
    stderr = s.std() / np.sqrt(n)
    tol = 6 * stderr + 1e-15
    assert abs(s.mean() - model.mean()) <= tol


@given(
    E=st.floats(min_value=0.0, max_value=1.0),
    t_exec=st.floats(min_value=1e-4, max_value=1e-1),
)
def test_exponential_for_level_roundtrip(E, t_exec):
    noise = exponential_for_level(E, t_exec)
    assert noise.relative_level(t_exec) == pytest.approx(E, abs=1e-12)
