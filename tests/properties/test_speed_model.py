"""Property-based validation of the Eq. 2 speed model.

On a noise-free system, for any admissible combination of execution time,
message size, neighbor distance, direction and protocol, the measured
leading-edge speed must match sigma*d/(T_exec + T_comm) to within 1 %.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import measure_speed, silent_speed
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    Protocol,
    UniformNetwork,
    simulate_lockstep,
)
from repro.sim.topology import CommDomain


@st.composite
def speed_scenarios(draw):
    t_exec = draw(st.sampled_from([1e-3, 3e-3, 5e-3]))
    msg_size = draw(st.sampled_from([1024, 8192, 262144]))
    d = draw(st.integers(min_value=1, max_value=2))
    direction = draw(st.sampled_from(list(Direction)))
    protocol = draw(st.sampled_from([Protocol.EAGER, Protocol.RENDEZVOUS]))
    return t_exec, msg_size, d, direction, protocol


@given(speed_scenarios())
@settings(max_examples=40, deadline=None)
def test_measured_speed_matches_eq2(scenario):
    t_exec, msg_size, d, direction, protocol = scenario
    n_ranks = 20
    source = n_ranks // 2
    net = UniformNetwork()

    cfg = LockstepConfig(
        n_ranks=n_ranks,
        n_steps=16,
        t_exec=t_exec,
        msg_size=msg_size,
        pattern=CommPattern(direction=direction, distance=d, periodic=False),
        delays=(DelaySpec(rank=source, step=0, duration=6 * t_exec),),
    )
    run = simulate_lockstep(cfg, network=net, protocol=protocol)
    measured = measure_speed(run, source=source, direction=+1).speed

    t_comm = net.total_pingpong_time(msg_size, CommDomain.INTER_NODE)
    model = silent_speed(
        t_exec,
        t_comm,
        d=d,
        bidirectional=direction == Direction.BIDIRECTIONAL,
        rendezvous=protocol == Protocol.RENDEZVOUS,
    )
    assert measured == pytest.approx(model, rel=0.01)


@given(
    t_exec=st.floats(min_value=1e-4, max_value=1e-1),
    t_comm=st.floats(min_value=0.0, max_value=1e-2),
    d=st.integers(min_value=1, max_value=8),
)
def test_silent_speed_scaling_laws(t_exec, t_comm, d):
    """Pure model properties: linear in d, sigma doubles, monotone in times."""
    v = silent_speed(t_exec, t_comm, d=d)
    assert v == pytest.approx(d * silent_speed(t_exec, t_comm, d=1))
    v2 = silent_speed(t_exec, t_comm, d=d, bidirectional=True, rendezvous=True)
    assert v2 == pytest.approx(2 * v)
    assert silent_speed(t_exec * 2, t_comm, d=d) < v
