"""Property contracts of the batched hierarchy-aware lockstep engine.

Two machine-checked guarantees keep the widened fast path honest:

- **hierarchy parity** — for *any* random hierarchical placement
  (``ppn`` ranks per node on a random node/socket shape) with a
  per-domain network, the lockstep engine's timestamps match the
  authoritative DAG engine exactly (same 1e-12 envelope as the flat
  contract in ``test_engine_equivalence.py``);
- **batch == serial, bitwise** — simulating B execution-time matrices as
  one batched call yields, slice for slice, the *bit-identical* arrays of
  B unbatched calls (batch-of-1 included).  This is the property that
  lets the campaign runtime batch replicate blocks without perturbing the
  content-addressed cache.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    HockneyModel,
    LockstepConfig,
    MachineTopology,
    ProcessMapping,
    Protocol,
    SimConfig,
    build_exec_times,
    build_lockstep_program,
    simulate,
    simulate_lockstep,
    simulate_lockstep_batch,
)

T = 3e-3


@st.composite
def hierarchical_scenarios(draw):
    """A random lockstep config plus a random hierarchical placement."""
    n_ranks = draw(st.integers(min_value=3, max_value=12))
    n_steps = draw(st.integers(min_value=2, max_value=8))
    cores_per_socket = draw(st.integers(min_value=1, max_value=4))
    sockets_per_node = draw(st.integers(min_value=1, max_value=2))
    cores_per_node = cores_per_socket * sockets_per_node
    ppn = draw(st.integers(min_value=1, max_value=cores_per_node))
    n_nodes = -(-n_ranks // ppn)  # ceil
    mapping = ProcessMapping(
        topology=MachineTopology(
            cores_per_socket=cores_per_socket,
            sockets_per_node=sockets_per_node,
            n_nodes=n_nodes,
        ),
        n_ranks=n_ranks,
        ppn=ppn,
    )
    distance = draw(st.integers(min_value=1, max_value=max(1, min(3, (n_ranks - 1) // 2))))
    direction = draw(st.sampled_from(list(Direction)))
    periodic = draw(st.booleans())
    protocol = draw(st.sampled_from([Protocol.EAGER, Protocol.RENDEZVOUS]))
    noise_mean = draw(st.sampled_from([0.0, 1e-5, 3e-4]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_delays = draw(st.integers(min_value=0, max_value=2))
    delays = tuple(
        DelaySpec(
            rank=draw(st.integers(min_value=0, max_value=n_ranks - 1)),
            step=draw(st.integers(min_value=0, max_value=n_steps - 1)),
            duration=draw(st.sampled_from([T, 3 * T, 10 * T])),
        )
        for _ in range(n_delays)
    )
    cfg = LockstepConfig(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=T,
        msg_size=8192,
        pattern=CommPattern(direction=direction, distance=distance, periodic=periodic),
        noise=ExponentialNoise(noise_mean),
        delays=delays,
        seed=seed,
    )
    return cfg, mapping, protocol


@given(hierarchical_scenarios())
@settings(max_examples=50, deadline=None)
def test_hierarchical_engines_produce_identical_timestamps(scenario):
    cfg, mapping, protocol = scenario
    net = HockneyModel()  # distinct per-domain latency/bandwidth/overhead
    exec_times = build_exec_times(cfg)

    trace = simulate(
        build_lockstep_program(cfg, exec_times),
        SimConfig(network=net, mapping=mapping, protocol=protocol),
    )
    result = simulate_lockstep(
        cfg, exec_times=exec_times, network=net, protocol=protocol,
        mapping=mapping,
    )

    np.testing.assert_allclose(
        result.completion, trace.completion_matrix(), rtol=0, atol=1e-12,
        err_msg=(
            f"completion mismatch for {cfg.pattern} proto={protocol} "
            f"ppn={mapping.ppn} topo={mapping.topology}"
        ),
    )
    np.testing.assert_allclose(
        result.exec_end, trace.exec_end_matrix(), rtol=0, atol=1e-12,
    )


@given(hierarchical_scenarios(), st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_batched_slices_bitwise_equal_serial_runs(scenario, n_batch):
    """batch[b] == simulate_lockstep(exec_times[b]) — exactly, bit for bit."""
    cfg, mapping, protocol = scenario
    net = HockneyModel()
    stack = np.stack([
        build_exec_times(cfg, np.random.default_rng(1000 + b))
        for b in range(n_batch)
    ])

    batch = simulate_lockstep_batch(
        cfg, stack, network=net, protocol=protocol, mapping=mapping
    )
    assert len(batch) == n_batch
    for b in range(n_batch):
        serial = simulate_lockstep(
            cfg, exec_times=stack[b], network=net, protocol=protocol,
            mapping=mapping,
        )
        for name in ("exec_start", "exec_end", "post_end", "completion"):
            got = getattr(batch[b], name)
            want = getattr(serial, name)
            assert np.array_equal(got, want), (
                f"{name} of batch slice {b} is not bit-identical "
                f"(ppn={mapping.ppn}, proto={protocol})"
            )


@given(hierarchical_scenarios())
@settings(max_examples=20, deadline=None)
def test_batch_of_one_is_bitwise_the_unbatched_run(scenario):
    cfg, mapping, protocol = scenario
    exec_times = build_exec_times(cfg)
    serial = simulate_lockstep(
        cfg, exec_times=exec_times, protocol=protocol, mapping=mapping,
        network=HockneyModel(),
    )
    batch = simulate_lockstep_batch(
        cfg, exec_times[np.newaxis], protocol=protocol, mapping=mapping,
        network=HockneyModel(),
    )
    assert np.array_equal(batch[0].completion, serial.completion)
    assert np.array_equal(batch[0].post_end, serial.post_end)
    assert batch.total_runtimes()[0] == serial.total_runtime()


class TestBatchApi:
    def test_rejects_wrong_rank_shape(self):
        cfg = LockstepConfig(n_ranks=4, n_steps=3)
        with np.testing.assert_raises(ValueError):
            simulate_lockstep_batch(cfg, np.zeros((2, 5, 3)))

    def test_rejects_2d_input(self):
        cfg = LockstepConfig(n_ranks=4, n_steps=3)
        with np.testing.assert_raises(ValueError):
            simulate_lockstep_batch(cfg, np.zeros((4, 3)))

    def test_rejects_mismatched_mapping(self):
        cfg = LockstepConfig(n_ranks=4, n_steps=3)
        mapping = ProcessMapping(
            topology=MachineTopology(n_nodes=3), n_ranks=6, ppn=2
        )
        with np.testing.assert_raises(ValueError):
            simulate_lockstep(cfg, mapping=mapping)

    def test_batch_index_bounds(self):
        cfg = LockstepConfig(n_ranks=4, n_steps=3)
        batch = simulate_lockstep_batch(
            cfg, np.full((2, 4, 3), 1e-3)
        )
        with np.testing.assert_raises(IndexError):
            batch[2]

    def test_meta_records_batch_size_and_hierarchy(self):
        cfg = LockstepConfig(n_ranks=4, n_steps=3)
        mapping = ProcessMapping(
            topology=MachineTopology(n_nodes=2), n_ranks=4, ppn=2
        )
        batch = simulate_lockstep_batch(
            cfg, np.full((3, 4, 3), 1e-3), network=HockneyModel(),
            mapping=mapping,
        )
        assert batch.meta["n_batch"] == 3
        assert batch.meta["hierarchical"] is True
        assert batch.meta["ppn"] == 2
