"""Property-based cross-simulator consistency.

The saturation simulator generalizes the lockstep engine: when the
contention model is inactive (per-core bandwidth binds, so phase durations
are fixed) and overheads are zeroed, its timing must coincide with the
lockstep engine run at the equivalent fixed phase length.  This pins the
two independent implementations against each other on their shared domain.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    Protocol,
    UniformNetwork,
    simulate_lockstep,
)
from repro.sim.saturation import SaturationConfig, simulate_saturation
from repro.sim.topology import single_switch_mapping

B_CORE = 5e9


@st.composite
def scenarios(draw):
    n_ranks = draw(st.integers(min_value=3, max_value=12))
    n_steps = draw(st.integers(min_value=2, max_value=8))
    direction = draw(st.sampled_from(list(Direction)))
    periodic = draw(st.booleans())
    t_flight = draw(st.sampled_from([0.0, 1e-5, 2e-3]))
    rendezvous = draw(st.booleans())
    phase = draw(st.sampled_from([1e-3, 3e-3]))
    n_delays = draw(st.integers(min_value=0, max_value=2))
    delays = tuple(
        DelaySpec(
            rank=draw(st.integers(min_value=0, max_value=n_ranks - 1)),
            step=draw(st.integers(min_value=0, max_value=n_steps - 1)),
            duration=draw(st.sampled_from([2e-3, 10e-3])),
        )
        for _ in range(n_delays)
    )
    return n_ranks, n_steps, direction, periodic, t_flight, rendezvous, phase, delays


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_saturation_reduces_to_lockstep_without_contention(scenario):
    n_ranks, n_steps, direction, periodic, t_flight, rendezvous, phase, delays = scenario
    pattern = CommPattern(direction=direction, distance=1, periodic=periodic)

    # Saturation config whose socket bandwidth never binds: each rank
    # streams work at exactly b_core, so phases last `phase` seconds.
    sat = SaturationConfig(
        mapping=single_switch_mapping(n_ranks, ppn=1),
        n_steps=n_steps,
        work_bytes=B_CORE * phase,
        b_core=B_CORE,
        b_socket=1e15,
        pattern=pattern,
        t_flight=t_flight,
        o_post=0.0,
        rendezvous=rendezvous,
        delays=delays,
    )
    res_sat = simulate_saturation(sat)

    # Equivalent lockstep run: fixed phases, zero overheads, pure flight.
    lock = LockstepConfig(
        n_ranks=n_ranks, n_steps=n_steps, t_exec=phase, msg_size=1,
        pattern=pattern, delays=delays,
    )
    net = UniformNetwork(latency=t_flight, bandwidth=1e30, overhead=0.0)
    protocol = Protocol.RENDEZVOUS if rendezvous else Protocol.EAGER
    res_lock = simulate_lockstep(lock, network=net, protocol=protocol)

    np.testing.assert_allclose(
        res_sat.exec_end, res_lock.exec_end, rtol=0, atol=1e-9,
        err_msg=f"exec_end mismatch: {scenario}",
    )
    np.testing.assert_allclose(
        res_sat.completion, res_lock.completion, rtol=0, atol=1e-9,
        err_msg=f"completion mismatch: {scenario}",
    )
