"""Property-based tests of idle-wave phenomenology.

Machine-checked versions of the paper's qualitative claims, quantified over
randomly drawn configurations:

- eager waves never propagate against the message direction,
- noise-free waves do not decay (amplitude conserved hop to hop),
- the wave front's arrival steps are non-decreasing in hop distance,
- total idle time of a delayed run is at least the injected delay times
  the number of affected neighbors (energy conservation lower bound).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import wave_front
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    Protocol,
    simulate_lockstep,
)

T = 3e-3


@st.composite
def delayed_configs(draw):
    n_ranks = draw(st.integers(min_value=6, max_value=20))
    source = draw(st.integers(min_value=1, max_value=n_ranks - 2))
    phases = draw(st.sampled_from([2.0, 4.5, 8.0]))
    direction = draw(st.sampled_from(list(Direction)))
    periodic = draw(st.booleans())
    n_steps = draw(st.integers(min_value=n_ranks, max_value=n_ranks + 10))
    cfg = LockstepConfig(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=T,
        msg_size=8192,
        pattern=CommPattern(direction=direction, distance=1, periodic=periodic),
        delays=(DelaySpec(rank=source, step=0, duration=phases * T),),
    )
    return cfg, source, phases


@given(delayed_configs())
@settings(max_examples=40, deadline=None)
def test_eager_unidirectional_never_propagates_backwards(scenario):
    cfg, source, _ = scenario
    if cfg.pattern.direction != Direction.UNIDIRECTIONAL:
        return
    run = simulate_lockstep(cfg, protocol=Protocol.EAGER)
    idle = run.idle_matrix()
    below = np.arange(cfg.n_ranks) < source
    if cfg.pattern.periodic:
        return  # the wave wraps around and legitimately reaches lower ranks
    assert idle[below].max() < 0.1 * T


@given(delayed_configs())
@settings(max_examples=40, deadline=None)
def test_noise_free_wave_amplitude_conserved(scenario):
    cfg, source, phases = scenario
    run = simulate_lockstep(cfg)
    front = wave_front(run, source, +1, periodic=cfg.pattern.periodic)
    if front.reach < 2:
        return
    np.testing.assert_allclose(front.amplitudes, phases * T, rtol=0.02)


@given(delayed_configs())
@settings(max_examples=40, deadline=None)
def test_wave_front_steps_nondecreasing(scenario):
    cfg, source, _ = scenario
    run = simulate_lockstep(cfg)
    for direction in (+1, -1):
        front = wave_front(run, source, direction, periodic=cfg.pattern.periodic)
        if front.reach >= 2:
            assert (np.diff(front.arrival_steps) >= 0).all()
            assert (np.diff(front.arrival_times) >= -1e-12).all()


@given(delayed_configs())
@settings(max_examples=40, deadline=None)
def test_total_idle_at_least_one_delay_worth(scenario):
    """At least the direct neighbor of the delayed rank idles for ~the delay."""
    cfg, source, phases = scenario
    run = simulate_lockstep(cfg)
    assert run.idle_matrix().sum() >= phases * T * 0.9
