"""Property-based structural invariants of simulated runs.

These hold for *every* admissible configuration:

- traces validate (no overlap, monotone, finite),
- per-rank completion times are strictly increasing over steps,
- adding a delay never makes any completion time earlier (monotonicity of
  the max-plus dynamics),
- removing all noise and delays yields the lockstep baseline,
- runs are deterministic given the seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    LockstepConfig,
    Protocol,
    simulate_lockstep,
)

T = 3e-3


@st.composite
def configs(draw, with_noise=True):
    n_ranks = draw(st.integers(min_value=3, max_value=16))
    n_steps = draw(st.integers(min_value=2, max_value=12))
    direction = draw(st.sampled_from(list(Direction)))
    periodic = draw(st.booleans())
    distance = draw(st.integers(min_value=1, max_value=min(2, (n_ranks - 1) // 2)))
    noise_mean = draw(st.sampled_from([0.0, 2e-4])) if with_noise else 0.0
    seed = draw(st.integers(min_value=0, max_value=1000))
    return LockstepConfig(
        n_ranks=n_ranks,
        n_steps=n_steps,
        t_exec=T,
        msg_size=8192,
        pattern=CommPattern(direction=direction, distance=distance, periodic=periodic),
        noise=ExponentialNoise(noise_mean),
        seed=seed,
    )


@given(configs())
@settings(max_examples=50, deadline=None)
def test_completion_strictly_increasing_per_rank(cfg):
    res = simulate_lockstep(cfg)
    assert (np.diff(res.completion, axis=1) > 0).all()


@given(configs())
@settings(max_examples=50, deadline=None)
def test_phase_ordering_within_step(cfg):
    res = simulate_lockstep(cfg)
    assert (res.exec_end >= res.exec_start).all()
    assert (res.post_end >= res.exec_end).all()
    assert (res.completion >= res.post_end - 1e-15).all()


@given(configs(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_deterministic_given_seed(cfg, _unused):
    a = simulate_lockstep(cfg)
    b = simulate_lockstep(cfg)
    np.testing.assert_array_equal(a.completion, b.completion)


@given(configs(with_noise=False), st.data())
@settings(max_examples=50, deadline=None)
def test_delay_injection_is_monotone(cfg, data):
    """Adding a delay can only push completions later, never earlier."""
    base = simulate_lockstep(cfg)
    rank = data.draw(st.integers(min_value=0, max_value=cfg.n_ranks - 1))
    step = data.draw(st.integers(min_value=0, max_value=cfg.n_steps - 1))
    cfg_d = LockstepConfig(
        n_ranks=cfg.n_ranks, n_steps=cfg.n_steps, t_exec=cfg.t_exec,
        msg_size=cfg.msg_size, pattern=cfg.pattern, noise=cfg.noise,
        seed=cfg.seed,
        delays=(DelaySpec(rank=rank, step=step, duration=5 * T),),
    )
    delayed = simulate_lockstep(cfg_d)
    assert (delayed.completion >= base.completion - 1e-15).all()
    # The delayed rank's *execution* end is pushed by the full delay (its
    # Waitall may grow by less: the delay absorbs the previous wait slack).
    assert delayed.exec_end[rank, step] >= base.exec_end[rank, step] + 5 * T - 1e-12


@given(configs(with_noise=False))
@settings(max_examples=40, deadline=None)
def test_noise_free_run_has_negligible_idle(cfg):
    """Perfect balance -> only microsecond-scale communication waits."""
    res = simulate_lockstep(cfg)
    assert res.idle_matrix().max() < 0.05 * T


@given(configs())
@settings(max_examples=40, deadline=None)
def test_rendezvous_never_faster_than_eager(cfg):
    """Extra synchronization cannot reduce the total runtime."""
    eager = simulate_lockstep(cfg, protocol=Protocol.EAGER)
    rdv = simulate_lockstep(cfg, protocol=Protocol.RENDEZVOUS)
    assert rdv.total_runtime() >= eager.total_runtime() - 1e-15
