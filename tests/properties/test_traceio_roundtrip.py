"""Property-based round-trip test for trace serialization."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    LockstepConfig,
    SimConfig,
    build_lockstep_program,
    simulate,
)
from repro.sim.traceio import read_jsonl, write_jsonl

T = 3e-3


@st.composite
def traces(draw):
    n_ranks = draw(st.integers(min_value=2, max_value=8))
    n_steps = draw(st.integers(min_value=1, max_value=5))
    direction = draw(st.sampled_from(list(Direction)))
    periodic = draw(st.booleans())
    noise = ExponentialNoise(draw(st.sampled_from([0.0, 1e-4])))
    n_delays = draw(st.integers(min_value=0, max_value=1))
    delays = tuple(
        DelaySpec(
            rank=draw(st.integers(min_value=0, max_value=n_ranks - 1)),
            step=draw(st.integers(min_value=0, max_value=n_steps - 1)),
            duration=5 * T,
        )
        for _ in range(n_delays)
    )
    cfg = LockstepConfig(
        n_ranks=n_ranks, n_steps=n_steps, t_exec=T,
        pattern=CommPattern(direction=direction, distance=1, periodic=periodic),
        noise=noise, delays=delays,
        seed=draw(st.integers(min_value=0, max_value=100)),
    )
    return simulate(build_lockstep_program(cfg), SimConfig())


@given(traces())
@settings(max_examples=25, deadline=None)
def test_jsonl_roundtrip_is_lossless(trace):
    buf = io.StringIO()
    write_jsonl(trace, buf)
    buf.seek(0)
    back = read_jsonl(buf)

    assert (back.n_ranks, back.n_steps) == (trace.n_ranks, trace.n_steps)
    assert len(back.records) == len(trace.records)
    for a, b in zip(trace.records, back.records):
        assert (a.rank, a.step, a.kind, a.peer, a.size) == (
            b.rank, b.step, b.kind, b.peer, b.size
        )
        # float repr round-trips exactly through JSON
        assert a.start == b.start and a.end == b.end
    np.testing.assert_array_equal(back.idle_matrix(), trace.idle_matrix())
    back.validate()
