"""Property-based contract: faults never change campaign bytes.

The fault-tolerance layer promises that retries, worker crashes, and
resume are *invisible in the data*: a chaotic parallel campaign must
persist byte-identical store records to a fault-free serial run of the
same sweep, and a resumed campaign must replay cached values bit-exactly.
Any divergence would mean injected faults leak into results — the one
failure mode a reproducibility harness can never have.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import (
    ChaosSpec,
    ResultStore,
    RetryPolicy,
    SweepSpec,
    chaos,
    run_campaign,
)

PROBE = "repro.runtime.tasks:rng_probe_task"


def _sweep(n_tasks, base_seed):
    return SweepSpec(
        fn=PROBE,
        base={"n": 3},
        axes=(("replicate", tuple(range(n_tasks))),),
        base_seed=base_seed,
    )


def _store_bytes(root):
    return {p.relative_to(root): p.read_bytes()
            for p in sorted(root.rglob("*.json"))}


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(chaos_seed=st.integers(min_value=0, max_value=2**32 - 1),
       base_seed=st.integers(min_value=0, max_value=2**16),
       n_tasks=st.integers(min_value=4, max_value=10))
def test_chaotic_parallel_run_is_byte_identical_to_clean_serial(
        tmp_path_factory, chaos_seed, base_seed, n_tasks):
    tmp_path = tmp_path_factory.mktemp("chaos-parity")
    tasks = _sweep(n_tasks, base_seed).tasks()

    clean_store = ResultStore(tmp_path / "clean")
    clean = run_campaign(tasks, jobs=1, store=clean_store)
    assert not clean.failures

    chaos.install(ChaosSpec(seed=chaos_seed, crash_rate=0.4,
                            max_faults_per_task=2))
    try:
        chaotic_store = ResultStore(tmp_path / "chaotic")
        chaotic = run_campaign(tasks, jobs=2, store=chaotic_store,
                               retry=RetryPolicy(retries=2, backoff_s=0.001))
    finally:
        chaos.uninstall()

    assert not chaotic.failures
    assert chaotic.values() == clean.values()
    assert _store_bytes(tmp_path / "chaotic") == _store_bytes(tmp_path / "clean")


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(base_seed=st.integers(min_value=0, max_value=2**16),
       n_tasks=st.integers(min_value=4, max_value=10),
       n_keep=st.integers(min_value=1, max_value=3))
def test_resumed_campaign_replays_cached_values_bit_exactly(
        tmp_path_factory, base_seed, n_tasks, n_keep):
    """Golden replay: drop all but ``n_keep`` records from a finished
    campaign's store, rerun, and the completed campaign must be
    value-identical to the original — with the kept records served from
    cache, untouched on disk."""
    tmp_path = tmp_path_factory.mktemp("resume-replay")
    tasks = _sweep(n_tasks, base_seed).tasks()

    store = ResultStore(tmp_path / "cache")
    first = run_campaign(tasks, jobs=1, store=store)
    assert not first.failures

    keys = sorted(store.keys())
    for key in keys[min(n_keep, len(keys)):]:
        store.path_for(key).unlink()
    kept = _store_bytes(tmp_path / "cache")

    resumed = run_campaign(tasks, jobs=1, store=ResultStore(tmp_path / "cache"))
    assert not resumed.failures
    assert resumed.n_cached == min(n_keep, len(keys))
    assert resumed.values() == first.values()
    after = _store_bytes(tmp_path / "cache")
    for path, payload in kept.items():
        assert after[path] == payload
