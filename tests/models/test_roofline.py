"""Unit tests for the Roofline model."""

import pytest

from repro.models.roofline import RooflineModel


@pytest.fixture
def model():
    # Ivy Bridge-like: 17.6 GF/s per core, 40 GB/s socket.
    return RooflineModel(peak_flops=17.6e9, mem_bandwidth=40e9)


class TestPerformance:
    def test_memory_bound_capped_by_bandwidth(self, model):
        # STREAM triad: 2 flops / 24 bytes = 1/12 flop/byte.
        intensity = 2 / 24
        p = model.performance(intensity, cores=10)
        assert p == pytest.approx(intensity * 40e9)

    def test_compute_bound_capped_by_peak(self, model):
        p = model.performance(intensity=100.0, cores=1)
        assert p == pytest.approx(17.6e9)

    def test_peak_scales_with_cores(self, model):
        assert model.performance(100.0, cores=4) == pytest.approx(4 * 17.6e9)

    def test_invalid_args(self, model):
        with pytest.raises(ValueError):
            model.performance(-1.0)
        with pytest.raises(ValueError):
            model.performance(1.0, cores=0)


class TestRuntime:
    def test_overlap_maximum(self, model):
        # 1e9 flops over 1e9 bytes on one core:
        t = model.runtime(flops=1e9, bytes_moved=1e9, cores=1)
        assert t == pytest.approx(max(1e9 / 17.6e9, 1e9 / 40e9))

    def test_memory_dominates_for_streaming(self, model):
        t = model.runtime(flops=2e6, bytes_moved=24e6, cores=10)
        assert t == pytest.approx(24e6 / 40e9)


class TestBoundaries:
    def test_is_memory_bound(self, model):
        assert model.is_memory_bound(2 / 24, cores=10)
        assert not model.is_memory_bound(100.0, cores=1)

    def test_saturation_cores(self, model):
        # Per-core roofline crossing at 40e9 * (2/24) / 17.6e9 -> 1 core
        # already below bandwidth limit for high intensity.
        cores = model.saturation_cores(2 / 24)
        assert cores == 1  # bandwidth-bound even on one core at this peak

    def test_saturation_cores_for_moderate_intensity(self):
        model = RooflineModel(peak_flops=4e9, mem_bandwidth=40e9)
        # flops per core low: need several cores to exhaust 40 GB/s * I.
        assert model.saturation_cores(1.0) == 10

    def test_invalid_constructor(self):
        with pytest.raises(ValueError):
            RooflineModel(peak_flops=0, mem_bandwidth=1)
