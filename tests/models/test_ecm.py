"""Unit tests for the simplified ECM model."""

import pytest

from repro.models.ecm import ECMModel


@pytest.fixture
def triad_ecm():
    """Rough Ivy Bridge STREAM-triad-like ECM inputs (cycles per CL)."""
    return ECMModel(t_ol=4.0, t_nol=4.0, t_l1l2=6.0, t_l2l3=6.0, t_l3mem=8.0,
                    clock_hz=2.2e9, cacheline_bytes=64)


class TestComposition:
    def test_memory_cycles_non_overlapping_sum(self, triad_ecm):
        assert triad_ecm.cycles_per_cl_memory() == pytest.approx(4 + 6 + 6 + 8)

    def test_overlap_wins_when_core_bound(self):
        m = ECMModel(t_ol=100.0, t_nol=1.0, t_l1l2=1.0, t_l2l3=1.0, t_l3mem=1.0)
        assert m.cycles_per_cl_memory() == pytest.approx(100.0)

    def test_single_core_bandwidth(self, triad_ecm):
        bw = triad_ecm.single_core_bandwidth()
        assert bw == pytest.approx(64 * 2.2e9 / 24)

    def test_single_core_runtime(self, triad_ecm):
        t = triad_ecm.single_core_runtime(1e9)
        assert t == pytest.approx(1e9 / triad_ecm.single_core_bandwidth())


class TestMulticore:
    def test_linear_until_saturation(self, triad_ecm):
        b1 = triad_ecm.single_core_bandwidth()
        t1 = triad_ecm.multicore_runtime(1e9, cores=1, b_socket=40e9)
        t2 = triad_ecm.multicore_runtime(1e9, cores=2, b_socket=40e9)
        assert t2 == pytest.approx(t1 / 2)

    def test_saturated_at_socket_roof(self, triad_ecm):
        t = triad_ecm.multicore_runtime(1e9, cores=10, b_socket=40e9)
        assert t == pytest.approx(1e9 / 40e9)

    def test_saturation_cores(self, triad_ecm):
        cores = triad_ecm.saturation_cores(40e9)
        b1 = triad_ecm.single_core_bandwidth()
        assert (cores - 1) * b1 < 40e9 <= cores * b1


class TestValidation:
    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            ECMModel(t_ol=-1, t_nol=0, t_l1l2=0, t_l2l3=0, t_l3mem=0)

    def test_invalid_multicore_args(self, triad_ecm):
        with pytest.raises(ValueError):
            triad_ecm.multicore_runtime(1e9, cores=0, b_socket=40e9)
        with pytest.raises(ValueError):
            triad_ecm.multicore_runtime(1e9, cores=1, b_socket=0)
