"""Unit tests for the Hockney model and the paper's Eq. 1."""

import pytest

from repro.models.hockney import (
    HockneyCommModel,
    nonoverlap_runtime,
    triad_strong_scaling_model,
)


class TestHockneyCommModel:
    def test_time_formula(self):
        m = HockneyCommModel(latency=1e-6, bandwidth=3e9)
        assert m.time(3e6) == pytest.approx(1e-6 + 1e-3)

    def test_effective_bandwidth_approaches_asymptote(self):
        m = HockneyCommModel(latency=1e-6, bandwidth=3e9)
        assert m.effective_bandwidth(1e9) == pytest.approx(3e9, rel=0.01)
        assert m.effective_bandwidth(100) < 0.1 * 3e9

    def test_half_performance_length(self):
        m = HockneyCommModel(latency=1e-6, bandwidth=3e9)
        n_half = m.half_performance_length()
        assert m.effective_bandwidth(n_half) == pytest.approx(1.5e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            HockneyCommModel(latency=-1, bandwidth=1)
        with pytest.raises(ValueError):
            HockneyCommModel(latency=0, bandwidth=0)


class TestEq1:
    def test_paper_defaults_at_one_socket(self):
        # T(1) = 1.2e9/40e9 + 2*2e6/3e9 = 30 ms + 1.33 ms
        t = triad_strong_scaling_model(1)
        assert t == pytest.approx(1.2e9 / 40e9 + 4e6 / 3e9)

    def test_execution_term_scales_communication_does_not(self):
        t1 = triad_strong_scaling_model(1)
        t2 = triad_strong_scaling_model(2)
        comm = 4e6 / 3e9
        assert t1 - comm == pytest.approx(2 * (t2 - comm))

    def test_performance_model_shape(self):
        """Eq. 1 predicts sublinear scaling: comm floor limits speedup."""
        flops = 2 * 5e7
        p = [flops / triad_strong_scaling_model(n) for n in (1, 4, 16)]
        assert p[1] > p[0] and p[2] > p[1]
        assert p[2] / p[0] < 16  # far below linear

    def test_validation(self):
        with pytest.raises(ValueError):
            triad_strong_scaling_model(0)
        with pytest.raises(ValueError):
            triad_strong_scaling_model(1, b_mem=0)


class TestNonoverlapRuntime:
    def test_sum(self):
        assert nonoverlap_runtime(3e-3, 1e-3) == pytest.approx(4e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            nonoverlap_runtime(-1, 0)
