"""Unit tests for LogP/LogGP/LogGOPS parameter sets."""

import pytest

from repro.models.loggops import LogGOPSParams, LogGPParams, LogPParams
from repro.sim.topology import CommDomain


class TestLogP:
    def test_message_time(self):
        p = LogPParams(L=1e-6, o=2e-7, g=1e-6, P=16)
        assert p.message_time() == pytest.approx(1.4e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogPParams(L=-1, o=0, g=0, P=2)
        with pytest.raises(ValueError):
            LogPParams(L=0, o=0, g=0, P=0)


class TestLogGP:
    def test_message_time_includes_per_byte_gap(self):
        p = LogGPParams(L=1e-6, o=2e-7, g=1e-6, G=1e-9, P=16)
        t1 = p.message_time(1)
        t1k = p.message_time(1001)
        assert t1k - t1 == pytest.approx(1000 * 1e-9)

    def test_bandwidth_inverse_of_G(self):
        p = LogGPParams(L=0, o=0, g=0, G=2e-10, P=2)
        assert p.bandwidth() == pytest.approx(5e9)

    def test_zero_G_infinite_bandwidth(self):
        p = LogGPParams(L=0, o=0, g=0, G=0, P=2)
        assert p.bandwidth() == float("inf")

    def test_size_validation(self):
        p = LogGPParams(L=0, o=0, g=0, G=0, P=2)
        with pytest.raises(ValueError):
            p.message_time(0)


class TestLogGOPS:
    def params(self):
        return LogGOPSParams(L=1e-6, o=2e-7, g=1e-6, G=3.3e-10, O=5e-11,
                             S=65536, P=16)

    def test_overhead_grows_with_size(self):
        p = self.params()
        assert p.overhead_time(0) == pytest.approx(2e-7)
        assert p.overhead_time(10_000) > p.overhead_time(0)

    def test_rendezvous_threshold(self):
        p = self.params()
        assert not p.is_rendezvous(65536)
        assert p.is_rendezvous(65537)

    def test_message_time_composition(self):
        p = self.params()
        s = 1000
        expected = 2 * (2e-7 + s * 5e-11) + 1e-6 + (s - 1) * 3.3e-10
        assert p.message_time(s) == pytest.approx(expected)

    def test_to_uniform_network_preserves_message_cost(self):
        p = self.params()
        net = p.to_uniform_network()
        s = 100_000
        # Total pingpong cost should match the LogGOPS message time closely
        # (the O-term is folded into bandwidth).
        assert net.total_pingpong_time(s, CommDomain.INTER_NODE) == pytest.approx(
            p.message_time(s), rel=0.01
        )
