"""Obs test hygiene: never leak a live event bus between tests."""

import pytest

from repro.obs import events


@pytest.fixture(autouse=True)
def no_bus_leak():
    events.disable()
    yield
    events.disable()
