"""Run tracker + ledger: record fields, atomic append, lookup, session."""

import io
import json

import pytest

from repro.obs import events
from repro.obs.ledger import (
    RUN_RECORD_VERSION,
    RunLedger,
    RunTracker,
    new_run_id,
    render_run_summary,
)
from repro.obs.session import observe_run


def tracked(*stream):
    bus = events.enable()
    tracker = RunTracker()
    bus.subscribe(tracker.handle)
    for name, data in stream:
        bus.emit(name, **data)
    events.disable()
    return tracker


SWEEP_STREAM = [
    ("run.start", {"kind": "scenario.sweep", "name": "rate_sweep",
                   "n_tasks": 4, "spec_key": "abc123", "seed_root": 7,
                   "engine": "dag", "jobs": 2}),
    ("task.submit", {"index": 0}),
    ("task.cache_hit", {"index": 0}),
    ("task.done", {"index": 1}),
    ("task.done", {"index": 2}),
    ("task.failed", {"index": 3}),
    ("run.finish", {"status": "failed"}),
]


class TestRunTracker:
    def test_accumulates_totals_from_the_stream(self):
        t = tracked(*SWEEP_STREAM)
        assert (t.kind, t.name, t.n_tasks) == (
            "scenario.sweep", "rate_sweep", 4)
        assert (t.spec_key, t.seed_root, t.engine, t.jobs) == (
            "abc123", 7, "dag", 2)
        assert (t.n_done, t.n_cached, t.n_failed) == (4, 1, 1)
        assert t.failed_tasks == [3]
        assert t.run_finished and t.finish_status == "failed"
        assert t.n_events == len(SWEEP_STREAM)

    def test_first_run_start_wins(self):
        t = tracked(
            ("run.start", {"kind": "scenario.sweep", "n_tasks": 12}),
            ("run.start", {"kind": "scenario.run", "n_tasks": 1}),
        )
        assert t.kind == "scenario.sweep"
        assert t.n_tasks == 12

    def test_record_economics(self):
        t = tracked(*SWEEP_STREAM)
        r = t.record(run_id="sweep-x", status="failed", kind="k", name="n",
                     wall_s=1.5, started_unix=100.0, finished_unix=101.5)
        assert r["version"] == RUN_RECORD_VERSION
        assert r["id"] == "sweep-x"
        assert r["n_tasks"] == 4
        assert r["n_cached"] == 1
        assert r["n_executed"] == 2  # done - cached - failed
        assert r["n_failed"] == 1
        assert r["cache_hit_rate"] == pytest.approx(0.25)
        assert r["failed_tasks"] == [3]
        json.dumps(r)  # must be JSON-serializable as-is

    def test_record_falls_back_to_cli_kind_and_name(self):
        t = tracked(("task.done", {"index": 0}))
        r = t.record(run_id="x", status="ok", kind="report.run",
                     name="fig7", wall_s=0.1, started_unix=0, finished_unix=0)
        assert r["kind"] == "report.run"
        assert r["name"] == "fig7"
        assert r["n_tasks"] == 1  # falls back to observed completions

    def test_failure_summaries_are_bounded(self):
        t = RunTracker()
        for i in range(50):
            t.note_failure(f"boom {i}")
        assert len(t.failures) == 8

    def test_out_of_band_provenance(self):
        t = RunTracker()
        t.add_artifact("/out/table.csv")
        t.set_telemetry("/cache/telemetry/run.jsonl")
        r = t.record(run_id="x", status="ok", kind="k", name="n",
                     wall_s=0, started_unix=0, finished_unix=0)
        assert r["artifacts"] == ["/out/table.csv"]
        assert r["telemetry"] == "/cache/telemetry/run.jsonl"


class TestRunId:
    def test_shape_and_uniqueness(self):
        a = new_run_id("scenario.sweep", 1754650000.0)
        b = new_run_id("scenario.sweep", 1754650000.0)
        assert a.startswith("sweep-20250808T")
        assert a != b  # uuid suffix

    def test_unqualified_kind(self):
        assert new_run_id("adhoc", 0.0).startswith("adhoc-1970")


class TestRenderRunSummary:
    def test_ok_line(self):
        line = render_run_summary({
            "id": "sweep-x", "status": "ok", "n_tasks": 12,
            "n_failed": 0, "n_cached": 4, "wall_s": 1.234})
        assert line == ("[run sweep-x: 12 task(s), 0 failed, "
                        "4 cache hit(s), 1.23s]")

    def test_failed_status_is_shouted(self):
        line = render_run_summary({
            "id": "run-y", "status": "failed", "n_tasks": 1,
            "n_failed": 1, "n_cached": 0, "wall_s": 0.0})
        assert "run-y FAILED" in line


class TestRunLedger:
    def rec(self, run_id, started=100.0, **kw):
        base = {"id": run_id, "status": "ok", "started_unix": started}
        base.update(kw)
        return base

    def test_append_writes_one_sorted_json_line(self, tmp_path):
        ledger = RunLedger(tmp_path)
        path = ledger.append(self.rec("sweep-a"))
        assert path == tmp_path / "runs" / "sweep-a.json"
        text = path.read_text()
        assert text.endswith("\n") and text.count("\n") == 1
        assert json.loads(text)["id"] == "sweep-a"
        # no abandoned temp files
        assert sorted(p.name for p in path.parent.iterdir()) == [
            "sweep-a.json"]

    def test_records_sorted_by_start_then_id(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self.rec("b-late", started=200.0))
        ledger.append(self.rec("a-early", started=100.0))
        assert [r["id"] for r in ledger.records()] == ["a-early", "b-late"]

    def test_torn_records_are_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self.rec("sweep-a"))
        (tmp_path / "runs" / "torn.json").write_text('{"id": "tor')
        assert [r["id"] for r in ledger.records()] == ["sweep-a"]

    def test_find_exact_prefix_and_errors(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(self.rec("sweep-20260808-aaa"))
        ledger.append(self.rec("sweep-20260808-bbb"))
        assert ledger.find("sweep-20260808-aaa")["id"] == "sweep-20260808-aaa"
        assert ledger.find("sweep-20260808-b")["id"] == "sweep-20260808-bbb"
        with pytest.raises(KeyError, match="ambiguous"):
            ledger.find("sweep-")
        with pytest.raises(KeyError, match="no run"):
            ledger.find("nope")

    def test_tail_returns_most_recent(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for i in range(5):
            ledger.append(self.rec(f"r-{i}", started=float(i)))
        assert [r["id"] for r in ledger.tail(2)] == ["r-3", "r-4"]

    def test_missing_dir_yields_nothing(self, tmp_path):
        assert list(RunLedger(tmp_path / "nowhere").records()) == []


class TestObserveRun:
    def test_ok_run_writes_record_and_echoes_summary(self, tmp_path):
        lines = []
        with observe_run("scenario.sweep", "rate_sweep", cache_dir=tmp_path,
                         progress=False, echo=lines.append):
            events.emit("run.start", kind="scenario.sweep",
                        name="rate_sweep", n_tasks=2, spec_key="k1")
            events.emit("task.done", index=0)
            events.emit("task.done", index=1)
            events.emit("run.finish", status="ok")
        assert not events.enabled()  # bus torn down
        records = list(RunLedger(tmp_path).records())
        assert len(records) == 1
        r = records[0]
        assert r["status"] == "ok"
        assert r["spec_key"] == "k1"
        assert r["n_tasks"] == 2 and r["n_executed"] == 2
        assert lines[0] == render_run_summary(r)
        assert "[run recorded in " in lines[1]

    def test_crashed_run_is_recorded_as_failed(self, tmp_path):
        lines = []
        with pytest.raises(RuntimeError, match="mid-run crash"):
            with observe_run("scenario.run", "fig4", cache_dir=tmp_path,
                             progress=False, echo=lines.append):
                events.emit("run.start", kind="scenario.run", n_tasks=1)
                raise RuntimeError("mid-run crash")
        (r,) = RunLedger(tmp_path).records()
        assert r["status"] == "failed"
        assert r["failures"] == ["RuntimeError: mid-run crash"]
        assert "FAILED" in lines[0]

    def test_no_cache_dir_still_prints_summary(self):
        lines = []
        with observe_run("scenario.run", "fig4", cache_dir=None,
                         progress=False, echo=lines.append):
            events.emit("run.start", kind="scenario.run", n_tasks=1)
            events.emit("task.done", index=0)
            events.emit("run.finish", status="ok")
        assert len(lines) == 1 and lines[0].startswith("[run run-")

    def test_progress_renderer_writes_to_given_stream(self, tmp_path):
        out = io.StringIO()
        with observe_run("scenario.sweep", "s", cache_dir=None,
                         progress=True, stream=out, echo=None):
            events.emit("run.start", kind="scenario.sweep", n_tasks=2)
            events.emit("task.done", index=0)
        assert "\r" in out.getvalue()
        # finish() painted the final state and terminated the line
        assert out.getvalue().endswith("\n")

    def test_progress_auto_off_for_non_tty_stream(self):
        out = io.StringIO()  # io.StringIO.isatty() is False
        with observe_run("scenario.sweep", "s", cache_dir=None,
                         stream=out, echo=None):
            events.emit("run.start", kind="scenario.sweep", n_tasks=1)
            events.emit("task.done", index=0)
        assert out.getvalue() == ""
