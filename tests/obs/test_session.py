"""observe_run: ledger persistence across ok / failed / interrupted exits."""

import json

import pytest

from repro.obs import observe_run
from repro.obs.ledger import RUN_RECORD_VERSION


def _records(cache):
    return [json.loads(p.read_text())
            for p in sorted((cache / "runs").glob("*.json"))]


class TestExitStatus:
    def test_clean_run_records_ok(self, tmp_path):
        with observe_run("scenario.sweep", "demo", cache_dir=tmp_path,
                         progress=False, echo=None):
            pass
        (record,) = _records(tmp_path)
        assert record["status"] == "ok"
        assert record["version"] == RUN_RECORD_VERSION

    def test_keyboard_interrupt_records_interrupted_and_reraises(
            self, tmp_path):
        """^C persists a ledger record marked interrupted — the hook
        ``--resume`` later keys off — and still propagates the ^C."""
        with pytest.raises(KeyboardInterrupt):
            with observe_run("scenario.sweep", "demo", cache_dir=tmp_path,
                             progress=False, echo=None):
                raise KeyboardInterrupt
        (record,) = _records(tmp_path)
        assert record["status"] == "interrupted"
        # An interruption is not a crash: no failure summary is invented.
        assert record["failures"] == []

    def test_crash_records_failed_with_summary(self, tmp_path):
        with pytest.raises(RuntimeError):
            with observe_run("scenario.sweep", "demo", cache_dir=tmp_path,
                             progress=False, echo=None):
                raise RuntimeError("boom")
        (record,) = _records(tmp_path)
        assert record["status"] == "failed"
        assert any("boom" in f for f in record["failures"])
