"""Event semantics under the campaign runtime: ordering, pool merge,
fallback/died-block accounting, and content determinism.

The core invariants (ISSUE 7): every task reaches exactly one terminal
event (``done``/``failed``/``cache_hit``) regardless of backend; worker
events merge back through the pickled result channel alongside telemetry
snapshots; a failed block's per-task fallback never double-counts; and
for a fixed seed with ``--jobs 1`` the identity stream is reproducible.
"""

import pytest

from repro.obs import events
from repro.runtime import ResultStore, run_campaign
from repro.scenarios import (
    ScenarioTaskBatcher,
    load_bundled_scenario,
    run_scenario_sweep,
    scenario_sweep_spec,
)


def sweep_tasks(**kw):
    return scenario_sweep_spec(
        load_bundled_scenario("campaign_rate_sweep"), **kw).tasks()


class ExplodingBatcher(ScenarioTaskBatcher):
    def execute(self, specs):
        raise RuntimeError("batch infrastructure down")


class UnreturnableResultBatcher(ScenarioTaskBatcher):
    """Correct values poisoned with an unpicklable payload — the block's
    future dies on the way back from the worker."""

    def execute(self, specs):
        values = [dict(v) for v in super().execute(specs)]
        for v in values:
            v["poison"] = lambda: None  # not picklable
        return values


def observed_campaign(tasks, **kw):
    bus = events.enable()
    try:
        campaign = run_campaign(tasks, **kw)
    finally:
        events.disable()
    return campaign, bus


def terminal_indexes(bus, name="task.done"):
    return [e[4]["index"] for e in bus.events if e[1] == name]


class TestSerialEventStream:
    def test_batched_serial_counts(self):
        tasks = sweep_tasks()  # 12 tasks in 3 replicate blocks
        campaign, bus = observed_campaign(
            tasks, jobs=1, batcher=ScenarioTaskBatcher())
        assert not campaign.failures
        assert bus.counts() == {
            "block.dispatch": 3, "task.submit": 12, "task.done": 12}
        assert sorted(terminal_indexes(bus)) == list(range(12))

    def test_unbatched_serial_emits_task_start_per_task(self):
        tasks = sweep_tasks()
        campaign, bus = observed_campaign(tasks, jobs=1)
        assert bus.counts() == {
            "task.submit": 12, "task.start": 12, "task.done": 12}

    def test_submit_precedes_terminal_for_every_task(self):
        tasks = sweep_tasks()
        _, bus = observed_campaign(
            tasks, jobs=1, batcher=ScenarioTaskBatcher())
        submitted = set()
        for _, name, _, _, data in bus.events:
            if name == "task.submit":
                submitted.add(data["index"])
            elif name == "task.done":
                assert data["index"] in submitted

    def test_cache_hits_emit_their_own_terminal_event(self, tmp_path):
        tasks = sweep_tasks()
        store = ResultStore(tmp_path / "store")
        run_campaign(tasks, jobs=1, store=store)  # cold, unobserved
        campaign, bus = observed_campaign(tasks, jobs=1, store=store)
        assert campaign.n_cached == 12
        counts = bus.counts()
        assert counts["task.cache_hit"] == 12
        assert "task.done" not in counts


class TestPoolEventMerge:
    def test_pool_terminal_events_match_serial(self):
        tasks = sweep_tasks()
        serial, serial_bus = observed_campaign(
            tasks, jobs=1, batcher=ScenarioTaskBatcher())
        pool, pool_bus = observed_campaign(
            tasks, jobs=2, batcher=ScenarioTaskBatcher())
        assert pool.values() == serial.values()
        # Health events (worker.heartbeat/task.stall) are pool-only by
        # design; the lifecycle stream itself must match serial exactly.
        pool_counts = {name: n for name, n in pool_bus.counts().items()
                       if not name.startswith("worker.")
                       and name != "task.stall"}
        assert pool_counts == serial_bus.counts()
        assert sorted(terminal_indexes(pool_bus)) == list(range(12))

    def test_unbatched_pool_merges_worker_task_starts(self):
        tasks = sweep_tasks()
        _, bus = observed_campaign(tasks, jobs=2)
        counts = bus.counts()
        assert counts["task.start"] == 12  # shipped back from workers
        assert counts["task.done"] == 12

    def test_pool_merges_telemetry_and_events_together(self):
        """Both observation channels ride the same result tuples."""
        from repro import telemetry

        tasks = sweep_tasks()
        telemetry.enable()
        try:
            _, bus = observed_campaign(
                tasks, jobs=2, batcher=ScenarioTaskBatcher())
            rec = telemetry.current_recorder()
            span_names = {s[2] for s in rec.spans}
        finally:
            telemetry.disable()
        assert "executor.block" in span_names  # worker span merged
        assert bus.counts()["task.done"] == 12  # worker events merged


class TestFallbackAccounting:
    def test_broken_batch_fallback_counts_each_task_once(self):
        tasks = sweep_tasks()
        bus = events.enable()
        try:
            with pytest.warns(RuntimeWarning,
                              match="batch infrastructure down"):
                campaign = run_campaign(tasks, jobs=1,
                                        batcher=ExplodingBatcher())
        finally:
            events.disable()
        assert not campaign.failures
        counts = bus.counts()
        assert counts["block.fallback"] == 3
        assert counts["task.done"] == 12
        assert counts["task.start"] == 12  # fallback runs per task
        assert sorted(terminal_indexes(bus)) == list(range(12))

    def test_died_block_retry_terminals_stay_unique(self):
        """A block whose future dies re-enqueues singletons: extra
        submits are expected, but each task's terminal event is unique."""
        tasks = sweep_tasks()
        bus = events.enable()
        try:
            with pytest.warns(RuntimeWarning, match="retrying per task"):
                campaign = run_campaign(tasks, jobs=2,
                                        batcher=UnreturnableResultBatcher())
        finally:
            events.disable()
        assert not campaign.failures
        counts = bus.counts()
        assert counts["task.done"] == 12
        assert "task.failed" not in counts
        assert counts["task.submit"] > 12  # retries re-submit
        assert sorted(terminal_indexes(bus)) == list(range(12))

    def test_failing_task_emits_task_failed(self):
        from repro.runtime import RunSpec

        bad = (RunSpec(fn="repro.runtime.tasks:no_such_task",
                       params=(), seed=0, index=0),)
        bus = events.enable()
        try:
            campaign = run_campaign(bad, jobs=1)
        finally:
            events.disable()
        assert campaign.failures
        assert bus.counts()["task.failed"] == 1


class TestDeterminism:
    def test_serial_identity_streams_are_reproducible(self):
        spec = load_bundled_scenario("campaign_rate_sweep")

        def identity():
            bus = events.enable()
            try:
                run_scenario_sweep(spec, engine="dag", jobs=1)
            finally:
                events.disable()
            return bus.identity()

        first = identity()
        second = identity()
        assert first == second
        names = [name for _, name, _ in first]
        assert names[0] == "run.start"
        assert names[-1] == "run.finish"

    def test_run_start_payload_carries_provenance(self):
        spec = load_bundled_scenario("campaign_rate_sweep")
        bus = events.enable()
        try:
            run_scenario_sweep(spec, engine="dag", jobs=1)
        finally:
            events.disable()
        (start,) = [e for e in bus.events if e[1] == "run.start"]
        data = start[4]
        assert data["kind"] == "scenario.sweep"
        assert data["name"] == spec.name
        assert data["n_tasks"] == 12
        assert data["engine"] == "dag"
        assert len(data["spec_key"]) == 32

    def test_nested_scenario_runs_stay_silent_inside_a_sweep(self):
        """scenario_task -> run_scenario inside a sweep must not emit a
        nested run lifecycle (serial or pooled)."""
        spec = load_bundled_scenario("campaign_rate_sweep")
        for jobs in (1, 2):
            bus = events.enable()
            try:
                run_scenario_sweep(spec, jobs=jobs)
            finally:
                events.disable()
            assert bus.counts()["run.start"] == 1
            assert bus.counts()["run.finish"] == 1
