"""`repro-experiment runs` end to end: real sweeps writing real ledgers.

The headline acceptance (ISSUE 7): after a swept run, ``runs show``
reconstructs the spec key, seed root, cache-hit rate, and artifact
paths from the ledger alone — and the exit summary the sweep printed
came from the very record ``runs show`` reads back.
"""

import json
import re

import pytest

from repro.cli import main
from repro.obs.cli import runs_main
from repro.obs.ledger import RunLedger
from repro.scenarios.cli import scenario_main

SWEEP = """\
description = "ledger acceptance sweep"
n_ranks = 8
n_steps = 10
outputs = ["runtime"]

[machine]
preset = "simulated"

[workload]
kind = "synthetic"
t_exec = 3e-3

[comm]
direction = "bidirectional"
distance = 1
periodic = true
msg_size = 8192
protocol = "eager"

[noise]
model = "none"

[campaign]
rate = 0.01
phases_low = 2.0
phases_high = 8.0

[sweep]
replicates = 2

[[sweep.axes]]
path = "campaign.rate"
values = [0.01, 0.05]
"""


@pytest.fixture
def swept(tmp_path, capsys):
    """One cold + one warm sweep against the same cache dir."""
    toml = tmp_path / "sweep.toml"
    toml.write_text(SWEEP)
    store = tmp_path / "store"
    for _ in range(2):
        assert scenario_main([
            "sweep", str(toml), "--engine", "dag",
            "--cache-dir", str(store), "--no-progress",
        ]) == 0
    out = capsys.readouterr().out
    return store, out


class TestSweepWritesLedger:
    def test_two_runs_two_records(self, swept):
        store, _ = swept
        records = list(RunLedger(store).records())
        assert len(records) == 2
        cold, warm = records
        assert cold["n_executed"] == 4 and cold["n_cached"] == 0
        assert warm["n_cached"] == 4 and warm["cache_hit_rate"] == 1.0
        assert cold["spec_key"] == warm["spec_key"]
        assert cold["engine"] == "dag"
        assert cold["seed_root"] is not None
        assert cold["status"] == "ok"

    def test_exit_summary_printed_even_without_progress(self, swept):
        _, out = swept
        summaries = re.findall(r"\[run sweep-\S+: 4 task\(s\), 0 failed, "
                               r"\d+ cache hit\(s\), [\d.]+s\]", out)
        assert len(summaries) == 2
        assert "0 cache hit(s)" in summaries[0]
        assert "4 cache hit(s)" in summaries[1]
        assert out.count("[run recorded in ") == 2

    def test_summary_matches_the_persisted_record(self, swept):
        store, out = swept
        from repro.obs.ledger import render_run_summary

        for record in RunLedger(store).records():
            assert render_run_summary(record) in out


class TestRunsCli:
    def test_ls_renders_and_counts(self, swept, capsys):
        store, _ = swept
        assert runs_main(["ls", "--cache-dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert out.count("sweep-") >= 2
        assert "[2 run(s) in" in out

    def test_ls_json_parses(self, swept, capsys):
        store, _ = swept
        assert runs_main(["ls", "--cache-dir", str(store), "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert all(r["status"] == "ok" for r in records)

    def test_ls_filters_by_name_and_status(self, swept, capsys):
        store, _ = swept
        assert runs_main(["ls", "--cache-dir", str(store),
                          "--status", "failed"]) == 0
        assert "[no runs recorded" in capsys.readouterr().out
        assert runs_main(["ls", "--cache-dir", str(store),
                          "--name", "no_such_scenario"]) == 0
        assert "[no runs recorded" in capsys.readouterr().out

    def test_show_reconstructs_provenance(self, swept, capsys):
        store, _ = swept
        warm = list(RunLedger(store).records())[-1]
        assert runs_main(["show", warm["id"],
                          "--cache-dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert f"=== run {warm['id']} ===" in out
        assert f"spec key         {warm['spec_key']}" in out
        assert f"seed root        {warm['seed_root']}" in out
        assert "cache hit rate   100%" in out
        assert "engine           dag" in out

    def test_show_json_is_the_raw_record(self, swept, capsys):
        store, _ = swept
        cold = next(iter(RunLedger(store).records()))
        assert runs_main(["show", cold["id"], "--cache-dir", str(store),
                          "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == cold

    def test_show_unknown_id_fails_cleanly(self, swept, capsys):
        store, _ = swept
        assert runs_main(["show", "nope", "--cache-dir", str(store)]) == 1
        assert "runs error" in capsys.readouterr().err

    def test_tail_limits_to_n(self, swept, capsys):
        store, _ = swept
        assert runs_main(["tail", "--cache-dir", str(store), "-n", "1",
                          "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        assert records[0]["n_cached"] == 4  # the warm (latest) run

    def test_empty_ledger_dir(self, tmp_path, capsys):
        assert runs_main(["ls", "--cache-dir", str(tmp_path)]) == 0
        assert "[no runs recorded" in capsys.readouterr().out

    def test_routed_through_main_cli(self, swept, capsys):
        store, _ = swept
        assert main(["runs", "tail", "--cache-dir", str(store)]) == 0
        assert "sweep-" in capsys.readouterr().out


class TestReportLedger:
    def test_report_run_records_artifacts(self, tmp_path, capsys):
        store = tmp_path / "store"
        out_dir = tmp_path / "out"
        from repro.reports.cli import report_main

        assert report_main([
            "run", "fig7_speed", "--cache-dir", str(store),
            "--out", str(out_dir), "--no-progress",
        ]) == 0
        capsys.readouterr()
        (record,) = RunLedger(store).records()
        assert record["kind"] == "report.run"
        assert record["status"] == "ok"
        assert record["artifacts"]
        for path in record["artifacts"]:
            assert path.startswith(str(out_dir))
