"""Worker health: resource samples, the stall watchdog, and the pool
wiring that surfaces both.

The ISSUE 9 acceptance: an injected stalled task produces a
``task.stall`` event naming it, the run ledger counts the stall, and
the progress line warns — while serial runs stay free of the pool-only
health events (``--jobs 1`` identity contract).
"""

import io
import time

import pytest

from repro.obs import events
from repro.obs.health import StallWatchdog, sample_resources
from repro.obs.ledger import RunTracker
from repro.obs.progress import ProgressRenderer
from repro.runtime import run_campaign
from repro.runtime.spec import RunSpec


def sleep_specs(durations):
    return [
        RunSpec(fn="repro.runtime.tasks:sleeping_task", index=i,
                params={"duration_s": d}, seed=i)
        for i, d in enumerate(durations)
    ]


class TestSampleResources:
    def test_sample_shape(self):
        import os

        sample = sample_resources()
        assert set(sample) == {"pid", "rss_bytes", "cpu_s"}
        assert sample["pid"] == os.getpid()
        assert sample["rss_bytes"] > 0  # this test process has pages
        assert sample["cpu_s"] >= 0.0

    def test_sample_is_picklable_plain_data(self):
        import pickle

        sample = sample_resources()
        assert pickle.loads(pickle.dumps(sample)) == sample


class TestStallWatchdog:
    def test_rejects_nonpositive_thresholds(self):
        for kw in ({"multiple": 0}, {"min_stall_s": -1}, {"poll_s": 0}):
            with pytest.raises(ValueError):
                StallWatchdog(**kw)

    def test_threshold_floor_before_any_completion(self):
        wd = StallWatchdog(multiple=4.0, min_stall_s=5.0)
        assert wd.threshold_s() == 5.0

    def test_threshold_scales_with_ewma_and_unit_size(self):
        wd = StallWatchdog(multiple=4.0, min_stall_s=0.1)
        wd.note_duration(2.0)
        assert wd.threshold_s(1) == pytest.approx(8.0)
        assert wd.threshold_s(3) == pytest.approx(24.0)

    def test_ewma_smooths_toward_recent_durations(self):
        wd = StallWatchdog()
        wd.note_duration(1.0)
        wd.note_duration(2.0)
        assert wd.ewma_s == pytest.approx(0.3 * 2.0 + 0.7 * 1.0)
        wd.note_duration(-1.0)  # ignored, not a duration
        assert wd.ewma_s == pytest.approx(1.3)

    def test_scan_flags_each_unit_once(self):
        wd = StallWatchdog(multiple=2.0, min_stall_s=0.5)
        bus = events.enable()
        try:
            now = time.perf_counter()
            token = object()
            unit = tuple(enumerate(sleep_specs([0.0, 0.0])))
            in_flight = {token: (unit, now - 10.0)}
            first = wd.scan(in_flight, now=now)
            assert sorted(first) == [0, 1]
            assert wd.n_stalled == 2
            assert wd.scan(in_flight, now=now) == []  # already flagged
            assert wd.n_stalled == 2
            assert bus.counts()["task.stall"] == 2
        finally:
            events.disable()

    def test_scan_leaves_young_units_alone(self):
        wd = StallWatchdog(multiple=2.0, min_stall_s=5.0)
        now = time.perf_counter()
        unit = tuple(enumerate(sleep_specs([0.0])))
        assert wd.scan({object(): (unit, now - 1.0)}, now=now) == []
        assert wd.n_stalled == 0

    def test_forget_clears_the_flag(self):
        wd = StallWatchdog(multiple=2.0, min_stall_s=0.5)
        now = time.perf_counter()
        token = object()
        unit = tuple(enumerate(sleep_specs([0.0])))
        wd.scan({token: (unit, now - 10.0)}, now=now)
        assert wd._flagged
        wd.forget(token)
        assert not wd._flagged


class TestPoolIntegration:
    def test_injected_stall_is_flagged_counted_and_rendered(self):
        """The acceptance path: sleeper -> task.stall -> ledger/progress."""
        specs = sleep_specs([0.5] + [0.01] * 5)
        bus = events.enable()
        tracker = RunTracker()
        bus.subscribe(tracker.handle)
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream, interval=0)
        bus.subscribe(renderer.handle)
        bus.emit("run.start", kind="campaign", name="stall-test",
                 n_tasks=len(specs))
        watchdog = StallWatchdog(multiple=2.0, min_stall_s=0.05,
                                 poll_s=0.02)
        try:
            campaign = run_campaign(specs, jobs=2, watchdog=watchdog)
            bus.emit("run.finish", status="ok")
        finally:
            events.disable()

        assert not campaign.failures
        stalled = [e[4]["index"] for e in bus.events if e[1] == "task.stall"]
        assert 0 in stalled  # the 0.5s sleeper was flagged
        assert watchdog.n_stalled == len(stalled) > 0

        # Heartbeats ride the result channel; ledger counts both.
        counts = bus.counts()
        assert counts["worker.heartbeat"] > 0
        assert tracker.n_stalls == len(stalled)
        assert tracker.n_heartbeats == counts["worker.heartbeat"]
        assert tracker.worker_rss_peak_bytes > 0
        record = tracker.record(
            run_id="stall-test", status="ok", kind="campaign",
            name="stall-test", wall_s=1.0, started_unix=0.0,
            finished_unix=1.0)
        assert record["version"] >= 2
        assert record["n_stalls"] == len(stalled)
        assert record["n_heartbeats"] == counts["worker.heartbeat"]
        assert record["worker_rss_peak_bytes"] > 0

        assert "stalled!" in stream.getvalue()

    def test_heartbeats_feed_telemetry_histograms(self):
        from repro import telemetry

        specs = sleep_specs([0.0] * 4)
        recorder = telemetry.enable()
        events.enable()
        try:
            run_campaign(specs, jobs=2)
            snap = recorder.snapshot()
        finally:
            events.disable()
            telemetry.disable()
        assert snap["hists"].get("worker.rss_bytes")
        assert snap["hists"].get("worker.cpu_s")
        assert all(v > 0 for v in snap["hists"]["worker.rss_bytes"])

    def test_serial_runs_emit_no_health_events(self):
        """Pool-only events stay out of the --jobs 1 identity stream."""
        specs = sleep_specs([0.0] * 4)
        bus = events.enable()
        try:
            run_campaign(specs, jobs=1)
        finally:
            events.disable()
        counts = bus.counts()
        assert "worker.heartbeat" not in counts
        assert "task.stall" not in counts

    def test_unobserved_pool_run_stays_clean(self):
        """No bus, no watchdog: plain pool runs are unchanged."""
        specs = sleep_specs([0.0] * 4)
        campaign = run_campaign(specs, jobs=2)
        assert not campaign.failures
        assert len(campaign.values()) == 4
