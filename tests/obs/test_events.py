"""Event bus unit contract: ordering, identity, transport, fast path."""

import pytest

from repro.obs import events
from repro.obs.events import EVENT_VERSION, KNOWN_EVENTS, EventBus


class TestEventBus:
    def test_events_are_sequenced_in_emission_order(self):
        bus = EventBus()
        bus.emit("task.submit", index=0)
        bus.emit("task.start", index=0)
        bus.emit("task.done", index=0)
        assert [e[0] for e in bus.events] == [0, 1, 2]
        assert [e[1] for e in bus.events] == [
            "task.submit", "task.start", "task.done"]

    def test_identity_excludes_timestamps(self):
        bus = EventBus()
        bus.emit("task.done", index=3)
        bus.emit("run.finish")
        assert bus.identity() == [
            (0, "task.done", {"index": 3}),
            (1, "run.finish", None),
        ]

    def test_subscribers_see_every_event_synchronously(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit("task.submit", index=1)
        bus.unsubscribe(seen.append)
        bus.emit("task.done", index=1)
        assert [e[1] for e in seen] == ["task.submit"]

    def test_counts(self):
        bus = EventBus()
        for i in range(3):
            bus.emit("task.done", index=i)
        bus.emit("run.finish")
        assert bus.counts() == {"task.done": 3, "run.finish": 1}

    def test_drain_detaches_transport_tuples_without_seq(self):
        bus = EventBus()
        bus.emit("task.done", index=0)
        drained = bus.drain()
        assert bus.events == []
        assert len(drained) == 1
        name, t, wall, data = drained[0]
        assert name == "task.done"
        assert data == {"index": 0}

    def test_absorb_resequences_and_drops_worker_run_events(self):
        parent = EventBus()
        parent.emit("run.start", kind="scenario.sweep")
        worker = EventBus()
        worker.emit("run.start", kind="scenario.run")  # worker-local: drop
        worker.emit("task.done", index=5)
        worker.emit("run.finish", status="ok")  # worker-local: drop
        parent.absorb(worker.drain())
        assert parent.identity() == [
            (0, "run.start", {"kind": "scenario.sweep"}),
            (1, "task.done", {"index": 5}),
        ]

    def test_run_depth_tracks_lifecycle_and_marks(self):
        bus = EventBus()
        assert bus._run_depth == 0
        bus.emit("run.start")
        assert bus._run_depth == 1
        bus.emit("run.finish")
        assert bus._run_depth == 0
        bus.mark_in_run()
        assert bus._run_depth == 1
        bus.unmark_in_run()
        bus.unmark_in_run()  # clamped
        assert bus._run_depth == 0

    def test_payloadless_event_carries_none_not_empty_dict(self):
        bus = EventBus()
        bus.emit("run.finish")
        assert bus.events[0][4] is None


class TestModuleFastPath:
    def test_disabled_emit_is_a_noop(self):
        assert not events.enabled()
        event = events.emit("task.done", index=0)
        assert event == events._NULL_EVENT
        assert events.current_bus() is None

    def test_enable_emit_disable_roundtrip(self):
        bus = events.enable()
        assert events.enabled()
        events.emit("task.done", index=1)
        assert bus.counts() == {"task.done": 1}
        assert events.disable() is bus
        assert not events.enabled()

    def test_enable_fresh_replaces_live_bus(self):
        stale = events.enable()
        stale.emit("task.done", index=0)
        fresh = events.enable(fresh=True)
        assert fresh is not stale
        assert len(fresh) == 0

    def test_enable_in_run_marks_worker_bus(self):
        events.enable(in_run=True)
        assert events.in_run()

    def test_in_run_follows_emitted_lifecycle(self):
        events.enable()
        assert not events.in_run()
        events.emit("run.start")
        assert events.in_run()
        events.emit("run.finish")
        assert not events.in_run()

    def test_module_absorb_noop_when_disabled(self):
        events.absorb([("task.done", 0.0, 0.0, {"index": 0})])  # no raise
        assert not events.enabled()

    def test_emit_name_is_positional_only(self):
        """Payloads may legitimately carry a ``name`` key (run names)."""
        bus = events.enable()
        bus.emit("run.start", name="campaign_rate_sweep")
        assert bus.identity() == [
            (0, "run.start", {"name": "campaign_rate_sweep"})]


class TestVocabulary:
    def test_known_events_cover_the_lifecycle(self):
        assert {"run.start", "run.finish", "task.submit", "task.start",
                "task.done", "task.failed", "task.cache_hit",
                "task.retry", "task.quarantined",
                "block.dispatch", "block.fallback",
                "report.phase",
                # pool-only health events (outside the --jobs 1
                # identity contract, see repro.obs.health)
                "task.stall", "worker.heartbeat",
                "pool.respawn"} == KNOWN_EVENTS

    def test_event_version_is_an_int(self):
        assert isinstance(EVENT_VERSION, int) and EVENT_VERSION >= 2
