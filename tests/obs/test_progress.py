"""Progress renderer: line content, ETA math, clearing, purity."""

import io

from repro.obs.events import EventBus
from repro.obs.progress import ProgressRenderer, format_eta


def feed(renderer, *events_in):
    """Drive a renderer through a bus so sequencing matches production."""
    bus = EventBus()
    bus.subscribe(renderer.handle)
    for name, data in events_in:
        bus.emit(name, **data)
    return bus


class TestFormatEta:
    def test_seconds(self):
        assert format_eta(42.4) == "42s"

    def test_minutes(self):
        assert format_eta(190) == "3m10s"

    def test_hours(self):
        assert format_eta(3720) == "1h02m"

    def test_negative_clamps_to_zero(self):
        assert format_eta(-5) == "0s"


class TestRenderer:
    def test_line_shows_progress_cache_and_label(self):
        out = io.StringIO()
        r = ProgressRenderer(stream=out, interval=0)
        feed(r,
             ("run.start", {"kind": "scenario.sweep",
                            "name": "campaign_rate_sweep", "n_tasks": 4}),
             ("task.done", {"index": 0}),
             ("task.cache_hit", {"index": 1}))
        line = r._line()
        assert "scenario.sweep campaign_rate_sweep" in line
        assert "2/4 (50%)" in line
        assert "cache 50%" in line
        assert "task/s" in line

    def test_failed_tasks_surface_in_the_line(self):
        r = ProgressRenderer(stream=io.StringIO(), interval=0)
        feed(r,
             ("run.start", {"n_tasks": 2}),
             ("task.failed", {"index": 0}))
        assert "1 failed" in r._line()

    def test_report_phase_is_shown(self):
        r = ProgressRenderer(stream=io.StringIO(), interval=0)
        feed(r,
             ("run.start", {"kind": "report.run", "n_tasks": 8}),
             ("report.phase", {"phase": "metrics"}))
        assert "phase=metrics" in r._line()

    def test_eta_uses_mean_throughput_then_ewma(self):
        r = ProgressRenderer(stream=io.StringIO(), interval=0)
        feed(r, ("run.start", {"n_tasks": 10}))
        assert r._eta() is None  # nothing done yet
        feed(r, ("task.done", {"index": 0}))
        assert r._eta() is not None  # mean-throughput fallback
        r._gap_ewma = 0.5
        r.done = 4
        assert r._eta() == 0.5 * 6

    def test_eta_none_once_complete(self):
        r = ProgressRenderer(stream=io.StringIO(), interval=0)
        r.total = 2
        r.done = 2
        assert r._eta() is None

    def test_paint_rewrites_one_line_and_finish_ends_it(self):
        out = io.StringIO()
        r = ProgressRenderer(stream=out, interval=0)
        feed(r,
             ("run.start", {"n_tasks": 2}),
             ("task.done", {"index": 0}))
        text = out.getvalue()
        assert "\n" not in text
        assert text.startswith("\r")
        r.finish()
        # The final state stays in the scrollback, line terminated.
        final = out.getvalue()
        assert final.endswith("\n")
        assert "1/2" in final.rsplit("\r", 1)[-1]

    def test_finish_on_untouched_renderer_writes_nothing(self):
        out = io.StringIO()
        ProgressRenderer(stream=out, interval=0).finish()
        assert out.getvalue() == ""

    def test_clear_erases_the_line_for_diagnostics(self):
        out = io.StringIO()
        r = ProgressRenderer(stream=out, interval=0)
        feed(r,
             ("run.start", {"n_tasks": 2}),
             ("task.done", {"index": 0}))
        painted = len(out.getvalue().rsplit("\r", 1)[-1])
        r.clear()
        # Erase = overwrite with spaces, then park the cursor at col 0:
        # whatever prints next (a traceback) starts on a clean line.
        assert out.getvalue().endswith("\r" + " " * painted + "\r")
        before = out.getvalue()
        r.clear()  # idempotent: nothing left to erase
        assert out.getvalue() == before

    def test_stalls_warn_in_the_line(self):
        r = ProgressRenderer(stream=io.StringIO(), interval=0)
        feed(r,
             ("run.start", {"n_tasks": 4}),
             ("task.stall", {"index": 2}),
             ("task.stall", {"index": 3}))
        assert "2 stalled!" in r._line()

    def test_shrinking_line_is_padded_clean(self):
        out = io.StringIO()
        r = ProgressRenderer(stream=out, interval=0)
        r._paint("a long progress line")
        r._paint("short")
        last = out.getvalue().rsplit("\r", 1)[-1]
        assert last.startswith("short")
        assert len(last) == len("a long progress line")

    def test_throttle_skips_rapid_repaints(self):
        out = io.StringIO()
        r = ProgressRenderer(stream=out, interval=3600.0)
        r._last_paint = r._t0  # pretend we just painted
        feed(r,
             ("run.start", {"n_tasks": 4}),
             ("task.done", {"index": 0}))
        assert out.getvalue() == ""

    def test_renderer_is_a_pure_consumer(self):
        """Attaching the renderer never mutates the bus's event stream."""
        bus_plain = EventBus()
        bus_plain.emit("run.start", n_tasks=1)
        bus_plain.emit("task.done", index=0)

        bus_rendered = EventBus()
        bus_rendered.subscribe(
            ProgressRenderer(stream=io.StringIO(), interval=0).handle)
        bus_rendered.emit("run.start", n_tasks=1)
        bus_rendered.emit("task.done", index=0)
        assert bus_rendered.identity() == bus_plain.identity()
