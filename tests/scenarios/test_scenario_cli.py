"""The scenario CLI subcommands (driven through repro.cli.main)."""

import json

import pytest

from repro.cli import main
from repro.scenarios.cli import build_scenario_parser


class TestList:
    def test_lists_bundled_scenarios(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig4_single_delay" in out
        assert "meggie_bimodal_rendezvous_campaign" in out

    def test_json_output(self, capsys):
        assert main(["scenario", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {r["name"]: r for r in rows}
        assert by_name["campaign_rate_sweep"]["sweep_size"] > 1

    def test_json_reports_resolved_engine_per_scenario(self, capsys):
        """``list --json`` states the engine each scenario dispatches to —
        the compiler's actual resolution, not a side heuristic."""
        from repro.scenarios import compile_scenario, load_bundled_scenario

        assert main(["scenario", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows, "list --json returned no scenarios"
        for row in rows:
            assert row["engine"] == \
                compile_scenario(load_bundled_scenario(row["name"])).engine
        by_name = {r["name"]: r for r in rows}
        # hierarchical placement now resolves to the lockstep engine
        assert by_name["emmy_mapped_dag"]["engine"] == "lockstep"


class TestValidate:
    def test_all_bundled_valid(self, capsys):
        assert main(["scenario", "validate"]) == 0
        assert "failed" not in capsys.readouterr().out

    def test_invalid_file_fails_with_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("n_ranks = 1\nn_steps = 4\n")
        assert main(["scenario", "validate", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "n_ranks" in out

    def test_mixed_batch_reports_each(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text("nope = true\n")
        assert main(["scenario", "validate", "fig4_single_delay",
                     str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ok    fig4_single_delay" in out
        assert "1/2 scenario(s) failed" in out


class TestRun:
    def test_run_bundled(self, capsys):
        assert main(["scenario", "run", "fig4_single_delay"]) == 0
        out = capsys.readouterr().out
        assert "wave_speed" in out and "engine=lockstep" in out

    def test_run_sweep_scenario_routes_through_runtime(self, capsys):
        assert main(["scenario", "run", "campaign_rate_sweep"]) == 0
        assert "scenario sweep" in capsys.readouterr().out

    def test_run_user_file(self, tmp_path, capsys):
        path = tmp_path / "mine.toml"
        path.write_text(
            'n_ranks = 6\nn_steps = 4\noutputs = ["runtime"]\n'
        )
        assert main(["scenario", "run", str(path)]) == 0
        assert "scenario mine" in capsys.readouterr().out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown bundled scenario" in capsys.readouterr().err

    def test_engine_override(self, capsys):
        assert main(["scenario", "run", "fig4_single_delay",
                     "--engine", "dag"]) == 0
        assert "engine=dag" in capsys.readouterr().out


class TestSweep:
    def test_sweep_with_cache(self, tmp_path, capsys):
        cache = tmp_path / "store"
        assert main(["scenario", "sweep", "campaign_rate_sweep", "--jobs", "2",
                     "--cache-dir", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "12 executed on 2 worker(s)" in out
        assert cache.exists()
        # Warm rerun: everything from the store.
        assert main(["scenario", "sweep", "campaign_rate_sweep",
                     "--cache-dir", str(cache)]) == 0
        assert "12 cached, 0 executed" in capsys.readouterr().out

    def test_sweep_of_single_point_scenario(self, capsys):
        assert main(["scenario", "sweep", "fig4_single_delay"]) == 0
        assert "1 runs" in capsys.readouterr().out


class TestParserHardening:
    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            build_scenario_parser().parse_args(
                ["sweep", "campaign_rate_sweep", "--jobs", "-1"])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_scenario_parser().parse_args(["frobnicate"])
