"""Scenario execution: determinism, outputs, hybrid reduction."""

import numpy as np
import pytest

from repro.scenarios import ScenarioSpec, run_scenario


def spec(**extra) -> ScenarioSpec:
    doc = {"name": "t", "n_ranks": 10, "n_steps": 8}
    doc.update(extra)
    return ScenarioSpec.from_dict(doc)


class TestDeterminism:
    def test_same_seed_same_result(self):
        s = spec(noise={"model": "exponential", "level": 0.1},
                 campaign={"rate": 0.05, "phases_low": 1.0, "phases_high": 4.0})
        a = run_scenario(s, seed=3)
        b = run_scenario(s, seed=3)
        np.testing.assert_array_equal(a.timing.completion, b.timing.completion)
        assert a.data == b.data

    def test_different_seed_different_noise(self):
        s = spec(noise={"model": "exponential", "level": 0.1})
        a = run_scenario(s, seed=1)
        b = run_scenario(s, seed=2)
        assert a.data["runtime"]["total_runtime"] != \
            b.data["runtime"]["total_runtime"]

    def test_spec_seed_is_default(self):
        s = spec(seed=42, noise={"model": "exponential", "level": 0.1})
        assert run_scenario(s).seed == 42


class TestOutputs:
    def test_requested_outputs_present(self):
        s = spec(delays=[{"rank": 4, "phases": 4.0}],
                 outputs=["runtime", "timeline", "desync", "histogram",
                          "wave_speed"])
        run = run_scenario(s)
        assert set(run.data) == {"runtime", "timeline", "desync", "histogram",
                                 "wave_speed"}
        assert run.data["runtime"]["total_runtime"] > 0
        assert run.data["wave_speed"]["measured_speed"] == pytest.approx(
            run.data["wave_speed"]["predicted_speed"], rel=0.05)
        assert "timeline" in run.tables

    def test_outputs_are_json_able(self):
        import json

        s = spec(delays=[{"rank": 4, "phases": 4.0}],
                 noise={"model": "exponential", "level": 0.05},
                 outputs=["runtime", "desync", "histogram", "wave_speed"])
        json.dumps(run_scenario(s).data)

    def test_render_mentions_engine_and_name(self):
        text = run_scenario(spec()).render()
        assert "engine=lockstep" in text
        assert "scenario t" in text


class TestCampaignInjection:
    def test_campaign_delays_extend_runtime(self):
        quiet = run_scenario(spec())
        noisy = run_scenario(spec(campaign={"rate": 0.1, "phases_low": 2.0,
                                            "phases_high": 6.0}), seed=5)
        assert noisy.n_campaign_delays > 0
        assert noisy.data["runtime"]["total_runtime"] > \
            quiet.data["runtime"]["total_runtime"]

    def test_explicit_and_campaign_delays_combine(self):
        run = run_scenario(
            spec(delays=[{"rank": 2, "phases": 3.0}],
                 campaign={"rate": 0.05, "phases_low": 1.0, "phases_high": 2.0}),
            seed=4,
        )
        assert len(run.compiled.cfg.delays) == 1  # compiled carries explicit only
        assert run.n_campaign_delays >= 1


class TestHybrid:
    def test_more_threads_fatter_noise(self):
        # Max-reduction over threads makes per-phase noise grow with the
        # thread count (for the same per-thread noise model).
        runs = {
            threads: run_scenario(
                spec(workload={"t_exec": 3e-3, "threads": threads},
                     noise={"model": "exponential", "level": 0.1}),
                seed=0,
            ).data["runtime"]["total_runtime"]
            for threads in (1, 8)
        }
        assert runs[8] > runs[1]

    def test_hybrid_runs_on_dag_engine_too(self):
        s = spec(workload={"t_exec": 3e-3, "threads": 4},
                 noise={"model": "exponential", "level": 0.1})
        fast = run_scenario(s, engine="lockstep")
        slow = run_scenario(s, engine="dag")
        np.testing.assert_allclose(fast.timing.completion,
                                   slow.timing.completion,
                                   rtol=1e-12, atol=1e-12)
