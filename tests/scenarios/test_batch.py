"""The scenario task batcher: planning, execution, and bit-identity.

The batching contract: grouping replicate tasks into one batched engine
call is *invisible* — per-task values, cache records, failure isolation,
and sharding semantics are exactly those of unbatched execution.
"""

import numpy as np
import pytest

from repro.runtime import ResultStore, RunSpec, run_campaign
from repro.scenarios import (
    ScenarioTaskBatcher,
    load_bundled_scenario,
    run_scenario,
    run_scenario_batch,
    run_scenario_sweep,
    scenario_sweep_spec,
)
from repro.scenarios.batch import SCENARIO_TASK_FN


def sweep_tasks(name="campaign_rate_sweep", **kw):
    return scenario_sweep_spec(load_bundled_scenario(name), **kw).tasks()


class UnreturnableResultBatcher(ScenarioTaskBatcher):
    """Computes correct values but poisons them so the worker cannot ship
    them back (unpicklable) — simulates a block whose future dies."""

    def execute(self, specs):
        values = [dict(v) for v in super().execute(specs)]
        for v in values:
            v["poison"] = lambda: None  # not picklable
        return values


class TestPlanner:
    def test_replicate_blocks_are_grouped(self):
        tasks = sweep_tasks()  # 3 rates x 4 replicates, replicate fastest
        blocks = ScenarioTaskBatcher().plan(tasks)
        assert [len(b) for b in blocks] == [4, 4, 4]
        flat = [i for b in blocks for i in b]
        assert flat == list(range(len(tasks)))

    def test_max_block_caps_group_size(self):
        tasks = sweep_tasks()
        blocks = ScenarioTaskBatcher(max_block=3).plan(tasks)
        assert max(len(b) for b in blocks) == 3
        assert sum(len(b) for b in blocks) == len(tasks)

    def test_foreign_tasks_are_never_grouped(self):
        foreign = tuple(
            RunSpec(fn="repro.runtime.tasks:lockstep_delay_task",
                    params=(("n_ranks", 8),), seed=i, index=i)
            for i in range(3)
        )
        blocks = ScenarioTaskBatcher().plan(foreign)
        assert blocks == [[0], [1], [2]]

    def test_seedless_scenario_tasks_are_never_grouped(self):
        specs = tuple(
            RunSpec(fn=SCENARIO_TASK_FN, params=(("replicate", i),),
                    seed=None, index=i)
            for i in range(3)
        )
        assert ScenarioTaskBatcher().plan(specs) == [[0], [1], [2]]

    def test_different_grid_points_split_blocks(self):
        tasks = sweep_tasks()
        sigs = [ScenarioTaskBatcher._signature(t) for t in tasks]
        # 3 distinct grid points, each repeated for its replicates
        assert len(set(sigs)) == 3


class TestBatchedCampaignBitIdentity:
    def test_batched_store_records_equal_serial_byte_for_byte(self, tmp_path):
        spec = load_bundled_scenario("campaign_rate_sweep")
        serial_store = ResultStore(tmp_path / "serial")
        batched_store = ResultStore(tmp_path / "batched")
        serial = run_scenario_sweep(spec, jobs=1, store=serial_store,
                                    batch=False)
        batched = run_scenario_sweep(spec, jobs=1, store=batched_store,
                                     batch=True)
        assert serial.campaign.values() == batched.campaign.values()
        assert serial.points == batched.points
        serial_files = {p.name: p.read_bytes()
                        for p in sorted((tmp_path / "serial").rglob("*.json"))}
        batched_files = {p.name: p.read_bytes()
                         for p in sorted((tmp_path / "batched").rglob("*.json"))}
        assert serial_files.keys() == batched_files.keys()
        assert serial_files == batched_files

    def test_forced_dag_sweep_records_byte_identical(self, tmp_path):
        """Forced-DAG campaigns cache the same bytes batched or not.

        The DAG engine's batched ``StaticDag`` propagation must leave no
        trace in the store: record names (spec keys) and payload bytes of
        a batched forced-DAG sweep equal those of serial unbatched
        execution.
        """
        spec = load_bundled_scenario("campaign_rate_sweep")
        serial_store = ResultStore(tmp_path / "serial")
        batched_store = ResultStore(tmp_path / "batched")
        serial = run_scenario_sweep(spec, engine="dag", jobs=1,
                                    store=serial_store, batch=False)
        batched = run_scenario_sweep(spec, engine="dag", jobs=1,
                                     store=batched_store, batch=True)
        assert all(v["engine"] == "dag" for v in batched.campaign.values())
        assert serial.campaign.values() == batched.campaign.values()
        serial_files = {p.name: p.read_bytes()
                        for p in sorted((tmp_path / "serial").rglob("*.json"))}
        batched_files = {p.name: p.read_bytes()
                         for p in sorted((tmp_path / "batched").rglob("*.json"))}
        assert serial_files.keys() == batched_files.keys()
        assert serial_files == batched_files

    def test_batched_results_warm_an_unbatched_rerun(self, tmp_path):
        spec = load_bundled_scenario("campaign_rate_sweep")
        store = ResultStore(tmp_path / "store")
        cold = run_scenario_sweep(spec, store=store, batch=True)
        assert cold.campaign.n_executed == len(cold.campaign)
        warm = run_scenario_sweep(spec, store=store, batch=False)
        assert warm.campaign.n_cached == len(warm.campaign)
        assert warm.campaign.values() == cold.campaign.values()

    def test_sharded_batched_sweep_is_bit_identical(self):
        spec = load_bundled_scenario("campaign_rate_sweep")
        serial = run_scenario_sweep(spec, jobs=1, batch=False)
        sharded = run_scenario_sweep(spec, jobs=2, batch=True)
        assert serial.campaign.values() == sharded.campaign.values()

    def test_hierarchical_sweep_batches_on_lockstep(self, tmp_path):
        """A ppn scenario (previously DAG-only) batches and caches cleanly."""
        spec = load_bundled_scenario("emmy_mapped_dag")
        store = ResultStore(tmp_path / "store")
        result = run_scenario_sweep(spec, store=store, batch=True)
        assert all(v["engine"] == "lockstep"
                   for v in result.campaign.values())
        direct = run_scenario(spec.without_sweep())
        runtime = result.campaign.values()[0]["outputs"]["runtime"]
        assert runtime["total_runtime"] == direct.data["runtime"]["total_runtime"]


class TestTelemetryDeterminism:
    """Profiling is pure observation: enabling telemetry never changes
    engine outputs or the bytes the store persists."""

    @pytest.fixture
    def profiled(self):
        from repro import telemetry

        telemetry.enable()
        yield telemetry
        telemetry.disable()

    def test_profiled_sweep_store_records_byte_identical(
            self, tmp_path, profiled):
        spec = load_bundled_scenario("campaign_rate_sweep")
        plain_store = ResultStore(tmp_path / "plain")
        plain = run_scenario_sweep(spec, engine="dag", store=plain_store)
        prof_store = ResultStore(tmp_path / "profiled")
        assert profiled.enabled()
        prof = run_scenario_sweep(spec, engine="dag", store=prof_store)
        assert prof.campaign.values() == plain.campaign.values()
        assert prof.points == plain.points
        plain_files = {p.name: p.read_bytes()
                       for p in sorted((tmp_path / "plain").rglob("*.json"))}
        prof_files = {p.name: p.read_bytes()
                      for p in sorted((tmp_path / "profiled").rglob("*.json"))}
        assert plain_files.keys() == prof_files.keys()
        assert plain_files == prof_files

    def test_profiled_parallel_sweep_matches_plain_serial(self, profiled):
        spec = load_bundled_scenario("campaign_rate_sweep")
        prof = run_scenario_sweep(spec, jobs=2, batch=True)
        profiled.disable()
        plain = run_scenario_sweep(spec, jobs=1, batch=False)
        assert prof.campaign.values() == plain.campaign.values()

    def test_profiled_engine_outputs_bitwise_equal(self, profiled):
        spec = load_bundled_scenario(
            "meggie_bimodal_rendezvous_campaign").without_sweep()
        prof = run_scenario(spec, seed=7)
        profiled.disable()
        plain = run_scenario(spec, seed=7)
        assert np.array_equal(prof.timing.completion, plain.timing.completion)
        assert prof.data == plain.data

    def test_profiled_warm_read_hits_are_pure(self, tmp_path, profiled):
        """Counting store hits must not perturb the cached values."""
        spec = load_bundled_scenario("campaign_rate_sweep")
        store = ResultStore(tmp_path / "store")
        profiled.disable()
        cold = run_scenario_sweep(spec, store=store)
        profiled.enable()
        warm = run_scenario_sweep(spec, store=store)
        rec = profiled.current_recorder()
        assert rec.counters["store.get.hits"] == len(warm.campaign)
        assert warm.campaign.n_cached == len(warm.campaign)
        assert warm.campaign.values() == cold.campaign.values()


class TestObservabilityDeterminism:
    """The event bus is pure observation, like telemetry: enabling it
    never changes engine outputs or the bytes the store persists."""

    @pytest.fixture
    def observed(self):
        from repro.obs import events

        events.enable()
        yield events
        events.disable()

    def test_observed_sweep_store_records_byte_identical(
            self, tmp_path, observed):
        spec = load_bundled_scenario("campaign_rate_sweep")
        plain_store = ResultStore(tmp_path / "plain")
        observed.disable()
        plain = run_scenario_sweep(spec, engine="dag", store=plain_store)
        observed.enable()
        obs_store = ResultStore(tmp_path / "observed")
        obs = run_scenario_sweep(spec, engine="dag", store=obs_store)
        assert obs.campaign.values() == plain.campaign.values()
        assert obs.points == plain.points
        plain_files = {p.name: p.read_bytes()
                       for p in sorted((tmp_path / "plain").rglob("*.json"))}
        obs_files = {p.name: p.read_bytes()
                     for p in sorted((tmp_path / "observed").rglob("*.json"))}
        assert plain_files.keys() == obs_files.keys()
        assert plain_files == obs_files

    def test_observed_parallel_sweep_matches_plain_serial(self, observed):
        spec = load_bundled_scenario("campaign_rate_sweep")
        obs = run_scenario_sweep(spec, jobs=2, batch=True)
        observed.disable()
        plain = run_scenario_sweep(spec, jobs=1, batch=False)
        assert obs.campaign.values() == plain.campaign.values()

    def test_observed_and_profiled_together_stay_pure(
            self, tmp_path, observed):
        """Telemetry + events share the worker result channel; running
        both at once must still leave the store untouched byte-wise."""
        from repro import telemetry

        spec = load_bundled_scenario("campaign_rate_sweep")
        observed.disable()
        plain_store = ResultStore(tmp_path / "plain")
        plain = run_scenario_sweep(spec, engine="dag", store=plain_store)
        observed.enable()
        telemetry.enable()
        try:
            both_store = ResultStore(tmp_path / "both")
            both = run_scenario_sweep(spec, engine="dag", store=both_store)
        finally:
            telemetry.disable()
        assert both.campaign.values() == plain.campaign.values()
        plain_files = {p.name: p.read_bytes()
                       for p in sorted((tmp_path / "plain").rglob("*.json"))}
        both_files = {p.name: p.read_bytes()
                      for p in sorted((tmp_path / "both").rglob("*.json"))}
        assert plain_files == both_files

    def test_observed_warm_read_values_are_pure(self, tmp_path, observed):
        """cache_hit events must not perturb cached values."""
        spec = load_bundled_scenario("campaign_rate_sweep")
        store = ResultStore(tmp_path / "store")
        observed.disable()
        cold = run_scenario_sweep(spec, store=store)
        observed.enable()
        warm = run_scenario_sweep(spec, store=store)
        bus = observed.current_bus()
        assert bus.counts()["task.cache_hit"] == len(warm.campaign)
        assert warm.campaign.values() == cold.campaign.values()


class TestBatchExecution:
    def test_execute_matches_scenario_task_values(self):
        tasks = sweep_tasks()
        batcher = ScenarioTaskBatcher()
        block = tasks[:4]
        batched_values = batcher.execute(block)
        serial_values = [t.call() for t in block]
        assert batched_values == serial_values

    def test_dag_forced_blocks_still_produce_identical_values(self):
        tasks = sweep_tasks(engine="dag")
        block = tasks[:4]
        batched_values = ScenarioTaskBatcher().execute(block)
        assert batched_values == [t.call() for t in block]
        assert all(v["engine"] == "dag" for v in batched_values)

    def test_run_scenario_batch_empty_seed_list(self):
        assert run_scenario_batch(
            load_bundled_scenario("fig4_single_delay"), []) == []

    def test_run_scenario_batch_matches_run_scenario(self):
        spec = load_bundled_scenario("meggie_bimodal_rendezvous_campaign") \
            .without_sweep()
        seeds = [11, 22, 33]
        batched = run_scenario_batch(spec, seeds)
        for seed, run in zip(seeds, batched):
            serial = run_scenario(spec, seed=seed)
            assert np.array_equal(run.timing.completion,
                                  serial.timing.completion)
            assert run.data == serial.data
            assert run.n_campaign_delays == serial.n_campaign_delays
            assert run.seed == serial.seed


class TestBatcherFailureIsolation:
    def test_broken_batcher_falls_back_to_per_task_execution(self):
        class ExplodingBatcher(ScenarioTaskBatcher):
            def execute(self, specs):
                raise RuntimeError("batch infrastructure down")

        tasks = sweep_tasks()
        with pytest.warns(RuntimeWarning, match="batch infrastructure down"):
            campaign = run_campaign(tasks, jobs=1, batcher=ExplodingBatcher())
        assert not campaign.failures
        reference = run_campaign(tasks, jobs=1)
        assert campaign.values() == reference.values()

    def test_wrong_value_count_falls_back_with_warning(self):
        class ShortBatcher(ScenarioTaskBatcher):
            def execute(self, specs):
                return [super().execute(specs)[0]]

        tasks = sweep_tasks()
        with pytest.warns(RuntimeWarning, match="contract violation"):
            campaign = run_campaign(tasks, jobs=1, batcher=ShortBatcher())
        assert not campaign.failures
        assert campaign.values() == run_campaign(tasks, jobs=1).values()

    def test_died_block_future_is_retried_per_task_in_the_pool(self):
        """A block whose result can't come back from the worker must not
        fail all its tasks: they are re-enqueued as singletons (which
        bypass the batcher) and succeed individually."""
        tasks = sweep_tasks()
        with pytest.warns(RuntimeWarning, match="retrying per task"):
            campaign = run_campaign(tasks, jobs=2,
                                    batcher=UnreturnableResultBatcher())
        assert not campaign.failures
        assert campaign.values() == run_campaign(tasks, jobs=1).values()

    def test_invalid_plan_is_rejected(self):
        class OverlappingPlan(ScenarioTaskBatcher):
            def plan(self, specs):
                return [[0, 0], list(range(1, len(specs)))]

        with pytest.raises(ValueError, match="partition"):
            run_campaign(sweep_tasks(), jobs=1, batcher=OverlappingPlan())
