"""Bundled scenario registry: every shipped file must load and compile."""

import pytest

from repro.scenarios import (
    ScenarioError,
    bundled_scenario_names,
    compile_scenario,
    iter_bundled_scenarios,
    load_bundled_scenario,
    lockstep_eligible,
    resolve_scenario,
    scenario_sweep_spec,
)


class TestBundled:
    def test_at_least_eight_scenarios(self):
        assert len(bundled_scenario_names()) >= 8

    def test_every_bundled_scenario_compiles(self):
        for spec in iter_bundled_scenarios():
            compiled = compile_scenario(spec)
            assert compiled.engine in ("lockstep", "dag")
            if spec.sweep is not None:
                sweep = scenario_sweep_spec(spec)
                assert sweep.size == spec.sweep.size

    def test_descriptions_present(self):
        for spec in iter_bundled_scenarios():
            assert spec.description, f"{spec.name} has no description"

    def test_novel_configurations_present(self):
        # The two headline scenarios no EXPERIMENTS entry can express.
        names = bundled_scenario_names()
        assert "meggie_bimodal_rendezvous_campaign" in names
        assert "hybrid_desync_sweep" in names

        meggie = load_bundled_scenario("meggie_bimodal_rendezvous_campaign")
        assert meggie.comm.protocol == "rendezvous"
        assert meggie.comm.direction == "bidirectional"
        assert meggie.noise.model == "natural"
        assert meggie.campaign is not None

        hybrid = load_bundled_scenario("hybrid_desync_sweep")
        assert hybrid.sweep is not None
        assert any(a.path == "workload.threads" for a in hybrid.sweep.axes)

    def test_hierarchical_scenario_present(self):
        # At least one bundled scenario exercises hierarchical placement
        # (the two-tier path of the lockstep engine, DAG-checkable).
        assert any(s.machine.ppn is not None for s in iter_bundled_scenarios())
        assert all(lockstep_eligible(s) for s in iter_bundled_scenarios())

    def test_names_sorted_and_unique(self):
        names = bundled_scenario_names()
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_json_stem_dedupes_against_toml(self, monkeypatch, tmp_path):
        import repro.scenarios.registry as registry

        (tmp_path / "a.toml").write_text("n_ranks = 4\nn_steps = 2\n")
        (tmp_path / "a.json").write_text('{"n_ranks": 4, "n_steps": 2}')
        (tmp_path / "b.json").write_text('{"n_ranks": 4, "n_steps": 2}')
        monkeypatch.setattr(registry, "BUNDLED_SCENARIO_DIR", tmp_path)
        assert registry.bundled_scenario_names() == ["a", "b"]

    def test_unknown_bundled_name(self):
        with pytest.raises(ScenarioError, match="unknown bundled scenario"):
            load_bundled_scenario("nope")


class TestResolve:
    def test_resolves_bundled_name(self):
        assert resolve_scenario("fig4_single_delay").name == "fig4_single_delay"

    def test_resolves_path(self, tmp_path):
        path = tmp_path / "mine.toml"
        path.write_text("n_ranks = 4\nn_steps = 2\n")
        assert resolve_scenario(str(path)).name == "mine"

    def test_missing_path_is_an_error(self):
        with pytest.raises(ScenarioError, match="cannot read"):
            resolve_scenario("no/such/file.toml")
