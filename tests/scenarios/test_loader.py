"""TOML/JSON scenario file loading."""

import json

import pytest

from repro.scenarios import ScenarioError, load_scenario_file, parse_scenario_text

TOML = """
n_ranks = 6
n_steps = 4
outputs = ["runtime"]

[machine]
preset = "simulated"

[[delays]]
rank = 2
phases = 3.0
"""


class TestToml:
    def test_load_file_uses_stem_as_name(self, tmp_path):
        path = tmp_path / "my_scenario.toml"
        path.write_text(TOML)
        spec = load_scenario_file(path)
        assert spec.name == "my_scenario"
        assert spec.delays[0].rank == 2

    def test_explicit_name_survives(self):
        spec = parse_scenario_text('name = "x"\nn_ranks = 4\nn_steps = 2\n')
        assert spec.name == "x"

    def test_invalid_toml_names_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("n_ranks = = 4\n")
        with pytest.raises(ScenarioError, match="broken.toml"):
            load_scenario_file(path)

    def test_validation_error_names_file_and_path(self, tmp_path):
        path = tmp_path / "bad_field.toml"
        path.write_text("n_ranks = 1\nn_steps = 4\n")
        with pytest.raises(ScenarioError, match="n_ranks") as err:
            load_scenario_file(path)
        assert "bad_field.toml" in str(err.value)


class TestJson:
    def test_load_json(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"n_ranks": 4, "n_steps": 2}))
        assert load_scenario_file(path).name == "s"

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_scenario_file(path)


class TestEdgeCases:
    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "s.yaml"
        path.write_text("n_ranks: 4")
        with pytest.raises(ScenarioError, match="unsupported"):
            load_scenario_file(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario_file(tmp_path / "nope.toml")

    def test_unknown_format(self):
        with pytest.raises(ScenarioError, match="unknown scenario format"):
            parse_scenario_text("{}", fmt="yaml")
