"""Cross-engine and cross-backend equivalence of the scenario pipeline.

Two contracts:

- every lockstep-eligible bundled scenario produces the same timestamps
  on the DAG and lockstep engines (to the 1e-12 tolerance of the
  engine-equivalence property contract — the engines sum floats in
  different orders, so exact bitwise equality holds only by accident);
- a scenario sweep is **bit-identical** between serial execution and
  ``--jobs 2`` sharding, and a second invocation against the same store
  is served entirely from cache.
"""

import numpy as np
import pytest

from repro.runtime import ResultStore
from repro.scenarios import (
    bundled_scenario_names,
    load_bundled_scenario,
    lockstep_eligible,
    run_scenario,
    run_scenario_sweep,
)

ELIGIBLE = [name for name in bundled_scenario_names()
            if lockstep_eligible(load_bundled_scenario(name))]


@pytest.mark.parametrize("name", ELIGIBLE)
def test_bundled_scenario_dag_lockstep_equivalence(name):
    spec = load_bundled_scenario(name).without_sweep()
    fast = run_scenario(spec, engine="lockstep")
    slow = run_scenario(spec, engine="dag")
    assert fast.compiled.engine == "lockstep"
    assert slow.compiled.engine == "dag"
    np.testing.assert_allclose(
        fast.timing.completion, slow.timing.completion, rtol=1e-12, atol=1e-12,
        err_msg=f"engines disagree on scenario {name}",
    )
    np.testing.assert_allclose(
        fast.timing.exec_end, slow.timing.exec_end, rtol=1e-12, atol=1e-12,
    )


class TestSweepBackendEquivalence:
    def test_serial_equals_jobs2_bitwise(self):
        spec = load_bundled_scenario("campaign_rate_sweep")
        serial = run_scenario_sweep(spec, jobs=1)
        sharded = run_scenario_sweep(spec, jobs=2)
        assert serial.campaign.values() == sharded.campaign.values()
        assert serial.points == sharded.points

    def test_second_invocation_hits_cache(self, tmp_path):
        spec = load_bundled_scenario("campaign_rate_sweep")
        store = ResultStore(tmp_path / "store")
        cold = run_scenario_sweep(spec, jobs=1, store=store)
        assert cold.campaign.n_executed == len(cold.campaign)
        warm = run_scenario_sweep(spec, jobs=2, store=store)
        assert warm.campaign.n_cached == len(warm.campaign)
        assert warm.campaign.n_executed == 0
        assert warm.campaign.values() == cold.campaign.values()

    def test_seed_changes_results(self):
        spec = load_bundled_scenario("campaign_rate_sweep")
        a = run_scenario_sweep(spec, base_seed=1)
        b = run_scenario_sweep(spec, base_seed=2)
        assert a.campaign.values() != b.campaign.values()
