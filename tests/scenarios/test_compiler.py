"""Compiler: preset/workload/noise resolution and engine dispatch."""

import pytest

from repro.cluster import EMMY, MEGGIE
from repro.scenarios import (
    ScenarioError,
    ScenarioSpec,
    compile_scenario,
    lockstep_eligible,
)
from repro.sim.mpi import DEFAULT_EAGER_LIMIT, Protocol
from repro.sim.noise import BimodalNoise, ExponentialNoise, NoNoise


def spec(**extra) -> ScenarioSpec:
    doc = {"name": "t", "n_ranks": 10, "n_steps": 6}
    doc.update(extra)
    return ScenarioSpec.from_dict(doc)


class TestMachineResolution:
    def test_preset_network_collapses_exactly(self):
        # Uniform extraction must reproduce Hockney on the chosen domain.
        compiled = compile_scenario(spec(machine={"preset": "emmy"}))
        from repro.sim.topology import CommDomain

        for size in (0, 8192, 1_000_000):
            assert compiled.network.transfer_time(size, CommDomain.INTER_NODE) == \
                pytest.approx(EMMY.network.transfer_time(size, CommDomain.INTER_NODE),
                              rel=1e-12)
        assert compiled.machine is EMMY

    def test_domain_selection(self):
        c = compile_scenario(spec(machine={"preset": "emmy",
                                           "domain": "intra_socket"}))
        from repro.sim.topology import CommDomain

        assert c.domain == CommDomain.INTRA_SOCKET
        assert c.network.latency == pytest.approx(3e-7)

    def test_inline_machine(self):
        c = compile_scenario(spec(machine={"latency": 1e-5, "bandwidth": 1e8}))
        assert c.machine is None
        assert c.network.latency == 1e-5
        assert c.network.bandwidth == 1e8


class TestWorkloadResolution:
    def test_divide_quantizes_t_exec(self):
        c = compile_scenario(spec(machine={"preset": "meggie"},
                                  workload={"kind": "divide", "t_exec": 3e-3}))
        per_instr = MEGGIE.cpu.vdivpd_cycles / MEGGIE.cpu.clock_hz
        assert c.t_exec == pytest.approx(3e-3, rel=1e-3)
        assert (c.t_exec / per_instr) == pytest.approx(round(c.t_exec / per_instr))

    def test_stream_derives_t_exec_and_msg_size(self):
        c = compile_scenario(spec(machine={"preset": "emmy"},
                                  workload={"kind": "stream"}))
        assert c.t_exec == pytest.approx(50_000_000 * 24 / 10 / EMMY.b_core)
        assert c.cfg.msg_size == 2_000_000
        assert c.resolved_protocol == Protocol.RENDEZVOUS  # > eager limit

    def test_lbm_checks_decomposition(self):
        with pytest.raises(ScenarioError, match=r"workload\.lbm_domain"):
            compile_scenario(spec(machine={"preset": "emmy"},
                                  workload={"kind": "lbm",
                                            "lbm_domain": [8, 50, 50]}))

    def test_machine_derived_workload_needs_preset(self):
        with pytest.raises(ScenarioError, match=r"workload\.kind"):
            compile_scenario(spec(machine={"latency": 1e-6, "bandwidth": 1e9},
                                  workload={"kind": "stream"}))


class TestNoiseResolution:
    def test_natural_uses_machine_calibration(self):
        c = compile_scenario(spec(machine={"preset": "meggie", "smt": "off"},
                                  noise={"model": "natural"}))
        assert isinstance(c.noise, BimodalNoise)
        c_on = compile_scenario(spec(machine={"preset": "meggie", "smt": "on"},
                                     noise={"model": "natural"}))
        assert isinstance(c_on.noise, ExponentialNoise)
        assert c_on.noise.mean() == pytest.approx(2.8e-6)

    def test_smt_without_natural_noise_rejected(self):
        # 'smt' only feeds the natural-noise calibration; silently
        # ignoring it would give a noise-free run the user didn't ask for.
        with pytest.raises(ScenarioError, match=r"machine\.smt"):
            compile_scenario(spec(machine={"preset": "meggie", "smt": "off"}))
        with pytest.raises(ScenarioError, match="silently"):
            compile_scenario(spec(machine={"preset": "emmy", "smt": "on"},
                                  noise={"model": "exponential", "level": 0.1}))

    def test_natural_needs_preset(self):
        with pytest.raises(ScenarioError, match=r"noise\.model"):
            compile_scenario(spec(machine={"latency": 1e-6, "bandwidth": 1e9},
                                  noise={"model": "natural"}))

    def test_level_scales_with_t_exec(self):
        c = compile_scenario(spec(workload={"t_exec": 2e-3},
                                  noise={"model": "exponential", "level": 0.25}))
        assert c.noise.mean() == pytest.approx(0.25 * 2e-3)

    def test_exponential_needs_a_mean(self):
        with pytest.raises(ScenarioError, match="mean_delay.*level"):
            compile_scenario(spec(noise={"model": "exponential"}))

    def test_none_noise(self):
        assert isinstance(compile_scenario(spec()).noise, NoNoise)


class TestEngineDispatch:
    def test_flat_scenario_goes_lockstep(self):
        s = spec()
        assert lockstep_eligible(s)
        assert compile_scenario(s).engine == "lockstep"

    def test_ppn_scenario_goes_lockstep_with_hierarchy(self):
        # Hierarchical placement no longer forces the DAG fallback: the
        # lockstep engine resolves per-message tiers through the mapping.
        s = spec(machine={"preset": "emmy", "ppn": 2})
        assert lockstep_eligible(s)
        c = compile_scenario(s)
        assert c.engine == "lockstep"
        assert c.mapping is not None
        assert c.network is EMMY.network  # per-domain model, not collapsed

    def test_forced_lockstep_on_ppn_scenario_is_allowed(self):
        c = compile_scenario(spec(machine={"preset": "emmy", "ppn": 2}),
                             engine="lockstep")
        assert c.engine == "lockstep"
        assert c.mapping is not None

    def test_forced_dag_on_ppn_scenario_keeps_per_domain_network(self):
        c = compile_scenario(spec(machine={"preset": "emmy", "ppn": 2}),
                             engine="dag")
        assert c.engine == "dag"
        assert c.network is EMMY.network

    def test_forced_dag_on_eligible_scenario(self):
        assert compile_scenario(spec(), engine="dag").engine == "dag"

    def test_unknown_engine(self):
        with pytest.raises(ScenarioError, match="unknown engine"):
            compile_scenario(spec(), engine="warp")


class TestCompileValidation:
    def test_delay_rank_bounds(self):
        with pytest.raises(ScenarioError, match=r"delays\[0\]\.rank"):
            compile_scenario(spec(delays=[{"rank": 10, "phases": 2.0}]))

    def test_delay_step_bounds(self):
        with pytest.raises(ScenarioError, match=r"delays\[0\]\.step"):
            compile_scenario(spec(delays=[{"rank": 1, "step": 6, "phases": 2.0}]))

    def test_distance_bounds(self):
        with pytest.raises(ScenarioError, match=r"comm\.distance"):
            compile_scenario(spec(comm={"distance": 10}))

    def test_wave_speed_needs_a_delay(self):
        with pytest.raises(ScenarioError, match="wave_speed"):
            compile_scenario(spec(outputs=["wave_speed"]))

    def test_delay_phases_resolve_against_t_exec(self):
        c = compile_scenario(spec(workload={"t_exec": 2e-3},
                                  delays=[{"rank": 1, "phases": 4.5}]))
        assert c.cfg.delays[0].duration == pytest.approx(9e-3)

    def test_campaign_phase_bounds_resolve(self):
        c = compile_scenario(spec(workload={"t_exec": 2e-3},
                                  campaign={"rate": 0.1, "phases_low": 2.0,
                                            "phases_high": 4.0}))
        assert c.campaign.duration_low == pytest.approx(4e-3)
        assert c.campaign.duration_high == pytest.approx(8e-3)

    def test_protocol_resolution_default_limit(self):
        c = compile_scenario(spec(comm={"msg_size": DEFAULT_EAGER_LIMIT}))
        assert c.resolved_protocol == Protocol.EAGER
        c2 = compile_scenario(spec(comm={"msg_size": DEFAULT_EAGER_LIMIT + 1}))
        assert c2.resolved_protocol == Protocol.RENDEZVOUS
