"""Spec parsing: strict validation with path-precise errors."""

import pytest

from repro.scenarios import ScenarioError, ScenarioSpec, apply_overrides


def minimal(**extra) -> dict:
    doc = {"name": "t", "n_ranks": 8, "n_steps": 4}
    doc.update(extra)
    return doc


class TestParsing:
    def test_minimal_document_defaults(self):
        spec = ScenarioSpec.from_dict(minimal())
        assert spec.machine.preset == "simulated"
        assert spec.workload.kind == "synthetic"
        assert spec.comm.direction == "unidirectional"
        assert spec.noise.model == "none"
        assert spec.outputs == ("runtime",)
        assert spec.sweep is None

    def test_name_from_argument(self):
        spec = ScenarioSpec.from_dict({"n_ranks": 4, "n_steps": 2}, name="from_file")
        assert spec.name == "from_file"

    def test_missing_name_rejected(self):
        with pytest.raises(ScenarioError, match="no name"):
            ScenarioSpec.from_dict({"n_ranks": 4, "n_steps": 2})

    def test_direction_aliases(self):
        spec = ScenarioSpec.from_dict(minimal(comm={"direction": "bi"}))
        assert spec.comm.direction == "bidirectional"

    def test_round_trip(self):
        doc = minimal(
            seed=9,
            machine={"preset": "meggie", "smt": "off"},
            workload={"kind": "synthetic", "t_exec": 2e-3, "threads": 4},
            comm={"direction": "bidirectional", "periodic": True,
                  "protocol": "rendezvous"},
            noise={"model": "exponential", "level": 0.1},
            delays=[{"rank": 1, "step": 0, "phases": 4.5}],
            campaign={"rate": 0.01, "phases_low": 2.0, "phases_high": 8.0},
            outputs=["runtime", "desync"],
            sweep={"replicates": 2,
                   "axes": [{"path": "campaign.rate", "values": [0.01, 0.1]}]},
        )
        spec = ScenarioSpec.from_dict(doc)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestPathPreciseErrors:
    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="'bogus'"):
            ScenarioSpec.from_dict(minimal(bogus=1))

    def test_unknown_section_key_names_section(self):
        with pytest.raises(ScenarioError, match=r"machine"):
            ScenarioSpec.from_dict(minimal(machine={"presett": "emmy"}))

    def test_wrong_type_names_field(self):
        with pytest.raises(ScenarioError, match=r"workload\.t_exec"):
            ScenarioSpec.from_dict(minimal(workload={"t_exec": "fast"}))

    def test_bad_preset_choice(self):
        with pytest.raises(ScenarioError, match=r"machine\.preset"):
            ScenarioSpec.from_dict(minimal(machine={"preset": "frontier"}))

    def test_preset_and_inline_conflict(self):
        with pytest.raises(ScenarioError, match="not both"):
            ScenarioSpec.from_dict(
                minimal(machine={"preset": "emmy", "latency": 1e-6}))

    def test_inline_needs_latency_and_bandwidth(self):
        with pytest.raises(ScenarioError, match="latency.*bandwidth"):
            ScenarioSpec.from_dict(minimal(machine={"latency": 1e-6}))

    def test_smt_requires_preset(self):
        with pytest.raises(ScenarioError, match=r"machine\.smt"):
            ScenarioSpec.from_dict(
                minimal(machine={"latency": 1e-6, "bandwidth": 1e9, "smt": "on"}))

    def test_delay_needs_exactly_one_duration_form(self):
        with pytest.raises(ScenarioError, match=r"delays\[0\]"):
            ScenarioSpec.from_dict(minimal(delays=[{"rank": 1}]))
        with pytest.raises(ScenarioError, match=r"delays\[0\]"):
            ScenarioSpec.from_dict(
                minimal(delays=[{"rank": 1, "duration": 1e-3, "phases": 2.0}]))

    def test_campaign_mixed_units_rejected(self):
        with pytest.raises(ScenarioError, match="campaign"):
            ScenarioSpec.from_dict(minimal(campaign={
                "rate": 0.1, "duration_low": 1e-3, "phases_high": 2.0}))

    def test_campaign_inverted_range(self):
        with pytest.raises(ScenarioError, match=r"campaign\.phases_high"):
            ScenarioSpec.from_dict(minimal(campaign={
                "rate": 0.1, "phases_low": 5.0, "phases_high": 2.0}))

    def test_unknown_output(self):
        with pytest.raises(ScenarioError, match=r"outputs\[1\]"):
            ScenarioSpec.from_dict(minimal(outputs=["runtime", "speed"]))

    def test_noise_param_for_wrong_model(self):
        with pytest.raises(ScenarioError, match=r"noise\.spike_delay"):
            ScenarioSpec.from_dict(
                minimal(noise={"model": "exponential", "level": 0.1,
                               "spike_delay": 1e-3}))

    def test_noise_mean_and_level_conflict(self):
        with pytest.raises(ScenarioError, match="not both"):
            ScenarioSpec.from_dict(
                minimal(noise={"model": "exponential", "level": 0.1,
                               "mean_delay": 1e-6}))

    def test_sweep_duplicate_axis(self):
        with pytest.raises(ScenarioError, match="duplicate axis"):
            ScenarioSpec.from_dict(minimal(sweep={"axes": [
                {"path": "campaign.rate", "values": [1]},
                {"path": "campaign.rate", "values": [2]},
            ]}))

    def test_sweep_empty(self):
        with pytest.raises(ScenarioError, match="at least one axis"):
            ScenarioSpec.from_dict(minimal(sweep={}))

    def test_error_names_scenario(self):
        with pytest.raises(ScenarioError, match="'t'"):
            ScenarioSpec.from_dict(minimal(n_ranks=1))


class TestOverrides:
    def test_nested_override(self):
        doc = minimal(campaign={"rate": 0.01, "phases_low": 1.0,
                                "phases_high": 2.0})
        out = apply_overrides(doc, {"campaign.rate": 0.5})
        assert out["campaign"]["rate"] == 0.5
        assert doc["campaign"]["rate"] == 0.01  # original untouched

    def test_override_creates_section(self):
        out = apply_overrides(minimal(), {"workload.threads": 4})
        assert out["workload"]["threads"] == 4

    def test_override_through_scalar_rejected(self):
        with pytest.raises(ScenarioError, match="not a table"):
            apply_overrides(minimal(), {"n_ranks.deep": 1})

    def test_bogus_override_fails_at_parse(self):
        out = apply_overrides(minimal(), {"bogus.key": 1})
        with pytest.raises(ScenarioError, match="bogus"):
            ScenarioSpec.from_dict(out)
