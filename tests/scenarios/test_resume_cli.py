"""``scenario sweep --resume``: finish interrupted campaigns from cache."""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import RunLedger
from repro.runtime import ResultStore

SWEEP = "campaign_rate_sweep"  # bundled 12-task grid


def _run_ids(cache):
    return [r["id"] for r in RunLedger(cache).records()]


def _sweep(cache, *extra):
    return main(["scenario", "sweep", SWEEP,
                 "--cache-dir", str(cache), *extra])


class TestResume:
    def test_resume_finishes_only_the_missing_tasks(self, tmp_path, capsys):
        cache = tmp_path / "store"
        assert _sweep(cache) == 0
        (first_id,) = _run_ids(cache)
        capsys.readouterr()

        # Simulate an interrupted campaign: drop most of the records.
        store = ResultStore(cache)
        keys = sorted(store.keys())
        assert len(keys) == 12
        for key in keys[3:]:
            store.path_for(key).unlink()

        assert _sweep(cache, "--resume", first_id) == 0
        out = capsys.readouterr().out
        assert "3 cached, 9 executed" in out

        records = list(RunLedger(cache).records())
        assert len(records) == 2
        resumed = records[-1]
        assert resumed["resumed_from"] == first_id
        assert resumed["n_cached"] == 3
        assert resumed["n_executed"] == 9

    def test_resume_accepts_an_unambiguous_id_prefix(self, tmp_path, capsys):
        cache = tmp_path / "store"
        assert _sweep(cache) == 0
        (first_id,) = _run_ids(cache)
        assert _sweep(cache, "--resume", first_id[:12]) == 0
        records = list(RunLedger(cache).records())
        assert records[-1]["resumed_from"] == first_id

    def test_resume_requires_cache_dir(self, capsys):
        assert main(["scenario", "sweep", SWEEP,
                     "--resume", "run-deadbeef"]) == 2
        assert "--resume requires --cache-dir" in capsys.readouterr().err

    def test_resume_of_unknown_run_id_exits_2(self, tmp_path, capsys):
        cache = tmp_path / "store"
        assert _sweep(cache) == 0
        capsys.readouterr()
        assert _sweep(cache, "--resume", "nosuchrun") == 2
        assert "no run 'nosuchrun'" in capsys.readouterr().err

    def test_resume_of_a_different_grid_is_refused(self, tmp_path, capsys):
        """Resuming under a different --seed would execute the wrong
        campaign against the old cache: the spec-key check refuses."""
        cache = tmp_path / "store"
        assert _sweep(cache) == 0
        (first_id,) = _run_ids(cache)
        capsys.readouterr()
        assert _sweep(cache, "--resume", first_id, "--seed", "999") == 2
        assert "different grid" in capsys.readouterr().err
        # No second ledger record was written for the refused run.
        assert len(_run_ids(cache)) == 1

    def test_resume_rejected_for_non_sweep_scenarios(self, capsys):
        assert main(["scenario", "run", "fig4_single_delay",
                     "--resume", "run-deadbeef"]) == 2
        assert "only applies to sweeps" in capsys.readouterr().err


class TestStoreFailFast:
    def test_unwritable_cache_dir_exits_2_before_running(self, tmp_path,
                                                         capsys):
        bogus = tmp_path / "cache"
        bogus.write_text("a file, not a directory")
        assert _sweep(bogus) == 2
        assert "store error" in capsys.readouterr().err
