"""Tests for store maintenance: ``ResultStore.entries``/``gc`` + the CLI."""

import json

import numpy as np
import pytest

from repro.cli import main as repro_main
from repro.runtime.cli import store_main
from repro.runtime.store import ResultStore


@pytest.fixture
def store(tmp_path):
    store = ResultStore(tmp_path / "cache")
    store.put("aa" * 16, {"x": 1.0}, spec={"fn": "m:f", "seed": 7})
    store.put("bb" * 16, {"arr": np.arange(4.0)})
    return store


class TestEntries:
    def test_metadata(self, store):
        entries = {e.key: e for e in store.entries()}
        assert set(entries) == {"aa" * 16, "bb" * 16}
        plain = entries["aa" * 16]
        assert plain.fn == "m:f" and plain.seed == 7
        assert plain.npz_bytes == 0 and plain.json_bytes > 0
        arrays = entries["bb" * 16]
        assert arrays.n_arrays == 1 and arrays.npz_bytes > 0
        assert arrays.total_bytes == arrays.json_bytes + arrays.npz_bytes

    def test_empty_store(self, tmp_path):
        assert list(ResultStore(tmp_path / "nope").entries()) == []

    def test_mtime_comes_from_stat(self, store):
        import os

        key = "aa" * 16
        os.utime(store.path_for(key), (1_000_000_000, 1_000_000_000))
        entry = {e.key: e for e in store.entries()}[key]
        assert entry.mtime == 1_000_000_000

    def test_torn_and_partial_records_are_skipped(self, store):
        """A store holding torn records lists only the readable ones.

        Three flavors of damage: a record truncated mid-payload (the
        header marker is gone), a record truncated mid-header (the marker
        survives but its JSON does not), and plain garbage bytes.
        """
        for i, mutilate in enumerate([
            lambda t: t[: t.index('"value"') + 10],          # mid-payload
            lambda t: t[: t.rindex('"spec"') + 8],           # mid-header
            lambda t: "{not json",                            # garbage
        ]):
            key = f"{i}{i}" * 16
            store.put(key, {"x": list(range(50))}, spec={"fn": "m:f", "seed": i})
            path = store.path_for(key)
            path.write_text(mutilate(path.read_text()))
        # non-UTF-8 bytes (torn binary write) must also be skipped
        store.put("33" * 16, {"x": 1})
        store.path_for("33" * 16).write_bytes(b"\xff\xfe garbage")
        assert {e.key for e in store.entries()} == {"aa" * 16, "bb" * 16}

    def test_header_parse_skips_large_payloads(self, store):
        """Header fields are read from the record tail, not a full parse.

        A payload much larger than the tail window, containing decoy
        strings that *look* like the header marker inside JSON values
        (where raw newlines are impossible), must still list correctly.
        """
        key = "cc" * 16
        decoy = '\\n "__arrays__": [evil]'  # escaped newline, inside a string
        store.put(
            key,
            {"blob": [decoy] * 20_000, "arr": np.arange(3.0)},
            spec={"fn": "m:big", "seed": 9},
        )
        assert store.path_for(key).stat().st_size > ResultStore._HEADER_TAIL_BYTES
        entry = {e.key: e for e in store.entries()}[key]
        assert entry.fn == "m:big" and entry.seed == 9 and entry.n_arrays == 1

    def test_header_outside_tail_window_falls_back_to_full_parse(self, store):
        """An oversized spec pushes the header out of the tail window."""
        key = "dd" * 16
        store.put(key, {"x": 1},
                  spec={"fn": "m:wide", "seed": 3,
                        "padding": "p" * (2 * ResultStore._HEADER_TAIL_BYTES)})
        entry = {e.key: e for e in store.entries()}[key]
        assert entry.fn == "m:wide" and entry.seed == 3


class TestGc:
    def test_nothing_to_do(self, store):
        stats = store.gc()
        assert stats.n_removed == 0 and stats.bytes_freed == 0
        assert len(store) == 2

    def test_orphan_npz_removed(self, store):
        key = "bb" * 16
        store.path_for(key).unlink()  # leaves the NPZ orphaned
        stats = store.gc(min_age_s=0)
        assert stats.n_orphan_npz == 1 and stats.bytes_freed > 0
        assert not store._npz_path(key).exists()
        assert store.get("aa" * 16) == {"x": 1.0}  # valid record untouched

    def test_torn_record_removed_with_sidecar(self, store):
        key = "bb" * 16
        store.path_for(key).write_text("{not json")
        stats = store.gc()
        assert stats.n_corrupt == 1
        assert not store.path_for(key).exists()
        assert not store._npz_path(key).exists()

    def test_stale_tmp_files_removed(self, store):
        tmp = store.root / "aa" / ".leftover.json.x1y2"
        tmp.write_text("partial")
        stats = store.gc(min_age_s=0)
        assert stats.n_tmp == 1
        assert not tmp.exists()

    def test_fresh_tmp_files_survive(self, store):
        # A concurrent writer's live temp file must not be unlinked.
        tmp = store.root / "aa" / ".inflight.json.x1y2"
        tmp.write_text("partial")
        stats = store.gc()
        assert stats.n_tmp == 0
        assert tmp.exists()

    def test_fresh_orphan_npz_survives(self, store):
        # A concurrent put() writes the NPZ before its JSON record; a gc
        # racing that window must not unlink the side-car.
        key = "bb" * 16
        store.path_for(key).unlink()
        stats = store.gc()
        assert stats.n_orphan_npz == 0
        assert store._npz_path(key).exists()

    def test_dry_run_deletes_nothing(self, store):
        key = "bb" * 16
        store.path_for(key).unlink()
        stats = store.gc(dry_run=True, min_age_s=0)
        assert stats.n_orphan_npz == 1
        assert store._npz_path(key).exists()

    def test_missing_root(self, tmp_path):
        stats = ResultStore(tmp_path / "nope").gc()
        assert stats.n_removed == 0


class TestGcObservability:
    """gc also maintains the obs side-dirs: <cache>/telemetry/ JSONL no
    ledger record references, torn run records, and abandoned temps —
    never a valid ledger record (provenance is not cache)."""

    @pytest.fixture
    def obs_store(self, store):
        runs = store.root / "runs"
        tele = store.root / "telemetry"
        runs.mkdir()
        tele.mkdir()
        (tele / "kept.jsonl").write_text('{"type": "meta"}\n')
        (runs / "sweep-a.json").write_text(json.dumps(
            {"id": "sweep-a", "telemetry": str(tele / "kept.jsonl")}) + "\n")
        return store

    def test_referenced_telemetry_and_valid_records_survive(self, obs_store):
        stats = obs_store.gc(min_age_s=0)
        assert stats.n_removed == 0
        assert (obs_store.root / "runs" / "sweep-a.json").exists()
        assert (obs_store.root / "telemetry" / "kept.jsonl").exists()

    def test_orphan_telemetry_removed(self, obs_store):
        orphan = obs_store.root / "telemetry" / "orphan.jsonl"
        orphan.write_text('{"type": "meta"}\n')
        stats = obs_store.gc(min_age_s=0)
        assert stats.n_orphan_telemetry == 1 and stats.bytes_freed > 0
        assert not orphan.exists()
        assert (obs_store.root / "telemetry" / "kept.jsonl").exists()

    def test_fresh_orphan_telemetry_survives(self, obs_store):
        # A live --profile run writes telemetry before its ledger record.
        orphan = obs_store.root / "telemetry" / "inflight.jsonl"
        orphan.write_text('{"type": "meta"}\n')
        stats = obs_store.gc()  # default min-age spares young files
        assert stats.n_orphan_telemetry == 0
        assert orphan.exists()

    def test_torn_run_record_removed(self, obs_store):
        torn = obs_store.root / "runs" / "torn.json"
        torn.write_text('{"id": "tor')
        stats = obs_store.gc(min_age_s=0)
        assert stats.n_torn_runs == 1
        assert not torn.exists()

    def test_ledger_temp_files_counted_as_tmp(self, obs_store):
        (obs_store.root / "runs" / ".sweep-b.json.x1").write_text("p")
        (obs_store.root / "telemetry" / ".w.jsonl.x2").write_text("p")
        stats = obs_store.gc(min_age_s=0)
        assert stats.n_tmp == 2
        assert stats.n_orphan_telemetry == 0

    def test_dry_run_reports_without_deleting(self, obs_store):
        orphan = obs_store.root / "telemetry" / "orphan.jsonl"
        orphan.write_text('{"type": "meta"}\n')
        stats = obs_store.gc(dry_run=True, min_age_s=0)
        assert stats.n_orphan_telemetry == 1 and stats.bytes_freed > 0
        assert orphan.exists()

    def test_cli_reports_new_categories(self, obs_store, capsys):
        (obs_store.root / "telemetry" / "orphan.jsonl").write_text("{}\n")
        (obs_store.root / "runs" / "torn.json").write_text("{")
        assert store_main(["gc", "--cache-dir", str(obs_store.root),
                           "--min-age", "0"]) == 0
        out = capsys.readouterr().out
        assert "1 orphan telemetry" in out
        assert "1 torn run record(s)" in out
        assert "removed 2 file(s)" in out

    def test_end_to_end_profiled_sweep_then_gc(self, tmp_path, capsys):
        """A real profiled sweep's ledger + telemetry are never pruned."""
        from repro.scenarios.cli import scenario_main

        store_dir = tmp_path / "cache"
        assert scenario_main([
            "sweep", "campaign_rate_sweep", "--cache-dir", str(store_dir),
            "--profile", "--no-progress",
        ]) == 0
        capsys.readouterr()
        stats = ResultStore(store_dir).gc(min_age_s=0)
        assert stats.n_removed == 0
        assert list((store_dir / "runs").glob("*.json"))
        assert list((store_dir / "telemetry").glob("*.jsonl"))


class TestCli:
    def test_ls(self, store, capsys):
        assert store_main(["ls", "--cache-dir", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "m:f" in out and "2 result(s)" in out

    def test_ls_json(self, store, capsys):
        assert store_main(["ls", "--cache-dir", str(store.root),
                           "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {e["key"] for e in doc} == {"aa" * 16, "bb" * 16}

    def test_ls_empty(self, tmp_path, capsys):
        assert store_main(["ls", "--cache-dir", str(tmp_path / "e")]) == 0
        assert "empty store" in capsys.readouterr().out

    def test_gc_reports_counts(self, store, capsys):
        store.path_for("bb" * 16).unlink()
        assert store_main(["gc", "--cache-dir", str(store.root),
                           "--min-age", "0"]) == 0
        assert "removed 1 file(s): 1 orphan NPZ" in capsys.readouterr().out

    def test_gc_dry_run(self, store, capsys):
        store.path_for("bb" * 16).unlink()
        assert store_main(["gc", "--cache-dir", str(store.root),
                           "--dry-run", "--min-age", "0"]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert store._npz_path("bb" * 16).exists()

    def test_main_wiring(self, store, capsys):
        assert repro_main(["store", "ls", "--cache-dir",
                           str(store.root)]) == 0
        assert "2 result(s)" in capsys.readouterr().out
