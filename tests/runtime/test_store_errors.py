"""Store failure semantics: fail fast, fail typed, never leave torn state."""

import numpy as np
import pytest

from repro.runtime import ResultStore, StoreError, chaos
from repro.runtime.chaos import ChaosSpec


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.uninstall()
    yield
    chaos.uninstall()


class TestEnsureWritable:
    def test_writable_directory_passes_and_leaves_no_residue(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.ensure_writable()
        assert not list((tmp_path / "cache").glob(".writable.*"))

    def test_root_that_is_a_file_fails_fast(self, tmp_path):
        bogus = tmp_path / "cache"
        bogus.write_text("not a directory")
        store = ResultStore(bogus)
        with pytest.raises(StoreError, match="not writable"):
            store.ensure_writable()

    def test_uncreatable_root_fails_fast(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        store = ResultStore(blocker / "cache")
        with pytest.raises(StoreError, match="not writable"):
            store.ensure_writable()


class TestPerFilePutErrors:
    def test_write_failure_raises_store_error_with_key(self, tmp_path,
                                                       monkeypatch):
        store = ResultStore(tmp_path / "cache")

        def broken_atomic_write(path, writer, binary=False):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(store, "_atomic_write", broken_atomic_write)
        with pytest.raises(StoreError, match="'aa11'.*No space left"):
            store.put("aa11", {"x": 1})
        # The failed key never became a phantom hit.
        assert store.get("aa11") is None


class _EnospcAfter:
    """File-handle proxy: first ``ok_writes`` writes land, the rest ENOSPC.

    Everything else (tell/truncate/seek/flush/close) passes through, so
    the shard writer's truncate-back recovery runs against the real file.
    """

    def __init__(self, fh, ok_writes=1):
        self._fh = fh
        self._budget = ok_writes

    def write(self, data):
        if self._budget <= 0:
            raise OSError(28, "No space left on device")
        self._budget -= 1
        return self._fh.write(data)

    def __getattr__(self, name):
        return getattr(self._fh, name)


class TestPackedAppendErrors:
    def test_enospc_mid_append_truncates_and_keeps_index_consistent(
            self, tmp_path):
        store = ResultStore(tmp_path / "cache", layout="packed")
        store.put("aa01", {"x": 1}, spec={"fn": "f", "seed": 0})

        shards = store._shards
        pid, name, real_fh, idx_fh = shards._writer
        size_before = real_fh.tell()
        shards._writer = (pid, name, _EnospcAfter(real_fh, ok_writes=1),
                          idx_fh)
        with pytest.raises(StoreError, match="mid-write.*No space left"):
            store.put("dd00", {"x": 2, "arr": np.arange(4)},
                      spec={"fn": "f", "seed": 1})
        shards._writer = (pid, name, real_fh, idx_fh)

        # The torn entry was cut away and never indexed.
        assert real_fh.tell() == size_before
        assert store.get("dd00") is None
        # The store keeps working once space returns.
        store.put("aa02", {"x": 3}, spec={"fn": "f", "seed": 2})
        reread = ResultStore(tmp_path / "cache", layout="packed")
        assert sorted(reread.keys()) == ["aa01", "aa02"]
        assert reread.get("aa01") == {"x": 1}
        assert reread.get("aa02") == {"x": 3}


class TestChaosTornWrites:
    def test_committed_entry_survives_a_torn_tail(self, tmp_path):
        store = ResultStore(tmp_path / "cache", layout="packed")
        chaos.install(ChaosSpec(seed=0, torn_write_rate=1.0))
        try:
            store.put("aa11", {"x": 1}, spec={"fn": "f", "seed": 0})
            store.put("bb22", {"x": 2}, spec={"fn": "f", "seed": 1})
        finally:
            chaos.uninstall()
        # Each tear retires the writer, so every record got its own shard.
        shard_dir = tmp_path / "cache" / "shards"
        assert len(list(shard_dir.glob("*.shard"))) == 2
        # A fresh reader scans around the garbage tails.
        reread = ResultStore(tmp_path / "cache", layout="packed")
        assert reread.get("aa11") == {"x": 1}
        assert reread.get("bb22") == {"x": 2}
        assert sorted(reread.keys()) == ["aa11", "bb22"]
