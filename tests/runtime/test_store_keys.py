"""Cache-key stability across the batched task shape and engine dispatch.

The content-addressed store serves a result whenever a task's key
matches, so the key must change exactly when the task's *semantics*
change:

- batching is execution-only: a batched replicate block stores its
  results under the very keys the unbatched tasks would use (bit-identical
  values — asserted in ``tests/scenarios/test_batch.py``);
- engine dispatch is semantics: scenario sweeps resolve ``engine="auto"``
  to the concrete engine *before* the key is formed, so results computed
  under an older dispatch rule (e.g. ``auto`` meaning "DAG for ppn
  scenarios") can never be served to the new one.
"""

import json

import pytest

from repro.runtime import ResultStore, RunSpec, run_campaign, spec_key
from repro.scenarios import load_bundled_scenario, scenario_sweep_spec
from repro.scenarios.batch import SCENARIO_TASK_FN


def expanded_tasks(name="emmy_mapped_dag", **kw):
    return scenario_sweep_spec(load_bundled_scenario(name), **kw).tasks()


class TestKeySemantics:
    def test_key_ignores_campaign_position(self):
        a = RunSpec(fn="m:f", params=(("x", 1),), seed=5, index=0)
        b = RunSpec(fn="m:f", params=(("x", 1),), seed=5, index=9)
        assert spec_key(a) == spec_key(b)

    def test_key_tracks_seed_and_params(self):
        base = RunSpec(fn="m:f", params=(("x", 1),), seed=5)
        assert spec_key(base) != spec_key(
            RunSpec(fn="m:f", params=(("x", 1),), seed=6))
        assert spec_key(base) != spec_key(
            RunSpec(fn="m:f", params=(("x", 2),), seed=5))

    def test_engine_value_changes_the_key(self):
        doc = load_bundled_scenario("fig4_single_delay").to_dict()
        auto = RunSpec(fn=SCENARIO_TASK_FN,
                       params=(("engine", "auto"), ("scenario", doc)), seed=1)
        lockstep = RunSpec(fn=SCENARIO_TASK_FN,
                           params=(("engine", "lockstep"), ("scenario", doc)),
                           seed=1)
        assert spec_key(auto) != spec_key(lockstep)


class TestSweepKeysNameTheResolvedEngine:
    def test_auto_resolves_to_concrete_engine_in_task_params(self):
        for task in expanded_tasks():
            assert task.kwargs["engine"] == "lockstep"

    def test_forced_engine_is_preserved(self):
        for task in expanded_tasks(engine="dag"):
            assert task.kwargs["engine"] == "dag"

    def test_forced_dag_and_auto_address_different_records(self):
        auto_keys = {t.key for t in expanded_tasks()}
        dag_keys = {t.key for t in expanded_tasks(engine="dag")}
        assert auto_keys.isdisjoint(dag_keys)

    def test_stale_auto_keyed_record_is_not_reused(self, tmp_path):
        """A record stored under the old ``engine="auto"`` parameters (the
        pre-resolution key shape, under which 'auto' dispatched ppn
        scenarios to the DAG engine) never satisfies the new tasks."""
        store = ResultStore(tmp_path / "store")
        task = expanded_tasks()[0]
        old_style = RunSpec(
            fn=task.fn,
            params=tuple((k, "auto" if k == "engine" else v)
                         for k, v in task.params),
            seed=task.seed,
        )
        store.put(old_style.key, {"outputs": {}, "engine": "dag",
                                  "n_campaign_delays": 0, "replicate": 0},
                  spec=old_style.describe())
        campaign = run_campaign([task], jobs=1, store=store)
        assert campaign.n_cached == 0
        assert campaign.n_executed == 1
        assert campaign.values()[0]["engine"] == "lockstep"
        # the stale record is left untouched at its own address
        assert store.get(old_style.key)["engine"] == "dag"

    def test_batched_and_serial_runs_share_addresses(self, tmp_path):
        from repro.scenarios.batch import ScenarioTaskBatcher

        tasks = expanded_tasks("campaign_rate_sweep")
        serial_store = ResultStore(tmp_path / "serial")
        batched_store = ResultStore(tmp_path / "batched")
        run_campaign(tasks, jobs=1, store=serial_store)
        run_campaign(tasks, jobs=1, store=batched_store,
                     batcher=ScenarioTaskBatcher())
        assert set(serial_store.keys()) == set(batched_store.keys())

    def test_record_spec_provenance_names_the_engine(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        task = expanded_tasks()[0]
        run_campaign([task], jobs=1, store=store)
        record = json.loads(store.path_for(task.key).read_text())
        assert record["spec"]["params"]["engine"] == "lockstep"


class TestMixedEngineSweepSafety:
    def test_forced_engine_is_never_rewritten(self):
        sweep = scenario_sweep_spec(
            load_bundled_scenario("fig4_single_delay"), engine="lockstep")
        assert dict(sweep.base)["engine"] == "lockstep"

    def test_mixed_engine_grid_is_rejected_not_keyed_as_auto(self, monkeypatch):
        """If dispatch ever becomes point-dependent again, the literal
        'auto' must never reach a cache key: a mixed grid is an error,
        not a silent fall-through."""
        import repro.scenarios.sweep as sweep_mod
        from repro.scenarios import ScenarioError

        real_compile = sweep_mod.compile_scenario
        engines = iter(["lockstep", "dag", "lockstep"])

        class Resolved:
            def __init__(self, engine):
                self.engine = engine

        def fake_compile(spec, engine="auto"):
            real_compile(spec, engine="auto")  # keep validation semantics
            return Resolved(next(engines))

        monkeypatch.setattr(sweep_mod, "compile_scenario", fake_compile)
        with pytest.raises(ScenarioError, match="multiple engines"):
            scenario_sweep_spec(load_bundled_scenario("campaign_rate_sweep"))

    def test_unknown_engine_still_rejected(self):
        from repro.scenarios import ScenarioError

        with pytest.raises(ScenarioError, match="unknown engine"):
            scenario_sweep_spec(load_bundled_scenario("fig4_single_delay"),
                                engine="warp")
