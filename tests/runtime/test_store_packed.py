"""Packed shard backend: round-trips, crash consistency, migration.

Extends the torn-record suite of ``test_store_cli.py`` to the sharded
layout: torn shard tails, truncated/corrupt sidecar indexes, corrupt NPZ
side-cars, concurrent multi-writer appends, and the byte-identity
property of ``store migrate``.
"""

import json
import multiprocessing
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.runtime.shards import _HEADER, _MAGIC, PackedShards
from repro.runtime.store import ResultStore

KEY = "ab" * 16


def keyn(i: int) -> str:
    return f"{i:032x}"


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache", layout="packed")


class TestPackedRoundTrip:
    def test_plain_json_fields(self, store):
        value = {"runtime": 0.125, "n": 3, "tags": ["a", "b"], "ok": True}
        store.put(KEY, value)
        assert store.get(KEY) == value
        assert store.packed_active
        assert not store.path_for(KEY).exists()  # nothing in the fan-out

    def test_float_bits_survive(self, store):
        value = {"x": 0.1 + 0.2, "y": 1e-300}
        store.put(KEY, value)
        loaded = store.get(KEY)
        assert loaded["x"].hex() == value["x"].hex()
        assert loaded["y"].hex() == value["y"].hex()

    def test_ndarray_fields(self, store):
        arr = np.linspace(0.0, 1.0, 7)
        store.put(KEY, {"curve": arr, "n": 7})
        loaded = store.get(KEY)
        np.testing.assert_array_equal(loaded["curve"], arr)
        assert loaded["curve"].dtype == arr.dtype
        assert loaded["curve"].flags.writeable  # default read copies
        assert loaded["n"] == 7

    def test_fortran_and_empty_and_0d_arrays(self, store):
        f = np.asfortranarray(np.arange(12.0).reshape(3, 4))
        store.put(KEY, {"f": f, "empty": np.zeros((0, 3)), "s": np.float32(2.5)})
        loaded = store.get(KEY)
        np.testing.assert_array_equal(loaded["f"], f)
        assert loaded["f"].flags.f_contiguous
        assert loaded["empty"].shape == (0, 3)
        assert loaded["s"] == 2.5  # numpy scalar stored as plain field

    def test_object_dtype_rejected(self, store):
        with pytest.raises(TypeError, match="object-dtype"):
            store.put(KEY, {"bad": np.array([object()])})

    def test_mmap_read_is_zero_copy_view(self, store):
        arr = np.arange(24.0).reshape(2, 3, 4)
        store.put(KEY, {"stack": arr})
        view = store.get(KEY, mmap=True)["stack"]
        np.testing.assert_array_equal(view, arr)
        assert not view.flags.writeable  # read-only view into the shard
        assert view.base is not None  # not a fresh allocation

    def test_spec_recorded_for_provenance(self, store):
        store.put(KEY, {"x": 1}, spec={"fn": "m:f", "seed": 9})
        entry = next(iter(store.entries()))
        assert entry.fn == "m:f" and entry.seed == 9 and entry.packed

    def test_cross_instance_read(self, store):
        store.put(KEY, {"x": 1})
        fresh = ResultStore(store.root)  # auto-detects the shards dir
        assert fresh.packed_active
        assert fresh.get(KEY) == {"x": 1}

    def test_last_write_wins_for_duplicate_keys(self, store):
        store.put(KEY, {"x": 1})
        store.put(KEY, {"x": 2})
        assert store.get(KEY) == {"x": 2}
        assert len(store) == 1

    def test_keys_and_contains(self, store):
        keys = [keyn(i) for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i})
        assert sorted(store.keys()) == sorted(keys)
        assert keys[0] in store and "ff" * 16 not in store

    def test_clear_removes_shards(self, store):
        store.put(KEY, {"x": 1, "a": np.ones(3)})
        assert store.clear() == 1
        assert len(store) == 0
        assert not (store.root / "shards").exists()
        assert store.get(KEY) is None


class TestShortKeys:
    def test_put_rejects_sub_fanout_keys(self, store):
        # A 1-char key used to be writable in the per-file layout but
        # invisible to keys()/gc() (the ``??`` fan-out glob never
        # matches a single-character directory).
        with pytest.raises(ValueError, match="malformed"):
            store.put("a", {"x": 1})
        with pytest.raises(ValueError, match="malformed"):
            ResultStore(store.root, layout="file").path_for("a")
        with pytest.raises(ValueError, match="malformed"):
            store.path_for("")


class TestCorruptNpzSidecar:
    """Regression: np.load raises zipfile.BadZipFile/ValueError for a
    corrupt side-car — neither is an OSError, so they used to escape the
    miss handler and crash the whole campaign."""

    @pytest.fixture
    def legacy(self, tmp_path):
        store = ResultStore(tmp_path / "cache", layout="file")
        store.put(KEY, {"curve": np.arange(4.0), "n": 4})
        return store

    def test_garbage_npz_is_a_miss(self, legacy):
        legacy._npz_path(KEY).write_bytes(b"not a zip at all")
        assert legacy.get(KEY) is None  # used to raise BadZipFile

    def test_truncated_npz_is_a_miss(self, legacy):
        path = legacy._npz_path(KEY)
        path.write_bytes(path.read_bytes()[:20])
        assert legacy.get(KEY) is None

    def test_gc_collects_corrupt_npz_pair(self, legacy):
        legacy._npz_path(KEY).write_bytes(b"not a zip at all")
        stats = legacy.gc(min_age_s=0)
        assert stats.n_corrupt_npz == 1 and stats.bytes_freed > 0
        assert not legacy.path_for(KEY).exists()
        assert not legacy._npz_path(KEY).exists()

    def test_gc_collects_missing_npz_pair(self, legacy):
        legacy._npz_path(KEY).unlink()
        stats = legacy.gc(min_age_s=0)
        assert stats.n_corrupt_npz == 1
        assert not legacy.path_for(KEY).exists()

    def test_gc_dry_run_keeps_the_pair(self, legacy):
        legacy._npz_path(KEY).write_bytes(b"junk")
        stats = legacy.gc(dry_run=True, min_age_s=0)
        assert stats.n_corrupt_npz == 1
        assert legacy.path_for(KEY).exists()


class TestLegacyClear:
    def test_clear_removes_orphan_npz_and_empty_dirs(self, tmp_path):
        # clear() used to unlink only pairs reachable via a readable
        # JSON record, leaving orphan .npz files and fan-out dirs.
        store = ResultStore(tmp_path / "cache", layout="file")
        store.put(KEY, {"a": np.ones(2)})
        store.put("cd" * 16, {"x": 1})
        store.path_for(KEY).unlink()  # orphan the side-car
        assert store.clear() == 2
        assert not store._npz_path(KEY).exists()
        assert not any(store.root.glob("??"))  # fan-out dirs removed


class TestTornShard:
    def test_torn_tail_loses_only_the_last_entry(self, store):
        for i in range(3):
            store.put(keyn(i), {"i": i, "arr": np.arange(10.0) + i})
        shard = next(iter((store.root / "shards").glob("*.shard")))
        shard.write_bytes(shard.read_bytes()[:-7])  # tear mid-array
        (store.root / "shards" / f"{shard.name}.idx").unlink()
        fresh = ResultStore(store.root)
        assert fresh.get(keyn(2)) is None  # torn entry: a miss
        for i in range(2):  # earlier entries intact
            assert fresh.get(keyn(i))["i"] == i

    def test_torn_json_payload_stops_the_scan(self, store):
        store.put(keyn(0), {"x": 1})
        shard = next(iter((store.root / "shards").glob("*.shard")))
        data = bytearray(shard.read_bytes())
        data[_HEADER.size + 2] ^= 0xFF  # corrupt the record JSON
        shard.write_bytes(bytes(data))
        (store.root / "shards" / f"{shard.name}.idx").unlink()
        fresh = ResultStore(store.root)
        assert fresh.get(keyn(0)) is None  # CRC catches the damage

    def test_recovered_after_recompute(self, store):
        store.put(keyn(0), {"x": 1})
        shard = next(iter((store.root / "shards").glob("*.shard")))
        shard.write_bytes(shard.read_bytes()[:-3])
        fresh = ResultStore(store.root)
        assert fresh.get(keyn(0)) is None
        fresh.put(keyn(0), {"x": 1})  # the recompute path
        assert fresh.get(keyn(0)) == {"x": 1}


class TestTruncatedIndex:
    def test_missing_index_recovered_by_scan(self, store):
        for i in range(4):
            store.put(keyn(i), {"i": i})
        for idx in (store.root / "shards").glob("*.idx"):
            idx.unlink()
        fresh = ResultStore(store.root)
        assert {fresh.get(keyn(i))["i"] for i in range(4)} == set(range(4))

    def test_torn_index_tail_recovered_by_scan(self, store):
        for i in range(4):
            store.put(keyn(i), {"i": i})
        idx = next(iter((store.root / "shards").glob("*.idx")))
        text = idx.read_text().splitlines(keepends=True)
        idx.write_text("".join(text[:2]) + text[2][:10])  # torn line 3
        fresh = ResultStore(store.root)
        assert {fresh.get(keyn(i))["i"] for i in range(4)} == set(range(4))

    def test_garbage_index_recovered_by_scan(self, store):
        store.put(keyn(0), {"i": 0})
        idx = next(iter((store.root / "shards").glob("*.idx")))
        idx.write_text('{"key": "wrong", "offset": 999999}\nGARBAGE\n')
        fresh = ResultStore(store.root)
        assert fresh.get(keyn(0)) == {"i": 0}

    def test_rebuild_index_rewrites_sidecars(self, store):
        for i in range(3):
            store.put(keyn(i), {"i": i, "a": np.ones(2)})
        shards = store.root / "shards"
        for idx in shards.glob("*.idx"):
            idx.write_text("GARBAGE\n")
        fresh = ResultStore(store.root)
        assert fresh._shards.rebuild_index() == 3
        # The rewritten sidecar alone now lists everything: a third
        # instance reads entries() without touching record payloads.
        third = ResultStore(store.root)
        assert {e.key for e in third.entries()} == {keyn(i) for i in range(3)}
        for line in (next(iter(shards.glob("*.idx")))).read_text().splitlines():
            assert set(json.loads(line)) >= {"key", "offset", "json_len"}


def _writer_proc(root, start, n):
    store = ResultStore(root, layout="packed")
    for i in range(start, start + n):
        store.put(keyn(i), {"i": i, "arr": np.full(5, float(i))})


class TestConcurrentWriters:
    def test_two_writers_never_collide(self, tmp_path):
        root = tmp_path / "cache"
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_writer_proc, args=(root, s, 25))
                 for s in (0, 25)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        store = ResultStore(root)
        assert len(store) == 50
        for i in range(50):
            value = store.get(keyn(i))
            assert value["i"] == i
            np.testing.assert_array_equal(value["arr"], np.full(5, float(i)))
        # each process appended to its own shard file
        assert len(list((root / "shards").glob("*.shard"))) == 2

    def test_forked_child_opens_its_own_shard(self, tmp_path):
        root = tmp_path / "cache"
        store = ResultStore(root, layout="packed")
        store.put(keyn(0), {"i": 0})  # parent owns a writer handle now
        ctx = multiprocessing.get_context("fork")

        def child():
            store.put(keyn(1), {"i": 1})  # inherited instance, new pid

        p = ctx.Process(target=child)
        p.start()
        p.join()
        assert p.exitcode == 0
        fresh = ResultStore(root)
        assert fresh.get(keyn(1)) == {"i": 1}
        assert len(list((root / "shards").glob("*.shard"))) == 2


class TestMigration:
    def _legacy_store(self, tmp_path):
        store = ResultStore(tmp_path / "cache", layout="file")
        store.put(keyn(0), {"x": 0.1 + 0.2, "curve": np.linspace(0, 1, 9)},
                  spec={"fn": "m:f", "seed": 3})
        store.put(keyn(1), {"plain": [1, 2, 3]})
        store.put(keyn(2), {"f": np.asfortranarray(np.eye(3))})
        return store

    def test_migrate_then_get_byte_identical(self, tmp_path):
        store = self._legacy_store(tmp_path)
        before = {k: store.get(k) for k in store.keys()}
        stats = store.migrate()
        assert stats.n_packed == 3 and stats.n_skipped == 0
        after = ResultStore(store.root)  # fresh instance, packed reads
        assert after.packed_active
        for key, old in before.items():
            new = after.get(key)
            assert set(new) == set(old)
            for name, item in old.items():
                if isinstance(item, np.ndarray):
                    assert new[name].dtype == item.dtype
                    assert new[name].shape == item.shape
                    assert new[name].tobytes() == item.tobytes()
                else:
                    assert new[name] == item

    def test_migrate_is_idempotent(self, tmp_path):
        store = self._legacy_store(tmp_path)
        store.migrate()
        again = store.migrate()
        assert again.n_packed == 0 and again.n_already == 3

    def test_migrate_skips_unreadable_records(self, tmp_path):
        store = self._legacy_store(tmp_path)
        store.path_for(keyn(1)).write_text("{torn")
        store._npz_path(keyn(2)).write_bytes(b"bad zip")
        stats = store.migrate()
        assert stats.n_packed == 1 and stats.n_skipped == 2

    def test_dry_run_packs_nothing(self, tmp_path):
        store = self._legacy_store(tmp_path)
        stats = store.migrate(dry_run=True)
        assert stats.n_packed == 3
        assert not (store.root / "shards").exists()

    def test_gc_prunes_packed_originals(self, tmp_path):
        store = self._legacy_store(tmp_path)
        store.migrate()
        stats = store.gc(min_age_s=0)
        assert stats.n_migrated == 3 and stats.bytes_freed > 0
        assert not any(store.root.glob("??/*.json"))
        assert not any(store.root.glob("??"))  # emptied fan-out removed
        fresh = ResultStore(store.root)
        assert fresh.get(keyn(0))["x"] == 0.1 + 0.2

    def test_entries_list_migrated_keys_once(self, tmp_path):
        store = self._legacy_store(tmp_path)
        store.migrate()
        entries = list(store.entries())
        assert len(entries) == 3 and all(e.packed for e in entries)


_plain_values = st.one_of(
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(max_size=8),
    st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=4),
)
_arrays = npst.arrays(
    dtype=st.sampled_from([np.float64, np.float32, np.int64, np.uint8]),
    shape=npst.array_shapes(max_dims=3, max_side=4),
)
_records = st.dictionaries(
    keys=st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
    values=st.one_of(_plain_values, _arrays),
    max_size=5,
)


class TestMigrationProperty:
    @given(record=_records, seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_any_record_survives_migration_byte_identically(
            self, tmp_path_factory, record, seed):
        root = tmp_path_factory.mktemp("prop") / "cache"
        store = ResultStore(root, layout="file")
        store.put(KEY, record, spec={"fn": "m:prop", "seed": seed})
        before = store.get(KEY)
        assert store.migrate().n_packed == 1
        after = ResultStore(root).get(KEY)
        assert set(after) == set(before)
        for name, item in before.items():
            if isinstance(item, np.ndarray):
                assert after[name].dtype == item.dtype
                assert after[name].shape == item.shape
                assert after[name].tobytes() == item.tobytes()
            elif isinstance(item, float):
                assert after[name].hex() == item.hex()
            else:
                assert after[name] == item


class TestShardInternals:
    def test_entry_header_layout(self, store):
        store.put(KEY, {"x": 1})
        shard = next(iter((store.root / "shards").glob("*.shard")))
        raw = shard.read_bytes()
        magic, crc, json_len, arr_len = _HEADER.unpack(raw[:_HEADER.size])
        assert magic == _MAGIC and arr_len == 0
        payload = raw[_HEADER.size:_HEADER.size + json_len]
        assert zlib.crc32(payload) == crc
        assert json.loads(payload)["key"] == KEY

    def test_pickling_drops_process_local_state(self, store):
        import pickle

        store.put(KEY, {"x": 1})
        clone = pickle.loads(pickle.dumps(store._shards))
        assert isinstance(clone, PackedShards)
        assert clone._writer is None and not clone._mmaps
        assert clone.read(KEY)[1] == {"x": 1}
