"""Executor tests: backend equivalence, caching, failure isolation."""

import pytest

import repro.runtime.tasks as tasks_mod
from repro.runtime import (
    ResultStore,
    RunSpec,
    SweepSpec,
    TaskError,
    resolve_jobs,
    run_campaign,
)

PROBE = "repro.runtime.tasks:rng_probe_task"
FAIL = "repro.runtime.tasks:failing_task"


def probe_sweep(n_tasks=6, base_seed=3):
    return SweepSpec(
        fn=PROBE,
        base={"n": 4},
        axes=(("replicate", tuple(range(n_tasks))),),
        base_seed=base_seed,
    )


class TestBackendEquivalence:
    def test_serial_and_pool_bit_identical(self):
        tasks = probe_sweep().tasks()
        serial = run_campaign(tasks, jobs=1)
        pool = run_campaign(tasks, jobs=2)
        assert not serial.failures and not pool.failures
        assert serial.values() == pool.values()

    def test_lockstep_campaign_identical_across_backends(self):
        # The real simulation workload, not just the RNG probe.
        sweep = SweepSpec(
            fn="repro.runtime.tasks:lockstep_delay_task",
            base={"n_ranks": 16, "n_steps": 12, "t_exec": 3e-3,
                  "msg_size": 8192, "rate": 0.02,
                  "duration_low": 6e-3, "duration_high": 24e-3},
            axes=(("replicate", (0, 1, 2, 3)),),
            base_seed=1,
        )
        serial = run_campaign(sweep.tasks(), jobs=1)
        pool = run_campaign(sweep.tasks(), jobs=2)
        assert not serial.failures and not pool.failures
        assert serial.values() == pool.values()

    def test_results_keep_task_order(self):
        campaign = run_campaign(probe_sweep().tasks(), jobs=2)
        assert [r.index for r in campaign.results] == list(range(6))

    def test_distinct_seed_streams_per_task(self):
        campaign = run_campaign(probe_sweep(n_tasks=8).tasks(), jobs=1)
        draws = [tuple(v["draws"]) for v in campaign.values()]
        assert len(set(draws)) == 8
        seeds = [v["seed"] for v in campaign.values()]
        assert len(set(seeds)) == 8

    def test_rerun_reproduces_exactly(self):
        a = run_campaign(probe_sweep().tasks(), jobs=2)
        b = run_campaign(probe_sweep().tasks(), jobs=1)
        assert a.values() == b.values()


class TestCache:
    def test_second_invocation_runs_zero_tasks(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        tasks = probe_sweep().tasks()

        calls = {"n": 0}
        real = tasks_mod.rng_probe_task

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(tasks_mod, "rng_probe_task", counting)

        cold = run_campaign(tasks, jobs=1, store=store)
        assert calls["n"] == len(tasks)
        assert cold.n_executed == len(tasks) and cold.n_cached == 0

        warm = run_campaign(tasks, jobs=1, store=store)
        assert calls["n"] == len(tasks)  # zero new executions
        assert warm.n_cached == len(tasks) and warm.n_executed == 0
        assert warm.values() == cold.values()

    def test_cache_shared_between_backends(self, tmp_path):
        store = ResultStore(tmp_path)
        tasks = probe_sweep().tasks()
        cold = run_campaign(tasks, jobs=2, store=store)
        warm = run_campaign(tasks, jobs=1, store=store)
        assert warm.n_cached == len(tasks)
        assert warm.values() == cold.values()

    def test_different_base_seed_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        run_campaign(probe_sweep(base_seed=1).tasks(), jobs=1, store=store)
        other = run_campaign(probe_sweep(base_seed=2).tasks(), jobs=1,
                             store=store)
        assert other.n_cached == 0

    def test_failures_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = RunSpec(fn=FAIL, params={"message": "no-cache"}, seed=1)
        run_campaign([spec], jobs=1, store=store)
        assert len(store) == 0


class TestFailureIsolation:
    def mixed_specs(self):
        return [
            RunSpec(fn=PROBE, params={"n": 2}, seed=1, index=0),
            RunSpec(fn=FAIL, params={"message": "boom"}, seed=2, index=1),
            RunSpec(fn=PROBE, params={"n": 3}, seed=3, index=2),
        ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_one_bad_task_does_not_poison_the_shard(self, jobs):
        campaign = run_campaign(self.mixed_specs(), jobs=jobs)
        assert len(campaign.failures) == 1
        failure = campaign.failures[0]
        assert failure.index == 1
        assert "boom" in failure.error and "RuntimeError" in failure.error
        ok = [r for r in campaign.results if r.ok]
        assert [r.index for r in ok] == [0, 2]
        assert len(campaign.values()) == 2

    def test_raise_failures(self):
        campaign = run_campaign(self.mixed_specs(), jobs=1)
        with pytest.raises(TaskError, match="1/3 campaign tasks failed"):
            campaign.raise_failures()
        clean = run_campaign(probe_sweep(n_tasks=2).tasks(), jobs=1)
        assert clean.raise_failures() is clean

    def test_worker_death_does_not_kill_the_campaign(self):
        """A worker hard-exiting (OOM-kill analogue) breaks the pool, but
        run_campaign must still return a complete CampaignResult."""
        specs = [
            RunSpec(fn="repro.runtime.tasks:hard_exit_task",
                    params={"code": 1}, seed=1, index=0),
            *[RunSpec(fn=PROBE, params={"n": 2}, seed=10 + i, index=i)
              for i in range(1, 6)],
        ]
        campaign = run_campaign(specs, jobs=2)
        assert len(campaign.results) == len(specs)
        assert all(r is not None for r in campaign.results)
        assert not campaign.results[0].ok  # the killer task failed
        assert campaign.failures  # and nothing raised out of run_campaign

    def test_keyboard_interrupt_aborts_serial_campaign(self, monkeypatch):
        """Ctrl-C must abort, not be recorded as a task failure."""
        import repro.runtime.tasks as tasks_mod

        def interrupted(**kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(tasks_mod, "rng_probe_task", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(probe_sweep(n_tasks=3).tasks(), jobs=1)

    def test_unknown_function_is_isolated_too(self):
        specs = [
            RunSpec(fn="repro.runtime.tasks:does_not_exist", seed=1, index=0),
            RunSpec(fn=PROBE, params={"n": 2}, seed=2, index=1),
        ]
        campaign = run_campaign(specs, jobs=1)
        assert not campaign.results[0].ok
        assert campaign.results[1].ok

    def test_non_mapping_result_is_a_task_error(self):
        spec = RunSpec(fn="repro.runtime.tasks:campaign_draw_task",
                       params={"rate": 0.05, "duration_low": 1e-3,
                               "duration_high": 2e-3, "n_ranks": 4,
                               "n_steps": 4}, seed=1)
        campaign = run_campaign([spec], jobs=1)
        assert campaign.results[0].ok  # draw task does return a mapping


class TestStreamingAndJobs:
    def test_on_result_streams_all_tasks(self):
        seen = []
        campaign = run_campaign(probe_sweep().tasks(), jobs=2,
                                on_result=seen.append)
        assert len(seen) == len(campaign.results)
        assert {r.index for r in seen} == set(range(6))

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1

    def test_elapsed_and_durations_recorded(self):
        campaign = run_campaign(probe_sweep(n_tasks=2).tasks(), jobs=1)
        assert campaign.elapsed > 0
        assert all(r.duration >= 0 for r in campaign.results)
