"""Fault-tolerant execution: retries, pool recovery, quarantine, ^C."""

import warnings

import pytest

from repro.obs import events
from repro.runtime import (
    ChaosSpec,
    ResultStore,
    RetryPolicy,
    RunSpec,
    SweepSpec,
    run_campaign,
)
from repro.runtime import chaos

PROBE = "repro.runtime.tasks:rng_probe_task"
HARD_EXIT = "repro.runtime.tasks:hard_exit_task"
FLAKY_EXIT = "repro.runtime.tasks:flaky_exit_task"


def probe_sweep(n_tasks=6, base_seed=3):
    return SweepSpec(
        fn=PROBE,
        base={"n": 4},
        axes=(("replicate", tuple(range(n_tasks))),),
        base_seed=base_seed,
    )


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.uninstall()
    yield
    chaos.uninstall()


class TestSoftRetries:
    def test_injected_crashes_heal_and_results_match_fault_free(self):
        tasks = probe_sweep(n_tasks=8).tasks()
        clean = run_campaign(tasks, jobs=1)
        chaos.install(ChaosSpec(seed=3, crash_rate=0.5))
        healed = run_campaign(tasks, jobs=1,
                              retry=RetryPolicy(retries=2, backoff_s=0.001))
        chaos.uninstall()
        assert not healed.failures
        assert healed.n_retried > 0
        assert healed.retry_wasted_s > 0
        assert healed.values() == clean.values()

    def test_retry_budget_exhaustion_still_fails(self):
        chaos.install(ChaosSpec(seed=0, crash_rate=1.0,
                                max_faults_per_task=10))
        campaign = run_campaign(probe_sweep(n_tasks=2).tasks(), jobs=1,
                                retry=RetryPolicy(retries=1,
                                                  backoff_s=0.001))
        assert len(campaign.failures) == 2
        assert all("ChaosError" in r.error for r in campaign.failures)
        # Every failed task burned its full retry budget.
        assert all(r.retries == 1 for r in campaign.failures)

    def test_retried_store_records_byte_identical(self, tmp_path):
        tasks = probe_sweep(n_tasks=8).tasks()
        clean_store = ResultStore(tmp_path / "clean")
        run_campaign(tasks, jobs=1, store=clean_store)
        chaos.install(ChaosSpec(seed=3, crash_rate=0.5))
        chaotic_store = ResultStore(tmp_path / "chaotic")
        run_campaign(tasks, jobs=1, store=chaotic_store,
                     retry=RetryPolicy(retries=2, backoff_s=0.001))
        chaos.uninstall()
        clean_bytes = {p.relative_to(tmp_path / "clean"): p.read_bytes()
                       for p in sorted((tmp_path / "clean").rglob("*.json"))}
        chaotic_bytes = {p.relative_to(tmp_path / "chaotic"): p.read_bytes()
                         for p in sorted((tmp_path / "chaotic").rglob("*.json"))}
        assert clean_bytes == chaotic_bytes

    def test_retry_events_are_emitted(self):
        chaos.install(ChaosSpec(seed=0, crash_rate=1.0))
        bus = events.enable(fresh=True)
        try:
            run_campaign(probe_sweep(n_tasks=2).tasks(), jobs=1,
                         retry=RetryPolicy(retries=1, backoff_s=0.0))
        finally:
            chaos.uninstall()
            retries = [e for e in bus.identity()
                       if e[1] == "task.retry"]
            events.disable()
        assert len(retries) == 2
        assert all(e[2]["attempt"] == 1 for e in retries)


class TestPoolRecovery:
    def test_transient_worker_death_recovers(self, tmp_path):
        """A worker OOM-kill on the first attempt must not cost the task."""
        specs = list(probe_sweep(n_tasks=5).tasks())
        specs.append(RunSpec(
            fn=FLAKY_EXIT,
            params=(("sentinel", str(tmp_path / "marks")),
                    ("fail_times", 1), ("replicate", 0)),
            seed=1, index=len(specs)))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            campaign = run_campaign(specs, jobs=2)
        assert not campaign.failures
        assert campaign.n_pool_respawns >= 1
        assert campaign.n_redispatched >= 1
        assert campaign.results[-1].value["attempts"] == 1

    def test_poison_task_is_quarantined_not_retried_forever(self):
        specs = list(probe_sweep(n_tasks=5).tasks())
        specs.append(RunSpec(fn=HARD_EXIT, params=(("code", 11),),
                             seed=1, index=len(specs)))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            campaign = run_campaign(specs, jobs=2, quarantine_after=2)
        assert campaign.n_quarantined == 1
        assert campaign.n_pool_respawns == 2
        bad = campaign.results[-1]
        assert bad.quarantined
        assert "quarantined" in bad.error
        # The innocent majority all completed.
        assert sum(1 for r in campaign.results if r.error is None) == 5

    def test_quarantine_events_and_result_flags_agree(self):
        # The poison needs company: a one-unit campaign runs serially,
        # where hard_exit_task would kill the test process itself.
        specs = list(probe_sweep(n_tasks=3).tasks())
        specs.append(RunSpec(fn=HARD_EXIT, params=(("code", 9),),
                             seed=0, index=len(specs)))
        bus = events.enable(fresh=True)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                campaign = run_campaign(specs, jobs=2, quarantine_after=2)
            names = [e[1] for e in bus.identity()]
        finally:
            events.disable()
        assert campaign.n_quarantined == 1
        assert "task.quarantined" in names
        assert "pool.respawn" in names
        # The quarantined task still terminates its lifecycle.
        assert names.count("task.failed") == 1

    def test_quarantine_after_validated(self):
        with pytest.raises(ValueError, match="quarantine_after"):
            run_campaign(probe_sweep(n_tasks=1).tasks(), jobs=2,
                         quarantine_after=0)


class TestStallRetry:
    def test_stall_action_validated(self):
        with pytest.raises(ValueError, match="stall_action"):
            run_campaign(probe_sweep(n_tasks=1).tasks(), jobs=1,
                         stall_action="panic")

    def test_stalled_task_is_redispatched_and_completes(self):
        """With stall_action='retry' an injected stall trips the watchdog,
        the flagged block is abandoned, and its re-dispatch completes the
        campaign with correct results."""
        from repro.obs.health import StallWatchdog

        tasks = list(probe_sweep(n_tasks=4).tasks())
        clean = run_campaign(tasks, jobs=1)
        chaos.install(ChaosSpec(seed=0, stall_rate=1.0, stall_s=1.5,
                                max_faults_per_task=1))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            campaign = run_campaign(
                tasks, jobs=2, stall_action="retry",
                watchdog=StallWatchdog(min_stall_s=0.3, poll_s=0.05))
        chaos.uninstall()
        assert not campaign.failures
        assert campaign.values() == clean.values()


class TestInterrupt:
    def test_keyboard_interrupt_shuts_the_pool_down(self, tmp_path):
        """^C mid-campaign cancels cleanly and leaves no torn records."""
        store = ResultStore(tmp_path / "cache", layout="packed")
        calls = {"n": 0}

        def boom(result):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(probe_sweep(n_tasks=12).tasks(), jobs=2,
                         store=store, on_result=boom)
        # Whatever was persisted before the interrupt is fully readable:
        # no torn shard entries, and a fresh campaign completes from it.
        reread = ResultStore(tmp_path / "cache", layout="packed")
        for key in reread.keys():
            assert reread.get(key) is not None
        campaign = run_campaign(probe_sweep(n_tasks=12).tasks(), jobs=1,
                                store=reread)
        assert not campaign.failures
        assert campaign.n_cached >= 1
