"""Deterministic retry policy: backoff shape and seed-derived jitter."""

import pytest

from repro.runtime.retry import RetryPolicy
from repro.runtime.spec import RunSpec


def _spec(index=0, seed=42):
    return RunSpec(fn="repro.runtime.tasks:rng_probe_task",
                   params=(("n", 2),), seed=seed, index=index)


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.retries == 0

    @pytest.mark.parametrize("kwargs", [
        {"retries": -1},
        {"backoff_s": -0.1},
        {"multiplier": 0.5},
        {"max_backoff_s": -1.0},
        {"jitter": -0.1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestShouldRetry:
    def test_budget_is_respected(self):
        policy = RetryPolicy(retries=2)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_zero_budget_never_retries(self):
        assert not RetryPolicy().should_retry(1)


class TestDelay:
    def test_delay_is_deterministic_per_spec_and_attempt(self):
        policy = RetryPolicy(retries=3, backoff_s=0.1)
        spec = _spec()
        assert policy.delay_s(spec, 1) == policy.delay_s(spec, 1)

    def test_delay_varies_across_attempts_and_tasks(self):
        policy = RetryPolicy(retries=3, backoff_s=0.1)
        d = {policy.delay_s(_spec(index=i), attempt)
             for i in range(4) for attempt in (1, 2)}
        assert len(d) == 8  # jitter streams are pairwise distinct

    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(retries=5, backoff_s=0.1, jitter=0.0)
        spec = _spec()
        assert policy.delay_s(spec, 1) == pytest.approx(0.1)
        assert policy.delay_s(spec, 2) == pytest.approx(0.2)
        assert policy.delay_s(spec, 3) == pytest.approx(0.4)

    def test_backoff_is_capped(self):
        policy = RetryPolicy(retries=10, backoff_s=1.0, max_backoff_s=2.0,
                             jitter=0.0)
        assert policy.delay_s(_spec(), 8) == pytest.approx(2.0)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(retries=3, backoff_s=0.1, jitter=0.5)
        for i in range(16):
            delay = policy.delay_s(_spec(index=i), 1)
            assert 0.1 <= delay <= 0.15 + 1e-12

    def test_jitter_independent_of_task_result_stream(self):
        """The jitter stream must never be the task's own seed stream:
        identical first draws would correlate backoff with results."""
        import numpy as np

        spec = _spec(seed=7)
        policy = RetryPolicy(retries=1, backoff_s=1.0, jitter=1.0,
                             multiplier=2.0)
        task_draw = float(np.random.default_rng(7).random())
        jitter_draw = policy.delay_s(spec, 1) - 1.0
        assert abs(task_draw - jitter_draw) > 1e-12

    def test_sleep_returns_the_delay(self):
        policy = RetryPolicy(retries=1, backoff_s=0.0, jitter=0.0)
        assert policy.sleep(_spec(), 1) == 0.0
