"""The chaos-injection harness: deterministic, bounded, transportable."""

import os

import pytest

from repro.runtime import chaos
from repro.runtime.chaos import ChaosError, ChaosSpec


@pytest.fixture(autouse=True)
def clean_chaos(monkeypatch):
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    chaos.uninstall()
    yield
    chaos.uninstall()


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"crash_rate": -0.1},
        {"crash_rate": 1.5},
        {"abort_rate": 2.0},
        {"stall_rate": -1.0},
        {"torn_write_rate": 1.01},
        {"stall_s": -0.5},
        {"max_faults_per_task": -1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ChaosSpec(**kwargs)

    def test_json_roundtrip(self):
        spec = ChaosSpec(seed=7, crash_rate=0.25, stall_rate=0.1,
                         stall_s=0.5, max_faults_per_task=2)
        assert ChaosSpec.from_json(spec.to_json()) == spec

    def test_unknown_json_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos spec fields"):
            ChaosSpec.from_json('{"seed": 1, "segfault_rate": 0.5}')

    def test_non_object_json_rejected(self):
        with pytest.raises(ValueError):
            ChaosSpec.from_json('[1, 2]')


class TestDeterminism:
    def test_roll_is_pure(self):
        spec = ChaosSpec(seed=3, crash_rate=0.5)
        assert spec.roll("crash", "abc", 0) == spec.roll("crash", "abc", 0)

    def test_roll_varies_with_every_input(self):
        spec = ChaosSpec(seed=3)
        base = spec.roll("crash", "abc", 0)
        assert base != spec.roll("crash", "abc", 1)
        assert base != spec.roll("crash", "abd", 0)
        assert base != spec.roll("stall", "abc", 0)
        assert base != ChaosSpec(seed=4).roll("crash", "abc", 0)

    def test_rolls_are_roughly_uniform(self):
        spec = ChaosSpec(seed=0)
        rolls = [spec.roll("crash", f"task{i}", 0) for i in range(500)]
        assert all(0.0 <= r < 1.0 for r in rolls)
        assert 0.4 < sum(rolls) / len(rolls) < 0.6


class TestFaultsFor:
    def test_max_faults_bounds_injection(self):
        spec = ChaosSpec(seed=0, crash_rate=1.0, max_faults_per_task=2)
        assert spec.faults_for("k", 0) == ["crash"]
        assert spec.faults_for("k", 1) == ["crash"]
        assert spec.faults_for("k", 2) == []  # retry budget >= 2 converges

    def test_abort_preempts_crash(self):
        spec = ChaosSpec(seed=0, crash_rate=1.0, abort_rate=1.0)
        assert spec.faults_for("k", 0) == ["abort"]

    def test_stall_composes_with_crash(self):
        spec = ChaosSpec(seed=0, crash_rate=1.0, stall_rate=1.0,
                         stall_s=0.001)
        assert spec.faults_for("k", 0) == ["stall", "crash"]


class TestInstallation:
    def test_install_and_active(self):
        spec = ChaosSpec(seed=1, crash_rate=0.5)
        chaos.install(spec)
        assert chaos.active() is spec
        chaos.uninstall()
        assert chaos.active() is None

    def test_env_var_loads_lazily(self, monkeypatch):
        spec = ChaosSpec(seed=9, crash_rate=0.25)
        monkeypatch.setenv(chaos.ENV_VAR, spec.to_json())
        chaos.uninstall()  # forget any prior env lookup
        assert chaos.active() == spec

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR,
                           ChaosSpec(seed=9, crash_rate=1.0).to_json())
        override = ChaosSpec(seed=1)
        chaos.install(override)
        assert chaos.active() is override


class TestInjection:
    def test_noop_without_spec(self):
        chaos.maybe_inject("k", 0)  # no raise

    def test_crash_raises_chaos_error(self):
        chaos.install(ChaosSpec(seed=0, crash_rate=1.0))
        with pytest.raises(ChaosError, match="injected failure"):
            chaos.maybe_inject("k", 0)

    def test_abort_degrades_to_error_outside_a_worker(self):
        # In the parent (serial backend) an injected abort must never
        # os._exit the campaign driver.
        chaos.install(ChaosSpec(seed=0, abort_rate=1.0))
        with pytest.raises(ChaosError, match="degraded to exception"):
            chaos.maybe_inject("k", 0)

    def test_clean_attempt_beyond_fault_budget(self):
        chaos.install(ChaosSpec(seed=0, crash_rate=1.0,
                                max_faults_per_task=1))
        chaos.maybe_inject("k", 1)  # attempt 1 runs clean

    def test_block_injection_faults_on_any_member(self):
        chaos.install(ChaosSpec(seed=0, crash_rate=1.0))
        with pytest.raises(ChaosError, match="block failure"):
            chaos.maybe_inject_block(["a", "b"])
        chaos.maybe_inject_block([])  # empty block never faults


class TestTornWrite:
    def test_disabled_without_rate(self):
        chaos.install(ChaosSpec(seed=0))
        assert chaos.torn_shard_write("shard-0") is False

    def test_fires_deterministically_when_certain(self):
        chaos.install(ChaosSpec(seed=0, torn_write_rate=1.0))
        assert chaos.torn_shard_write("shard-0") is True
