"""Unit tests for the content-addressed on-disk result store."""

import json

import numpy as np
import pytest

from repro.runtime import ResultStore

KEY = "ab" * 16


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


class TestRoundTrip:
    def test_plain_json_fields(self, store):
        value = {"runtime": 0.125, "n": 3, "tags": ["a", "b"], "ok": True}
        store.put(KEY, value)
        assert store.get(KEY) == value

    def test_float_bits_survive(self, store):
        value = {"x": 0.1 + 0.2, "y": 1e-300}
        store.put(KEY, value)
        loaded = store.get(KEY)
        assert loaded["x"].hex() == value["x"].hex()
        assert loaded["y"].hex() == value["y"].hex()

    def test_ndarray_fields_via_npz(self, store):
        arr = np.linspace(0.0, 1.0, 7)
        store.put(KEY, {"curve": arr, "n": 7})
        loaded = store.get(KEY)
        np.testing.assert_array_equal(loaded["curve"], arr)
        assert loaded["n"] == 7
        assert store._npz_path(KEY).exists()

    def test_numpy_scalars_stored_as_python(self, store):
        store.put(KEY, {"a": np.float64(0.5), "b": np.int64(4)})
        assert store.get(KEY) == {"a": 0.5, "b": 4}

    def test_spec_recorded_for_provenance(self, store):
        path = store.put(KEY, {"x": 1}, spec={"fn": "m:f", "seed": 9})
        record = json.loads(path.read_text())
        assert record["spec"] == {"fn": "m:f", "seed": 9}
        assert record["key"] == KEY


class TestMissesAndErrors:
    def test_missing_key_is_none(self, store):
        assert store.get(KEY) is None
        assert KEY not in store

    def test_torn_record_counts_as_miss(self, store):
        path = store.put(KEY, {"x": 1})
        path.write_text("{ not json")
        assert store.get(KEY) is None

    def test_missing_npz_sidecar_counts_as_miss(self, store):
        store.put(KEY, {"curve": np.ones(3)})
        store._npz_path(KEY).unlink()
        assert store.get(KEY) is None

    def test_non_mapping_value_rejected(self, store):
        with pytest.raises(TypeError, match="mappings"):
            store.put(KEY, [1, 2, 3])

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ValueError, match="malformed"):
            store.path_for("../escape")


class TestMaintenance:
    def test_keys_len_clear(self, store):
        keys = [f"{i:032x}" for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i, "arr": np.arange(i + 1)})
        assert sorted(store.keys()) == sorted(keys)
        assert len(store) == 3
        assert store.clear() == 3
        assert len(store) == 0
        assert store.get(keys[0]) is None

    def test_empty_store_iterates_nothing(self, store):
        assert list(store.keys()) == []
        assert len(store) == 0
