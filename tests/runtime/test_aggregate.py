"""Tests for campaign aggregation helpers."""

import numpy as np
import pytest

from repro.runtime import (
    AggregationError,
    SweepSpec,
    collect,
    group_by_param,
    reduce_runs,
    run_campaign,
    summarize,
)

VALUES = [{"x": 1.0, "y": 10.0}, {"x": 2.0, "y": 20.0}, {"x": 3.0, "y": 30.0}]


class TestCollect:
    def test_from_plain_values(self):
        np.testing.assert_array_equal(collect(VALUES, "x"), [1.0, 2.0, 3.0])

    def test_from_campaign(self):
        campaign = run_campaign(
            SweepSpec(fn="repro.runtime.tasks:rng_probe_task",
                      base={"n": 1},
                      axes=(("replicate", (0, 1)),)).tasks(),
            jobs=1,
        )
        seeds = collect(campaign, "seed")
        assert seeds.shape == (2,)

    def test_missing_field(self):
        with pytest.raises(AggregationError, match="'z' missing"):
            collect(VALUES, "z")

    def test_empty_campaign_typed_error(self):
        with pytest.raises(AggregationError, match="no successful runs"):
            collect([], "x")


class TestSummarizeReduce:
    def test_summarize_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["n"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["p50"] == pytest.approx(2.5)
        assert s["p95"] == pytest.approx(3.85)

    def test_summarize_empty_rejected(self):
        with pytest.raises(AggregationError, match="empty"):
            summarize([])

    def test_reduce_empty_rejected(self):
        with pytest.raises(AggregationError, match="empty campaign"):
            reduce_runs([])

    def test_reduce_runs_default_fields(self):
        reduced = reduce_runs(VALUES)
        assert set(reduced) == {"x", "y"}
        assert reduced["x"]["mean"] == pytest.approx(2.0)
        assert reduced["y"]["p50"] == pytest.approx(20.0)

    def test_reduce_runs_custom_percentiles(self):
        reduced = reduce_runs(VALUES, fields=["x"], percentiles=(25.0,))
        assert "p25" in reduced["x"] and "p95" not in reduced["x"]

    def test_reduce_skips_non_numeric_fields(self):
        values = [{"x": 1.0, "label": "a", "flag": True}]
        assert set(reduce_runs(values)) == {"x"}


class TestGroupByParam:
    def campaign(self):
        sweep = SweepSpec(
            fn="repro.runtime.tasks:rng_probe_task",
            base={},
            axes=(("n", (1, 2)), ("replicate", (0, 1, 2))),
            base_seed=0,
        )
        return run_campaign(sweep.tasks(), jobs=1)

    def test_groups_keep_sweep_order(self):
        grouped = group_by_param(self.campaign(), "n")
        assert list(grouped) == [1, 2]
        assert len(grouped[1]) == 3 and len(grouped[2]) == 3
        assert all(len(v["draws"]) == 1 for v in grouped[1])

    def test_unknown_param_rejected(self):
        with pytest.raises(AggregationError, match="no parameter 'rate'"):
            group_by_param(self.campaign(), "rate")

    def test_failed_tasks_excluded(self):
        from repro.runtime import RunSpec

        specs = [
            RunSpec(fn="repro.runtime.tasks:failing_task",
                    params={"message": "x", "replicate": 0}, seed=1, index=0),
            RunSpec(fn="repro.runtime.tasks:rng_probe_task",
                    params={"n": 1, "replicate": 1}, seed=2, index=1),
        ]
        grouped = group_by_param(run_campaign(specs, jobs=1), "replicate")
        assert list(grouped) == [1]

    def test_all_failed_typed_error(self):
        from repro.runtime import RunSpec

        specs = [
            RunSpec(fn="repro.runtime.tasks:failing_task",
                    params={"message": "x", "replicate": i}, seed=i, index=i)
            for i in range(2)
        ]
        campaign = run_campaign(specs, jobs=1)
        with pytest.raises(AggregationError,
                           match=r"2/2 task\(s\) failed"):
            group_by_param(campaign, "replicate")
