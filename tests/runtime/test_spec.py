"""Unit tests for RunSpec / SweepSpec and content hashing."""

import pickle

import numpy as np
import pytest

from repro.runtime import RunSpec, SweepSpec, canonical, derive_seed, spec_key


class TestCanonical:
    def test_scalars_pass_through(self):
        assert canonical(3) == 3
        assert canonical(0.25) == 0.25
        assert canonical("x") == "x"
        assert canonical(None) is None
        assert canonical(True) is True

    def test_numpy_scalars_become_python(self):
        assert canonical(np.int64(3)) == 3 and type(canonical(np.int64(3))) is int
        assert canonical(np.float64(0.5)) == 0.5
        assert canonical(np.bool_(True)) is True

    def test_sequences_and_mappings(self):
        assert canonical((1, 2)) == [1, 2]
        assert canonical({"b": 1, "a": (2,)}) == {"a": [2], "b": 1}

    def test_live_objects_rejected(self):
        with pytest.raises(TypeError, match="not canonicalizable"):
            canonical(np.arange(3))
        with pytest.raises(TypeError, match="not canonicalizable"):
            canonical(object())


class TestCanonicalErrorPaths:
    """Rejections must name the offending key/index path, not just the type."""

    def test_nested_mapping_value_names_path(self):
        with pytest.raises(TypeError, match=r"'cfg'\['delays'\]"):
            canonical({"cfg": {"delays": object()}})

    def test_nested_list_element_names_index(self):
        with pytest.raises(TypeError, match=r"params\['xs'\]\[1\]"):
            canonical({"xs": [1, np.arange(2)]}, path="params")

    def test_top_level_path_argument_used(self):
        with pytest.raises(TypeError, match="parameter rate"):
            canonical(object(), path="rate")

    def test_non_str_key_names_parent_path(self):
        with pytest.raises(TypeError, match=r"keys must be str.*'grid'"):
            canonical({"grid": {3: "x"}})

    def test_runspec_param_rejection_names_parameter(self):
        with pytest.raises(TypeError, match=r"table\['rows'\]\[0\]"):
            RunSpec(fn="m:f", params={"table": {"rows": [object()]}})


class TestRunSpec:
    def spec(self, **kw):
        defaults = dict(fn="repro.runtime.tasks:rng_probe_task",
                        params={"n": 3}, seed=7)
        defaults.update(kw)
        return RunSpec(**defaults)

    def test_requires_import_path(self):
        with pytest.raises(ValueError, match="module:function"):
            RunSpec(fn="not_a_path")

    def test_params_canonical_order(self):
        a = RunSpec(fn="m:f", params={"a": 1, "b": 2})
        b = RunSpec(fn="m:f", params={"b": 2, "a": 1})
        assert a.params == b.params
        assert spec_key(a) == spec_key(b)

    def test_key_depends_on_fn_params_seed_not_index(self):
        base = self.spec()
        assert spec_key(self.spec(index=5)) == spec_key(base)
        assert spec_key(self.spec(seed=8)) != spec_key(base)
        assert spec_key(self.spec(params={"n": 4})) != spec_key(base)
        assert spec_key(self.spec(fn="repro.runtime.tasks:failing_task")) != \
            spec_key(base)

    def test_key_stable_across_processes(self):
        # A literal regression anchor: the hash must never drift, or
        # every existing cache silently invalidates.
        spec = RunSpec(fn="m:f", params={"x": 1, "y": 0.5}, seed=3)
        assert spec.key == spec_key(spec)
        assert len(spec.key) == 32
        assert spec.key == RunSpec(fn="m:f", params={"y": 0.5, "x": 1},
                                   seed=3).key

    def test_picklable_and_hashable(self):
        spec = self.spec()
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(self.spec())

    def test_call_executes_with_seed(self):
        value = self.spec().call()
        assert value["seed"] == 7
        assert len(value["draws"]) == 3

    def test_resolve_unknown_function(self):
        with pytest.raises(AttributeError, match="nope"):
            RunSpec(fn="repro.runtime.tasks:nope").resolve()

    def test_seed_param_collision_rejected(self):
        with pytest.raises(ValueError, match="may not contain 'seed'"):
            RunSpec(fn="m:f", params={"seed": 7}, seed=3)
        # Seedless specs may carry an explicit seed parameter.
        spec = RunSpec(fn="m:f", params={"seed": 7}, seed=None)
        assert spec.kwargs == {"seed": 7}


class TestSweepSpec:
    def sweep(self, **kw):
        defaults = dict(
            fn="repro.runtime.tasks:rng_probe_task",
            base={"n": 2},
            axes=(("replicate", (0, 1, 2)),),
            base_seed=5,
        )
        defaults.update(kw)
        return SweepSpec(**defaults)

    def test_size_and_grid_order(self):
        sweep = self.sweep(axes=(("a", (1, 2)), ("b", ("x", "y", "z"))))
        assert sweep.size == 6
        points = sweep.points()
        assert points[0] == {"a": 1, "b": "x"}
        assert points[1] == {"a": 1, "b": "y"}  # last axis fastest
        assert points[-1] == {"a": 2, "b": "z"}

    def test_tasks_carry_base_and_axis_params(self):
        tasks = self.sweep().tasks()
        assert len(tasks) == 3
        for i, task in enumerate(tasks):
            assert task.index == i
            assert task.kwargs == {"n": 2, "replicate": i}

    def test_per_task_seeds_derived_and_distinct(self):
        tasks = self.sweep().tasks()
        assert [t.seed for t in tasks] == [derive_seed(5, i) for i in range(3)]
        assert len({t.seed for t in tasks}) == 3

    def test_unseeded_sweep(self):
        tasks = self.sweep(seeded=False).tasks()
        assert all(t.seed is None for t in tasks)

    def test_base_seed_changes_every_key(self):
        a = {t.key for t in self.sweep(base_seed=1).tasks()}
        b = {t.key for t in self.sweep(base_seed=2).tasks()}
        assert not a & b

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self.sweep(base={"replicate": 0})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            self.sweep(axes=(("replicate", ()),))

    def test_seed_parameter_in_seeded_sweep_rejected(self):
        with pytest.raises(ValueError, match="derived per task"):
            self.sweep(base={"seed": 1})
        # With seeded=False, 'seed' is an ordinary (even sweepable) param.
        tasks = self.sweep(seeded=False, base={},
                           axes=(("seed", (1, 2)),)).tasks()
        assert [t.kwargs["seed"] for t in tasks] == [1, 2]


class TestSeeding:
    def test_deterministic(self):
        assert derive_seed(3, 11) == derive_seed(3, 11)

    def test_distinct_across_indices_and_bases(self):
        seeds = {derive_seed(0, i) for i in range(200)}
        assert len(seeds) == 200
        assert derive_seed(0, 1) != derive_seed(1, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)
