"""The CI benchmark regression guard (benchmarks/check_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).parents[2] / "benchmarks" / "check_regression.py"


@pytest.fixture(scope="module")
def guard():
    spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_bench(directory: Path, name: str, tests: dict) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(
        {"benchmark": f"bench_{name}", "schema": 1, "tests": tests}))
    return path


def test_within_threshold_passes(guard, tmp_path):
    write_bench(tmp_path / "base", "x", {"t": {"speedup": 10.0}})
    write_bench(tmp_path / "fresh", "x", {"t": {"speedup": 8.0}})
    assert guard.check(tmp_path / "fresh", tmp_path / "base", 0.30) == 0


def test_regression_beyond_threshold_fails(guard, tmp_path):
    write_bench(tmp_path / "base", "x", {"t": {"speedup": 10.0}})
    write_bench(tmp_path / "fresh", "x", {"t": {"speedup": 6.0}})
    assert guard.check(tmp_path / "fresh", tmp_path / "base", 0.30) == 1


def test_improvement_passes(guard, tmp_path):
    write_bench(tmp_path / "base", "x", {"t": {"speedup": 10.0}})
    write_bench(tmp_path / "fresh", "x", {"t": {"speedup": 50.0}})
    assert guard.check(tmp_path / "fresh", tmp_path / "base", 0.30) == 0


def test_absolute_timings_are_not_compared(guard, tmp_path):
    """Only ratio fields gate; a slower absolute timing must not fail."""
    write_bench(tmp_path / "base", "x",
                {"t": {"speedup": 10.0, "t_batched_s": 0.01}})
    write_bench(tmp_path / "fresh", "x",
                {"t": {"speedup": 9.9, "t_batched_s": 5.0}})
    assert guard.check(tmp_path / "fresh", tmp_path / "base", 0.30) == 0


def test_missing_fresh_file_skips_unless_required(guard, tmp_path):
    write_bench(tmp_path / "base", "x", {"t": {"speedup": 10.0}})
    (tmp_path / "fresh").mkdir()
    assert guard.check(tmp_path / "fresh", tmp_path / "base", 0.30) == 0
    assert guard.check(tmp_path / "fresh", tmp_path / "base", 0.30,
                       require_all=True) == 1


def test_new_test_without_baseline_is_not_failed(guard, tmp_path):
    write_bench(tmp_path / "base", "x", {"t": {"speedup": 10.0}})
    write_bench(tmp_path / "fresh", "x",
                {"t": {"speedup": 10.0}, "t_new": {"speedup": 1.0}})
    assert guard.check(tmp_path / "fresh", tmp_path / "base", 0.30) == 0


def test_empty_baseline_dir_errors(guard, tmp_path):
    (tmp_path / "base").mkdir()
    assert guard.check(tmp_path, tmp_path / "base", 0.30) == 2


def test_cli_threshold_validation(guard):
    with pytest.raises(SystemExit):
        guard.main(["--threshold", "1.5"])


def test_committed_baselines_cover_the_dag_benchmark(guard):
    """This PR checks in the (previously empty) baseline trajectory."""
    baselines = SCRIPT.parent / "baselines"
    names = {p.name for p in baselines.glob("BENCH_*.json")}
    assert "BENCH_dag.json" in names
    payload = json.loads((baselines / "BENCH_dag.json").read_text())
    ratios = list(guard.iter_ratios(payload))
    assert len(ratios) >= 2  # batched speedup + cache hit
    assert all(v > 1.0 for _, _, v in ratios)
