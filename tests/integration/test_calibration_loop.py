"""End-to-end calibration loop: measure noise, replay it, analyze waves.

The adoption story for a real cluster: (1) run the divide benchmark to
record this host's noise (Sec. III-B), (2) feed the samples back into the
simulator via :class:`~repro.sim.noise.TraceNoise`, (3) run the paper's
experiments against the machine-specific noise.  This test exercises the
whole loop on the local host.
"""

import numpy as np

from repro.analysis.histogram import NoiseHistogram
from repro.cluster import EMMY
from repro.core import measure_speed, wave_front
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    TraceNoise,
    simulate_lockstep,
)
from repro.workloads.divide import DivideWorkload, measure_host_noise

T = 3e-3


class TestCalibrationLoop:
    def test_measure_replay_analyze(self):
        # (1) measure: a short divide benchmark on this host.
        workload = DivideWorkload(cpu=EMMY.cpu, n_instructions=16384)
        samples = measure_host_noise(workload, n_phases=25, warmup=2)
        assert samples.shape == (25,)

        # (2) characterize: histogram in the paper's style.
        hist = NoiseHistogram.from_samples(samples + 1e-9, bin_width=1e-5)
        assert hist.n_samples == 25

        # (3) replay: feed the measured distribution into the simulator.
        noise = TraceNoise.from_array(samples)
        cfg = LockstepConfig(
            n_ranks=20, n_steps=25, t_exec=T, msg_size=8192,
            pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                                periodic=True),
            delays=(DelaySpec(rank=0, step=0, duration=10 * T),),
            noise=noise,
            seed=3,
        )
        run = simulate_lockstep(cfg)

        # (4) analyze: the wave is present and measurable under the
        # host-calibrated noise.
        front = wave_front(run, source=0, direction=+1, periodic=True)
        assert front.reach >= 3
        speed = measure_speed(run, source=0, periodic=True).speed
        # Host noise is fine-grained relative to 3 ms phases: the speed
        # stays within the noisy-cadence envelope of Eq. 2.
        assert 0.5 / T < speed <= 1.05 / T

    def test_trace_noise_statistics_faithful(self):
        """The replayed distribution preserves the measured mean."""
        workload = DivideWorkload(cpu=EMMY.cpu, n_instructions=8192)
        samples = measure_host_noise(workload, n_phases=20, warmup=1)
        noise = TraceNoise.from_array(samples)
        drawn = noise.sample(np.random.default_rng(0), (50_000,))
        assert abs(drawn.mean() - samples.mean()) <= 5 * samples.std() / np.sqrt(50)
