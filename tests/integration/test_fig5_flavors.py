"""Integration tests: the eight Fig. 5 propagation flavors."""

import pytest

from repro.core import meeting_ranks, resync_step, wave_front
from repro.experiments.fig5_flavors import (
    EAGER_SIZE,
    RENDEZVOUS_SIZE,
    SOURCE_RANK,
    T_EXEC,
    run_flavor,
)
from repro.sim import Direction


class TestEagerRow:
    def test_a_uni_open_runs_out_at_boundary(self):
        trace = run_flavor(EAGER_SIZE, Direction.UNIDIRECTIONAL, periodic=False)
        up = wave_front(trace, SOURCE_RANK, +1, periodic=False)
        down = wave_front(trace, SOURCE_RANK, -1, periodic=False)
        assert up.reach == 12  # all the way to rank 17
        assert down.reach == 0  # eager: no backward propagation

    def test_b_uni_periodic_wraps_and_dies_at_source(self):
        trace = run_flavor(EAGER_SIZE, Direction.UNIDIRECTIONAL, periodic=True)
        up = wave_front(trace, SOURCE_RANK, +1, periodic=True)
        assert up.reach == 17  # one full traversal (n_ranks - 1 hops)
        assert resync_step(trace) is not None  # in sync again afterwards

    def test_c_bi_open_propagates_both_ways(self):
        trace = run_flavor(EAGER_SIZE, Direction.BIDIRECTIONAL, periodic=False)
        assert wave_front(trace, SOURCE_RANK, +1).reach == 12
        assert wave_front(trace, SOURCE_RANK, -1).reach == 5

    def test_d_bi_periodic_cancels_at_antipode(self):
        trace = run_flavor(EAGER_SIZE, Direction.BIDIRECTIONAL, periodic=True)
        meet = meeting_ranks(trace)
        # Source 5 on an 18-ring: antipode is rank 14 (paper: 'rank 14').
        assert meet == [14]
        assert resync_step(trace) is not None


class TestRendezvousRow:
    def test_e_uni_open_backward_propagation(self):
        trace = run_flavor(RENDEZVOUS_SIZE, Direction.UNIDIRECTIONAL, periodic=False)
        assert wave_front(trace, SOURCE_RANK, -1).reach == 5  # down to rank 0

    def test_f_uni_periodic_cancels(self):
        trace = run_flavor(RENDEZVOUS_SIZE, Direction.UNIDIRECTIONAL, periodic=True)
        assert resync_step(trace) is not None

    def test_g_bi_open_twice_the_speed(self):
        from repro.core import measure_speed

        t_uni = run_flavor(RENDEZVOUS_SIZE, Direction.UNIDIRECTIONAL, periodic=False)
        t_bi = run_flavor(RENDEZVOUS_SIZE, Direction.BIDIRECTIONAL, periodic=False)
        v_uni = measure_speed(t_uni, SOURCE_RANK, +1).speed
        v_bi = measure_speed(t_bi, SOURCE_RANK, +1).speed
        assert v_bi / v_uni == pytest.approx(2.0, rel=0.01)

    def test_h_bi_periodic_resyncs_fastest(self):
        t_d = run_flavor(EAGER_SIZE, Direction.BIDIRECTIONAL, periodic=True)
        t_h = run_flavor(RENDEZVOUS_SIZE, Direction.BIDIRECTIONAL, periodic=True)
        # Twice the speed -> the ring is traversed and cancelled sooner.
        assert resync_step(t_h) < resync_step(t_d)


class TestProtocolBoundary:
    def test_sizes_straddle_the_eager_limit(self):
        from repro.sim.mpi import select_protocol, Protocol

        from repro.experiments.fig5_flavors import EAGER_LIMIT

        assert select_protocol(EAGER_SIZE, EAGER_LIMIT) == Protocol.EAGER
        assert select_protocol(RENDEZVOUS_SIZE, EAGER_LIMIT) == Protocol.RENDEZVOUS

    def test_all_flavors_preserve_total_work(self):
        """Every flavor runs the same 20 steps; runtime differs only by the
        delay handling, never by more than delay + wraparound slack."""
        base = 20 * T_EXEC
        for size in (EAGER_SIZE, RENDEZVOUS_SIZE):
            for direction in Direction:
                for periodic in (False, True):
                    trace = run_flavor(size, direction, periodic)
                    rt = trace.total_runtime()
                    assert base < rt < base + 4.5 * T_EXEC + 5e-3
