"""Integration tests: the Fig. 9 idle-period elimination study."""

import pytest

from repro.core import elimination_scan
from repro.experiments.fig9_elimination import (
    DELAY,
    N_STEPS,
    PAPER_TOTALS,
    T_EXEC,
    make_base_config,
)


class TestNoiseFreePoint:
    def test_total_runtime_matches_paper(self):
        """E=0: deterministic — our 51.17 ms vs the paper's 51.1 ms."""
        points = elimination_scan(make_base_config(), [0.0])
        assert points[0].runtime_with_delay == pytest.approx(
            PAPER_TOTALS[0.0], rel=0.01
        )

    def test_excess_equals_injected_delay(self):
        points = elimination_scan(make_base_config(), [0.0])
        assert points[0].excess == pytest.approx(DELAY, rel=0.01)
        assert points[0].excess_fraction(DELAY) == pytest.approx(1.0, rel=0.01)

    def test_baseline_is_steps_times_phase(self):
        points = elimination_scan(make_base_config(), [0.0])
        assert points[0].runtime_without_delay == pytest.approx(
            N_STEPS * T_EXEC, rel=0.01
        )


class TestNoisyPoints:
    def test_excess_decreases_monotonically(self):
        points = elimination_scan(make_base_config(), [0.0, 0.20, 0.25])
        excesses = [p.excess for p in points]
        assert excesses[0] > excesses[1] > excesses[2]

    def test_delay_contribution_shrinks_below_70_percent(self):
        points = elimination_scan(make_base_config(), [0.25])
        assert points[0].excess_fraction(DELAY) < 0.7

    def test_total_runtime_grows_with_noise(self):
        points = elimination_scan(make_base_config(), [0.0, 0.20, 0.25])
        runtimes = [p.runtime_with_delay for p in points]
        assert runtimes[0] < runtimes[1] < runtimes[2]

    def test_runtime_ordering_matches_paper(self):
        """The paper's totals are ordered 51.1 < 82.7 < 84.6; ours too."""
        points = elimination_scan(make_base_config(), [0.0, 0.20, 0.25])
        ours = [p.runtime_with_delay for p in points]
        paper = [PAPER_TOTALS[E] for E in (0.0, 0.20, 0.25)]
        assert sorted(ours) == ours
        assert sorted(paper) == paper
