"""Integration tests: the paper's headline claims, end to end.

Each test reproduces one quantitative or mechanistic claim from the paper
on the full stack (program builder -> engine -> analysis).
"""

import numpy as np
import pytest

from repro.core import (
    measure_decay,
    measure_speed,
    silent_speed,
    superposition_defect,
    wave_front,
)
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    LockstepConfig,
    Protocol,
    SimConfig,
    UniformNetwork,
    build_lockstep_program,
    simulate,
    simulate_lockstep,
)
from repro.sim.topology import CommDomain

T = 3e-3
NET = UniformNetwork()


def run_dag(cfg, protocol=Protocol.AUTO):
    return simulate(build_lockstep_program(cfg), SimConfig(network=NET, protocol=protocol))


class TestClaimConstantSpeed:
    """Sec. IV: 'an idle wave ripples through the system at a constant
    speed of one rank per execution plus communication phase length'."""

    def test_fig4_speed_exactly_one_rank_per_phase(self):
        cfg = LockstepConfig(
            n_ranks=14, n_steps=16, t_exec=T, msg_size=8192,
            pattern=CommPattern(direction=Direction.UNIDIRECTIONAL),
            delays=(DelaySpec(rank=5, step=0, duration=4.5 * T),),
        )
        m = measure_speed(run_dag(cfg), source=5)
        t_comm = NET.total_pingpong_time(8192, CommDomain.INTER_NODE)
        assert m.speed == pytest.approx(1.0 / (T + t_comm), rel=0.005)
        assert m.residual < 1e-4  # genuinely constant speed


class TestClaimSigmaTwo:
    """Sec. IV-C: bidirectional rendezvous doubles the propagation speed."""

    @pytest.mark.parametrize("d", [1, 2])
    def test_speed_ratio_is_two(self, d):
        speeds = {}
        for direction in Direction:
            cfg = LockstepConfig(
                n_ranks=24, n_steps=20, t_exec=T, msg_size=8192,
                pattern=CommPattern(direction=direction, distance=d),
                delays=(DelaySpec(rank=12, step=0, duration=5 * T),),
            )
            run = run_dag(cfg, protocol=Protocol.RENDEZVOUS)
            speeds[direction] = measure_speed(run, source=12).speed
        ratio = speeds[Direction.BIDIRECTIONAL] / speeds[Direction.UNIDIRECTIONAL]
        assert ratio == pytest.approx(2.0, rel=0.01)

    def test_eager_shows_no_doubling(self):
        speeds = {}
        for direction in Direction:
            cfg = LockstepConfig(
                n_ranks=24, n_steps=20, t_exec=T, msg_size=8192,
                pattern=CommPattern(direction=direction, distance=1),
                delays=(DelaySpec(rank=12, step=0, duration=5 * T),),
            )
            run = run_dag(cfg, protocol=Protocol.EAGER)
            speeds[direction] = measure_speed(run, source=12).speed
        ratio = speeds[Direction.BIDIRECTIONAL] / speeds[Direction.UNIDIRECTIONAL]
        assert ratio == pytest.approx(1.0, rel=0.01)


class TestClaimCommOnEqualFooting:
    """Eq. 2: 'communication overhead and execution time appear on an equal
    footing' — only the sum T_exec + T_comm matters."""

    def test_trading_exec_for_comm_preserves_speed(self):
        # Configuration A: 3 ms exec, tiny messages.
        cfg_a = LockstepConfig(
            n_ranks=16, n_steps=18, t_exec=3e-3, msg_size=8192,
            delays=(DelaySpec(rank=8, step=0, duration=15e-3),),
        )
        v_a = measure_speed(run_dag(cfg_a), source=8).speed
        # Configuration B: 2 ms exec, ~1 ms of communication.
        t_comm_a = NET.total_pingpong_time(8192, CommDomain.INTER_NODE)
        extra = 3e-3 - 2e-3  # move 1 ms from exec to comm
        msg_b = int((extra + t_comm_a - 2 * NET.overhead - NET.latency) * NET.bandwidth)
        cfg_b = LockstepConfig(
            n_ranks=16, n_steps=18, t_exec=2e-3, msg_size=msg_b,
            delays=(DelaySpec(rank=8, step=0, duration=15e-3),),
        )
        v_b = measure_speed(run_dag(cfg_b, protocol=Protocol.EAGER), source=8).speed
        assert v_b == pytest.approx(v_a, rel=0.01)


class TestClaimNonlinearInteraction:
    """Sec. IV-B: idle waves cancel, so no linear wave equation applies."""

    def test_symmetric_waves_annihilate(self):
        cfg = LockstepConfig(
            n_ranks=36, n_steps=30, t_exec=T, msg_size=16384,
            pattern=CommPattern(direction=Direction.BIDIRECTIONAL, periodic=True),
            delays=(DelaySpec(rank=0, step=0, duration=4 * T),
                    DelaySpec(rank=18, step=0, duration=4 * T)),
        )
        run = simulate_lockstep(cfg)
        idle = run.idle_matrix()
        # The waves collide at ranks 9 and 27 after ~9 steps; soon after,
        # the system is back in lockstep.
        assert idle[:, 15:].max() < 0.1 * T

    def test_superposition_strongly_violated(self):
        a = DelaySpec(rank=0, step=0, duration=4 * T)
        b = DelaySpec(rank=18, step=0, duration=4 * T)

        def run_with(delays):
            cfg = LockstepConfig(
                n_ranks=36, n_steps=30, t_exec=T, msg_size=16384,
                pattern=CommPattern(direction=Direction.BIDIRECTIONAL, periodic=True),
                delays=delays,
            )
            return simulate_lockstep(cfg)

        defect = superposition_defect(
            run_with((a, b)), [run_with((a,)), run_with((b,))],
            baseline=run_with(()),
        )
        linear = 2 * 4 * T * 17  # rough scale of one wave's idle budget
        assert defect < -0.3 * linear


class TestClaimLeadingEdgeNoiseInsensitive:
    """Sec. IV-C: 'the propagation speed along the forward slope of an idle
    wave is hardly changed' by noise."""

    def _speed_at(self, E, seed=11):
        cfg = LockstepConfig(
            n_ranks=30, n_steps=40, t_exec=T, msg_size=8192,
            pattern=CommPattern(direction=Direction.BIDIRECTIONAL, periodic=True),
            delays=(DelaySpec(rank=0, step=0, duration=30 * T),),
            noise=ExponentialNoise(E * T),
            seed=seed,
        )
        return measure_speed(simulate_lockstep(cfg), source=0, periodic=True)

    def test_forward_speed_barely_changed_at_low_noise(self):
        v_silent = self._speed_at(0.0).speed
        v_low = self._speed_at(0.02).speed
        assert v_low == pytest.approx(v_silent, rel=0.06)

    def test_forward_speed_within_noise_envelope_at_high_noise(self):
        """At E=10% the mean phase stretches to ~T*(1+E) plus neighborhood
        max effects; the leading edge stays within that cadence envelope
        (far from, e.g., halving)."""
        v_silent = self._speed_at(0.0).speed
        v_noisy = self._speed_at(0.10).speed
        assert 0.75 * v_silent < v_noisy <= v_silent

    def test_front_remains_cleanly_linear_under_noise(self):
        """The forward slope stays a straight line (small fit residual)."""
        m = self._speed_at(0.10)
        assert m.residual < 1.0  # ranks of RMS deviation from the line


class TestClaimDecayNeedsNoise:
    """Sec. V-A: decay rate correlates with noise; zero without noise."""

    def test_silent_system_preserves_wave(self):
        cfg = LockstepConfig(
            n_ranks=30, n_steps=40, t_exec=T, msg_size=8192,
            pattern=CommPattern(direction=Direction.BIDIRECTIONAL, periodic=True),
            delays=(DelaySpec(rank=0, step=0, duration=30 * T),),
        )
        meas = measure_decay(simulate_lockstep(cfg), source=0, periodic=True)
        assert abs(meas.beta) < 1e-5

    def test_decay_monotone_in_noise_level(self):
        def beta(E):
            vals = []
            for seed in range(6):
                cfg = LockstepConfig(
                    n_ranks=40, n_steps=55, t_exec=T, msg_size=8192,
                    pattern=CommPattern(direction=Direction.BIDIRECTIONAL,
                                        periodic=True),
                    delays=(DelaySpec(rank=0, step=0, duration=30 * T),),
                    noise=ExponentialNoise(E * T),
                    seed=seed,
                )
                vals.append(
                    measure_decay(simulate_lockstep(cfg), source=0, periodic=True).beta
                )
            return float(np.median(vals))

        b2, b10 = beta(0.02), beta(0.10)
        assert 0 < b2 < b10
