"""Integration tests: the Fig. 6 multi-wave interaction scenarios."""

import pytest

from repro.core import find_waves, resync_step, superposition_defect
from repro.experiments.fig6_interaction import (
    BASE_DELAY,
    N_RANKS,
    SCENARIOS,
    make_config,
)
from repro.sim import LockstepConfig, simulate_lockstep


def run_scenario(name, seed=0):
    return simulate_lockstep(make_config(name, seed=seed))


class TestEqualDelays:
    def test_injected_on_every_socket(self):
        cfg = make_config("equal")
        assert len(cfg.delays) == 10
        assert all(spec.duration == pytest.approx(BASE_DELAY) for spec in cfg.delays)

    def test_cancellation_after_five_hops(self):
        """Paper: 'for equal delays we observe the expected cancellation
        after five hops' (socket size 10, injection at local rank 5)."""
        run = run_scenario("equal")
        step = resync_step(run)
        assert step is not None
        assert step <= 7  # five hops plus delay width slack


class TestHalfDelays:
    def test_partial_cancellation_takes_longer(self):
        equal = resync_step(run_scenario("equal"))
        half = resync_step(run_scenario("half"))
        assert half is not None and equal is not None
        assert half > equal

    def test_surviving_waves_are_the_long_ones(self):
        run = run_scenario("half")
        idle = run.idle_matrix()
        # Between steps 6 and `resync`, only remnants of the full-length
        # delays survive; their amplitude is ~half the base delay.
        mid = idle[:, 6:10]
        assert 0.3 * BASE_DELAY < mid.max() <= 0.6 * BASE_DELAY


class TestRandomDelays:
    def test_longest_waves_survive_to_program_end(self):
        run = run_scenario("random")
        assert resync_step(run) is None  # still active at step 20

    def test_different_seeds_different_outcomes(self):
        a = run_scenario("random", seed=0).total_runtime()
        b = run_scenario("random", seed=1).total_runtime()
        assert a != b


class TestNonlinearity:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_superposition_defect_negative(self, scenario):
        cfg = make_config(scenario)
        combined = simulate_lockstep(cfg)
        singles = []
        for spec in cfg.delays:
            single = LockstepConfig(
                n_ranks=cfg.n_ranks, n_steps=cfg.n_steps, t_exec=cfg.t_exec,
                msg_size=cfg.msg_size, pattern=cfg.pattern, delays=(spec,),
                seed=cfg.seed,
            )
            singles.append(simulate_lockstep(single))
        baseline_cfg = LockstepConfig(
            n_ranks=cfg.n_ranks, n_steps=cfg.n_steps, t_exec=cfg.t_exec,
            msg_size=cfg.msg_size, pattern=cfg.pattern, delays=(), seed=cfg.seed,
        )
        defect = superposition_defect(
            combined, singles, baseline=simulate_lockstep(baseline_cfg)
        )
        assert defect < -1.0  # rank-seconds of destroyed idleness

    def test_ten_waves_detected_initially(self):
        run = run_scenario("equal")
        waves = find_waves(run)
        # Ten injections -> ten disjoint wave regions (they merge pairwise
        # as they cancel, but each pair collides simultaneously).
        assert len(waves) == 10
        covered = set()
        for w in waves:
            covered.update(w.ranks)
        assert len(covered) > N_RANKS // 2
