"""Unit tests for the desynchronization metrics."""

import numpy as np
import pytest

from repro.analysis.desync import desync_onset, overlap_efficiency, skew_spread
from repro.core.timing import RunTiming
from repro.sim import DelaySpec, ExponentialNoise, LockstepConfig, simulate_lockstep

T = 3e-3


def quiet_run(n_ranks=8, n_steps=10):
    return simulate_lockstep(LockstepConfig(n_ranks=n_ranks, n_steps=n_steps, t_exec=T))


def delayed_run():
    return simulate_lockstep(
        LockstepConfig(
            n_ranks=8, n_steps=10, t_exec=T,
            delays=(DelaySpec(rank=3, step=2, duration=5 * T),),
        )
    )


class TestSkewSpread:
    def test_quiet_run_microsecond_spread(self):
        spread = skew_spread(quiet_run())
        assert spread.max() < 0.05 * T

    def test_delay_creates_spread(self):
        spread = skew_spread(delayed_run())
        assert spread[2] > 4 * T  # injection step: delayed rank far behind

    def test_shape(self):
        assert skew_spread(quiet_run()).shape == (10,)


class TestDesyncOnset:
    def test_quiet_run_never_desyncs(self):
        assert desync_onset(quiet_run()) is None

    def test_onset_at_injection_step(self):
        assert desync_onset(delayed_run()) == 2

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            desync_onset(quiet_run(), fraction=0.0)

    def test_fallback_without_t_exec(self):
        timing = RunTiming.of(quiet_run())
        timing.meta.pop("t_exec")
        assert desync_onset(timing) is None


class TestOverlapEfficiency:
    def test_lockstep_run_near_zero(self):
        """A synchronized run uses its full serial budget."""
        eff = overlap_efficiency(quiet_run())
        assert eff == pytest.approx(0.0, abs=0.02)

    def test_noisy_run_bounded(self):
        run = simulate_lockstep(
            LockstepConfig(n_ranks=8, n_steps=10, t_exec=T,
                           noise=ExponentialNoise(0.2 * T), seed=3)
        )
        eff = overlap_efficiency(run)
        assert -0.5 < eff < 1.0

    def test_saturation_overlap_positive(self):
        """Desynchronized data-bound runs genuinely overlap: runtime beats
        the serialized per-step maxima."""
        from repro.sim.program import CommPattern, Direction
        from repro.sim.saturation import SaturationConfig, simulate_saturation
        from repro.sim.topology import single_switch_mapping

        cfg = SaturationConfig(
            mapping=single_switch_mapping(10, ppn=20),
            n_steps=60,
            work_bytes=40e6,
            b_core=6.5e9,
            b_socket=40e9,
            pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                                periodic=True),
            t_flight=2e-3,
            rendezvous=True,
            delays=(DelaySpec(rank=0, step=0, duration=30e-3),),
        )
        eff = overlap_efficiency(simulate_saturation(cfg))
        assert eff > 0.02


class TestEdgeCases:
    """Degenerate inputs the report kernels must be able to rely on."""

    def empty_timing(self, n_ranks=4):
        z = np.zeros((n_ranks, 0))
        return RunTiming(exec_end=z, completion=z.copy(), idle=z.copy())

    def test_empty_trace_skew_spread(self):
        assert skew_spread(self.empty_timing()).shape == (0,)

    def test_empty_trace_onset_without_t_exec(self):
        with pytest.raises(ValueError, match="phase length"):
            desync_onset(self.empty_timing())

    def test_empty_trace_onset_with_t_exec(self):
        t = self.empty_timing()
        t.meta["t_exec"] = T
        assert desync_onset(t) is None

    def test_empty_trace_overlap_rejected(self):
        with pytest.raises(ValueError, match="no time budget"):
            overlap_efficiency(self.empty_timing())

    def test_single_rank_run(self):
        # One rank, no waits: completion marches by exactly T per step.
        completion = np.arange(1.0, 6.0)[None, :] * T
        single = RunTiming(exec_end=completion.copy(),
                           completion=completion,
                           idle=np.zeros_like(completion),
                           meta={"t_exec": T})
        np.testing.assert_allclose(skew_spread(single), 0.0, atol=0)
        assert desync_onset(single) is None
        # The run *is* its own serial budget: nothing to overlap.
        assert overlap_efficiency(single) == pytest.approx(0.0, abs=1e-12)

    def test_constant_signal_never_desyncs(self):
        completion = np.tile(np.arange(1.0, 6.0) * T, (4, 1))
        t = RunTiming(exec_end=completion - T / 2, completion=completion,
                      idle=np.zeros_like(completion), meta={"t_exec": T})
        np.testing.assert_allclose(skew_spread(t), 0.0, atol=0)
        assert desync_onset(t) is None

    def test_onset_fraction_must_be_positive(self):
        with pytest.raises(ValueError, match="fraction"):
            desync_onset(quiet_run(), fraction=0.0)
