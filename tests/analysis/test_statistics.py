"""Unit tests for the multi-run statistics helpers."""

import pytest

from repro.analysis.statistics import RunStatistics, summarize, sweep_statistics


class TestRunStatistics:
    def test_basic_summary(self):
        s = RunStatistics.from_samples([1.0, 2.0, 3.0, 4.0, 10.0])
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 10.0
        assert s.mean == pytest.approx(4.0)
        assert s.n == 5

    def test_whiskers(self):
        s = RunStatistics.from_samples([1.0, 3.0, 10.0])
        assert s.whisker_low == pytest.approx(2.0)
        assert s.whisker_high == pytest.approx(7.0)

    def test_single_sample_zero_std(self):
        s = RunStatistics.from_samples([2.0])
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RunStatistics.from_samples([])

    def test_summarize_alias(self):
        assert summarize([1.0, 2.0]).mean == pytest.approx(1.5)


class TestSweepStatistics:
    def test_runner_called_with_value_and_seed(self):
        calls = []

        def runner(value, seed):
            calls.append((value, seed))
            return value * 10.0 + seed

        out = sweep_statistics([1, 2], runner, n_runs=3, seed0=100)
        assert len(out) == 2
        assert calls == [(1, 100), (1, 101), (1, 102), (2, 100), (2, 101), (2, 102)]
        value, stats = out[0]
        assert value == 1
        assert stats.n == 3
        assert stats.minimum == pytest.approx(110.0)

    def test_needs_runs(self):
        with pytest.raises(ValueError):
            sweep_statistics([1], lambda v, s: 0.0, n_runs=0)
