"""Unit tests for timeline extraction."""

import numpy as np
import pytest

from repro.analysis.timeline import (
    IntervalKind,
    full_timeline,
    rank_timeline,
    snapshot_positions,
)
from repro.sim import DelaySpec, LockstepConfig, simulate_lockstep

T = 3e-3


def delayed_run():
    cfg = LockstepConfig(
        n_ranks=6, n_steps=8, t_exec=T,
        delays=(DelaySpec(rank=2, step=1, duration=3 * T),),
    )
    return simulate_lockstep(cfg)


class TestRankTimeline:
    def test_intervals_ordered_and_disjoint(self):
        tl = rank_timeline(delayed_run(), 3)
        for a, b in zip(tl, tl[1:]):
            assert b.start >= a.end - 1e-12

    def test_delay_interval_emitted(self):
        tl = rank_timeline(delayed_run(), 2)
        delays = [iv for iv in tl if iv.kind == IntervalKind.DELAY]
        assert len(delays) == 1
        assert delays[0].step == 1
        assert delays[0].duration == pytest.approx(3 * T, rel=1e-6)

    def test_no_delay_interval_on_clean_rank(self):
        tl = rank_timeline(delayed_run(), 0)
        assert all(iv.kind != IntervalKind.DELAY for iv in tl)

    def test_idle_appears_downstream(self):
        tl = rank_timeline(delayed_run(), 3)
        idles = [iv for iv in tl if iv.kind == IntervalKind.IDLE]
        assert max(iv.duration for iv in idles) == pytest.approx(3 * T, rel=0.01)

    def test_exec_intervals_every_step(self):
        tl = rank_timeline(delayed_run(), 4)
        execs = [iv for iv in tl if iv.kind == IntervalKind.EXEC]
        assert len(execs) == 8

    def test_rank_bounds(self):
        with pytest.raises(IndexError):
            rank_timeline(delayed_run(), 6)


class TestFullTimeline:
    def test_one_list_per_rank(self):
        tls = full_timeline(delayed_run())
        assert len(tls) == 6
        assert all(tl for tl in tls)


class TestSnapshotPositions:
    def test_shape_and_monotonicity(self):
        pos = snapshot_positions(delayed_run(), [0, 3, 7])
        assert pos.shape == (3, 6)
        assert (np.diff(pos, axis=0) > 0).all()

    def test_step_bounds(self):
        with pytest.raises(IndexError):
            snapshot_positions(delayed_run(), [99])
