"""Unit tests for the noise-histogram analysis (Fig. 3 machinery)."""

import numpy as np
import pytest

from repro.analysis.histogram import NoiseHistogram, collect_noise_samples
from repro.sim.noise import BimodalNoise, ExponentialNoise


class TestFromSamples:
    def test_counts_cover_all_samples(self):
        samples = np.array([0.5e-6, 1.5e-6, 2.5e-6, 2.6e-6])
        h = NoiseHistogram.from_samples(samples, bin_width=1e-6)
        assert h.counts.sum() == 4
        assert h.n_samples == 4

    def test_summary_statistics(self):
        samples = np.array([1e-6, 3e-6])
        h = NoiseHistogram.from_samples(samples, bin_width=1e-6)
        assert h.mean == pytest.approx(2e-6)
        assert h.maximum == pytest.approx(3e-6)

    def test_bin_centers_between_edges(self):
        h = NoiseHistogram.from_samples(np.array([1e-6]), bin_width=1e-6)
        assert ((h.bin_centers > h.bin_edges[:-1]) & (h.bin_centers < h.bin_edges[1:])).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseHistogram.from_samples(np.array([]), 1e-6)
        with pytest.raises(ValueError):
            NoiseHistogram.from_samples(np.array([-1e-6]), 1e-6)
        with pytest.raises(ValueError):
            NoiseHistogram.from_samples(np.array([1e-6]), 0.0)


class TestModes:
    def test_unimodal_exponential(self):
        rng = np.random.default_rng(0)
        samples = ExponentialNoise(2.4e-6).sample(rng, (100_000,))
        h = NoiseHistogram.from_samples(samples, 640e-9)
        assert not h.is_bimodal(min_separation=100e-6)

    def test_bimodal_driver_noise(self):
        rng = np.random.default_rng(0)
        noise = BimodalNoise(base=ExponentialNoise(2.8e-6), spike_delay=660e-6,
                             spike_probability=0.01)
        samples = noise.sample(rng, (200_000,))
        h = NoiseHistogram.from_samples(samples, 7.2e-6)
        modes = h.modes(min_separation=100e-6)
        assert len(modes) >= 2
        assert any(abs(m - 660e-6) < 50e-6 for m in modes)

    def test_fraction_above(self):
        samples = np.array([1e-6] * 9 + [1e-3])
        h = NoiseHistogram.from_samples(samples, 1e-6)
        assert h.fraction_above(1e-4) == pytest.approx(0.1)


class TestCollectNoiseSamples:
    def test_deterministic(self):
        noise = ExponentialNoise(1e-6)
        a = collect_noise_samples(noise, 100, seed=5)
        b = collect_noise_samples(noise, 100, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_count_respected(self):
        assert collect_noise_samples(ExponentialNoise(1e-6), 123).shape == (123,)

    def test_validation(self):
        with pytest.raises(ValueError):
            collect_noise_samples(ExponentialNoise(1e-6), 0)
