"""Unit tests for the skew-profile Fourier analysis (Fig. 2 machinery)."""

import numpy as np
import pytest

from repro.analysis.fourier import (
    dominant_wavelength,
    skew_profile,
    skew_spectrum,
)
from repro.core.timing import RunTiming


def synthetic_timing(profile_fn, n_ranks=64, n_steps=4):
    """Timing whose completion at each step carries a synthetic skew."""
    base = np.arange(1, n_steps + 1, dtype=float)[None, :] * 1e-2
    skew = profile_fn(np.arange(n_ranks))[:, None]
    completion = base + skew
    return RunTiming(
        exec_end=completion - 1e-3,
        completion=completion,
        idle=np.zeros((n_ranks, n_steps)),
    )


class TestSkewProfile:
    def test_zero_mean(self):
        t = synthetic_timing(lambda r: np.sin(2 * np.pi * r / 64) * 1e-3)
        p = skew_profile(t, step=2)
        assert p.mean() == pytest.approx(0.0, abs=1e-12)

    def test_step_bounds(self):
        t = synthetic_timing(lambda r: r * 0.0)
        with pytest.raises(IndexError):
            skew_profile(t, step=10)


class TestSkewSpectrum:
    def test_single_mode_detected(self):
        t = synthetic_timing(lambda r: np.sin(2 * np.pi * 4 * r / 64) * 1e-3)
        spec = skew_spectrum(t, step=0)
        assert spec.dominant_mode() == 4
        assert spec.mode_fraction(4) > 0.99

    def test_fundamental_wavelength_equals_system_size(self):
        t = synthetic_timing(lambda r: np.sin(2 * np.pi * r / 64) * 1e-3)
        assert dominant_wavelength(t, 0) == pytest.approx(64.0)

    def test_wavelength_of_higher_mode(self):
        t = synthetic_timing(lambda r: np.cos(2 * np.pi * 8 * r / 64) * 1e-3)
        assert dominant_wavelength(t, 0) == pytest.approx(8.0)

    def test_mode_fraction_bounds(self):
        t = synthetic_timing(lambda r: np.sin(2 * np.pi * r / 64) * 1e-3)
        spec = skew_spectrum(t, 0)
        with pytest.raises(IndexError):
            spec.mode_fraction(0)

    def test_flat_profile_has_zero_power(self):
        t = synthetic_timing(lambda r: np.zeros_like(r, dtype=float))
        spec = skew_spectrum(t, 0)
        assert spec.power[1:].sum() == pytest.approx(0.0, abs=1e-20)
        assert spec.mode_fraction(1) == 0.0


class TestEdgeCases:
    """Degenerate inputs the report kernels must be able to rely on."""

    def test_empty_trace_rejected(self):
        t = synthetic_timing(lambda r: np.zeros_like(r, dtype=float),
                             n_steps=4)
        empty = RunTiming(exec_end=t.exec_end[:, :0],
                          completion=t.completion[:, :0],
                          idle=t.idle[:, :0])
        with pytest.raises(IndexError, match="out of range"):
            skew_profile(empty, 0)
        with pytest.raises(IndexError, match="out of range"):
            skew_spectrum(empty, 0)

    def test_step_out_of_range(self):
        t = synthetic_timing(lambda r: np.zeros_like(r, dtype=float))
        with pytest.raises(IndexError, match="out of range"):
            skew_profile(t, t.n_steps)
        with pytest.raises(IndexError, match="out of range"):
            skew_profile(t, -1)

    def test_single_rank_has_no_nonzero_mode(self):
        t = synthetic_timing(lambda r: np.zeros_like(r, dtype=float),
                             n_ranks=1)
        spec = skew_spectrum(t, 0)
        assert spec.n_ranks == 1
        with pytest.raises(ValueError, match="no nonzero wavenumber"):
            spec.dominant_mode()
        with pytest.raises(ValueError, match="no nonzero wavenumber"):
            spec.dominant_wavelength()

    def test_two_ranks_single_mode(self):
        t = synthetic_timing(lambda r: r * 1e-3, n_ranks=2)
        spec = skew_spectrum(t, 0)
        assert spec.dominant_mode() == 1
        assert spec.dominant_wavelength() == pytest.approx(2.0)

    def test_constant_signal_mode_fraction_zero(self):
        # A perfectly synchronized (constant-completion) step: no power
        # anywhere; the dominant mode defaults to 1 with zero fraction.
        t = synthetic_timing(lambda r: np.full_like(r, 5e-3, dtype=float))
        spec = skew_spectrum(t, 0)
        assert spec.dominant_mode() == 1
        assert spec.mode_fraction(1) == 0.0
        assert spec.power[1:].sum() == pytest.approx(0.0, abs=1e-20)

    def test_profile_with_nonzero_mean_is_centered(self):
        t = synthetic_timing(lambda r: 7e-3 + np.sin(2 * np.pi * r / 64) * 1e-3)
        assert skew_profile(t, 0).mean() == pytest.approx(0.0, abs=1e-12)
        assert dominant_wavelength(t, 0) == pytest.approx(64.0)
