"""Unit tests for the skew-profile Fourier analysis (Fig. 2 machinery)."""

import numpy as np
import pytest

from repro.analysis.fourier import (
    dominant_wavelength,
    skew_profile,
    skew_spectrum,
)
from repro.core.timing import RunTiming


def synthetic_timing(profile_fn, n_ranks=64, n_steps=4):
    """Timing whose completion at each step carries a synthetic skew."""
    base = np.arange(1, n_steps + 1, dtype=float)[None, :] * 1e-2
    skew = profile_fn(np.arange(n_ranks))[:, None]
    completion = base + skew
    return RunTiming(
        exec_end=completion - 1e-3,
        completion=completion,
        idle=np.zeros((n_ranks, n_steps)),
    )


class TestSkewProfile:
    def test_zero_mean(self):
        t = synthetic_timing(lambda r: np.sin(2 * np.pi * r / 64) * 1e-3)
        p = skew_profile(t, step=2)
        assert p.mean() == pytest.approx(0.0, abs=1e-12)

    def test_step_bounds(self):
        t = synthetic_timing(lambda r: r * 0.0)
        with pytest.raises(IndexError):
            skew_profile(t, step=10)


class TestSkewSpectrum:
    def test_single_mode_detected(self):
        t = synthetic_timing(lambda r: np.sin(2 * np.pi * 4 * r / 64) * 1e-3)
        spec = skew_spectrum(t, step=0)
        assert spec.dominant_mode() == 4
        assert spec.mode_fraction(4) > 0.99

    def test_fundamental_wavelength_equals_system_size(self):
        t = synthetic_timing(lambda r: np.sin(2 * np.pi * r / 64) * 1e-3)
        assert dominant_wavelength(t, 0) == pytest.approx(64.0)

    def test_wavelength_of_higher_mode(self):
        t = synthetic_timing(lambda r: np.cos(2 * np.pi * 8 * r / 64) * 1e-3)
        assert dominant_wavelength(t, 0) == pytest.approx(8.0)

    def test_mode_fraction_bounds(self):
        t = synthetic_timing(lambda r: np.sin(2 * np.pi * r / 64) * 1e-3)
        spec = skew_spectrum(t, 0)
        with pytest.raises(IndexError):
            spec.mode_fraction(0)

    def test_flat_profile_has_zero_power(self):
        t = synthetic_timing(lambda r: np.zeros_like(r, dtype=float))
        spec = skew_spectrum(t, 0)
        assert spec.power[1:].sum() == pytest.approx(0.0, abs=1e-20)
        assert spec.mode_fraction(1) == 0.0
