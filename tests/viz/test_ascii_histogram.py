"""Unit tests for the ASCII histogram renderer."""

import numpy as np
import pytest

from repro.analysis.histogram import NoiseHistogram
from repro.viz.ascii_histogram import render_histogram


def hist(samples, bin_width=1e-6):
    return NoiseHistogram.from_samples(np.asarray(samples), bin_width)


class TestRenderHistogram:
    def test_contains_bars_and_counts(self):
        h = hist([0.5e-6] * 100 + [2.5e-6] * 10)
        out = render_histogram(h)
        assert "#" in out
        assert "100" in out
        assert "µs" in out

    def test_row_limit_respected(self):
        samples = np.linspace(0, 100e-6, 500)
        out = render_histogram(hist(samples), max_rows=8)
        bar_rows = [ln for ln in out.splitlines() if "|" in ln][1:]  # skip header
        assert len(bar_rows) <= 8 + 1

    def test_peak_bar_has_full_width(self):
        h = hist([0.5e-6] * 1000 + [2.5e-6])
        out = render_histogram(h, width=30, log_counts=False)
        assert "#" * 30 in out

    def test_log_scaling_compresses(self):
        h = hist([0.5e-6] * 10000 + [2.5e-6] * 10)
        lines_log = render_histogram(h, width=40, log_counts=True).splitlines()
        small_bar = next(ln for ln in lines_log if ln.rstrip().endswith(" 10"))
        assert small_bar.count("#") > 5  # visible despite 1000x ratio

    def test_summary_footer(self):
        h = hist([1e-6, 3e-6])
        out = render_histogram(h)
        assert "n=2" in out
        assert "mean=2.00" in out

    def test_validation(self):
        h = hist([1e-6])
        with pytest.raises(ValueError):
            render_histogram(h, width=2)
        with pytest.raises(ValueError):
            render_histogram(h, max_rows=0)
