"""Unit tests for the ASCII timeline renderers."""

import pytest

from repro.sim import DelaySpec, LockstepConfig, simulate_lockstep
from repro.viz.ascii_timeline import render_idle_heatmap, render_timeline

T = 3e-3


def delayed_run():
    cfg = LockstepConfig(
        n_ranks=6, n_steps=8, t_exec=T,
        delays=(DelaySpec(rank=2, step=0, duration=4 * T),),
    )
    return simulate_lockstep(cfg)


class TestRenderTimeline:
    def test_one_row_per_rank_plus_axis(self):
        out = render_timeline(delayed_run(), width=60)
        lines = out.splitlines()
        assert len(lines) == 6 + 2  # ranks + axis + time label

    def test_contains_all_glyphs(self):
        out = render_timeline(delayed_run(), width=80)
        assert "D" in out  # the injected delay
        assert "#" in out  # downstream idle
        assert "." in out  # execution

    def test_delay_on_correct_row(self):
        out = render_timeline(delayed_run(), width=80)
        lines = out.splitlines()
        # Rows are printed top-down from rank 5 to rank 0; rank 2 is lines[3].
        assert "D" in lines[3]
        assert all("D" not in lines[i] for i in (0, 1, 2, 4, 5))

    def test_width_respected(self):
        out = render_timeline(delayed_run(), width=40)
        label_w = len("5 |")
        for line in out.splitlines()[:-2]:
            assert len(line) <= 40 + label_w

    def test_minimum_width_enforced(self):
        with pytest.raises(ValueError):
            render_timeline(delayed_run(), width=5)

    def test_no_rank_labels_option(self):
        out = render_timeline(delayed_run(), width=40, rank_labels=False)
        assert out.splitlines()[0].startswith("|")


class TestRenderIdleHeatmap:
    def test_marks_wave_cells(self):
        out = render_idle_heatmap(delayed_run())
        lines = out.splitlines()
        # rank 3 row (index 2 from top) shows '#' at step 0.
        rank3 = lines[2]
        assert rank3.split("|")[1][0] == "#"

    def test_quiet_run_all_dots(self):
        cfg = LockstepConfig(n_ranks=4, n_steps=5, t_exec=T)
        out = render_idle_heatmap(simulate_lockstep(cfg))
        body = [ln.split("|")[1] for ln in out.splitlines()[:4]]
        assert all(set(row) <= {"."} for row in body)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            render_idle_heatmap(delayed_run(), threshold=0.0)
