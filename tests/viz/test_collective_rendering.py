"""Rendering works on traces with multiple Waitalls per step (collectives)."""

from repro.sim import DelaySpec, SimConfig, UniformNetwork, simulate
from repro.sim.collectives import Collective, CollectiveConfig, build_collective_program
from repro.viz import render_idle_heatmap, render_timeline

T = 3e-3


def collective_trace():
    cfg = CollectiveConfig(
        n_ranks=8, n_steps=5, collective=Collective.BARRIER, t_exec=T,
        delays=(DelaySpec(rank=3, step=1, duration=4 * T),),
    )
    return simulate(build_collective_program(cfg), SimConfig(network=UniformNetwork()))


class TestCollectiveRendering:
    def test_timeline_renders(self):
        out = render_timeline(collective_trace(), width=70)
        assert "D" in out  # the injected delay
        assert "#" in out  # everyone waits at the barrier
        assert len(out.splitlines()) == 8 + 2

    def test_heatmap_shows_barrier_coupling(self):
        out = render_idle_heatmap(collective_trace())
        lines = out.splitlines()[:8]  # rank rows, top = rank 7
        # Injection step (column 1) idles every rank except the delayed one.
        col1 = [ln.split("|")[1][1] for ln in lines]
        delayed_row = 7 - 3  # rank 3 from the top
        waiting = [c for i, c in enumerate(col1) if i != delayed_row]
        assert all(c == "#" for c in waiting)
