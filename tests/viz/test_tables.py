"""Unit tests for the text table formatting."""

import pytest

from repro.viz.tables import format_series, format_table


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "long header"], [[1.0, 2.0], [3.5, 4.25]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_floats_formatted(self):
        out = format_table(["x"], [[1.23456789]], float_fmt="{:.2f}")
        assert "1.23" in out

    def test_non_floats_stringified(self):
        out = format_table(["n", "tag"], [[3, "abc"]])
        assert "abc" in out

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="headers"):
            format_table(["a", "b"], [[1.0]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestFormatSeries:
    def test_two_columns(self):
        out = format_series([1.0, 2.0], [10.0, 20.0], "E", "beta")
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "E"
        assert len(lines) == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series([1.0], [1.0, 2.0])
