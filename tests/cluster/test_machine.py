"""Unit tests for machine specifications."""

import pytest

from repro.cluster.machine import CpuSpec, MachineSpec
from repro.sim.network import UniformNetwork
from repro.sim.noise import NoNoise
from repro.sim.topology import MachineTopology


def make_spec(**kw):
    base = dict(
        name="test",
        topology=MachineTopology(cores_per_socket=10, sockets_per_node=2, n_nodes=4),
        network=UniformNetwork(),
        cpu=CpuSpec(name="IVB", clock_hz=2.2e9, vdivpd_cycles=28),
        b_core=6.5e9,
        b_socket=40e9,
        natural_noise=NoNoise(),
    )
    base.update(kw)
    return MachineSpec(**base)


class TestCpuSpec:
    def test_peak_flops(self):
        cpu = CpuSpec(name="x", clock_hz=2e9, flops_per_cycle=8)
        assert cpu.peak_flops == pytest.approx(16e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuSpec(name="x", clock_hz=0)
        with pytest.raises(ValueError):
            CpuSpec(name="x", vdivpd_cycles=0)


class TestMachineSpec:
    def test_mapping_default_fills_cores(self):
        m = make_spec().mapping(40)
        assert m.ppn == 20
        assert m.n_nodes_used() == 2

    def test_mapping_ppn_one(self):
        m = make_spec().mapping(4, ppn=1)
        assert m.n_nodes_used() == 4

    def test_with_nodes(self):
        spec = make_spec().with_nodes(100)
        assert spec.topology.n_nodes == 100
        assert spec.name == "test"

    def test_saturation_cores(self):
        spec = make_spec()
        # ceil(40 / 6.5) = 7 cores to saturate.
        assert spec.saturation_cores() == 7

    def test_divide_phase_elements(self):
        spec = make_spec()
        n = spec.divide_phase_elements(3e-3)
        # n * 28 / 2.2e9 == 3 ms up to rounding to a whole instruction.
        assert n * 28 / 2.2e9 == pytest.approx(3e-3, rel=1e-5)

    def test_divide_phase_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            make_spec().divide_phase_elements(0)

    def test_b_core_above_socket_rejected(self):
        with pytest.raises(ValueError):
            make_spec(b_core=50e9, b_socket=40e9)
