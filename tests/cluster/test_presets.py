"""Unit tests for the Emmy/Meggie/Simulated presets (paper Sec. III)."""

import numpy as np
import pytest

from repro.cluster import EMMY, MEGGIE, SIMULATED, get_machine, noise_for_smt
from repro.sim.noise import BimodalNoise, NoNoise
from repro.sim.topology import CommDomain

HIERARCHY = (CommDomain.INTRA_SOCKET, CommDomain.INTER_SOCKET,
             CommDomain.INTER_NODE)


class TestEmmy:
    def test_paper_shape(self):
        assert EMMY.topology.cores_per_socket == 10
        assert EMMY.topology.sockets_per_node == 2
        assert EMMY.topology.n_nodes == 560
        assert EMMY.cpu.vdivpd_cycles == 28  # Ivy Bridge
        assert EMMY.cpu.clock_hz == pytest.approx(2.2e9)

    def test_memory_bandwidth_per_paper(self):
        assert EMMY.b_socket == pytest.approx(40e9)

    def test_operational_noise_is_smt_on(self):
        assert EMMY.natural_noise is EMMY.noise_smt_on
        assert EMMY.natural_noise.mean() == pytest.approx(2.4e-6)

    def test_network_hierarchy_ordered(self):
        t_intra = EMMY.network.transfer_time(8192, CommDomain.INTRA_SOCKET)
        t_node = EMMY.network.transfer_time(8192, CommDomain.INTER_NODE)
        assert t_intra < t_node


class TestMeggie:
    def test_paper_shape(self):
        assert MEGGIE.topology.n_nodes == 724
        assert MEGGIE.cpu.vdivpd_cycles == 16  # Broadwell

    def test_operational_noise_is_smt_off_bimodal(self):
        assert MEGGIE.natural_noise is MEGGIE.noise_smt_off
        rng = np.random.default_rng(0)
        samples = MEGGIE.natural_noise.sample(rng, (100_000,))
        assert (samples > 300e-6).mean() > 0.001  # the driver spike mode

    def test_smt_on_mean_matches_paper(self):
        assert MEGGIE.noise_smt_on.mean() == pytest.approx(2.8e-6)


class TestSimulated:
    def test_noise_free(self):
        assert isinstance(SIMULATED.natural_noise, NoNoise)

    def test_flat_network(self):
        times = [
            SIMULATED.network.transfer_time(8192, d)
            for d in (CommDomain.INTRA_SOCKET, CommDomain.INTER_SOCKET,
                      CommDomain.INTER_NODE)
        ]
        assert len(set(times)) == 1


class TestInvariants:
    """EMMY/MEGGIE calibration invariants the scenario compiler relies on."""

    @pytest.mark.parametrize("machine", [EMMY, MEGGIE], ids=["emmy", "meggie"])
    def test_domain_latency_ordering(self, machine):
        # Latency grows strictly up the hierarchy: socket < node < network.
        latencies = [machine.network.latency[d] for d in HIERARCHY]
        assert latencies == sorted(latencies)
        assert latencies[0] < latencies[-1]

    @pytest.mark.parametrize("machine", [EMMY, MEGGIE], ids=["emmy", "meggie"])
    def test_hockney_parameters_positive(self, machine):
        for domain in HIERARCHY:
            assert machine.network.latency[domain] > 0
            assert machine.network.bandwidth[domain] > 0
        assert machine.network.overhead > 0

    def test_emmy_noise_calibration_fig3a(self):
        # Fig. 3(a): unimodal, mean ~2.4 µs per 3 ms phase, SMT damped.
        assert EMMY.noise_smt_on.mean() == pytest.approx(2.4e-6)
        assert EMMY.noise_smt_on.mean() < EMMY.noise_smt_off.mean()
        assert EMMY.meta["figure3_mean_us"] == pytest.approx(2.4)

    def test_meggie_noise_calibration_fig3b(self):
        # Fig. 3(b): bimodal with the Omni-Path driver mode near 660 µs.
        assert isinstance(MEGGIE.noise_smt_off, BimodalNoise)
        assert MEGGIE.noise_smt_off.spike_delay == pytest.approx(660e-6)
        assert MEGGIE.meta["figure3_second_peak_us"] == pytest.approx(660)
        assert MEGGIE.noise_smt_on.mean() == pytest.approx(2.8e-6)

    @pytest.mark.parametrize("machine", [EMMY, MEGGIE], ids=["emmy", "meggie"])
    def test_memory_bandwidth_hierarchy(self, machine):
        assert 0 < machine.b_core < machine.b_socket


class TestNoiseForSmt:
    def test_default_is_operational_configuration(self):
        assert noise_for_smt(EMMY) is EMMY.noise_smt_on
        assert noise_for_smt(MEGGIE) is MEGGIE.noise_smt_off

    def test_explicit_selection(self):
        assert noise_for_smt(EMMY, "off") is EMMY.noise_smt_off
        assert noise_for_smt(MEGGIE, "ON") is MEGGIE.noise_smt_on

    def test_bad_value_rejected(self):
        with pytest.raises(KeyError, match="smt must be"):
            noise_for_smt(EMMY, "maybe")


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_machine("Emmy") is EMMY
        assert get_machine("MEGGIE") is MEGGIE

    def test_unknown_machine(self):
        with pytest.raises(KeyError, match="unknown machine"):
            get_machine("frontier")

    def test_unknown_machine_error_lists_available(self):
        with pytest.raises(KeyError, match="emmy.*meggie.*simulated"):
            get_machine("frontier")
