"""Unit tests for idle-period detection and wave-front extraction."""

import numpy as np
import pytest

from repro.core.idle_wave import default_threshold, idle_periods, wave_front
from repro.core.timing import RunTiming
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    simulate_lockstep,
)

T = 3e-3


def delayed_run(direction=Direction.UNIDIRECTIONAL, periodic=False, source=4,
                n_ranks=12, phases=4.0, **kw):
    cfg = LockstepConfig(
        n_ranks=n_ranks, n_steps=14, t_exec=T, msg_size=8192,
        pattern=CommPattern(direction=direction, distance=1, periodic=periodic),
        delays=(DelaySpec(rank=source, step=0, duration=phases * T),),
        **kw,
    )
    return simulate_lockstep(cfg)


class TestDefaultThreshold:
    def test_uses_t_exec_fraction_when_known(self):
        run = delayed_run()
        assert default_threshold(RunTiming.of(run)) == pytest.approx(0.5 * T)

    def test_fallback_without_t_exec(self):
        timing = RunTiming(
            exec_end=np.ones((2, 2)),
            completion=np.ones((2, 2)) * 1.1,
            idle=np.full((2, 2), 0.1),
        )
        assert default_threshold(timing) == pytest.approx(1.0)  # 10x median

    def test_zero_for_silent_run(self):
        timing = RunTiming(
            exec_end=np.ones((2, 2)),
            completion=np.ones((2, 2)),
            idle=np.zeros((2, 2)),
        )
        assert default_threshold(timing) == 0.0


class TestIdlePeriods:
    def test_detects_wave_cells(self):
        run = delayed_run()
        periods = idle_periods(run)
        ranks = {p.rank for p in periods}
        assert ranks == set(range(5, 12))  # everyone above the source

    def test_sorted_by_start(self):
        periods = idle_periods(delayed_run())
        starts = [p.start for p in periods]
        assert starts == sorted(starts)

    def test_durations_near_injected_delay(self):
        periods = idle_periods(delayed_run(phases=4.0))
        for p in periods:
            assert p.duration == pytest.approx(4.0 * T, rel=0.01)

    def test_threshold_filters(self):
        run = delayed_run()
        assert idle_periods(run, threshold=100.0) == []


class TestWaveFront:
    def test_forward_front_one_hop_per_step(self):
        front = wave_front(delayed_run(), source=4, direction=+1)
        assert front.reach == 7
        np.testing.assert_array_equal(front.arrival_steps, np.arange(7))
        np.testing.assert_array_equal(front.ranks, np.arange(5, 12))

    def test_arrival_times_evenly_spaced(self):
        front = wave_front(delayed_run(), source=4, direction=+1)
        gaps = np.diff(front.arrival_times)
        assert gaps == pytest.approx(T, rel=0.01)

    def test_no_backward_front_under_eager_uni(self):
        front = wave_front(delayed_run(), source=4, direction=-1)
        assert front.reach == 0

    def test_periodic_wraparound(self):
        run = delayed_run(direction=Direction.UNIDIRECTIONAL, periodic=True, source=4)
        front = wave_front(run, source=4, direction=+1, periodic=True)
        # The wave wraps: ranks 5..11, 0..3 (it dies at the source).
        assert front.reach == 11
        assert front.ranks[-1] == 3

    def test_periodic_flag_read_from_meta(self):
        run = delayed_run(direction=Direction.UNIDIRECTIONAL, periodic=True, source=4)
        front = wave_front(run, source=4, direction=+1)  # periodic not given
        assert front.reach == 11

    def test_max_hops_limits_walk(self):
        front = wave_front(delayed_run(), source=4, max_hops=3)
        assert front.reach == 3

    def test_amplitudes_match_idle(self):
        run = delayed_run(phases=4.0)
        front = wave_front(run, source=4)
        assert front.amplitudes == pytest.approx(4.0 * T, rel=0.01)

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            wave_front(delayed_run(), source=4, direction=0)

    def test_invalid_source_rejected(self):
        with pytest.raises(IndexError):
            wave_front(delayed_run(), source=99)
