"""Unit tests for the decay-rate measurement (Fig. 8 machinery)."""

import numpy as np
import pytest

from repro.core.decay import decay_statistics, measure_decay
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    LockstepConfig,
    simulate_lockstep,
)

T = 3e-3


def run_with_noise(E, seed=0, delay_phases=20, n_ranks=40, n_steps=50):
    cfg = LockstepConfig(
        n_ranks=n_ranks, n_steps=n_steps, t_exec=T, msg_size=8192,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                            periodic=True),
        delays=(DelaySpec(rank=0, step=0, duration=delay_phases * T),),
        noise=ExponentialNoise(E * T),
        seed=seed,
    )
    return simulate_lockstep(cfg)


class TestMeasureDecay:
    def test_noise_free_wave_does_not_decay(self):
        run = run_with_noise(0.0)
        meas = measure_decay(run, source=0, periodic=True)
        assert abs(meas.beta) < 1e-5  # seconds/rank
        assert meas.survival_hops >= 19  # half the ring

    def test_noise_produces_positive_decay(self):
        betas = [measure_decay(run_with_noise(0.10, seed=s), source=0,
                               periodic=True).beta for s in range(5)]
        assert np.median(betas) > 0

    def test_decay_grows_with_noise(self):
        def median_beta(E):
            return np.median([
                measure_decay(run_with_noise(E, seed=s), source=0, periodic=True).beta
                for s in range(6)
            ])

        lo, hi = median_beta(0.02), median_beta(0.15)
        assert hi > 2 * lo > 0

    def test_initial_amplitude_close_to_delay(self):
        meas = measure_decay(run_with_noise(0.05), source=0, periodic=True)
        assert meas.initial_amplitude == pytest.approx(20 * T, rel=0.15)

    def test_amplitudes_length_matches_survival(self):
        meas = measure_decay(run_with_noise(0.05), source=0, periodic=True)
        assert len(meas.amplitudes) == meas.survival_hops

    def test_raises_without_wave(self):
        cfg = LockstepConfig(n_ranks=8, n_steps=8, t_exec=T)
        run = simulate_lockstep(cfg)
        with pytest.raises(ValueError, match="no idle wave"):
            measure_decay(run, source=4)

    def test_strong_noise_kills_wave_before_full_traversal(self):
        """With strong noise a short wave dies before circling the ring,
        and the measured decay accounts for (most of) its amplitude."""
        betas, hops = [], []
        for seed in range(6):
            run = run_with_noise(0.40, delay_phases=5, seed=seed)
            meas = measure_decay(run, source=0, periodic=True)
            betas.append(meas.beta)
            hops.append(meas.survival_hops)
        assert np.median(betas) > 0
        assert min(hops) < 39  # died before one full traversal


class TestDecayStatistics:
    def test_summary_fields(self):
        stats = decay_statistics([1.0, 2.0, 3.0])
        assert stats.median == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.n_runs == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            decay_statistics([])
