"""Unit tests for wave interaction, cancellation and nonlinearity metrics."""

import pytest

from repro.core.interaction import (
    find_waves,
    meeting_ranks,
    resync_step,
    superposition_defect,
)
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    simulate_lockstep,
)

T = 3e-3


def ring_run(delays, n_ranks=24, n_steps=20, **kw):
    cfg = LockstepConfig(
        n_ranks=n_ranks, n_steps=n_steps, t_exec=T, msg_size=8192,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                            periodic=True),
        delays=tuple(delays),
        **kw,
    )
    return simulate_lockstep(cfg)


class TestFindWaves:
    def test_single_injection_single_wave(self):
        run = ring_run([DelaySpec(rank=6, step=0, duration=4 * T)])
        waves = find_waves(run)
        assert len(waves) == 1
        assert 6 not in waves[0].ranks  # the source computes, its neighbors idle

    def test_two_far_injections_four_branches_initially(self):
        run = ring_run(
            [DelaySpec(rank=0, step=0, duration=4 * T),
             DelaySpec(rank=12, step=0, duration=4 * T)],
            n_steps=4,  # stop before the waves meet
        )
        # Each injection spawns two counter-propagating branches that are
        # separated by the (busy) source rank, hence 4 components.
        assert len(find_waves(run)) == 4

    def test_waves_merge_on_collision(self):
        run = ring_run(
            [DelaySpec(rank=0, step=0, duration=4 * T),
             DelaySpec(rank=12, step=0, duration=4 * T)],
            n_steps=20,  # long enough to collide
        )
        waves = find_waves(run)
        # After collision the components join: fewer than 2*2 fronts remain.
        assert 1 <= len(waves) <= 2

    def test_wave_extent_and_idle(self):
        run = ring_run([DelaySpec(rank=6, step=0, duration=4 * T)])
        wave = find_waves(run)[0]
        assert wave.extent >= 10
        assert wave.total_idle > 10 * 4 * T * 0.8

    def test_quiet_run_has_no_waves(self):
        run = ring_run([])
        assert find_waves(run) == []


class TestResyncStep:
    def test_symmetric_cancellation_resyncs(self):
        run = ring_run([DelaySpec(rank=0, step=0, duration=4 * T)], n_steps=20)
        step = resync_step(run)
        # The two branches meet at the antipode after ~12 hops.
        assert step is not None
        assert 10 <= step <= 16

    def test_quiet_run_resyncs_at_zero(self):
        assert resync_step(ring_run([])) == 0

    def test_never_resyncs_within_horizon(self):
        run = ring_run([DelaySpec(rank=0, step=0, duration=20 * T)], n_steps=6)
        assert resync_step(run) is None


class TestMeetingRanks:
    def test_waves_meet_at_antipode(self):
        run = ring_run([DelaySpec(rank=0, step=0, duration=4 * T)], n_steps=20)
        meet = meeting_ranks(run)
        assert meet, "expected a meeting point"
        # Antipode of rank 0 on a 24-ring is rank 12 (+/- 1 for asymmetry).
        assert all(10 <= r <= 14 for r in meet)

    def test_quiet_run_has_no_meeting(self):
        assert meeting_ranks(ring_run([])) == []


class TestSuperpositionDefect:
    def test_noninteracting_waves_superpose_linearly(self):
        a = DelaySpec(rank=0, step=0, duration=3 * T)
        b = DelaySpec(rank=12, step=0, duration=3 * T)
        short = 4  # not enough steps to collide
        combined = ring_run([a, b], n_steps=short)
        singles = [ring_run([a], n_steps=short), ring_run([b], n_steps=short)]
        baseline = ring_run([], n_steps=short)
        defect = superposition_defect(combined, singles, baseline=baseline)
        assert defect == pytest.approx(0.0, abs=1e-6)

    def test_baseline_removes_background_offset(self):
        a = DelaySpec(rank=0, step=0, duration=3 * T)
        b = DelaySpec(rank=12, step=0, duration=3 * T)
        combined = ring_run([a, b], n_steps=4)
        singles = [ring_run([a], n_steps=4), ring_run([b], n_steps=4)]
        baseline = ring_run([], n_steps=4)
        raw = superposition_defect(combined, singles)
        corrected = superposition_defect(combined, singles, baseline=baseline)
        # Without the baseline, the regular comm idle is double-counted in
        # the linear sum, biasing the defect negative.
        assert raw < corrected

    def test_colliding_waves_destroy_idle(self):
        a = DelaySpec(rank=0, step=0, duration=3 * T)
        b = DelaySpec(rank=12, step=0, duration=3 * T)
        combined = ring_run([a, b], n_steps=20)
        singles = [ring_run([a], n_steps=20), ring_run([b], n_steps=20)]
        defect = superposition_defect(combined, singles)
        assert defect < -10 * T  # large destruction of idle time
