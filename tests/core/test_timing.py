"""Unit tests for the RunTiming adapter."""

import numpy as np
import pytest

from repro.core.timing import RunTiming
from repro.sim import (
    DelaySpec,
    LockstepConfig,
    SimConfig,
    build_lockstep_program,
    simulate,
    simulate_lockstep,
)

T = 3e-3


def cfg():
    return LockstepConfig(
        n_ranks=8, n_steps=10, t_exec=T,
        delays=(DelaySpec(rank=3, step=0, duration=3 * T),),
    )


class TestConstructors:
    def test_from_trace_and_from_lockstep_agree(self):
        c = cfg()
        trace = simulate(build_lockstep_program(c), SimConfig())
        res = simulate_lockstep(c)
        a = RunTiming.from_trace(trace)
        b = RunTiming.from_lockstep(res)
        np.testing.assert_allclose(a.completion, b.completion, atol=1e-12)
        np.testing.assert_allclose(a.idle, b.idle, atol=1e-12)

    def test_of_dispatches_all_types(self):
        c = cfg()
        res = simulate_lockstep(c)
        timing = RunTiming.of(res)
        assert RunTiming.of(timing) is timing
        trace = simulate(build_lockstep_program(c), SimConfig())
        assert isinstance(RunTiming.of(trace), RunTiming)

    def test_of_rejects_unknown(self):
        with pytest.raises(TypeError):
            RunTiming.of(42)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes"):
            RunTiming(
                exec_end=np.zeros((2, 3)),
                completion=np.zeros((2, 4)),
                idle=np.zeros((2, 3)),
            )


class TestAggregates:
    def timing(self):
        return RunTiming.of(simulate_lockstep(cfg()))

    def test_dimensions(self):
        t = self.timing()
        assert t.n_ranks == 8 and t.n_steps == 10

    def test_total_runtime_positive_and_max(self):
        t = self.timing()
        assert t.total_runtime() == pytest.approx(float(t.completion.max()))

    def test_wait_start_below_completion(self):
        t = self.timing()
        assert (t.wait_start() <= t.completion + 1e-15).all()

    def test_idle_aggregations_consistent(self):
        t = self.timing()
        assert t.total_idle() == pytest.approx(t.idle_by_step().sum())
        assert t.total_idle() == pytest.approx(t.idle_by_rank().sum())

    def test_t_exec_from_meta(self):
        assert self.timing().t_exec == pytest.approx(T)
