"""Unit tests for the elimination analysis (Fig. 9 machinery)."""

import pytest

from repro.core.elimination import (
    EliminationPoint,
    elimination_scan,
    excess_runtime,
    runtime_spread,
)
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    simulate_lockstep,
)

T = 1.5e-3
DELAY = 4 * T


def base_cfg(**kw):
    base = dict(
        n_ranks=24, n_steps=25, t_exec=T, msg_size=8192,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                            periodic=True),
        delays=(DelaySpec(rank=1, step=0, duration=DELAY),),
    )
    base.update(kw)
    return LockstepConfig(**base)


class TestEliminationPoint:
    def test_excess_and_fraction(self):
        pt = EliminationPoint(E=0.1, runtime_with_delay=0.052,
                              runtime_without_delay=0.046)
        assert pt.excess == pytest.approx(6e-3)
        assert pt.excess_fraction(6e-3) == pytest.approx(1.0)

    def test_fraction_requires_positive_delay(self):
        pt = EliminationPoint(E=0.0, runtime_with_delay=1.0, runtime_without_delay=1.0)
        with pytest.raises(ValueError):
            pt.excess_fraction(0.0)


class TestExcessRuntime:
    def test_matches_direct_difference(self):
        with_d = simulate_lockstep(base_cfg())
        without = simulate_lockstep(base_cfg(delays=()))
        assert excess_runtime(with_d, without) == pytest.approx(DELAY, rel=0.01)


class TestEliminationScan:
    def test_zero_noise_excess_equals_delay(self):
        points = elimination_scan(base_cfg(), [0.0])
        assert points[0].excess == pytest.approx(DELAY, rel=0.01)

    def test_excess_decreases_with_noise(self):
        points = elimination_scan(base_cfg(), [0.0, 0.25])
        assert points[1].excess < points[0].excess

    def test_runtime_grows_with_noise(self):
        points = elimination_scan(base_cfg(), [0.0, 0.25])
        assert points[1].runtime_without_delay > points[0].runtime_without_delay

    def test_requires_a_delay(self):
        with pytest.raises(ValueError, match="delay"):
            elimination_scan(base_cfg(delays=()), [0.0])

    def test_custom_noise_factory(self):
        from repro.sim.noise import UniformNoise

        points = elimination_scan(
            base_cfg(), [0.1],
            noise_factory=lambda E, t: UniformNoise(0.0, 2 * E * t),
        )
        assert points[0].runtime_without_delay > 25 * T


class TestRuntimeSpread:
    def test_positive_under_noise(self):
        spread = runtime_spread(base_cfg(), E=0.2, n_runs=4)
        assert spread > 0

    def test_needs_at_least_two_runs(self):
        with pytest.raises(ValueError):
            runtime_spread(base_cfg(), E=0.2, n_runs=1)
