"""Unit tests for wall-clock leading/trailing wave-edge tracking."""

import numpy as np
import pytest

from repro.core import silent_speed
from repro.core.tracking import track_wave
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    LockstepConfig,
    UniformNetwork,
    simulate_lockstep,
)
from repro.sim.topology import CommDomain

T = 3e-3
T_COMM = UniformNetwork().total_pingpong_time(8192, CommDomain.INTER_NODE)


def run(E=0.0, delay_phases=10, n_ranks=30, n_steps=35, seed=0):
    cfg = LockstepConfig(
        n_ranks=n_ranks, n_steps=n_steps, t_exec=T, msg_size=8192,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                            periodic=True),
        delays=(DelaySpec(rank=0, step=0, duration=delay_phases * T),),
        noise=ExponentialNoise(E * T),
        seed=seed,
    )
    return simulate_lockstep(cfg)


class TestTrackWaveNoiseFree:
    def test_both_edges_move_at_eq2_speed(self):
        track = track_wave(run(), source=0, direction=+1, periodic=True)
        lead, trail = track.edge_speeds()
        v = silent_speed(T, T_COMM)
        assert lead == pytest.approx(v, rel=0.1)
        assert trail == pytest.approx(v, rel=0.1)

    def test_width_matches_delay_extent(self):
        """A 10-phase delay keeps ~10 consecutive ranks idle at once."""
        track = track_wave(run(delay_phases=10), source=0, direction=+1,
                           periodic=True)
        widths = track.widths()
        # Skip birth/death transients at the ends of the track.
        mid = widths[len(widths) // 4 : -len(widths) // 4]
        assert 8 <= np.median(mid) <= 11

    def test_leading_edge_monotone(self):
        track = track_wave(run(), source=0, direction=+1, periodic=True)
        assert (np.diff(track.leading_positions()) >= 0).all()

    def test_idle_mass_positive(self):
        track = track_wave(run(), source=0, direction=+1, periodic=True)
        assert (track.idle_masses() > 0).all()

    def test_downward_branch_tracked_separately(self):
        track = track_wave(run(), source=0, direction=-1, periodic=True)
        assert len(track) > 0
        assert (track.leading_positions() <= 15).all()


class TestTrackWaveUnderNoise:
    def test_trailing_edge_outruns_leading_edge(self):
        """The paper's erosion mechanism: noise eats the trailing edge, so
        it moves faster than the noise-insensitive leading edge."""
        deltas = []
        for seed in range(6):
            track = track_wave(
                run(E=0.15, delay_phases=10, seed=seed), source=0,
                direction=+1, periodic=True,
            )
            if len(track) < 3:
                continue
            lead, trail = track.edge_speeds()
            deltas.append(trail - lead)
        assert deltas, "tracks too short to fit"
        assert np.median(deltas) > 0

    def test_width_shrinks_under_noise(self):
        noisy_widths, quiet_widths = [], []
        for seed in range(4):
            tn = track_wave(run(E=0.15, seed=seed), source=0, direction=+1,
                            periodic=True)
            tq = track_wave(run(E=0.0, seed=seed), source=0, direction=+1,
                            periodic=True)
            if len(tn) >= 3 and len(tq) >= 3:
                noisy_widths.append(tn.widths()[-1])
                quiet_widths.append(tq.widths()[len(tn) - 1] if len(tn) <= len(tq)
                                    else tq.widths()[-1])
        assert noisy_widths
        assert np.median(noisy_widths) < np.median(quiet_widths) + 1


class TestTrackWaveValidation:
    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            track_wave(run(), source=0, direction=0)

    def test_invalid_source(self):
        with pytest.raises(IndexError):
            track_wave(run(), source=99)

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            track_wave(run(), source=0, n_samples=1)

    def test_quiet_run_has_empty_track(self):
        cfg = LockstepConfig(n_ranks=8, n_steps=6, t_exec=T)
        track = track_wave(simulate_lockstep(cfg), source=4)
        assert len(track) == 0

    def test_edge_speeds_need_three_snapshots(self):
        cfg = LockstepConfig(n_ranks=8, n_steps=6, t_exec=T)
        track = track_wave(simulate_lockstep(cfg), source=4)
        with pytest.raises(ValueError):
            track.edge_speeds()
