"""Unit tests for the Eq. 2 speed model and its empirical measurement."""

import pytest

from repro.core.speed import measure_speed, sigma_factor, silent_speed, silent_speed_for
from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    Protocol,
    UniformNetwork,
    simulate_lockstep,
)
from repro.sim.topology import CommDomain

T = 3e-3


class TestSigmaFactor:
    def test_two_only_for_bidirectional_rendezvous(self):
        assert sigma_factor(bidirectional=True, rendezvous=True) == 2
        assert sigma_factor(bidirectional=True, rendezvous=False) == 1
        assert sigma_factor(bidirectional=False, rendezvous=True) == 1
        assert sigma_factor(bidirectional=False, rendezvous=False) == 1


class TestSilentSpeed:
    def test_basic_formula(self):
        assert silent_speed(3e-3, 1e-3) == pytest.approx(250.0)

    def test_d_scales_linearly(self):
        v1 = silent_speed(3e-3, 0.0, d=1)
        v3 = silent_speed(3e-3, 0.0, d=3)
        assert v3 == pytest.approx(3 * v1)

    def test_sigma_doubles(self):
        v = silent_speed(3e-3, 1e-3)
        v2 = silent_speed(3e-3, 1e-3, bidirectional=True, rendezvous=True)
        assert v2 == pytest.approx(2 * v)

    def test_comm_time_slows_wave(self):
        assert silent_speed(3e-3, 2e-3) < silent_speed(3e-3, 0.0)

    @pytest.mark.parametrize("kw", [
        dict(t_exec=0.0, t_comm=1e-3),
        dict(t_exec=1e-3, t_comm=-1.0),
        dict(t_exec=1e-3, t_comm=0.0, d=0),
    ])
    def test_invalid_parameters(self, kw):
        with pytest.raises(ValueError):
            silent_speed(**kw)

    def test_silent_speed_for_pattern(self):
        p = CommPattern(direction=Direction.BIDIRECTIONAL, distance=2)
        v = silent_speed_for(p, Protocol.RENDEZVOUS, 3e-3, 1e-3)
        assert v == pytest.approx(silent_speed(3e-3, 1e-3, d=2, bidirectional=True,
                                               rendezvous=True))

    def test_silent_speed_for_rejects_auto(self):
        with pytest.raises(ValueError, match="resolve"):
            silent_speed_for(CommPattern(), Protocol.AUTO, 3e-3, 1e-3)


class TestMeasureSpeed:
    def run(self, direction=Direction.UNIDIRECTIONAL, msg=8192, d=1, n_ranks=16,
            protocol=Protocol.AUTO, **kw):
        cfg = LockstepConfig(
            n_ranks=n_ranks, n_steps=18, t_exec=T, msg_size=msg,
            pattern=CommPattern(direction=direction, distance=d),
            delays=(DelaySpec(rank=n_ranks // 2, step=0, duration=5 * T),),
            **kw,
        )
        return simulate_lockstep(cfg, protocol=protocol)

    def model(self, msg, d=1, bidirectional=False, rendezvous=False):
        t_comm = UniformNetwork().total_pingpong_time(msg, CommDomain.INTER_NODE)
        return silent_speed(T, t_comm, d=d, bidirectional=bidirectional,
                            rendezvous=rendezvous)

    def test_matches_model_noise_free(self):
        run = self.run()
        m = measure_speed(run, source=8)
        assert m.speed == pytest.approx(self.model(8192), rel=0.01)

    def test_residual_small_noise_free(self):
        m = measure_speed(self.run(), source=8)
        assert m.residual < 1e-4

    def test_direction_recorded(self):
        run = self.run(direction=Direction.BIDIRECTIONAL)
        down = measure_speed(run, source=8, direction=-1)
        assert down.direction == -1
        assert down.speed == pytest.approx(self.model(8192), rel=0.02)

    def test_sigma_two_measured(self):
        run = self.run(direction=Direction.BIDIRECTIONAL, protocol=Protocol.RENDEZVOUS)
        m = measure_speed(run, source=8)
        assert m.speed == pytest.approx(
            self.model(8192, bidirectional=True, rendezvous=True), rel=0.02
        )

    def test_d2_grouping_unbiased(self):
        run = self.run(d=2, n_ranks=20)
        m = measure_speed(run, source=10)
        assert m.speed == pytest.approx(self.model(8192, d=2), rel=0.01)

    def test_raises_when_no_wave(self):
        cfg = LockstepConfig(n_ranks=8, n_steps=8, t_exec=T)
        run = simulate_lockstep(cfg)
        with pytest.raises(ValueError, match="reached only"):
            measure_speed(run, source=4)

    def test_min_hops_enforced(self):
        run = self.run()
        with pytest.raises(ValueError):
            measure_speed(run, source=8, max_hops=1, min_hops=2)
