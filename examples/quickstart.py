#!/usr/bin/env python
"""Quickstart: inject a delay, watch the idle wave, check Eq. 2.

This is the paper's Fig. 4 scenario in ~30 lines of public API:
a bulk-synchronous MPI program (3 ms compute phases, 8 KiB eager
messages, unidirectional ring of 18 ranks), a one-off delay of 4.5
execution phases injected at rank 5, and the resulting idle wave
rippling up the chain at the analytic speed sigma*d/(T_exec+T_comm).

Run:  python examples/quickstart.py
"""

import repro

T_EXEC = 3e-3  # 3 ms execution phases (the paper's standard)

cfg = repro.LockstepConfig(
    n_ranks=18,
    n_steps=20,
    t_exec=T_EXEC,
    msg_size=8192,
    pattern=repro.CommPattern(
        direction=repro.Direction.UNIDIRECTIONAL, distance=1, periodic=False
    ),
    delays=(repro.DelaySpec(rank=5, step=0, duration=4.5 * T_EXEC),),
)

# Simulate with the exact DAG engine (simulate_lockstep is the fast path).
trace = repro.simulate(repro.build_lockstep_program(cfg), repro.SimConfig())

# --- visualize ---------------------------------------------------------
from repro.viz import render_timeline

print("Rank/time diagram ('.'=exec, 'D'=injected delay, '#'=idle):\n")
print(render_timeline(trace, width=90))

# --- measure the wave --------------------------------------------------
measurement = repro.measure_speed(trace, source=5)
t_comm = repro.UniformNetwork().total_pingpong_time(cfg.msg_size, repro.CommDomain.INTER_NODE)
v_model = repro.silent_speed(T_EXEC, t_comm, d=1)

print(f"\nmeasured wave speed : {measurement.speed:8.1f} ranks/s")
print(f"Eq. 2 prediction    : {v_model:8.1f} ranks/s")
print(f"relative error      : {abs(measurement.speed - v_model) / v_model:8.2%}")

front = repro.wave_front(trace, source=5)
print(f"\nwave reached {front.reach} ranks; "
      f"amplitude stayed at {front.amplitudes.mean() * 1e3:.1f} ms "
      "(no decay on a noise-free system)")
