#!/usr/bin/env python
"""Noise damping: how fine-grained noise kills an idle wave.

Reproduces the physics of the paper's Secs. V-A/V-B (Figs. 8 and 9) as a
single narrative script:

1. inject a long delay into a quiet ring -> the wave survives forever and
   the full delay shows up in the runtime;
2. add exponential application noise (Eq. 3) of increasing strength E ->
   the wave decays faster and faster (decay rate beta);
3. past a threshold, the extra runtime caused by the delay is no longer
   observable: the noise has absorbed it.

Run:  python examples/noise_damping.py
"""

import repro

T_EXEC = 3e-3
DELAY = 30e-3  # 10 execution phases
N_RANKS, N_STEPS = 40, 45

base = repro.LockstepConfig(
    n_ranks=N_RANKS,
    n_steps=N_STEPS,
    t_exec=T_EXEC,
    msg_size=8192,
    pattern=repro.CommPattern(
        direction=repro.Direction.BIDIRECTIONAL, distance=1, periodic=True
    ),
    delays=(repro.DelaySpec(rank=0, step=0, duration=DELAY),),
)

print(f"{'E [%]':>6} | {'decay rate [µs/rank]':>21} | {'survival [ranks]':>17} | "
      f"{'excess runtime [ms]':>20}")
print("-" * 75)

for E in (0.0, 0.02, 0.05, 0.10, 0.20, 0.25):
    noise = repro.ExponentialNoise(E * T_EXEC)
    cfg = repro.LockstepConfig(
        n_ranks=base.n_ranks, n_steps=base.n_steps, t_exec=base.t_exec,
        msg_size=base.msg_size, pattern=base.pattern, delays=base.delays,
        noise=noise, seed=7,
    )
    cfg_clean = repro.LockstepConfig(
        n_ranks=base.n_ranks, n_steps=base.n_steps, t_exec=base.t_exec,
        msg_size=base.msg_size, pattern=base.pattern, delays=(),
        noise=noise, seed=7,
    )
    run = repro.simulate_lockstep(cfg)
    run_clean = repro.simulate_lockstep(cfg_clean)

    decay = repro.measure_decay(run, source=0, periodic=True)
    excess = repro.excess_runtime(run, run_clean)
    print(f"{E * 100:6.0f} | {decay.beta * 1e6:21.1f} | {decay.survival_hops:17d} | "
          f"{excess * 1e3:20.2f}")

print(f"\ninjected delay: {DELAY * 1e3:.0f} ms -- watch the excess runtime column "
      "shrink as E grows:")
print("the forward edge of the wave is insensitive to noise, but its trailing")
print("edge erodes, and eventually the wave is absorbed entirely (Fig. 9).")
