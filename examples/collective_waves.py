#!/usr/bin/env python
"""Collectives change everything: exponential delay spreading.

The paper's outlook (Sec. VII) asks how idle waves behave under collective
communication.  This example contrasts a point-to-point ring against a
dissemination barrier: the same 12 ms delay ripples rank-by-rank through
the ring, but couples the *entire* communicator within a single step of
the barrier program.

Run:  python examples/collective_waves.py
"""

from repro.sim import (
    CommPattern,
    DelaySpec,
    Direction,
    LockstepConfig,
    SimConfig,
    UniformNetwork,
    simulate,
    build_lockstep_program,
)
from repro.sim.collectives import Collective, CollectiveConfig, build_collective_program
from repro.viz import render_idle_heatmap

T_EXEC = 3e-3
N_RANKS, N_STEPS = 16, 8
DELAY = DelaySpec(rank=5, step=1, duration=4 * T_EXEC)
NET = UniformNetwork()

# --- point-to-point ring ------------------------------------------------
ring_cfg = LockstepConfig(
    n_ranks=N_RANKS, n_steps=N_STEPS, t_exec=T_EXEC, msg_size=8192,
    pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1, periodic=True),
    delays=(DELAY,),
)
ring = simulate(build_lockstep_program(ring_cfg), SimConfig(network=NET))

print("Point-to-point ring: the idle wave ripples outward (1 rank/phase/side)\n")
print(render_idle_heatmap(ring))

# --- dissemination barrier ----------------------------------------------
barrier_cfg = CollectiveConfig(
    n_ranks=N_RANKS, n_steps=N_STEPS, collective=Collective.BARRIER,
    t_exec=T_EXEC, msg_size=8192, delays=(DELAY,),
)
barrier = simulate(build_collective_program(barrier_cfg), SimConfig(network=NET))

print("\nDissemination barrier: everyone is idled within the injection step\n")
print(render_idle_heatmap(barrier))

idle_ring = ring.idle_matrix()
idle_barrier = barrier.idle_matrix()
print(f"\nranks idled > half the delay at the injection step:")
print(f"  ring    : {(idle_ring[:, 1] > 0.5 * DELAY.duration).sum()} of {N_RANKS}")
print(f"  barrier : {(idle_barrier[:, 1] > 0.5 * DELAY.duration).sum()} of {N_RANKS}")
print("\nLogarithmic collective schedules spread a delay exponentially —")
print("Eq. 2's linear front does not apply (paper Sec. VII outlook).")
