#!/usr/bin/env python
"""Wave interference: idle waves are nonlinear and cancel on collision.

Reproduces the paper's Fig. 6 study: several delays injected at once on a
periodic 100-rank chain (one per socket).  Counter-propagating idle waves
meet and annihilate; the 'superposition defect' quantifies how much idle
time the collisions destroyed compared with a linear superposition of
single-wave runs.

Run:  python examples/wave_interference.py
"""

import numpy as np

import repro
from repro.viz import render_idle_heatmap

T_EXEC = 3e-3
N_RANKS, N_STEPS = 100, 20

mapping = repro.sim.topology.single_switch_mapping(N_RANKS, ppn=20)
pattern = repro.CommPattern(
    direction=repro.Direction.BIDIRECTIONAL, distance=1, periodic=True
)

# One 15 ms delay at the sixth process of each of the ten sockets.
delays = repro.delays_at_local_rank(
    mapping, local_rank=5, durations=[5 * T_EXEC] * 10, step=0
)

cfg = repro.LockstepConfig(
    n_ranks=N_RANKS, n_steps=N_STEPS, t_exec=T_EXEC, msg_size=16384,
    pattern=pattern, delays=tuple(delays),
)
combined = repro.simulate_lockstep(cfg)

print("Idle map of ten colliding wave pairs ('#' = wave idle):\n")
print(render_idle_heatmap(combined))

# --- the nonlinearity check -------------------------------------------
singles = []
for spec in delays:
    single_cfg = repro.LockstepConfig(
        n_ranks=N_RANKS, n_steps=N_STEPS, t_exec=T_EXEC, msg_size=16384,
        pattern=pattern, delays=(spec,),
    )
    singles.append(repro.simulate_lockstep(single_cfg))

defect = repro.superposition_defect(combined, singles)
linear_sum = sum(float(np.sum(s.idle_matrix())) for s in singles)

resync = repro.resync_step(combined)
print(f"\nresynchronized after step : {resync}")
print(f"linear-superposition idle : {linear_sum * 1e3:9.1f} rank-ms")
print(f"actual combined idle      : {(linear_sum + defect) * 1e3:9.1f} rank-ms")
print(f"superposition defect      : {defect * 1e3:9.1f} rank-ms "
      f"({defect / linear_sum:+.0%})")
print("\nA linear wave equation would give a defect of ~0; the large negative")
print("defect proves idle waves interact nonlinearly (paper, Sec. IV-B).")
