#!/usr/bin/env python
"""LBM: a real D3Q19 lattice-Boltzmann solve plus the Fig. 2 timeline study.

Part 1 runs the actual D3Q19-SRT kernel on a small periodic box and checks
the physics (mass conservation, momentum decay of a perturbation).

Part 2 reproduces the paper's Fig. 2 on the saturation simulator: the
production-scale LBM (302**3 cells, 100 ranks) develops a global
desynchronization pattern whose wavelength approaches the system size, and
finishes *earlier* than the nonoverlapping model predicts.

Run:  python examples/lbm_simulation.py
"""

import numpy as np

from repro.analysis import dominant_wavelength, skew_profile
from repro.cluster import EMMY
from repro.experiments.fig2_lbm_timeline import lbm_model_time_per_step
from repro.sim import simulate_saturation
from repro.workloads import LbmKernel, LbmWorkload, lbm_saturation_config

# --- part 1: the actual kernel ------------------------------------------
print("Part 1: D3Q19-SRT kernel on a 16^3 periodic box")
kernel = LbmKernel((16, 16, 16), tau=0.8)
kernel.perturb(amplitude=0.02, seed=3)
mass0 = kernel.total_mass()
u0 = float(np.abs(kernel.velocity()).max())
kernel.step(20)
mass1 = kernel.total_mass()
u1 = float(np.abs(kernel.velocity()).max())
print(f"  mass conservation : drift {abs(mass1 - mass0) / mass0:.2e} over 20 steps")
print(f"  viscous damping   : max|u| {u0:.3e} -> {u1:.3e}")
assert abs(mass1 - mass0) / mass0 < 1e-12

# --- part 2: the Fig. 2 timeline study -----------------------------------
print("\nPart 2: production-scale proxy (302^3 cells, 100 ranks) on the simulator")
workload = LbmWorkload()
machine = EMMY.with_nodes(8)
N_STEPS = 600

cfg = lbm_saturation_config(machine, workload=workload, n_steps=N_STEPS, seed=0)
res = simulate_saturation(cfg)
t_model = lbm_model_time_per_step(workload, machine)

print(f"  working set       : {workload.working_set_bytes / 1e9:.1f} GB "
      "(paper: > 8 GB)")
print(f"\n  {'step':>5} | {'spread [ms]':>11} | {'wavelength [ranks]':>18}")
for step in (1, 20, 60, 100, 300, N_STEPS - 1):
    profile = skew_profile(res, step)
    spread = profile.max() - profile.min()
    wl = dominant_wavelength(res, step)
    print(f"  {step:>5} | {spread * 1e3:11.2f} | {wl:18.1f}")

runtime = res.completion[:, -1].max()
model_runtime = N_STEPS * t_model
print(f"\n  runtime {runtime:.2f} s vs model {model_runtime:.2f} s "
      f"({(model_runtime - runtime) / model_runtime:+.1%} faster than model)")
print("  A long-wavelength desync pattern emerges and the code beats the")
print("  nonoverlapping model — the paper's Fig. 2 observation.")
