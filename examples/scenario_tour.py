#!/usr/bin/env python
"""Scenario tour: the declarative pipeline in three acts.

1. run a bundled scenario by name,
2. define a brand-new experiment as *data* (no simulator code touched),
3. sweep an axis of it through the parallel campaign runtime.

Run:  python examples/scenario_tour.py
"""

from repro.scenarios import (
    ScenarioSpec,
    load_bundled_scenario,
    run_scenario,
    run_scenario_sweep,
)

# --- 1. a bundled scenario ---------------------------------------------
spec = load_bundled_scenario("fig4_single_delay")
run = run_scenario(spec)
print(run.render())
ws = run.data["wave_speed"]
print(f"\nEq. 2 check: measured {ws['measured_speed']:.1f} ranks/s "
      f"vs predicted {ws['predicted_speed']:.1f} ranks/s\n")

# --- 2. a new experiment as plain data ---------------------------------
# Meggie, SMT off, natural (bimodal) noise, rendezvous ring, one delay:
# nothing like this exists in the EXPERIMENTS table, and no code is needed.
custom = ScenarioSpec.from_dict({
    "name": "meggie_rendezvous_delay",
    "description": "one 6-phase delay under Meggie's driver-spike noise",
    "n_ranks": 24,
    "n_steps": 30,
    "machine": {"preset": "meggie", "smt": "off"},
    "workload": {"kind": "synthetic", "t_exec": 3e-3},
    "comm": {"direction": "bidirectional", "periodic": True,
             "protocol": "rendezvous"},
    "noise": {"model": "natural"},
    "delays": [{"rank": 12, "step": 2, "phases": 6.0}],
    "outputs": ["runtime", "desync"],
})
print(run_scenario(custom, seed=1).render())

# --- 3. sweep an axis through the campaign runtime ---------------------
sweep = ScenarioSpec.from_dict({
    "name": "campaign_rate_scan",
    "n_ranks": 20,
    "n_steps": 24,
    "machine": {"preset": "simulated"},
    "campaign": {"rate": 0.01, "phases_low": 2.0, "phases_high": 6.0},
    "outputs": ["runtime"],
    "sweep": {
        "replicates": 2,
        "axes": [{"path": "campaign.rate", "values": [0.005, 0.02, 0.08]}],
    },
})
result = run_scenario_sweep(sweep, jobs=2)
print()
print(result.render())
