#!/usr/bin/env python
"""STREAM triad desynchronization: when noise makes MPI code *faster*.

Reproduces the paper's Fig. 1 insight on the saturation simulator: a
memory-bound MPI STREAM triad in strong scaling, where the naive
nonoverlapping model (Eq. 1) underestimates the measured execution
performance.  Desynchronized ranks stream while their neighbors wait in
MPI, which spreads the load on the shared memory interface and overlaps
communication with computation automatically.

Run:  python examples/stream_desync.py          (takes ~20 s)
"""

import numpy as np

from repro.cluster import EMMY
from repro.models import triad_strong_scaling_model
from repro.sim import simulate_saturation
from repro.workloads import TriadWorkload, triad_kernel, triad_saturation_config

workload = TriadWorkload()

# --- node-level fidelity check: the actual kernel ----------------------
n_local = 2_000_000
a, b, c = (np.zeros(n_local), np.random.rand(n_local), np.random.rand(n_local))
triad_kernel(a, b, c, s=1.5)
assert np.allclose(a, b + 1.5 * c)
print(f"triad kernel verified on {n_local:,} elements "
      f"({3 * 8 * n_local / 1e6:.0f} MB working set)\n")

# --- strong scaling scan (the Fig. 1a shape) ----------------------------
print(f"{'sockets':>7} | {'measured total':>14} | {'measured exec':>13} | "
      f"{'model total':>11} | {'model exec':>10}   [GF/s]")
print("-" * 72)

N_STEPS = 400  # the desync instability needs a few hundred iterations
for n_sockets in (1, 2, 4, 6, 8):
    cfg = triad_saturation_config(
        EMMY.with_nodes(8), n_sockets=n_sockets, n_steps=N_STEPS, seed=1
    )
    res = simulate_saturation(cfg)
    warm = N_STEPS // 3
    t_iter = (res.completion[:, -1].max() - res.completion[:, warm - 1].max()) / (
        N_STEPS - warm
    )
    t_exec = (res.exec_end - res.exec_start)[:, warm:].mean()

    t_model = triad_strong_scaling_model(n_sockets)
    t_model_exec = workload.v_mem / (n_sockets * EMMY.b_socket)

    print(f"{n_sockets:7d} | {workload.performance(t_iter) / 1e9:14.2f} | "
          f"{workload.performance(t_exec) / 1e9:13.2f} | "
          f"{workload.performance(t_model) / 1e9:11.2f} | "
          f"{workload.performance(t_model_exec) / 1e9:10.2f}")

print("\nAt multi-socket scale the measured *execution* performance beats the")
print("linear-scaling model: noise-induced desynchronization lets ranks")
print("stream while neighbors communicate (automatic overlap, paper Fig. 1a).")
