"""Tour of the declarative report pipeline.

Walks the full loop the subsystem closes — "run a sweep" to
"publishable numbers":

1. load + compile a bundled report spec (scenario sweep, metric kernels,
   grouping, artifacts);
2. run it cold against a result store (the sweep dispatches through the
   campaign runtime, batched per seed block);
3. run it again warm: every draw loads by content hash, zero engine
   invocations;
4. run a *different* report over the same store — new metrics, same
   cached runs;
5. write the declared artifacts (CSV / NPZ / ascii under ``viz/``).

Run with::

    PYTHONPATH=src python examples/report_tour.py
"""

import tempfile
import time
from pathlib import Path

from repro.reports import (
    compile_report,
    load_bundled_report,
    run_report,
    write_artifacts,
)
from repro.reports.spec import ReportSpec
from repro.runtime import ResultStore


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-report-tour-") as tmp:
        store = ResultStore(Path(tmp) / "store")
        out_dir = Path(tmp) / "out"

        # 1. A bundled report: runtime/idle response to the Poisson
        #    injection rate, grouped over the campaign_rate_sweep grid.
        report = compile_report(load_bundled_report("campaign_rate_response"))
        print(f"report '{report.spec.name}': {report.n_tasks} runs over "
              f"{[t.scenario.name for t in report.targets]}, "
              f"group_by={list(report.group_by)}")

        # 2. Cold: every grid point simulates (batched replicate blocks).
        t0 = time.perf_counter()
        cold = run_report(report, store=store)
        t_cold = time.perf_counter() - t0
        print(f"\ncold run: {cold.n_executed} executed in {t_cold * 1e3:.0f} ms")
        print(cold.render())

        # 3. Warm: the same report touches the engine zero times.
        t0 = time.perf_counter()
        warm = run_report(report, store=store)
        t_warm = time.perf_counter() - t0
        print(f"\nwarm run: {warm.n_loaded} loaded by spec key, "
              f"{warm.n_executed} executed, {t_warm * 1e3:.0f} ms")
        assert warm.n_executed == 0

        # 4. A different report over the *same* cached sweep: the store
        #    records dense timing matrices, so new metrics are free.
        variant = compile_report(ReportSpec.from_dict({
            "name": "rate_desync_variant",
            "scenario": "campaign_rate_sweep",
            "group_by": ["campaign.rate"],
            "aggregate": ["mean", "p95"],
            "metrics": [{"name": "desync"}, {"name": "idle_histogram"}],
        }))
        result = run_report(variant, store=store)
        print(f"\nvariant report reused the cache: {result.n_executed} "
              "executed")
        print(result.render())
        assert result.n_executed == 0

        # 5. Artifacts land where the spec says.
        paths = write_artifacts(cold, out_dir)
        print("\nartifacts:")
        for path in paths:
            print(f"  {path.relative_to(tmp)}  ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
