"""Golden-trace corpus: canonical engine timestamps, checked into the repo.

The batched hierarchy-aware lockstep engine and the authoritative DAG
engine are continuously cross-checked by property tests, but property
tests only guard *agreement* — if both engines drifted together (a shared
modeling change, an accidental semantics edit), they would still agree.
The golden corpus pins the absolute numbers: a small set of canonical
runs (the Fig. 2 / Fig. 4 timelines, a hierarchical placement, a bimodal
delay campaign) whose per-rank timestamp matrices are stored as JSON
fixtures under ``tests/golden/`` and asserted on every test run.

Each fixture is self-contained: it embeds the scenario document, the run
seed, and the engine that produced it, so the regression test replays
exactly what is written — there is no drift between corpus definitions
and fixtures (a round-trip test regenerates the corpus and compares).

Regenerating after an *intentional* semantics change::

    PYTHONPATH=src python -m repro golden --regen   # rewrite tests/golden/
    PYTHONPATH=src python -m repro golden --check   # verify fixtures

See CONTRIBUTING.md for the workflow.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "GOLDEN_FORMAT_VERSION",
    "GOLDEN_RTOL",
    "GoldenCase",
    "compute_golden_record",
    "golden_cases",
    "golden_main",
    "verify_golden_record",
    "write_golden_corpus",
]

GOLDEN_FORMAT_VERSION = 1

#: Engine-vs-fixture tolerance.  The matrices are pure float64 sums/maxes,
#: deterministic in-process; the tolerance absorbs cross-platform and
#: cross-numpy-version last-ulp differences in the noise streams.
GOLDEN_RTOL = 1e-9

#: Default fixture directory, relative to the repository root (where
#: ``python -m repro golden`` is expected to run).
DEFAULT_GOLDEN_DIR = Path("tests") / "golden"


@dataclass(frozen=True)
class GoldenCase:
    """One canonical run: a scenario document plus seed and engine choice."""

    name: str
    base_scenario: str  # bundled scenario the document derives from
    overrides: "tuple[tuple[str, object], ...]" = ()
    seed: "int | None" = None  # None: the scenario's own seed
    engine: str = "auto"
    note: str = ""

    def document(self) -> dict:
        """The concrete scenario document (overrides applied, no sweep)."""
        from repro.scenarios.registry import load_bundled_scenario
        from repro.scenarios.spec import apply_overrides

        doc = load_bundled_scenario(self.base_scenario).without_sweep().to_dict()
        if self.overrides:
            doc = apply_overrides(doc, dict(self.overrides))
        return doc


def golden_cases() -> "tuple[GoldenCase, ...]":
    """The corpus: small, fast, and covering every engine regime.

    - both engines on the same scenario (fig4: lockstep *and* dag),
    - the hierarchical (``machine.ppn``) lockstep path,
    - an application workload with natural noise (fig2 LBM, shrunk to
      keep the fixture small),
    - a stochastic delay campaign under bimodal noise and rendezvous
      coupling.
    """
    return (
        GoldenCase(
            name="fig4_single_delay",
            base_scenario="fig4_single_delay",
            engine="lockstep",
            note="Fig. 4 baseline timeline: one 4.5-phase delay, eager chain",
        ),
        GoldenCase(
            name="fig4_single_delay_dag",
            base_scenario="fig4_single_delay",
            engine="dag",
            note="same run on the authoritative DAG engine",
        ),
        GoldenCase(
            name="fig2_lbm_timeline_small",
            base_scenario="emmy_lbm_timeline",
            overrides=(("n_ranks", 16), ("n_steps", 12)),
            engine="auto",
            note="Fig. 2 LBM halo-exchange timeline (shrunk), natural noise",
        ),
        GoldenCase(
            name="emmy_mapped_hierarchical",
            base_scenario="emmy_mapped_dag",
            engine="auto",
            note="two-tier (ppn=2) placement on the hierarchy-aware "
                 "lockstep path",
        ),
        GoldenCase(
            name="meggie_bimodal_campaign_small",
            base_scenario="meggie_bimodal_rendezvous_campaign",
            overrides=(("n_ranks", 16), ("n_steps", 20)),
            engine="auto",
            note="bimodal noise + Poisson delay campaign + rendezvous "
                 "sigma=2 coupling (shrunk)",
        ),
    )


def compute_golden_record(case: GoldenCase) -> dict:
    """Run one golden case and return its JSON-able fixture record."""
    from repro.scenarios.runner import run_scenario
    from repro.scenarios.spec import ScenarioSpec

    doc = case.document()
    run = run_scenario(ScenarioSpec.from_dict(doc), seed=case.seed,
                       engine=case.engine)
    return {
        "version": GOLDEN_FORMAT_VERSION,
        "name": case.name,
        "note": case.note,
        "scenario": doc,
        "seed": run.seed,
        "requested_engine": case.engine,
        "engine": run.compiled.engine,
        "rtol": GOLDEN_RTOL,
        "n_ranks": run.timing.n_ranks,
        "n_steps": run.timing.n_steps,
        "completion": run.timing.completion.tolist(),
        "exec_end": run.timing.exec_end.tolist(),
    }


def verify_golden_record(record: dict) -> None:
    """Replay one fixture record and assert the engine still reproduces it.

    Raises :class:`AssertionError` on any timestamp drift beyond the
    fixture's recorded tolerance.
    """
    from repro.scenarios.runner import run_scenario
    from repro.scenarios.spec import ScenarioSpec

    run = run_scenario(
        ScenarioSpec.from_dict(record["scenario"]),
        seed=record["seed"],
        engine=record["requested_engine"],
    )
    assert run.compiled.engine == record["engine"], (
        f"golden {record['name']}: dispatched to {run.compiled.engine!r}, "
        f"fixture was recorded on {record['engine']!r}"
    )
    rtol = float(record.get("rtol", GOLDEN_RTOL))
    np.testing.assert_allclose(
        run.timing.completion, np.asarray(record["completion"]),
        rtol=rtol, atol=0.0,
        err_msg=f"golden {record['name']}: completion matrix drifted",
    )
    np.testing.assert_allclose(
        run.timing.exec_end, np.asarray(record["exec_end"]),
        rtol=rtol, atol=0.0,
        err_msg=f"golden {record['name']}: exec_end matrix drifted",
    )


def write_golden_corpus(directory: "str | Path") -> "list[Path]":
    """(Re)generate every fixture under ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for case in golden_cases():
        record = compute_golden_record(case)
        path = directory / f"{case.name}.json"
        path.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def _check(directory: Path) -> int:
    files = sorted(directory.glob("*.json"))
    if not files:
        print(f"no golden fixtures under {directory} — run with --regen first",
              file=sys.stderr)
        return 2
    failures = 0
    for path in files:
        record = json.loads(path.read_text())
        try:
            verify_golden_record(record)
        except AssertionError as exc:
            failures += 1
            print(f"DRIFT {path.name}: {exc}")
        else:
            print(f"ok    {path.name} ({record['engine']}, "
                  f"{record['n_ranks']}x{record['n_steps']})")
    if failures:
        print(f"[{failures}/{len(files)} golden fixture(s) drifted; if the "
              "change is intentional, regenerate with "
              "'python -m repro golden --regen']")
        return 1
    print(f"[{len(files)} golden fixture(s) verified]")
    return 0


def golden_main(argv: "list[str] | None" = None) -> int:
    """``python -m repro golden [--check | --regen] [--dir DIR]``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment golden",
        description="Verify or regenerate the golden-trace corpus "
                    "(tests/golden/).",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="replay every fixture and report drift (default)")
    mode.add_argument("--regen", action="store_true",
                      help="rewrite the fixtures from the current engines")
    parser.add_argument("--dir", default=str(DEFAULT_GOLDEN_DIR), metavar="DIR",
                        help="fixture directory (default: %(default)s)")
    args = parser.parse_args(argv)
    directory = Path(args.dir)
    if args.regen:
        paths = write_golden_corpus(directory)
        for path in paths:
            print(f"wrote {path}")
        print(f"[{len(paths)} golden fixture(s) regenerated]")
        return 0
    return _check(directory)


if __name__ == "__main__":
    sys.exit(golden_main())
