"""Report execution: compiled report → cached/dispatched runs → table.

:func:`run_report` drives the full pipeline:

1. each target's timing campaign is resolved against the result store
   (:mod:`repro.reports.query`) — fully cached sweeps never touch the
   engine and **stream**: draws are read lazily one grid point at a
   time (zero-copy mmap views for packed records), so a huge sweep is
   never materialized whole; misses dispatch through the campaign
   runtime with batching;
2. each grid point's draws are stacked into one ``(B, P, S)``
   :class:`~repro.reports.timing.BatchedTiming` and every metric kernel
   runs once per point (vectorized over draws — no per-draw loop);
3. per-draw metric arrays are pooled by the report's ``group_by`` paths
   and reduced with the requested statistics into the final table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.obs import events
from repro.reports.compiler import SCENARIO_COLUMN, CompiledReport
from repro.reports.errors import ReportError
from repro.reports.kernels import MetricContext
from repro.reports.tasks import ReportTaskBatcher
from repro.reports.query import stream_campaign
from repro.reports.timing import BatchedTiming
from repro.viz.tables import format_table

__all__ = ["ReportResult", "ReportRow", "aggregate_stat", "run_report"]


def aggregate_stat(samples: np.ndarray, stat: str) -> float:
    """Reduce one group's per-draw samples with a named statistic.

    Draws where a kernel could not produce a value (``NaN``) are
    excluded; a group with no finite draws reduces to ``NaN``.
    ``std`` uses ``ddof=1`` (0.0 for a single sample), matching
    :class:`repro.analysis.statistics.RunStatistics`.
    """
    arr = np.asarray(samples, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return float("nan")
    if stat == "mean":
        return float(arr.mean())
    if stat == "std":
        return float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    if stat == "median":
        return float(np.median(arr))
    if stat == "min":
        return float(arr.min())
    if stat == "max":
        return float(arr.max())
    if stat.startswith("p"):
        return float(np.percentile(arr, float(stat[1:])))
    raise ValueError(f"unknown statistic {stat!r}")  # pragma: no cover


@dataclass(frozen=True)
class ReportRow:
    """One group of the report table.

    ``draws`` holds the raw per-draw samples per metric column (the
    material the NPZ artifact and any downstream analysis consume);
    ``values`` the aggregated statistics per value column.
    """

    group: dict
    n_draws: int
    values: dict
    draws: dict


@dataclass(frozen=True)
class ReportResult:
    """A finished report: the table plus its execution provenance."""

    report: CompiledReport
    rows: "tuple[ReportRow, ...]"
    group_columns: "tuple[str, ...]"
    value_columns: "tuple[str, ...]"
    n_tasks: int
    n_loaded: int
    n_executed: int

    @property
    def name(self) -> str:
        return self.report.spec.name

    def render(self) -> str:
        """Printable report table (the ``ascii`` artifact's content)."""
        title = (
            f"=== report {self.name}: {self.n_tasks} runs, "
            f"{self.n_loaded} from store, {self.n_executed} executed ==="
        )
        header = [*self.group_columns, "draws", *self.value_columns]
        rows = []
        for row in self.rows:
            cells: list = [row.group.get(col, "") for col in self.group_columns]
            cells.append(row.n_draws)
            cells.extend(row.values.get(col, float("nan"))
                         for col in self.value_columns)
            rows.append(cells)
        parts = [title]
        if self.report.spec.description:
            parts.append(self.report.spec.description)
        parts.append(format_table(header, rows, float_fmt="{:.6g}"))
        return "\n".join(parts)


def _point_meta(compiled_point) -> dict:
    """Batch metadata the kernels read (mirrors the engines' run meta)."""
    return {
        "t_exec": compiled_point.t_exec,
        "msg_size": compiled_point.cfg.msg_size,
        "pattern": compiled_point.cfg.pattern,
        "protocol": compiled_point.resolved_protocol.value,
    }


def run_report(
    report: CompiledReport,
    store=None,
    jobs: int = 1,
    batch: bool = True,
    retry=None,
    stall_action: str = "warn",
) -> ReportResult:
    """Execute a compiled report.

    Parameters
    ----------
    report:
        The compiled report (see :func:`repro.reports.compiler.compile_report`).
    store:
        Optional :class:`~repro.runtime.store.ResultStore`.  Cached runs
        are loaded by spec key without touching the engine; fresh runs
        are persisted for the next report.
    jobs:
        Worker processes for cache-missing runs (0 = auto-detect).
    batch:
        Execute contiguous same-point seed blocks as single batched
        engine invocations (results are bit-identical, only faster).
    """
    group_columns = report.group_by
    stats = report.aggregate
    draw_columns = [
        f"{metric.label}.{field_name}"
        for metric in report.metrics
        for field_name in metric.kernel.fields
    ]
    value_columns = tuple(
        f"{column}.{stat}" for column in draw_columns for stat in stats
    )

    # group key -> (group dict, {draw column -> list of sample arrays})
    groups: "dict[tuple, tuple[dict, dict]]" = {}
    n_tasks = n_loaded = n_executed = 0
    owns_run = events.enabled() and not events.in_run()
    if owns_run:
        events.emit("run.start", kind="report.run", name=report.spec.name,
                    n_tasks=sum(t.sweep.size for t in report.targets),
                    jobs=jobs)
    for target in report.targets:
        if owns_run:
            events.emit("report.phase", phase="fetch",
                        scenario=target.scenario.name)
        draws = target.draws_per_point
        with telemetry.span("report.fetch", scenario=target.scenario.name):
            tasks = target.sweep.tasks()
            stream = stream_campaign(
                tasks, store=store, jobs=jobs,
                batcher=ReportTaskBatcher() if batch else None,
                retry=retry, stall_action=stall_action,
            )
            # Prime the stream inside the fetch span: a cache miss
            # dispatches the whole campaign here (as fetch_campaign
            # did), while a fully-cached sweep only loads the first
            # point's draws — later blocks are read lazily, one grid
            # point at a time, so the sweep is never materialized whole.
            blocks = stream.blocks(draws)
            first_block = next(blocks, ())
        blocks = itertools.chain([first_block], blocks)
        if owns_run:
            events.emit("report.phase", phase="metrics",
                        scenario=target.scenario.name,
                        n_points=len(target.grid.points))
        with telemetry.span("report.metrics", scenario=target.scenario.name,
                            n_points=len(target.grid.points)):
            for (overrides, compiled_point), block in zip(
                    zip(target.grid.points, target.grid.compiled), blocks):
                timing = BatchedTiming.from_records(
                    block, meta=_point_meta(compiled_point))
                ctx = MetricContext(compiled=compiled_point)

                group = {}
                for path in group_columns:
                    if path == SCENARIO_COLUMN:
                        group[path] = target.scenario.name
                    else:
                        group[path] = overrides[path]
                key = tuple(sorted(group.items(), key=lambda kv: kv[0]))
                _, samples = groups.setdefault(key, (group, {}))

                for metric in report.metrics:
                    try:
                        fields = metric.kernel.compute(timing, ctx,
                                                       **metric.params)
                    except ReportError:
                        raise
                    except (ValueError, IndexError, KeyError) as exc:
                        # Backstop for kernels without a compile-time check:
                        # surface *which* metric/scenario broke, not a numpy
                        # traceback after the sweep already ran.
                        raise ReportError(
                            f"metric {metric.label!r} failed on scenario "
                            f"{target.scenario.name!r} (point {overrides!r}): "
                            f"{exc}",
                            report=report.spec.name,
                        ) from exc
                    for field_name, arr in fields.items():
                        column = f"{metric.label}.{field_name}"
                        samples.setdefault(column, []).append(arr)
        n_tasks += stream.n_tasks
        n_loaded += stream.n_loaded
        n_executed += stream.n_executed

    rows = []
    if owns_run:
        events.emit("report.phase", phase="aggregate", n_groups=len(groups))
    with telemetry.span("report.aggregate", n_groups=len(groups)):
        for group, samples in groups.values():
            pooled = {column: np.concatenate(arrays)
                      for column, arrays in samples.items()}
            n_draws = max((arr.size for arr in pooled.values()), default=0)
            values = {
                f"{column}.{stat}": aggregate_stat(arr, stat)
                for column, arr in pooled.items()
                for stat in stats
            }
            rows.append(ReportRow(group=group, n_draws=n_draws,
                                  values=values, draws=pooled))

    if owns_run:
        events.emit("run.finish", status="ok", n_tasks=n_tasks,
                    n_cached=n_loaded, n_executed=n_executed, n_failed=0)
    return ReportResult(
        report=report,
        rows=tuple(rows),
        group_columns=group_columns,
        value_columns=value_columns,
        n_tasks=n_tasks,
        n_loaded=n_loaded,
        n_executed=n_executed,
    )
