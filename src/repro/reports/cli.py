"""``repro-experiment report`` subcommands.

::

    repro-experiment report list [--json]
    repro-experiment report validate [NAME_OR_FILE ...] (default: all bundled)
    repro-experiment report run NAME_OR_FILE [--cache-dir DIR] [--jobs N]
                                             [--out DIR] [--no-batch]

``NAME_OR_FILE`` is a bundled report name (see ``report list``) or a path
to a ``.toml``/``.json`` file anywhere on disk.  ``run`` resolves the
report's scenario sweeps against the content-addressed result store in
``--cache-dir``: already-simulated runs are loaded by spec key with zero
engine invocations, and only cache misses dispatch through the campaign
runtime (sharded over ``--jobs`` workers, batched per seed block).  With
``--out`` the report's declared artifacts (CSV/JSON/NPZ tables, ascii
renderings under ``viz/``) are written below that directory.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli import jobs_arg
from repro.reports.compiler import compile_report
from repro.reports.errors import ReportError
from repro.reports.kernels import get_kernel, kernel_names
from repro.reports.registry import (
    bundled_report_names,
    load_bundled_report,
    resolve_report,
)
from repro.reports.runner import run_report

__all__ = ["report_main", "build_report_parser"]


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment report",
        description=(
            "Declarative reports over scenario sweeps: store-backed metric "
            "extraction, aggregation, and artifact generation."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list bundled reports and kernels")
    p_list.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")

    p_val = sub.add_parser("validate", help="parse + compile reports")
    p_val.add_argument("reports", nargs="*", metavar="NAME_OR_FILE",
                       help="bundled names or file paths (default: all bundled)")

    p_run = sub.add_parser("run", help="execute a report and print its table")
    p_run.add_argument("report", metavar="NAME_OR_FILE")
    p_run.add_argument("--jobs", type=jobs_arg, default=1, metavar="N",
                       help="worker processes for cache misses (0 = auto)")
    p_run.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed result store; cached runs "
                            "are loaded with zero engine invocations")
    p_run.add_argument("--out", default=None, metavar="DIR",
                       help="write the report's declared artifacts below DIR")
    p_run.add_argument("--no-batch", action="store_true",
                       help="run cache misses one engine call at a time "
                            "instead of batched (results are identical)")
    p_run.add_argument("--profile", action="store_true",
                       help="record telemetry (spans, cache hit rates) and "
                            "print a summary; results are unchanged")
    p_run.add_argument("--telemetry-out", default=None, metavar="FILE",
                       help="write the run's telemetry JSONL here "
                            "(implies --profile); inspect with "
                            "'repro-experiment stats'")
    p_run.add_argument("--progress", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="live progress line on stderr (default: auto "
                            "when stderr is a TTY)")
    p_run.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry failed tasks up to N times with "
                            "deterministic seed-jittered backoff (results "
                            "are bit-identical to a first-attempt success)")
    p_run.add_argument("--retry-backoff", type=float, default=0.05,
                       metavar="SECONDS",
                       help="base backoff between retry attempts; doubles "
                            "per attempt (default: 0.05)")
    p_run.add_argument("--stall-action", choices=["warn", "retry"],
                       default="warn",
                       help="watchdog response to stalled tasks: warn only, "
                            "or abandon the stalled block and re-dispatch "
                            "its tasks (default: warn)")
    p_run.add_argument("--resume", default=None, metavar="RUN_ID",
                       help="resume an interrupted report run: simulated "
                            "tasks are served from the run's cache, and the "
                            "new ledger record links back via resumed_from "
                            "(requires --cache-dir)")
    return parser


def _store(cache_dir: "str | None"):
    if cache_dir is None:
        return None
    from repro.runtime.store import ResultStore

    store = ResultStore(cache_dir)
    # Fail before the campaign starts, not after it computed results it
    # cannot persist.
    store.ensure_writable()
    return store


def _retry_policy(args):
    if getattr(args, "retries", 0):
        from repro.runtime.retry import RetryPolicy

        return RetryPolicy(retries=args.retries,
                           backoff_s=args.retry_backoff)
    return None


def _cmd_list(args) -> int:
    rows = []
    for name in bundled_report_names():
        spec = load_bundled_report(name)
        rows.append({
            "name": name,
            "description": spec.description,
            "scenarios": list(spec.scenarios),
            "metrics": [m.name for m in spec.metrics],
            "artifacts": [a.kind for a in spec.artifacts],
        })
    if args.as_json:
        print(json.dumps({
            "reports": rows,
            "kernels": [
                {"name": k, "fields": list(get_kernel(k).fields),
                 "doc": get_kernel(k).doc}
                for k in kernel_names()
            ],
        }, indent=2))
        return 0
    width = max((len(r["name"]) for r in rows), default=4)
    for r in rows:
        print(f"{r['name']:<{width}}  [{', '.join(r['metrics'])}]  "
              f"{r['description']}")
    print(f"\nregistered metric kernels: {', '.join(kernel_names())}")
    return 0


def _cmd_validate(args) -> int:
    targets = args.reports or bundled_report_names()
    failures = 0
    for target in targets:
        try:
            spec = resolve_report(target)
            compile_report(spec)
        except ReportError as exc:
            failures += 1
            print(f"FAIL  {target}: {exc}")
        else:
            print(f"ok    {target} ({spec.name})")
    if failures:
        print(f"[{failures}/{len(targets)} report(s) failed validation]")
        return 1
    print(f"[{len(targets)} report(s) valid]")
    return 0


def _cmd_run(args) -> int:
    spec = resolve_report(args.report)
    compiled = compile_report(spec)
    from repro.obs import observe_run
    from repro.runtime.store import StoreError

    resumed = None
    if args.resume:
        if args.cache_dir is None:
            print("report error: --resume requires --cache-dir: completed "
                  "tasks are served from the result store of the "
                  "interrupted run", file=sys.stderr)
            return 2
        from repro.obs.ledger import RunLedger

        try:
            resumed = RunLedger(args.cache_dir).find(args.resume)
        except KeyError as exc:
            print(f"report error: {exc.args[0]}", file=sys.stderr)
            return 2

    try:
        with observe_run("report.run", spec.name, cache_dir=args.cache_dir,
                         progress=args.progress) as tracker:
            if resumed is not None:
                tracker.set_resumed_from(resumed["id"])
            if args.profile or args.telemetry_out:
                from repro import telemetry

                profiled = telemetry.profiled(
                    "report.run", out=args.telemetry_out,
                    cache_dir=args.cache_dir, on_write=tracker.set_telemetry)
            else:
                from contextlib import nullcontext

                profiled = nullcontext()
            with profiled:
                result = run_report(
                    compiled, store=_store(args.cache_dir), jobs=args.jobs,
                    batch=not args.no_batch,
                    retry=_retry_policy(args),
                    stall_action=args.stall_action,
                )
            print(result.render())
            if args.out is not None:
                from repro.reports.artifacts import write_artifacts

                for path in write_artifacts(result, args.out):
                    tracker.add_artifact(path)
                    print(f"[wrote {path}]")
    except StoreError as exc:
        print(f"store error: {exc}", file=sys.stderr)
        return 2
    return 0


def report_main(argv: "list[str] | None" = None) -> int:
    args = build_report_parser().parse_args(argv)
    handler = {"list": _cmd_list, "validate": _cmd_validate,
               "run": _cmd_run}[args.command]
    try:
        return handler(args)
    except ReportError as exc:
        print(f"report error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(report_main())
