"""Declarative report pipeline: store-backed metric extraction + artifacts.

The scenario subsystem made *running* an experiment a data problem
(PR 2); the campaign runtime made it shardable and cacheable (PR 1); the
batched engine made replicate blocks one vectorized call (PR 3).  This
package closes the loop from "run a sweep" to "publishable numbers":

- :mod:`repro.reports.spec` — frozen plain-data :class:`ReportSpec`,
  TOML/JSON-loadable, naming scenarios, metrics, grouping, and artifacts;
- :mod:`repro.reports.kernels` — a registry of **vectorized metric
  kernels** (wave speed via the Eq. 2 fit, decay rate β̄, desync indices,
  idle-histogram and Fourier summaries) operating on ``(B, P, S)`` timing
  stacks with no per-draw Python loop;
- :mod:`repro.reports.query` — the store query layer: reports over an
  already-run sweep load every run by content hash and touch the engine
  **zero** times; misses fall back to the campaign runtime;
- :mod:`repro.reports.runner` / :mod:`~repro.reports.artifacts` — group,
  aggregate, render, and write CSV/JSON/NPZ/ascii artifacts;
- :mod:`repro.reports.registry` — bundled report specs under
  ``reports/data/`` (including the Fig. 7 speed and Fig. 8 decay-rate
  reproductions and a cross-scenario comparison).

Typical use::

    from repro.reports import compile_report, load_bundled_report, run_report
    from repro.runtime import ResultStore

    report = compile_report(load_bundled_report("campaign_rate_response"))
    result = run_report(report, store=ResultStore("~/.cache/repro"))
    print(result.render())
"""

from repro.reports.artifacts import write_artifacts
from repro.reports.compiler import (
    CompiledReport,
    ReportTarget,
    ResolvedMetric,
    compile_report,
)
from repro.reports.errors import ReportError
from repro.reports.kernels import (
    MetricContext,
    MetricKernel,
    batched_wave_front,
    get_kernel,
    kernel_names,
    register_kernel,
)
from repro.reports.loader import load_report_file, parse_report_text
from repro.reports.registry import (
    bundled_report_names,
    iter_bundled_reports,
    load_bundled_report,
    resolve_report,
)
from repro.reports.runner import ReportResult, ReportRow, run_report
from repro.reports.spec import ArtifactRequest, MetricRequest, ReportSpec
from repro.reports.timing import BatchedTiming

__all__ = [
    "ArtifactRequest",
    "BatchedTiming",
    "CompiledReport",
    "MetricContext",
    "MetricKernel",
    "MetricRequest",
    "ReportError",
    "ReportResult",
    "ReportRow",
    "ReportSpec",
    "ReportTarget",
    "ResolvedMetric",
    "batched_wave_front",
    "bundled_report_names",
    "compile_report",
    "get_kernel",
    "iter_bundled_reports",
    "kernel_names",
    "load_bundled_report",
    "load_report_file",
    "parse_report_text",
    "register_kernel",
    "resolve_report",
    "run_report",
    "write_artifacts",
]
