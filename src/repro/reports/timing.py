"""Batched timing container: B runs' dense matrices as one ``(B, P, S)`` stack.

The metric kernels (:mod:`repro.reports.kernels`) are vectorized along a
leading batch axis, exactly like the batched lockstep engine: one kernel
invocation extracts a metric from *all* draws of a campaign at once,
without a per-draw Python loop.  :class:`BatchedTiming` is the substrate
they operate on — the three :class:`~repro.core.timing.RunTiming`
matrices (``exec_end``, ``completion``, ``idle``) stacked over the batch
axis, assembled either from cached store records, from a
:class:`~repro.sim.lockstep.BatchedLockstepResult`, or from individual
run timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.timing import RunTiming
from repro.sim.engine import BatchedDagResult
from repro.sim.lockstep import BatchedLockstepResult

__all__ = ["BatchedTiming"]

#: The array fields a timing record must provide, in stacking order.
TIMING_FIELDS = ("exec_end", "completion", "idle")


@dataclass
class BatchedTiming:
    """Dense timing of B independent runs, ``[n_batch, n_ranks, n_steps]``.

    Slicing (``batch[b]``) yields run ``b`` as an ordinary
    :class:`~repro.core.timing.RunTiming` (views into the stack), so every
    scalar analysis in :mod:`repro.core` / :mod:`repro.analysis` remains
    applicable to single draws — the property the kernel parity tests use.
    """

    exec_end: np.ndarray
    completion: np.ndarray
    idle: np.ndarray
    meta: dict = field(default_factory=dict)
    #: Scratch space for kernels that share intermediate results (e.g. the
    #: wave front the speed and decay kernels both need).  Treat the
    #: timing arrays as immutable once kernels have run.
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        shapes = {self.exec_end.shape, self.completion.shape, self.idle.shape}
        if len(shapes) != 1:
            raise ValueError(f"matrix shapes differ: {sorted(shapes)}")
        if self.exec_end.ndim != 3:
            raise ValueError(
                f"expected (n_batch, n_ranks, n_steps) matrices, "
                f"got {self.exec_end.ndim}-D"
            )

    @property
    def n_batch(self) -> int:
        return self.exec_end.shape[0]

    @property
    def n_ranks(self) -> int:
        return self.exec_end.shape[1]

    @property
    def n_steps(self) -> int:
        return self.exec_end.shape[2]

    @property
    def t_exec(self) -> "float | None":
        """Nominal execution-phase length, if recorded."""
        return self.meta.get("t_exec")

    def __len__(self) -> int:
        return self.n_batch

    def __getitem__(self, b: int) -> RunTiming:
        if not -self.n_batch <= b < self.n_batch:
            raise IndexError(f"batch index {b} out of range [0, {self.n_batch})")
        return RunTiming(
            exec_end=self.exec_end[b],
            completion=self.completion[b],
            idle=self.idle[b],
            meta=dict(self.meta),
        )

    def wait_start(self) -> np.ndarray:
        """``[b, rank, step]`` time each rank entered its Waitall."""
        return self.completion - self.idle

    def total_runtimes(self) -> np.ndarray:
        """Per-run wall-clock completion, shape ``[n_batch]``."""
        return np.nanmax(self.completion, axis=(1, 2))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_timings(cls, timings: "Sequence[RunTiming]",
                     meta: "dict | None" = None) -> "BatchedTiming":
        """Stack individual run timings (all the same shape) into a batch."""
        if not timings:
            raise ValueError("need at least one run timing to stack")
        return cls(
            exec_end=np.stack([t.exec_end for t in timings]),
            completion=np.stack([t.completion for t in timings]),
            idle=np.stack([t.idle for t in timings]),
            meta=dict(timings[0].meta) if meta is None else dict(meta),
        )

    @classmethod
    def from_lockstep_batch(cls, result: BatchedLockstepResult) -> "BatchedTiming":
        """Adopt a batched engine result (idle derived as in ``RunTiming``)."""
        return cls(
            exec_end=result.exec_end.copy(),
            completion=result.completion.copy(),
            idle=result.idle_matrix(),
            meta=dict(result.meta),
        )

    @classmethod
    def from_dag_batch(cls, result: BatchedDagResult) -> "BatchedTiming":
        """Adopt a batched DAG-engine result's dense matrices directly.

        The DAG engine's columnar propagation already produces the
        ``(B, P, S)`` triple — no per-draw ``Trace``/``OpRecord``
        materialization happens anywhere on this path.
        """
        return cls(
            exec_end=result.exec_end.copy(),
            completion=result.completion.copy(),
            idle=result.idle.copy(),
            meta=dict(result.meta),
        )

    @classmethod
    def from_records(cls, records: "Sequence[Mapping]",
                     meta: "dict | None" = None) -> "BatchedTiming":
        """Stack store records (``{"exec_end", "completion", "idle"}`` dicts).

        This is the shape :func:`repro.reports.tasks.scenario_timing_task`
        persists — the form cached campaign results come back in.
        """
        if not records:
            raise ValueError("need at least one timing record to stack")
        arrays = {}
        for name in TIMING_FIELDS:
            try:
                arrays[name] = np.stack(
                    [np.asarray(rec[name], dtype=float) for rec in records]
                )
            except KeyError as exc:
                raise KeyError(
                    f"timing record is missing the {name!r} matrix; got "
                    f"fields {sorted(records[0])}"
                ) from exc
        return cls(**arrays, meta=dict(meta or {}))
