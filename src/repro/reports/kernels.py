"""Vectorized metric kernels: batched ``(B, P, S)`` timing → per-draw metrics.

Each kernel extracts one family of derived quantities — the numbers the
paper actually reports (wave speed via the Eq. 2 fit, decay rate β̄,
desynchronization indices, idle-histogram and spatial-Fourier summaries)
— from a :class:`~repro.reports.timing.BatchedTiming` stack in one
vectorized pass.  There is **no per-draw Python loop**: every operation
is elementwise or reduced along the batch axis (the wave-front walk loops
over *hops*, never over draws), which is what makes report extraction over
a 64-draw campaign an order of magnitude faster than calling the scalar
:mod:`repro.core` / :mod:`repro.analysis` functions draw by draw
(``benchmarks/bench_reports.py`` asserts ≥ 5x).

Every kernel agrees with its scalar counterpart to ~machine precision
(``tests/reports/test_report_kernels.py`` checks 1e-9 relative on every field);
draws where the scalar function would raise (no measurable wave, fewer
hops than the fit needs) yield ``NaN`` instead, so one dead draw cannot
abort a whole campaign's report.

Kernels register themselves in a module-level registry; report specs
resolve metric names against it (see CONTRIBUTING.md for how to add one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.speed import silent_speed_for
from repro.reports.errors import ReportError
from repro.reports.timing import BatchedTiming
from repro.scenarios.compiler import CompiledScenario

__all__ = [
    "BatchedWaveFront",
    "MetricContext",
    "MetricKernel",
    "batched_default_threshold",
    "batched_wave_front",
    "fit_front_speed",
    "front_decay",
    "get_kernel",
    "kernel_names",
    "register_kernel",
]


# ----------------------------------------------------------------------
# context + registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricContext:
    """What a kernel may know about the runs besides their timing.

    ``compiled`` is the grid point's compiled scenario: pattern,
    protocol, network, and delay placement — everything the runs of one
    batch share.  Kernels must treat it as read-only.
    """

    compiled: CompiledScenario

    @property
    def source(self) -> int:
        """Injection rank of the first explicit delay."""
        if not self.compiled.cfg.delays:
            raise ReportError(
                "metric needs an injected delay to trace a wave from, but "
                f"scenario {self.compiled.spec.name!r} declares none"
            )
        return self.compiled.cfg.delays[0].rank

    @property
    def periodic(self) -> bool:
        return bool(self.compiled.cfg.pattern.periodic)


@dataclass(frozen=True)
class MetricKernel:
    """One registered metric: a vectorized extraction function plus schema.

    Attributes
    ----------
    name:
        Registry key report specs refer to.
    fields:
        Names of the per-draw quantities the kernel returns, in order.
    fn:
        ``fn(batch, ctx, **params) -> {field: ndarray[B]}``.
    params:
        Recognized keyword parameters (anything else is rejected at
        report-compile time, naming the offending spec path).
    needs_delay:
        Whether the kernel requires at least one explicit injected delay
        (wave-tracing kernels); checked at compile time per grid point.
    check:
        Optional ``check(params, compiled) -> str | None`` validating
        parameter *values* against one grid point's compiled scenario at
        report-compile time (so a bad value fails `report validate`, not
        a dispatched sweep).  Return an error message, or ``None`` if ok.
    doc:
        One-line description for ``report list`` and the docs.
    """

    name: str
    fields: "tuple[str, ...]"
    fn: Callable
    params: "tuple[str, ...]" = ()
    needs_delay: bool = False
    check: "Callable | None" = None
    doc: str = ""

    def compute(self, batch: BatchedTiming, ctx: MetricContext,
                **params) -> "dict[str, np.ndarray]":
        """Run the kernel; validates output shape against the schema."""
        out = self.fn(batch, ctx, **params)
        missing = [f for f in self.fields if f not in out]
        if missing:  # pragma: no cover - registry misuse
            raise RuntimeError(f"kernel {self.name!r} omitted fields {missing}")
        return {name: np.asarray(out[name], dtype=float) for name in self.fields}


_REGISTRY: "dict[str, MetricKernel]" = {}


def register_kernel(name: str, fields: "tuple[str, ...]",
                    params: "tuple[str, ...]" = (),
                    needs_delay: bool = False,
                    check: "Callable | None" = None, doc: str = ""):
    """Decorator: add a vectorized metric kernel to the registry."""

    def wrap(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"metric kernel {name!r} is already registered")
        _REGISTRY[name] = MetricKernel(
            name=name, fields=tuple(fields), fn=fn, params=tuple(params),
            needs_delay=needs_delay, check=check,
            doc=doc or (fn.__doc__ or "").split("\n")[0],
        )
        return fn

    return wrap


def _check_direction(params: dict) -> "str | None":
    direction = params.get("direction", +1)
    if direction not in (+1, -1):
        return f"direction must be +1 or -1, got {direction!r}"
    return None


def _check_wave_speed(params: dict, compiled) -> "str | None":
    bad = _check_direction(params)
    if bad:
        return bad
    min_hops = params.get("min_hops", 2)
    if not (isinstance(min_hops, int) and min_hops >= 1):
        return f"min_hops must be an int >= 1, got {min_hops!r}"
    max_hops = params.get("max_hops")
    if max_hops is not None and not (isinstance(max_hops, int) and max_hops >= 1):
        return f"max_hops must be an int >= 1, got {max_hops!r}"
    return None


def _check_decay(params: dict, compiled) -> "str | None":
    return _check_direction(params)


def _check_desync(params: dict, compiled) -> "str | None":
    fraction = params.get("fraction", 0.5)
    if not (isinstance(fraction, (int, float)) and fraction > 0):
        return f"fraction must be > 0, got {fraction!r}"
    return None


def _check_fourier(params: dict, compiled) -> "str | None":
    step = params.get("step", -1)
    n_steps = compiled.cfg.n_steps
    if not isinstance(step, int) or isinstance(step, bool):
        return f"step must be an int, got {step!r}"
    if not -n_steps <= step < n_steps:
        return (f"step {step} out of range for the {n_steps}-step scenario "
                f"{compiled.spec.name!r}")
    return None


def kernel_names() -> "list[str]":
    """Sorted names of all registered metric kernels."""
    return sorted(_REGISTRY)


def get_kernel(name: str) -> MetricKernel:
    """Look up a kernel; raises :class:`ReportError` naming alternatives."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReportError(
            f"unknown metric {name!r}; registered kernels: {kernel_names()}"
        ) from None


# ----------------------------------------------------------------------
# batched wave-front detection (shared by the speed and decay kernels)
# ----------------------------------------------------------------------
def _row_percentile(sorted_rows: np.ndarray, counts: np.ndarray,
                    q: float, start: "np.ndarray | int" = 0) -> np.ndarray:
    """Per-row linear-interpolated percentile over ``counts[r]`` entries of
    each pre-sorted row, beginning at offset ``start[r]``.

    Replicates :func:`numpy.percentile`'s default linear interpolation
    arithmetic exactly (including its ``t >= 0.5`` lerp flip), but costs
    one gather instead of a per-row partition — ``np.nanpercentile`` over
    a ``(B, P, S)`` stack is the single hottest operation in the kernel
    path.  The offset lets one ascending sort serve several sub-ranges
    (e.g. all finite cells vs. the strictly-positive suffix).  Rows with
    ``counts == 0`` yield ``NaN``.
    """
    n_rows = sorted_rows.shape[0]
    empty = counts == 0
    pos = (q / 100.0) * (np.maximum(counts, 1) - 1)
    lo = np.floor(pos).astype(np.intp)
    hi = np.ceil(pos).astype(np.intp)
    rows = np.arange(n_rows)
    # Clamp for rows with counts == 0 (their offset may point one past
    # the end); their gathered values are overwritten with NaN below.
    last = sorted_rows.shape[1] - 1
    a = sorted_rows[rows, np.minimum(start + lo, last)]
    b = sorted_rows[rows, np.minimum(start + hi, last)]
    t = pos - lo
    diff = b - a
    out = a + diff * t
    flip = t >= 0.5
    out[flip] = b[flip] - diff[flip] * (1.0 - t[flip])
    out[empty] = np.nan
    return out


def _sorted_idle(batch: BatchedTiming) -> "tuple[np.ndarray, np.ndarray]":
    """Each draw's idle cells sorted ascending (NaNs last) + finite counts.

    One sort serves every percentile a report's kernels need (the
    threshold's p90 over all finite cells, the histogram's p95 over the
    positive suffix), so it is memoized on the batch.
    """
    cached = batch._cache.get("sorted_idle")
    if cached is None:
        flat = batch.idle.reshape(batch.n_batch, -1)
        cached = (np.sort(flat, axis=1),
                  np.count_nonzero(np.isfinite(flat), axis=1))
        batch._cache["sorted_idle"] = cached
    return cached


def batched_default_threshold(batch: BatchedTiming,
                              factor: float = 0.5) -> np.ndarray:
    """Per-draw idle-duration cut, ``[B]``.

    Vectorized transcription of
    :func:`repro.core.idle_wave.default_threshold`: identical arithmetic
    per draw, evaluated for all draws at once.
    """
    idle = batch.idle
    n_batch = batch.n_batch
    t_exec = batch.t_exec
    if t_exec:
        base = np.full(n_batch, factor * float(t_exec))
    elif idle[0].size == 0:
        return np.zeros(n_batch)
    else:
        # Median of each draw's positive idle times; draws without any
        # positive idle get 0 (the scalar function's early return).  The
        # inner where keeps all-NaN rows out of nanmedian.
        any_positive = np.any(idle > 0, axis=(1, 2))
        positive = np.where(idle > 0, idle, np.nan).reshape(n_batch, -1)
        med = np.nanmedian(
            np.where(any_positive[:, None], positive, 0.0), axis=1)
        base = 10.0 * np.where(any_positive, med, 0.0)
    if idle[0].size == 0:
        return base
    max_idle = np.nanmax(idle, axis=(1, 2))
    # nanpercentile semantics (ignore NaN cells) via one sort + gather.
    sorted_rows, finite = _sorted_idle(batch)
    p90 = _row_percentile(sorted_rows, finite, 90.0)
    background = np.minimum(2.0 * p90, 0.25 * max_idle)
    return np.maximum(np.maximum(base, 0.05 * max_idle), background)


@dataclass
class BatchedWaveFront:
    """Leading edges of B idle waves, hop-indexed with per-draw validity.

    Arrays are ``[B, H]`` with ``H`` the walk limit; entries at hop index
    ``h`` are meaningful only where ``h < n_hops[b]`` (each draw's front
    is a contiguous prefix, exactly like the scalar walk, which stops at
    the first rank showing no above-threshold idle period).
    """

    arrival_steps: np.ndarray  # int, [B, H]
    arrival_times: np.ndarray  # float, [B, H]
    amplitudes: np.ndarray  # float, [B, H]
    n_hops: np.ndarray  # int, [B]

    @property
    def n_batch(self) -> int:
        return self.arrival_steps.shape[0]

    @property
    def limit(self) -> int:
        return self.arrival_steps.shape[1]

    def valid(self) -> np.ndarray:
        """Boolean ``[B, H]`` mask of meaningful entries."""
        return np.arange(self.limit)[None, :] < self.n_hops[:, None]


def batched_wave_front(
    batch: BatchedTiming,
    source: int,
    direction: int = +1,
    threshold: "np.ndarray | None" = None,
    periodic: bool = False,
    max_hops: "int | None" = None,
) -> BatchedWaveFront:
    """Trace every draw's idle-wave leading edge in one batched walk.

    The loop runs over *hops* (bounded by the rank count); at each hop all
    B draws advance together with array operations over ``[B, S]`` slices.
    Per-draw results are identical to :func:`repro.core.idle_wave.
    wave_front` on the corresponding slice: same first-arrival rule
    (first above-threshold idle period at/after the previous arrival
    step), same stop conditions.
    """
    if direction not in (+1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    n_batch, n_ranks, n_steps = batch.exec_end.shape
    if not 0 <= source < n_ranks:
        raise IndexError(f"source rank {source} out of range [0, {n_ranks})")
    cache_key = None
    if threshold is None:
        # The speed and decay kernels trace the same front; share it (and
        # the default threshold) across kernel invocations on one batch.
        cache_key = ("wave_front", source, direction, periodic, max_hops)
        cached = batch._cache.get(cache_key)
        if cached is not None:
            return cached
        threshold = batch._cache.get("default_threshold")
        if threshold is None:
            threshold = batched_default_threshold(batch)
            batch._cache["default_threshold"] = threshold
    threshold = np.asarray(threshold, dtype=float)

    limit = n_ranks - 1 if periodic else n_ranks
    if max_hops is not None:
        limit = min(limit, max_hops)
    limit = max(limit, 0)

    starts = batch.wait_start()
    steps_idx = np.arange(n_steps)
    arrival_steps = np.zeros((n_batch, limit), dtype=int)
    arrival_times = np.full((n_batch, limit), np.nan)
    amplitudes = np.full((n_batch, limit), np.nan)
    n_hops = np.zeros(n_batch, dtype=int)

    alive = np.ones(n_batch, dtype=bool)
    prev_step = np.zeros(n_batch, dtype=int)
    rows = np.arange(n_batch)
    for hop in range(1, limit + 1):
        rank = source + direction * hop
        if periodic:
            rank %= n_ranks
        elif not 0 <= rank < n_ranks:
            break
        row = batch.idle[:, rank, :]  # [B, S]
        ok = (row > threshold[:, None]) & (steps_idx[None, :] >= prev_step[:, None])
        has = ok.any(axis=1) & alive
        if not has.any():
            break
        k = np.argmax(ok, axis=1)
        col = hop - 1
        arrival_steps[has, col] = k[has]
        arrival_times[has, col] = starts[rows[has], rank, k[has]]
        amplitudes[has, col] = row[rows[has], k[has]]
        n_hops += has
        prev_step = np.where(has, k, prev_step)
        alive = has

    front = BatchedWaveFront(
        arrival_steps=arrival_steps,
        arrival_times=arrival_times,
        amplitudes=amplitudes,
        n_hops=n_hops,
    )
    if cache_key is not None:
        batch._cache[cache_key] = front
    return front


def _masked_linear_slope(x: np.ndarray, y: np.ndarray,
                         mask: np.ndarray) -> np.ndarray:
    """Per-row least-squares slope of ``y`` on ``x`` over masked entries.

    Closed-form simple linear regression (identical minimizer to
    ``np.polyfit(x, y, 1)``), vectorized over rows; rows with fewer than
    two usable points or zero x-variance yield ``NaN``.
    """
    w = mask.astype(float)
    n = w.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        xm = np.where(n > 0, (w * np.where(mask, x, 0.0)).sum(axis=1) / n, 0.0)
        ym = np.where(n > 0, (w * np.where(mask, y, 0.0)).sum(axis=1) / n, 0.0)
        dx = np.where(mask, x - xm[:, None], 0.0)
        dy = np.where(mask, y - ym[:, None], 0.0)
        var = (w * dx * dx).sum(axis=1)
        cov = (w * dx * dy).sum(axis=1)
        slope = np.where((n >= 2) & (var > 0), cov / var, np.nan)
    return slope


def fit_front_speed(front: BatchedWaveFront, min_hops: int = 2) -> np.ndarray:
    """Per-draw idle-wave speed from a batched front fit, ``[B]``.

    Vectorized transcription of :func:`repro.core.speed.measure_speed`'s
    fit: arrival *steps* are collapsed to their leading hop (groups of
    ranks released by the same bulk-synchronous step arrive essentially
    simultaneously), then hop distance is regressed on arrival time.
    Draws whose front is shorter than ``min_hops``, or whose fitted slope
    is not positive, yield ``NaN`` — the cases where the scalar function
    raises.
    """
    steps = front.arrival_steps
    valid = front.valid()
    hops = np.broadcast_to(
        np.arange(1, front.limit + 1, dtype=float), steps.shape)
    keep = valid.copy()
    if front.limit > 1:
        keep[:, 1:] &= steps[:, 1:] != steps[:, :-1]
    use_grouped = keep.sum(axis=1) >= min_hops
    mask = np.where(use_grouped[:, None], keep, valid)

    times = np.where(mask, front.arrival_times, 0.0)
    slope = _masked_linear_slope(times, hops, mask)
    measurable = front.n_hops >= min_hops
    with np.errstate(invalid="ignore"):
        return np.where(measurable & (slope > 0), slope, np.nan)


def front_decay(front: BatchedWaveFront) -> "dict[str, np.ndarray]":
    """Per-draw decay measurements from a batched front, each ``[B]``.

    Vectorized transcription of :func:`repro.core.decay.measure_decay`:
    ``beta`` is the endpoint estimator ``(A_first - A_last) / (hops - 1)``
    (a single-hop wave lost its whole amplitude in one further hop),
    ``slope_beta`` the least-squares amplitude slope.  Draws with no
    detected wave yield ``NaN`` — the case where the scalar raises.
    """
    n = front.n_hops
    if front.limit == 0:
        nan = np.full(front.n_batch, np.nan)
        return {"beta": nan, "slope_beta": nan.copy(),
                "initial_amplitude": nan.copy(), "survival_hops": nan.copy()}
    detected = n >= 1
    rows = np.arange(front.n_batch)
    amps0 = np.where(detected, front.amplitudes[:, 0], np.nan)
    amps_last = np.where(
        detected, front.amplitudes[rows, np.maximum(n - 1, 0)], np.nan)
    with np.errstate(invalid="ignore"):
        beta = np.where(n == 1, amps0,
                        (amps0 - amps_last) / np.maximum(n - 1, 1))
    hops = np.broadcast_to(
        np.arange(1, front.limit + 1, dtype=float), front.amplitudes.shape)
    slope = _masked_linear_slope(
        hops, np.where(front.valid(), front.amplitudes, 0.0), front.valid())
    return {
        "beta": beta,
        "slope_beta": np.where(n == 1, amps0, -slope),
        "initial_amplitude": amps0,
        "survival_hops": np.where(detected, n, np.nan).astype(float),
    }


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
@register_kernel(
    "runtime",
    fields=("total_runtime", "total_idle", "mean_idle_per_rank"),
    doc="Wall-clock runtime and aggregate idle time per draw.",
)
def _runtime_kernel(batch: BatchedTiming, ctx: MetricContext) -> dict:
    idle = batch.idle
    # nansum degenerates to sum (bitwise) when no NaN is present; the
    # engines never emit NaN, so skip nansum's masked copy on that path.
    has_nan = batch._cache.get("idle_has_nan")
    if has_nan is None:
        has_nan = bool(np.isnan(idle).any())
        batch._cache["idle_has_nan"] = has_nan
    sum_ = np.nansum if has_nan else np.sum
    idle_by_rank = sum_(idle, axis=2)  # [B, P]
    return {
        "total_runtime": batch.total_runtimes(),
        "total_idle": sum_(idle, axis=(1, 2)),
        "mean_idle_per_rank": idle_by_rank.mean(axis=1),
    }


@register_kernel(
    "wave_speed",
    fields=("measured_speed", "predicted_speed", "relative_error",
            "front_hops"),
    params=("direction", "min_hops", "max_hops"),
    needs_delay=True,
    check=_check_wave_speed,
    doc="Idle-wave speed: Eq. 2 prediction and batched front fit.",
)
def _wave_speed_kernel(batch: BatchedTiming, ctx: MetricContext,
                       direction: int = +1, min_hops: int = 2,
                       max_hops: "int | None" = None) -> dict:
    front = batched_wave_front(
        batch, ctx.source, direction=direction, periodic=ctx.periodic,
        max_hops=max_hops,
    )
    speed = fit_front_speed(front, min_hops=min_hops)

    compiled = ctx.compiled
    predicted = silent_speed_for(
        compiled.cfg.pattern, compiled.resolved_protocol,
        compiled.t_exec, compiled.t_comm,
    )
    with np.errstate(invalid="ignore"):
        rel_err = np.abs(speed - predicted) / predicted
    return {
        "measured_speed": speed,
        "predicted_speed": np.full(batch.n_batch, predicted),
        "relative_error": rel_err,
        "front_hops": front.n_hops.astype(float),
    }


@register_kernel(
    "decay_rate",
    fields=("beta", "slope_beta", "initial_amplitude", "survival_hops"),
    params=("direction",),
    needs_delay=True,
    check=_check_decay,
    doc="Idle-wave decay rate β̄ (endpoint and slope estimators).",
)
def _decay_rate_kernel(batch: BatchedTiming, ctx: MetricContext,
                       direction: int = +1) -> dict:
    front = batched_wave_front(
        batch, ctx.source, direction=direction, periodic=ctx.periodic,
    )
    return front_decay(front)


@register_kernel(
    "desync",
    fields=("final_skew", "max_skew", "mean_skew", "desync_onset_step",
            "overlap_efficiency"),
    params=("fraction",),
    check=_check_desync,
    doc="Desynchronization indices: skew spread, onset, overlap efficiency.",
)
def _desync_kernel(batch: BatchedTiming, ctx: MetricContext,
                   fraction: float = 0.5) -> dict:
    if fraction <= 0:
        raise ValueError(f"fraction must be > 0, got {fraction}")
    spread = np.ptp(batch.completion, axis=1)  # [B, S]
    t_exec = batch.t_exec
    if t_exec:
        t_exec_b = np.full(batch.n_batch, float(t_exec))
    else:
        durations = np.diff(batch.completion, axis=2)
        t_exec_b = (np.median(durations.reshape(batch.n_batch, -1), axis=1)
                    if durations.size else np.zeros(batch.n_batch))
    if np.any(t_exec_b <= 0):
        raise ValueError("cannot determine the nominal phase length")
    hits = spread > fraction * t_exec_b[:, None]
    onset = np.where(hits.any(axis=1),
                     np.argmax(hits, axis=1).astype(float), np.nan)

    # exec duration = exec_end - previous completion (0 before step 0);
    # computed in place to avoid materializing an exec_start matrix.
    exec_durations = batch.exec_end.copy()
    exec_durations[:, :, 1:] -= batch.completion[:, :, :-1]
    serial_budget = (exec_durations.max(axis=1).sum(axis=1)
                     + batch.idle.max(axis=1).sum(axis=1))
    with np.errstate(invalid="ignore", divide="ignore"):
        overlap = np.where(serial_budget > 0,
                           1.0 - batch.total_runtimes() / serial_budget,
                           np.nan)
    return {
        "final_skew": spread[:, -1],
        "max_skew": spread.max(axis=1),
        "mean_skew": spread.mean(axis=1),
        "desync_onset_step": onset,
        "overlap_efficiency": overlap,
    }


@register_kernel(
    "idle_histogram",
    fields=("n_idle_periods", "mean_idle", "max_idle", "p95_idle"),
    doc="Idle-period distribution summary per draw.",
)
def _idle_histogram_kernel(batch: BatchedTiming, ctx: MetricContext) -> dict:
    idle = batch.idle
    if idle[0].size == 0:
        zeros = np.zeros(batch.n_batch)
        return {"n_idle_periods": zeros, "mean_idle": zeros.copy(),
                "max_idle": zeros.copy(),
                "p95_idle": np.full(batch.n_batch, np.nan)}
    positive = idle > 0
    counts = positive.sum(axis=(1, 2))
    sums = np.where(positive, idle, 0.0).sum(axis=(1, 2))
    with np.errstate(invalid="ignore", divide="ignore"):
        mean_idle = np.where(counts > 0, sums / counts, 0.0)
        # In the ascending sort the strictly-positive cells are the
        # suffix of the finite range: reuse the shared sort, offset past
        # the non-positive prefix.
        sorted_rows, finite = _sorted_idle(batch)
        p95 = _row_percentile(sorted_rows, counts, 95.0,
                              start=finite - counts)
    return {
        "n_idle_periods": counts.astype(float),
        "mean_idle": mean_idle,
        "max_idle": idle.max(axis=(1, 2)),
        "p95_idle": p95,
    }


@register_kernel(
    "fourier",
    fields=("dominant_mode", "dominant_wavelength", "mode_fraction"),
    params=("step",),
    check=_check_fourier,
    doc="Spatial Fourier summary of the per-rank skew profile at one step.",
)
def _fourier_kernel(batch: BatchedTiming, ctx: MetricContext,
                    step: int = -1) -> dict:
    n_steps = batch.n_steps
    resolved = step + n_steps if step < 0 else step
    if not 0 <= resolved < n_steps:
        raise IndexError(f"step {step} out of range [0, {n_steps})")
    col = batch.completion[:, :, resolved]  # [B, P]
    profile = col - col.mean(axis=1, keepdims=True)
    power = np.abs(np.fft.rfft(profile, axis=1)) ** 2  # [B, P//2 + 1]
    if power.shape[1] < 2:
        raise ValueError("spectrum has no nonzero wavenumber (need >= 2 ranks)")
    mode = 1 + np.argmax(power[:, 1:], axis=1)
    rows = np.arange(batch.n_batch)
    total = power[:, 1:].sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        fraction = np.where(total > 0, power[rows, mode] / total, 0.0)
    return {
        "dominant_mode": mode.astype(float),
        "dominant_wavelength": batch.n_ranks / mode,
        "mode_fraction": fraction,
    }
