"""Plain-data report specs: frozen dataclasses + strict dict parsing.

A :class:`ReportSpec` is the declarative description of one report: which
scenario (or scenarios) to draw results from, which metric kernels to
extract, how to group and aggregate over the sweep grid, and which
artifacts to emit.  Specs are frozen, hashable, and round-trip through
``to_dict``/``from_dict`` — the dict form is what TOML/JSON files load
into, exactly like :class:`repro.scenarios.spec.ScenarioSpec`.

Parsing is *strict*: unknown keys, wrong types, and out-of-range values
are rejected with a :class:`~repro.reports.errors.ReportError` naming the
exact dotted path of the offending field.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.fields import StrictFields
from repro.reports.errors import ReportError

__all__ = ["ArtifactRequest", "MetricRequest", "ReportSpec"]

#: Recognized artifact kinds (see :mod:`repro.reports.artifacts`).
ARTIFACT_KINDS = ("csv", "json", "npz", "ascii")

#: Named aggregation statistics; ``pNN`` percentiles are accepted too.
NAMED_STATS = ("mean", "std", "median", "min", "max")

_PERCENTILE_RE = re.compile(r"^p(\d{1,2}(?:\.\d+)?|100)$")


class _Fields(StrictFields):
    """Report-flavored strict reader (errors carry the report name)."""

    def __init__(self, data: Any, path: str, report: str = "") -> None:
        self.report = report
        super().__init__(
            data, path,
            make_error=lambda message, p: ReportError(
                message, path=p, report=report),
            root_label="report",
        )


def _str_list(values: "list | None", path: str, report: str,
              allow_empty: bool = True) -> "tuple[str, ...] | None":
    if values is None:
        return None
    out = []
    for i, value in enumerate(values):
        if not isinstance(value, str) or not value:
            raise ReportError(
                f"expected a non-empty str, got {value!r}",
                path=f"{path}[{i}]", report=report,
            )
        out.append(value)
    if not out and not allow_empty:
        raise ReportError("list must not be empty", path=path, report=report)
    return tuple(out)


def _check_stat(stat: str, path: str, report: str) -> str:
    if stat in NAMED_STATS or _PERCENTILE_RE.match(stat):
        return stat
    raise ReportError(
        f"{stat!r} is not a known statistic; use one of "
        f"{list(NAMED_STATS)} or a percentile like 'p95'",
        path=path, report=report,
    )


@dataclass(frozen=True)
class MetricRequest:
    """One metric extraction: a registered kernel plus its parameters.

    ``alias`` renames the metric's column prefix in the report table
    (useful when the same kernel appears twice with different params).
    """

    name: str
    alias: "str | None" = None
    params: "tuple[tuple[str, Any], ...]" = ()

    @classmethod
    def parse(cls, data: Any, where: str, report: str = "") -> "MetricRequest":
        f = _Fields(data, where, report)
        name = f.take("name", "str", required=True)
        alias = f.take("alias", "str")
        params = f.take("params", "table", default={})
        f.finish()
        if alias is not None and not alias:
            raise ReportError("alias must not be empty",
                              path=f"{where}.alias", report=report)
        return cls(name=name, alias=alias,
                   params=tuple(sorted(dict(params).items())))

    @property
    def label(self) -> str:
        """Column prefix in report tables."""
        return self.alias or self.name

    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.alias is not None:
            out["alias"] = self.alias
        if self.params:
            out["params"] = dict(self.params)
        return out


@dataclass(frozen=True)
class ArtifactRequest:
    """One output artifact: a kind and an optional relative path override."""

    kind: str
    path: "str | None" = None

    @classmethod
    def parse(cls, data: Any, where: str, report: str = "") -> "ArtifactRequest":
        f = _Fields(data, where, report)
        kind = f.take("kind", "str", required=True)
        path = f.take("path", "str")
        f.finish()
        if kind not in ARTIFACT_KINDS:
            raise ReportError(
                f"{kind!r} is not one of {list(ARTIFACT_KINDS)}",
                path=f"{where}.kind", report=report,
            )
        if path is not None and not path:
            raise ReportError("path must not be empty",
                              path=f"{where}.path", report=report)
        return cls(kind=kind, path=path)

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        if self.path is not None:
            out["path"] = self.path
        return out


@dataclass(frozen=True)
class ReportSpec:
    """A complete declarative report description.

    Attributes
    ----------
    scenarios:
        The scenario(s) the report draws on — bundled names or file
        paths.  A single-element tuple is the common case; multiple
        scenarios form a cross-scenario comparison (group by the
        implicit ``"scenario"`` column).
    seeds:
        Explicit per-point run seeds.  When given, every grid point runs
        once per seed (replacing the scenario's ``replicates`` /derived
        seeding) — this is how the fig7/fig8 reports pin the exact seeds
        the experiment drivers use.
    base_seed:
        Base seed for derived replicate seeding (ignored when ``seeds``
        is given); defaults to each scenario's own seed.
    group_by:
        Dotted sweep-axis paths (plus the implicit ``"scenario"``) whose
        values define the report's rows.  Defaults to every sweep axis,
        plus ``"scenario"`` for multi-scenario reports.
    aggregate:
        Statistics computed per group over all draws: ``mean``, ``std``,
        ``median``, ``min``, ``max``, or percentiles like ``p95``.
    """

    name: str
    description: str = ""
    scenarios: "tuple[str, ...]" = ()
    engine: str = "auto"
    seeds: "tuple[int, ...] | None" = None
    base_seed: "int | None" = None
    group_by: "tuple[str, ...] | None" = None
    aggregate: "tuple[str, ...]" = ("mean",)
    metrics: "tuple[MetricRequest, ...]" = ()
    artifacts: "tuple[ArtifactRequest, ...]" = field(default_factory=tuple)

    @classmethod
    def from_dict(cls, data: Any, name: "str | None" = None) -> "ReportSpec":
        """Parse and validate a plain-data report document.

        ``name`` overrides/supplies the report name (e.g. from the file
        stem) when the document has none.
        """
        report = name or (data.get("name", "") if isinstance(data, Mapping) else "")
        f = _Fields(data, "", report)
        doc_name = f.take("name", "str", default=name)
        description = f.take("description", "str", default="")
        scenario = f.take("scenario", "str")
        scenarios = f.take("scenarios", "list")
        engine = f.take("engine", "str", default="auto")
        raw_seeds = f.take("seeds", "list")
        base_seed = f.take("base_seed", "int")
        group_by = f.take("group_by", "list")
        aggregate = f.take("aggregate", "list", default=["mean"])
        raw_metrics = f.take("metrics", "list", default=[])
        raw_artifacts = f.take("artifacts", "list", default=[])
        f.finish()

        if not doc_name:
            raise ReportError("report has no name (give 'name' in the "
                              "document or load it from a file)", path="name")
        if (scenario is None) == (scenarios is None):
            raise ReportError(
                "give exactly one of 'scenario' (a single name/path) or "
                "'scenarios' (a list for cross-scenario comparison)",
                path="scenario", report=report,
            )
        targets = _str_list(
            [scenario] if scenario is not None else scenarios,
            "scenarios" if scenarios is not None else "scenario",
            report, allow_empty=False,
        )
        if len(set(targets)) != len(targets):
            raise ReportError("duplicate scenario entries",
                              path="scenarios", report=report)
        if engine not in ("auto", "lockstep", "dag"):
            raise ReportError(
                f"{engine!r} is not one of ['auto', 'dag', 'lockstep']",
                path="engine", report=report,
            )
        seeds = None
        if raw_seeds is not None:
            if not raw_seeds:
                raise ReportError("seed list must not be empty",
                                  path="seeds", report=report)
            for i, s in enumerate(raw_seeds):
                if not isinstance(s, int) or isinstance(s, bool):
                    raise ReportError(f"expected int, got {s!r}",
                                      path=f"seeds[{i}]", report=report)
            if len(set(raw_seeds)) != len(raw_seeds):
                raise ReportError("duplicate seeds", path="seeds",
                                  report=report)
            seeds = tuple(raw_seeds)
        if seeds is not None and base_seed is not None:
            raise ReportError(
                "'base_seed' drives derived replicate seeding and has no "
                "effect when explicit 'seeds' are given",
                path="base_seed", report=report,
            )
        stats = tuple(
            _check_stat(s, f"aggregate[{i}]", report) if isinstance(s, str)
            else _check_stat(repr(s), f"aggregate[{i}]", report)
            for i, s in enumerate(aggregate)
        )
        if not stats:
            raise ReportError("at least one statistic is required",
                              path="aggregate", report=report)
        if len(set(stats)) != len(stats):
            raise ReportError("duplicate statistics", path="aggregate",
                              report=report)
        metrics = tuple(
            MetricRequest.parse(m, f"metrics[{i}]", report)
            for i, m in enumerate(raw_metrics)
        )
        if not metrics:
            raise ReportError("at least one metric is required",
                              path="metrics", report=report)
        labels = [m.label for m in metrics]
        dupes = {lbl for lbl in labels if labels.count(lbl) > 1}
        if dupes:
            raise ReportError(
                f"duplicate metric label(s) {sorted(dupes)}; disambiguate "
                "repeated kernels with 'alias'",
                path="metrics", report=report,
            )
        artifacts = tuple(
            ArtifactRequest.parse(a, f"artifacts[{i}]", report)
            for i, a in enumerate(raw_artifacts)
        )
        return cls(
            name=doc_name, description=description, scenarios=targets,
            engine=engine, seeds=seeds, base_seed=base_seed,
            group_by=_str_list(group_by, "group_by", report),
            aggregate=stats, metrics=metrics, artifacts=artifacts,
        )

    def to_dict(self) -> dict:
        """Plain-data form; round-trips through :meth:`from_dict`."""
        out: dict = {"name": self.name}
        if self.description:
            out["description"] = self.description
        if len(self.scenarios) == 1:
            out["scenario"] = self.scenarios[0]
        else:
            out["scenarios"] = list(self.scenarios)
        if self.engine != "auto":
            out["engine"] = self.engine
        if self.seeds is not None:
            out["seeds"] = list(self.seeds)
        if self.base_seed is not None:
            out["base_seed"] = self.base_seed
        if self.group_by is not None:
            out["group_by"] = list(self.group_by)
        out["aggregate"] = list(self.aggregate)
        out["metrics"] = [m.to_dict() for m in self.metrics]
        if self.artifacts:
            out["artifacts"] = [a.to_dict() for a in self.artifacts]
        return out
