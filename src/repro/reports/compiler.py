"""Report compilation: resolve a spec into runnable campaign + kernel plans.

:func:`compile_report` validates a :class:`~repro.reports.spec.ReportSpec`
against the scenario registry, the sweep grids of its target scenarios,
and the metric-kernel registry, producing a :class:`CompiledReport` whose
targets carry ready-to-dispatch :class:`~repro.runtime.spec.SweepSpec`
campaigns over the timing task.  Compilation is cheap and side-effect
free; every failure raises :class:`~repro.reports.errors.ReportError`
naming the offending report field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reports.errors import ReportError
from repro.reports.kernels import MetricKernel, get_kernel
from repro.reports.spec import MetricRequest, ReportSpec
from repro.reports.tasks import TIMING_TASK_FN
from repro.runtime.spec import SweepSpec
from repro.scenarios.errors import ScenarioError
from repro.scenarios.registry import resolve_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.sweep import GridExpansion, expand_scenario_grid

__all__ = ["CompiledReport", "ReportTarget", "ResolvedMetric", "compile_report"]

#: The implicit group column naming the target scenario.
SCENARIO_COLUMN = "scenario"


@dataclass(frozen=True)
class ResolvedMetric:
    """One metric request bound to its registered kernel."""

    request: MetricRequest
    kernel: MetricKernel

    @property
    def label(self) -> str:
        return self.request.label

    @property
    def params(self) -> dict:
        return dict(self.request.params)


@dataclass(frozen=True)
class ReportTarget:
    """One scenario's contribution to a report: grid + timing campaign."""

    scenario: ScenarioSpec
    grid: GridExpansion
    sweep: SweepSpec
    draws_per_point: int


@dataclass(frozen=True)
class CompiledReport:
    """A validated, fully resolved report, ready to execute."""

    spec: ReportSpec
    targets: "tuple[ReportTarget, ...]"
    metrics: "tuple[ResolvedMetric, ...]"
    group_by: "tuple[str, ...]"
    aggregate: "tuple[str, ...]"

    @property
    def n_tasks(self) -> int:
        return sum(t.sweep.size for t in self.targets)


def _resolve_metrics(spec: ReportSpec) -> "tuple[ResolvedMetric, ...]":
    metrics = []
    for i, request in enumerate(spec.metrics):
        try:
            kernel = get_kernel(request.name)
        except ReportError as exc:
            raise ReportError(exc.message, path=f"metrics[{i}].name",
                              report=spec.name) from exc
        unknown = [k for k, _ in request.params if k not in kernel.params]
        if unknown:
            raise ReportError(
                f"kernel {kernel.name!r} does not take parameter(s) "
                f"{sorted(unknown)} (recognized: {sorted(kernel.params) or 'none'})",
                path=f"metrics[{i}].params", report=spec.name,
            )
        metrics.append(ResolvedMetric(request=request, kernel=kernel))
    return tuple(metrics)


def _target_sweep(spec: ReportSpec, scenario: ScenarioSpec,
                  grid: GridExpansion) -> "tuple[SweepSpec, int]":
    base = {"scenario": grid.document, "engine": grid.engine}
    if spec.seeds is not None:
        # Explicit seeds travel as an ordinary axis (seeded=False): the
        # seed is part of the task description — and hence the cache key —
        # exactly as a derived seed would be.
        sweep = SweepSpec(
            fn=TIMING_TASK_FN, base=base,
            axes=(("overrides", grid.points), ("seed", spec.seeds)),
            seeded=False,
        )
        return sweep, len(spec.seeds)
    sweep = SweepSpec(
        fn=TIMING_TASK_FN, base=base,
        axes=(("overrides", grid.points),
              ("replicate", tuple(range(grid.replicates)))),
        base_seed=scenario.seed if spec.base_seed is None else spec.base_seed,
    )
    return sweep, grid.replicates


def _resolve_group_by(spec: ReportSpec,
                      targets: "tuple[ReportTarget, ...]") -> "tuple[str, ...]":
    axis_lists = [
        [axis.path for axis in (t.scenario.sweep.axes if t.scenario.sweep else ())]
        for t in targets
    ]
    common = [p for p in axis_lists[0]
              if all(p in paths for paths in axis_lists[1:])]
    if spec.group_by is None:
        prefix = [SCENARIO_COLUMN] if len(targets) > 1 else []
        return tuple(prefix + common)
    for i, path in enumerate(spec.group_by):
        if path == SCENARIO_COLUMN:
            continue
        if path not in common:
            raise ReportError(
                f"group path {path!r} is not a sweep axis of every target "
                f"scenario (common axes: {common or 'none'}; "
                f"'{SCENARIO_COLUMN}' is always available)",
                path=f"group_by[{i}]", report=spec.name,
            )
    if len(set(spec.group_by)) != len(spec.group_by):
        raise ReportError("duplicate group paths", path="group_by",
                          report=spec.name)
    return spec.group_by


def compile_report(spec: ReportSpec) -> CompiledReport:
    """Validate and resolve a report against scenarios and kernels."""
    metrics = _resolve_metrics(spec)

    targets = []
    for i, name in enumerate(spec.scenarios):
        where = (f"scenarios[{i}]" if len(spec.scenarios) > 1 else "scenario")
        try:
            scenario = resolve_scenario(name)
            grid = expand_scenario_grid(scenario, engine=spec.engine)
        except ScenarioError as exc:
            raise ReportError(
                f"scenario {name!r} does not resolve: {exc}",
                path=where, report=spec.name,
            ) from exc
        needing = [m.kernel.name for m in metrics if m.kernel.needs_delay]
        if needing and any(not c.cfg.delays for c in grid.compiled):
            raise ReportError(
                f"metric(s) {needing} trace the idle wave of an explicit "
                f"delay, but scenario {scenario.name!r} has grid points "
                "without any 'delays' entry",
                path=where, report=spec.name,
            )
        sweep, draws = _target_sweep(spec, scenario, grid)
        targets.append(ReportTarget(scenario=scenario, grid=grid,
                                    sweep=sweep, draws_per_point=draws))
    targets = tuple(targets)

    # Kernel parameter *values* are validated against every grid point
    # here, so `report validate` catches them — not a dispatched sweep.
    for i, metric in enumerate(metrics):
        if metric.kernel.check is None:
            continue
        for target in targets:
            for compiled_point in target.grid.compiled:
                problem = metric.kernel.check(metric.params, compiled_point)
                if problem:
                    raise ReportError(problem, path=f"metrics[{i}].params",
                                      report=spec.name)

    return CompiledReport(
        spec=spec,
        targets=targets,
        metrics=metrics,
        group_by=_resolve_group_by(spec, targets),
        aggregate=spec.aggregate,
    )
