"""Store query layer: resolve a report's campaign against cached results.

A report names a scenario sweep; the sweep expands into content-addressed
tasks (:mod:`repro.runtime.spec`), and this module answers the question
*"which of those results are already on disk?"* without constructing an
executor.  When every task is cached, :func:`fetch_campaign` returns
the values straight from the store — the engine is provably never
touched (the execution path is not even imported).  On a miss it falls
back to dispatching the remaining work through
:func:`repro.runtime.executor.run_campaign`, inheriting ``--jobs``
sharding, block batching, and deterministic seeding.

Two scale features ride on the packed store backend
(:mod:`repro.runtime.shards`):

- **zero-copy reads** — cached fetches pass ``mmap=True`` to the store,
  so array fields of packed records arrive as read-only views into the
  shard's memory map; stacking a ``(B, P, S)`` timing batch then gathers
  straight from the mapped pages with no per-record intermediate copy.
- **streaming** — :func:`stream_campaign` yields a fully-cached
  campaign's values in fixed-size blocks, loading each block only when
  the consumer reaches it: a report over a huge sweep holds one grid
  point's draws in memory at a time instead of materializing all of
  them (:func:`repro.reports.runner.run_report` consumes it per point).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.obs.events import enabled as events_enabled
from repro.runtime.spec import RunSpec
from repro.runtime.store import ResultStore

__all__ = ["CampaignFetch", "CampaignStream", "fetch_campaign",
           "load_cached", "stream_campaign"]


@dataclass(frozen=True)
class CampaignFetch:
    """The values of one campaign's tasks, with their provenance.

    ``values`` is in task (spec) order; ``n_loaded`` counts results
    served from the store, ``n_executed`` those freshly simulated.
    """

    values: "tuple[Mapping, ...]"
    n_loaded: int
    n_executed: int

    @property
    def n_tasks(self) -> int:
        return len(self.values)


def _store_get(store, key: str, mmap: bool) -> "Mapping | None":
    """One store lookup, zero-copy when asked for and supported."""
    if mmap:
        try:
            return store.get(key, mmap=True)
        except TypeError:  # store-like test double without the kwarg
            return store.get(key)
    return store.get(key)


def load_cached(
    store: "ResultStore | None", specs: "Sequence[RunSpec]",
    mmap: bool = False,
) -> "tuple[list[Mapping | None], list[RunSpec]]":
    """Look every task up by its content hash; no execution, ever.

    Returns ``(values, missing)``: ``values`` has one entry per task in
    order (``None`` on a miss), ``missing`` lists the specs that need
    dispatching.  With no store, everything is missing.  ``mmap=True``
    requests zero-copy (read-only) array views for packed records.
    """
    if store is None:
        return [None] * len(specs), list(specs)
    values: "list[Mapping | None]" = [
        _store_get(store, spec.key, mmap) for spec in specs
    ]
    missing = [spec for spec, value in zip(specs, values) if value is None]
    return values, missing


def fetch_campaign(
    specs: "Sequence[RunSpec]",
    store: "ResultStore | None" = None,
    jobs: int = 1,
    batcher=None,
    mmap: bool = False,
    retry=None,
    stall_action: str = "warn",
) -> CampaignFetch:
    """All task values, from the store where possible, executed otherwise.

    The fully-cached path never imports the executor: a report over an
    already-run sweep performs zero engine invocations by construction.
    Cache misses dispatch the *whole* campaign through
    :func:`~repro.runtime.executor.run_campaign` (hits are still served
    from the store inside it); any task failure raises
    :class:`~repro.runtime.executor.TaskError`.
    """
    specs = tuple(specs)
    values, missing = load_cached(store, specs, mmap=mmap)
    if not missing:
        # The fully-cached path bypasses run_campaign (and its event
        # emission), so publish the hits here — a warm report still
        # streams one terminal event per task.
        if events_enabled():
            from repro.obs import events

            for spec in specs:
                events.emit("task.cache_hit", index=spec.index)
        return CampaignFetch(values=tuple(values), n_loaded=len(specs),
                             n_executed=0)

    from repro.runtime.executor import run_campaign

    campaign = run_campaign(specs, jobs=jobs, store=store, batcher=batcher,
                            retry=retry, stall_action=stall_action)
    campaign.raise_failures()
    return CampaignFetch(
        values=tuple(result.value for result in campaign),
        n_loaded=campaign.n_cached,
        n_executed=campaign.n_executed,
    )


@dataclass
class CampaignStream:
    """A campaign's values, deliverable block by block.

    On the fully-cached path the stream is *lazy*: each block's records
    are loaded (``mmap`` zero-copy for packed records) only when the
    consumer reaches it, and nothing retains them afterwards — peak
    memory is one block, however large the sweep.  Any cache miss
    degrades to one eager :func:`fetch_campaign` over the whole spec
    list (execution has to materialize those values anyway), after which
    blocks are served as slices.

    ``n_loaded`` / ``n_executed`` are running counts; they are complete
    once :meth:`blocks` is exhausted.
    """

    specs: "tuple[RunSpec, ...]"
    store: "ResultStore | None" = None
    jobs: int = 1
    batcher: object = None
    mmap: bool = True
    retry: object = None
    stall_action: str = "warn"
    n_loaded: int = field(default=0, init=False)
    n_executed: int = field(default=0, init=False)

    @property
    def n_tasks(self) -> int:
        return len(self.specs)

    def _fully_cached(self) -> bool:
        if self.store is None:
            return False
        return all(spec.key in self.store for spec in self.specs)

    def blocks(self, size: int) -> "Iterator[tuple[Mapping, ...]]":
        """Yield the values in consecutive blocks of ``size`` tasks."""
        if size <= 0:
            raise ValueError(f"block size must be positive, got {size}")
        if not self._fully_cached():
            fetch = fetch_campaign(self.specs, store=self.store,
                                   jobs=self.jobs, batcher=self.batcher,
                                   mmap=self.mmap, retry=self.retry,
                                   stall_action=self.stall_action)
            self.n_loaded = fetch.n_loaded
            self.n_executed = fetch.n_executed
            for start in range(0, len(self.specs), size):
                yield fetch.values[start:start + size]
            return
        publish = events_enabled()
        for start in range(0, len(self.specs), size):
            block = []
            for spec in self.specs[start:start + size]:
                value = _store_get(self.store, spec.key, self.mmap)
                if value is None:
                    # The presence probe raced a gc/teardown: recompute
                    # just this task through the executor.
                    from repro.runtime.executor import run_campaign

                    campaign = run_campaign([spec], jobs=1, store=self.store,
                                            retry=self.retry)
                    campaign.raise_failures()
                    value = campaign.results[0].value
                    self.n_executed += 1
                else:
                    self.n_loaded += 1
                    if publish:
                        from repro.obs import events

                        events.emit("task.cache_hit", index=spec.index)
                block.append(value)
            yield tuple(block)


def stream_campaign(
    specs: "Sequence[RunSpec]",
    store: "ResultStore | None" = None,
    jobs: int = 1,
    batcher=None,
    mmap: bool = True,
    retry=None,
    stall_action: str = "warn",
) -> CampaignStream:
    """A :class:`CampaignStream` over the campaign's tasks.

    The streaming counterpart of :func:`fetch_campaign`: same dispatch
    and failure semantics (including the forwarded
    :class:`~repro.runtime.retry.RetryPolicy`), but a fully-cached sweep
    is read lazily in blocks instead of being materialized whole.
    """
    return CampaignStream(specs=tuple(specs), store=store, jobs=jobs,
                          batcher=batcher, mmap=mmap, retry=retry,
                          stall_action=stall_action)
