"""Store query layer: resolve a report's campaign against cached results.

A report names a scenario sweep; the sweep expands into content-addressed
tasks (:mod:`repro.runtime.spec`), and this module answers the question
*"which of those results are already on disk?"* without constructing an
executor.  When every task is cached, :func:`fetch_campaign` returns
the values straight from the store — the engine is provably never
touched (the execution path is not even imported).  On a miss it falls
back to dispatching the remaining work through
:func:`repro.runtime.executor.run_campaign`, inheriting ``--jobs``
sharding, block batching, and deterministic seeding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.obs.events import enabled as events_enabled
from repro.runtime.spec import RunSpec
from repro.runtime.store import ResultStore

__all__ = ["CampaignFetch", "load_cached", "fetch_campaign"]


@dataclass(frozen=True)
class CampaignFetch:
    """The values of one campaign's tasks, with their provenance.

    ``values`` is in task (spec) order; ``n_loaded`` counts results
    served from the store, ``n_executed`` those freshly simulated.
    """

    values: "tuple[Mapping, ...]"
    n_loaded: int
    n_executed: int

    @property
    def n_tasks(self) -> int:
        return len(self.values)


def load_cached(
    store: "ResultStore | None", specs: "Sequence[RunSpec]"
) -> "tuple[list[Mapping | None], list[RunSpec]]":
    """Look every task up by its content hash; no execution, ever.

    Returns ``(values, missing)``: ``values`` has one entry per task in
    order (``None`` on a miss), ``missing`` lists the specs that need
    dispatching.  With no store, everything is missing.
    """
    if store is None:
        return [None] * len(specs), list(specs)
    values: "list[Mapping | None]" = [store.get(spec.key) for spec in specs]
    missing = [spec for spec, value in zip(specs, values) if value is None]
    return values, missing


def fetch_campaign(
    specs: "Sequence[RunSpec]",
    store: "ResultStore | None" = None,
    jobs: int = 1,
    batcher=None,
) -> CampaignFetch:
    """All task values, from the store where possible, executed otherwise.

    The fully-cached path never imports the executor: a report over an
    already-run sweep performs zero engine invocations by construction.
    Cache misses dispatch the *whole* campaign through
    :func:`~repro.runtime.executor.run_campaign` (hits are still served
    from the store inside it); any task failure raises
    :class:`~repro.runtime.executor.TaskError`.
    """
    specs = tuple(specs)
    values, missing = load_cached(store, specs)
    if not missing:
        # The fully-cached path bypasses run_campaign (and its event
        # emission), so publish the hits here — a warm report still
        # streams one terminal event per task.
        if events_enabled():
            from repro.obs import events

            for spec in specs:
                events.emit("task.cache_hit", index=spec.index)
        return CampaignFetch(values=tuple(values), n_loaded=len(specs),
                             n_executed=0)

    from repro.runtime.executor import run_campaign

    campaign = run_campaign(specs, jobs=jobs, store=store, batcher=batcher)
    campaign.raise_failures()
    return CampaignFetch(
        values=tuple(result.value for result in campaign),
        n_loaded=campaign.n_cached,
        n_executed=campaign.n_executed,
    )
