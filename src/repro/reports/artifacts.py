"""Artifact generation: a finished report table → files on disk.

Four artifact kinds are supported (see ``ARTIFACT_KINDS`` in
:mod:`repro.reports.spec`):

- ``csv`` — the aggregated table, one row per group;
- ``json`` — the table plus provenance (task counts, store hits) in a
  machine-readable document;
- ``npz`` — the aggregated columns as arrays, plus the raw per-draw
  samples per metric column (for downstream numeric analysis);
- ``ascii`` — the rendered text table, written under ``viz/`` (the
  plotless counterpart of a figure).

Paths default to ``<out_dir>/<report name>.<ext>`` (``viz/<name>.txt``
for ascii) and can be overridden per artifact in the spec.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.reports.runner import ReportResult

__all__ = ["write_artifacts"]


def _default_name(result: ReportResult, kind: str) -> str:
    if kind == "ascii":
        return f"viz/{result.name}.txt"
    return f"{result.name}.{kind}"


def _write_csv(result: ReportResult, path: Path) -> None:
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([*result.group_columns, "draws", *result.value_columns])
        for row in result.rows:
            writer.writerow([
                *(row.group.get(col, "") for col in result.group_columns),
                row.n_draws,
                *(repr(row.values.get(col, float("nan")))
                  for col in result.value_columns),
            ])


def _write_json(result: ReportResult, path: Path) -> None:
    def scrub(value):
        # JSON has no NaN; emit null so consumers need no custom parser.
        if isinstance(value, float) and not np.isfinite(value):
            return None
        return value

    document = {
        "name": result.name,
        "description": result.report.spec.description,
        "group_columns": list(result.group_columns),
        "value_columns": list(result.value_columns),
        "rows": [
            {
                "group": dict(row.group),
                "draws": row.n_draws,
                "values": {col: scrub(row.values.get(col, float("nan")))
                           for col in result.value_columns},
            }
            for row in result.rows
        ],
        "provenance": {
            "n_tasks": result.n_tasks,
            "n_loaded_from_store": result.n_loaded,
            "n_executed": result.n_executed,
        },
    }
    path.write_text(json.dumps(document, indent=2) + "\n")


def _write_npz(result: ReportResult, path: Path) -> None:
    arrays: dict = {
        f"group/{col}": np.asarray(
            [str(row.group.get(col, "")) for row in result.rows])
        for col in result.group_columns
    }
    arrays["n_draws"] = np.asarray([row.n_draws for row in result.rows])
    for col in result.value_columns:
        arrays[f"value/{col}"] = np.asarray(
            [row.values.get(col, float("nan")) for row in result.rows])
    for i, row in enumerate(result.rows):
        for col, samples in row.draws.items():
            arrays[f"draws/{i}/{col}"] = np.asarray(samples)
    np.savez_compressed(path, **arrays)


def _write_ascii(result: ReportResult, path: Path) -> None:
    path.write_text(result.render() + "\n")


_WRITERS = {
    "csv": _write_csv,
    "json": _write_json,
    "npz": _write_npz,
    "ascii": _write_ascii,
}


def write_artifacts(result: ReportResult, out_dir: "str | Path") -> "list[Path]":
    """Write every artifact the report spec requests; returns the paths."""
    out_dir = Path(out_dir)
    written = []
    for artifact in result.report.spec.artifacts:
        rel = artifact.path or _default_name(result, artifact.kind)
        path = out_dir / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        _WRITERS[artifact.kind](result, path)
        written.append(path)
    return written
