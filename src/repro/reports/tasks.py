"""Campaign task functions for report metric extraction.

Reports separate *simulation* from *analysis*: the campaign task persists
a run's dense timing matrices (the :class:`~repro.core.timing.RunTiming`
triple, stored as NPZ side-cars by the content-addressed result store),
and the metric kernels re-derive every reported quantity from those
matrices at report time.  Changing a report's metrics, grouping, or
artifacts therefore never invalidates the cache — a new report over an
already-run sweep touches the engine zero times.

:class:`ReportTaskBatcher` mirrors
:class:`repro.scenarios.batch.ScenarioTaskBatcher`: contiguous blocks of
tasks that differ only in their seed execute as one batched lockstep
invocation, with per-task values bit-identical to unbatched execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.timing import RunTiming
from repro.runtime.executor import TaskBatcher
from repro.runtime.spec import RunSpec, hashable
from repro.scenarios.tasks import resolve_task_scenario

__all__ = ["TIMING_TASK_FN", "ReportTaskBatcher", "scenario_timing_task"]

TIMING_TASK_FN = "repro.reports.tasks:scenario_timing_task"


def scenario_timing_task(
    scenario: Mapping,
    overrides: "Mapping[str, Any] | None" = None,
    replicate: int = 0,
    engine: str = "auto",
    seed: int = 0,
) -> dict:
    """Run one scenario grid point; returns its dense timing matrices.

    Parameters mirror :func:`repro.scenarios.tasks.scenario_task` — same
    document/override resolution, same compile, same per-seed randomness
    — but the value is the run's raw ``[n_ranks, n_steps]`` timing
    (``exec_end`` / ``completion`` / ``idle``) instead of the scenario's
    evaluated outputs, which is what the report kernels consume.
    """
    from repro.scenarios.compiler import compile_scenario
    from repro.scenarios.runner import _execute_prepared, prepare_scenario_run

    spec = resolve_task_scenario(scenario, overrides)
    compiled = compile_scenario(spec, engine=engine)
    prepared = prepare_scenario_run(compiled, seed)
    timing = _execute_prepared(compiled, prepared)
    return _timing_value(timing)


def _timing_value(timing: RunTiming) -> dict:
    return {
        "exec_end": np.asarray(timing.exec_end, dtype=float),
        "completion": np.asarray(timing.completion, dtype=float),
        "idle": np.asarray(timing.idle, dtype=float),
    }


def _task_seed(spec: RunSpec) -> int:
    """A timing task's effective seed: derived, or the explicit parameter."""
    if spec.seed is not None:
        return spec.seed
    return int(spec.kwargs.get("seed", 0))


@dataclass(frozen=True)
class ReportTaskBatcher(TaskBatcher):
    """Group contiguous same-grid-point timing tasks into engine batches.

    Tasks are batchable when they share everything but their seed — either
    the derived per-task seed of a replicate block, or an explicit
    ``seed`` axis value (reports with a ``seeds = [...]`` list).  Each
    block compiles the scenario once and runs all its draws as a single
    ``[B, n_ranks, n_steps]`` batched invocation — the lockstep
    recurrence, or one batched propagation through a cached
    :class:`~repro.sim.engine.StaticDag` for forced-DAG blocks.

    Parameters
    ----------
    max_block:
        Upper bound on tasks per batch, limiting the peak size of the
        stacked timing arrays.
    """

    max_block: int = 64

    def plan(self, specs: "Sequence[RunSpec]") -> "list[list[int]]":
        blocks: "list[list[int]]" = []
        current: "list[int]" = []
        current_sig: "tuple | None" = None
        for i, spec in enumerate(specs):
            sig = self._signature(spec)
            if (sig is not None and sig == current_sig
                    and len(current) < self.max_block):
                current.append(i)
            else:
                if current:
                    blocks.append(current)
                current, current_sig = [i], sig
        if current:
            blocks.append(current)
        return blocks

    @staticmethod
    def _signature(spec: RunSpec) -> "tuple | None":
        """Batch-compatibility key: everything but the seed and replicate."""
        if spec.fn != TIMING_TASK_FN:
            return None
        return tuple((k, hashable(v)) for k, v in spec.params
                     if k not in ("replicate", "seed"))

    def execute(self, specs: "Sequence[RunSpec]") -> "list[Mapping]":
        """Run one seed block through the batched engine path.

        Mirrors :func:`scenario_timing_task` exactly — same resolution,
        same compile, same per-seed randomness — so each returned value
        is bit-identical to the corresponding unbatched task call (the
        batched recurrence is elementwise along the batch axis).
        """
        from repro.scenarios.compiler import compile_scenario
        from repro.scenarios.runner import prepare_scenario_run
        from repro.sim.engine import simulate_dag_batch
        from repro.sim.lockstep import simulate_lockstep_batch

        first = specs[0].kwargs
        spec = resolve_task_scenario(first["scenario"], first.get("overrides"))
        compiled = compile_scenario(spec, engine=first.get("engine", "auto"))
        prepared = [prepare_scenario_run(compiled, _task_seed(s)) for s in specs]

        stacked = np.stack([p.exec_times for p in prepared])
        if compiled.engine == "lockstep":
            batch = simulate_lockstep_batch(
                compiled.cfg, stacked,
                network=compiled.network, domain=compiled.domain,
                protocol=compiled.protocol, eager_limit=compiled.eager_limit,
                mapping=compiled.mapping,
            )
            timings = (RunTiming.from_lockstep(batch[b])
                       for b in range(len(specs)))
        else:
            dag_batch = simulate_dag_batch(compiled.cfg, stacked,
                                           compiled.sim_config())
            timings = (RunTiming.from_dag(dag_batch[b])
                       for b in range(len(specs)))
        return [_timing_value(t) for t in timings]
