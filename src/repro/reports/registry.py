"""The bundled report registry.

Report files shipped with the package live in ``reports/data/``; the
registry lists them, loads them by name, and resolves a CLI argument that
may be either a bundled name or a path to a user's own file — the same
data-driven growth path the scenario registry established.
"""

from __future__ import annotations

from pathlib import Path

from repro.reports.errors import ReportError
from repro.reports.loader import load_report_file
from repro.reports.spec import ReportSpec

__all__ = [
    "BUNDLED_REPORT_DIR",
    "bundled_report_names",
    "load_bundled_report",
    "iter_bundled_reports",
    "resolve_report",
]

BUNDLED_REPORT_DIR = Path(__file__).parent / "data"


def bundled_report_names() -> "list[str]":
    """Sorted, deduplicated names of all bundled reports (file stems)."""
    return sorted({
        p.stem
        for pattern in ("*.toml", "*.json")
        for p in BUNDLED_REPORT_DIR.glob(pattern)
    })


def load_bundled_report(name: str) -> ReportSpec:
    """Load one bundled report by name."""
    for suffix in (".toml", ".json"):
        path = BUNDLED_REPORT_DIR / f"{name}{suffix}"
        if path.exists():
            return load_report_file(path)
    raise ReportError(
        f"unknown bundled report {name!r}; "
        f"available: {bundled_report_names()}"
    )


def iter_bundled_reports() -> "list[ReportSpec]":
    """Load every bundled report (validated on load)."""
    return [load_bundled_report(name) for name in bundled_report_names()]


def resolve_report(name_or_path: str) -> ReportSpec:
    """Resolve a CLI argument: bundled name, or path to a report file."""
    candidate = Path(name_or_path)
    if candidate.suffix.lower() in (".toml", ".json") or candidate.exists():
        return load_report_file(candidate)
    return load_bundled_report(name_or_path)
