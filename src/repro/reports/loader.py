"""Loading report documents from TOML / JSON files.

TOML is the native authoring format; JSON is accepted for
machine-generated reports.  The file stem supplies the report name when
the document has none, mirroring the scenario loader.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path
from typing import Any

from repro.reports.errors import ReportError
from repro.reports.spec import ReportSpec

__all__ = ["load_report_file", "parse_report_text"]


def parse_report_text(text: str, fmt: str = "toml",
                      name: "str | None" = None) -> ReportSpec:
    """Parse a report document from text (``fmt`` = ``toml`` | ``json``)."""
    if fmt == "toml":
        try:
            data: Any = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ReportError(f"invalid TOML: {exc}", report=name or "") from exc
    elif fmt == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReportError(f"invalid JSON: {exc}", report=name or "") from exc
    else:
        raise ReportError(f"unknown report format {fmt!r}; use 'toml' or 'json'")
    return ReportSpec.from_dict(data, name=name)


def load_report_file(path: "str | Path") -> ReportSpec:
    """Load one report file (``.toml`` or ``.json``).

    Raises
    ------
    ReportError
        On unreadable files, malformed markup, or spec validation
        failures — always naming the file and (where known) the offending
        field path.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in (".toml", ".json"):
        raise ReportError(
            f"unsupported report file type {path.suffix!r} ({path}); "
            "use .toml or .json"
        )
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ReportError(f"cannot read report file {path}: {exc}") from exc
    try:
        return parse_report_text(text, fmt=suffix[1:], name=path.stem)
    except ReportError as exc:
        raise ReportError(f"{exc.message} (file: {path})", path=exc.path,
                          report=exc.report or path.stem) from exc
