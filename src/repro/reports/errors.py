"""Report validation errors.

Every rejection in the report layer raises :class:`ReportError` and names
the exact spec field (dotted path, e.g. ``metrics[1].name``) that caused
it, so a user editing a report TOML file is pointed at the offending line
rather than at a Python traceback deep inside the compiler.
"""

from __future__ import annotations

__all__ = ["ReportError"]


class ReportError(ValueError):
    """A report spec failed validation or compilation.

    Parameters
    ----------
    message:
        Human-readable description of what is wrong and what would fix it.
    path:
        Dotted path of the offending field within the report document
        (e.g. ``"metrics[0].name"``), or ``""`` for document-level
        problems.
    report:
        Name of the report, when known — distinguishes failures when
        validating a batch of files.
    """

    def __init__(self, message: str, path: str = "", report: str = "") -> None:
        self.message = message
        self.path = path
        self.report = report
        prefix = ""
        if report:
            prefix += f"report {report!r}: "
        if path:
            prefix += f"field '{path}': "
        super().__init__(prefix + message)

    def with_report(self, name: str) -> "ReportError":
        """A copy of this error tagged with the report name."""
        if self.report:
            return self
        return ReportError(self.message, path=self.path, report=name)
