"""``python -m repro`` — alias for the repro-experiment CLI."""

import sys

from repro.cli import main

sys.exit(main())
