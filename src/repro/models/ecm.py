"""Simplified Execution-Cache-Memory (ECM) model.

The ECM model (Stengel et al. 2015, Hofmann et al. 2018) refines Roofline by
composing the runtime of one cache line's worth of work from in-core
execution and the transfer times through the cache hierarchy.  We implement
the classic non-overlapping-transfers variant for multicore scaling:

``T_core-line = max(T_OL, T_nOL + T_L1L2 + T_L2L3 + T_L3Mem)``

with multicore performance ``P(n) = min(n * P_single, P_roof)`` where the
roof is set by the memory bottleneck.  The paper cites ECM as the second
analytic node-level model; we use it to predict the single-core STREAM triad
performance feeding the Fig. 1 model lines and the saturation simulator's
``b_core``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ECMModel"]


@dataclass(frozen=True)
class ECMModel:
    """ECM runtime composition for one unit of steady-state loop work.

    All contributions are in **cycles per cache line (CL)** of processed
    data, following the standard ECM notation:

    Parameters
    ----------
    t_ol:
        Overlapping in-core execution (arithmetic) cycles per CL.
    t_nol:
        Non-overlapping in-core cycles (loads/stores issue) per CL.
    t_l1l2, t_l2l3, t_l3mem:
        Data-transfer cycles per CL between adjacent memory hierarchy
        levels.
    clock_hz:
        Core clock frequency.
    cacheline_bytes:
        Cache line size (64 B on the paper's systems).
    """

    t_ol: float
    t_nol: float
    t_l1l2: float
    t_l2l3: float
    t_l3mem: float
    clock_hz: float = 2.2e9
    cacheline_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("t_ol", "t_nol", "t_l1l2", "t_l2l3", "t_l3mem"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be > 0, got {self.clock_hz}")
        if self.cacheline_bytes <= 0:
            raise ValueError(f"cacheline_bytes must be > 0, got {self.cacheline_bytes}")

    # ------------------------------------------------------------------
    def cycles_per_cl_memory(self) -> float:
        """Single-core cycles per cache line with data coming from memory."""
        return max(self.t_ol, self.t_nol + self.t_l1l2 + self.t_l2l3 + self.t_l3mem)

    def single_core_bandwidth(self) -> float:
        """Effective single-core memory bandwidth in bytes/s."""
        cycles = self.cycles_per_cl_memory()
        if cycles == 0:
            raise ValueError("ECM model with zero cycles per CL has no finite bandwidth")
        return self.cacheline_bytes * self.clock_hz / cycles

    def single_core_runtime(self, bytes_total: float) -> float:
        """Seconds one core needs to stream ``bytes_total`` from memory."""
        if bytes_total < 0:
            raise ValueError(f"bytes_total must be >= 0, got {bytes_total}")
        return bytes_total / self.single_core_bandwidth()

    def multicore_runtime(self, bytes_total: float, cores: int, b_socket: float) -> float:
        """Seconds for ``cores`` cores sharing a socket of bandwidth ``b_socket``.

        ECM multicore scaling: linear until the socket bandwidth roof.
        """
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if b_socket <= 0:
            raise ValueError(f"b_socket must be > 0, got {b_socket}")
        effective_bw = min(cores * self.single_core_bandwidth(), b_socket)
        return bytes_total / effective_bw

    def saturation_cores(self, b_socket: float) -> int:
        """Cores needed to hit the socket bandwidth roof."""
        if b_socket <= 0:
            raise ValueError(f"b_socket must be > 0, got {b_socket}")
        b1 = self.single_core_bandwidth()
        cores = 1
        while cores * b1 < b_socket:
            cores += 1
        return cores
