"""LogP / LogGP / LogGOPS parameter sets.

LogGOPSim — the simulator the paper validates against — speaks the LogGOPS
model: latency ``L``, CPU overhead ``o``, per-message gap ``g``, per-byte
gap ``G``, per-byte overhead ``O``, rendezvous threshold ``S``, processors
``P``.  These dataclasses document the parameters, provide message-time
evaluation, and convert to the simulator's network models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import UniformNetwork

__all__ = ["LogPParams", "LogGPParams", "LogGOPSParams"]


@dataclass(frozen=True)
class LogPParams:
    """The original LogP model (Culler et al. 1993) for short messages."""

    L: float  # network latency (s)
    o: float  # CPU overhead per message (s)
    g: float  # gap between consecutive messages (s)
    P: int  # number of processors

    def __post_init__(self) -> None:
        if min(self.L, self.o, self.g) < 0:
            raise ValueError("L, o, g must be >= 0")
        if self.P < 1:
            raise ValueError(f"P must be >= 1, got {self.P}")

    def message_time(self) -> float:
        """End-to-end time of one short message: o + L + o."""
        return 2 * self.o + self.L


@dataclass(frozen=True)
class LogGPParams:
    """LogGP (Alexandrov et al.): adds the per-byte gap ``G``."""

    L: float
    o: float
    g: float
    G: float  # per-byte gap (s/byte), i.e. 1/bandwidth
    P: int

    def __post_init__(self) -> None:
        if min(self.L, self.o, self.g, self.G) < 0:
            raise ValueError("L, o, g, G must be >= 0")
        if self.P < 1:
            raise ValueError(f"P must be >= 1, got {self.P}")

    def message_time(self, size_bytes: int) -> float:
        """End-to-end time of a ``size_bytes`` message: o + L + (s-1)G + o."""
        if size_bytes < 1:
            raise ValueError(f"size_bytes must be >= 1, got {size_bytes}")
        return 2 * self.o + self.L + (size_bytes - 1) * self.G

    def bandwidth(self) -> float:
        """Asymptotic bandwidth in bytes/s."""
        if self.G == 0:
            return float("inf")
        return 1.0 / self.G


@dataclass(frozen=True)
class LogGOPSParams:
    """LogGOPS (Hoefler et al., LogGOPSim 2010): adds per-byte overhead ``O``
    and the rendezvous threshold ``S``."""

    L: float
    o: float
    g: float
    G: float
    O: float  # per-byte CPU overhead (s/byte)
    S: int  # rendezvous threshold (bytes)
    P: int

    def __post_init__(self) -> None:
        if min(self.L, self.o, self.g, self.G, self.O) < 0:
            raise ValueError("L, o, g, G, O must be >= 0")
        if self.S < 0:
            raise ValueError(f"S must be >= 0, got {self.S}")
        if self.P < 1:
            raise ValueError(f"P must be >= 1, got {self.P}")

    def overhead_time(self, size_bytes: int) -> float:
        """CPU time consumed on either side of a message."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        return self.o + size_bytes * self.O

    def message_time(self, size_bytes: int) -> float:
        """One-way message cost (eager path)."""
        if size_bytes < 1:
            raise ValueError(f"size_bytes must be >= 1, got {size_bytes}")
        return 2 * self.overhead_time(size_bytes) + self.L + (size_bytes - 1) * self.G

    def is_rendezvous(self, size_bytes: int) -> bool:
        """Whether a message of this size uses the rendezvous protocol."""
        return size_bytes > self.S

    def to_uniform_network(self) -> UniformNetwork:
        """Project onto the simulator's uniform network model.

        The flight-time part (L + sG) maps to latency+bandwidth; the CPU
        part (o) maps to the per-message overhead.  The per-byte overhead
        ``O`` is folded into the effective bandwidth, which is exact for
        the non-overlapping bulk-synchronous programs simulated here.
        """
        per_byte = self.G + 2 * self.O
        bandwidth = 1.0 / per_byte if per_byte > 0 else 1e30
        return UniformNetwork(latency=self.L, bandwidth=bandwidth, overhead=self.o)
