"""Hockney communication model and the paper's Eq. 1 runtime model.

Eq. 1 of the paper is the optimistic nonoverlapping model for the MPI
STREAM triad strong-scaling experiment:

.. math::

    T(n) = \\frac{V_{mem}}{n\\,b_{mem}} + \\frac{2 V_{net}}{b_{net}}

(n sockets, total working set V_mem split over all ranks, each rank
exchanging V_net with both ring neighbors per iteration).  Its failure —
measured execution performance *above* the model line — is the paper's
motivation (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HockneyCommModel", "nonoverlap_runtime", "triad_strong_scaling_model"]


@dataclass(frozen=True)
class HockneyCommModel:
    """Hockney point-to-point model ``T(m) = latency + m / bandwidth``."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    def time(self, message_bytes: float) -> float:
        """Seconds for a single one-way message."""
        if message_bytes < 0:
            raise ValueError(f"message_bytes must be >= 0, got {message_bytes}")
        return self.latency + message_bytes / self.bandwidth

    def effective_bandwidth(self, message_bytes: float) -> float:
        """Achieved bandwidth for a message of the given size (bytes/s)."""
        if message_bytes <= 0:
            raise ValueError(f"message_bytes must be > 0, got {message_bytes}")
        return message_bytes / self.time(message_bytes)

    def half_performance_length(self) -> float:
        """Hockney's n_1/2: message size reaching half the asymptotic bandwidth."""
        return self.latency * self.bandwidth


def nonoverlap_runtime(t_exec: float, t_comm: float) -> float:
    """The bulk-synchronous baseline ``T = T_exec + T_comm`` (Sec. I-A).

    No overlap of communication and computation — the assumption idle waves
    and desynchronization break.
    """
    if t_exec < 0 or t_comm < 0:
        raise ValueError("t_exec and t_comm must be >= 0")
    return t_exec + t_comm


def triad_strong_scaling_model(
    n_sockets: int,
    v_mem: float = 1.2e9,
    v_net: float = 2e6,
    b_mem: float = 40e9,
    b_net: float = 3e9,
) -> float:
    """Eq. 1: predicted seconds per compute-communicate cycle.

    Parameters (defaults = the paper's Fig. 1 setup)
    ----------
    n_sockets:
        Number of sockets, each running its share of the ranks.
    v_mem:
        Total working set in bytes (1.2 GB: 3 arrays × 5·10⁷ doubles).
    v_net:
        Bytes exchanged with *each* ring neighbor per cycle (2 MB).
    b_mem:
        Per-socket memory bandwidth (≈40 GB/s on Ivy Bridge).
    b_net:
        Asymptotic node-to-node network bandwidth (≈3 GB/s QDR IB).
    """
    if n_sockets < 1:
        raise ValueError(f"n_sockets must be >= 1, got {n_sockets}")
    if v_mem < 0 or v_net < 0:
        raise ValueError("volumes must be >= 0")
    if b_mem <= 0 or b_net <= 0:
        raise ValueError("bandwidths must be > 0")
    return v_mem / (n_sockets * b_mem) + 2 * v_net / b_net
