"""Roofline model (Williams, Waterman, Patterson 2009).

``P = min(P_peak, I * b_mem)`` — performance is capped either by in-core
throughput or by memory bandwidth times arithmetic intensity.  The paper
cites Roofline as the canonical node-level model whose assumptions idle
waves and desynchronization undermine; we use it to produce the execution
performance lines of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RooflineModel"]


@dataclass(frozen=True)
class RooflineModel:
    """Roofline prediction for a loop on a multicore contention domain.

    Parameters
    ----------
    peak_flops:
        In-core peak of one core, in flop/s.
    mem_bandwidth:
        Saturated memory bandwidth of the contention domain (socket), in
        bytes/s.
    """

    peak_flops: float
    mem_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError(f"peak_flops must be > 0, got {self.peak_flops}")
        if self.mem_bandwidth <= 0:
            raise ValueError(f"mem_bandwidth must be > 0, got {self.mem_bandwidth}")

    def performance(self, intensity: float, cores: int = 1) -> float:
        """Predicted performance in flop/s.

        Parameters
        ----------
        intensity:
            Arithmetic intensity in flop/byte of memory traffic.
        cores:
            Active cores in the contention domain (peak scales with cores,
            bandwidth does not).
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        return min(cores * self.peak_flops, intensity * self.mem_bandwidth)

    def runtime(self, flops: float, bytes_moved: float, cores: int = 1) -> float:
        """Predicted runtime of a loop doing ``flops`` work over ``bytes_moved``.

        Assumes perfect overlap of in-core work and data transfer —
        whichever takes longer wins (the Roofline premise).
        """
        if flops < 0 or bytes_moved < 0:
            raise ValueError("flops and bytes_moved must be >= 0")
        t_core = flops / (cores * self.peak_flops)
        t_mem = bytes_moved / self.mem_bandwidth
        return max(t_core, t_mem)

    def is_memory_bound(self, intensity: float, cores: int = 1) -> bool:
        """True when the bandwidth ceiling is the binding constraint."""
        return intensity * self.mem_bandwidth < cores * self.peak_flops

    def saturation_cores(self, intensity: float) -> int:
        """Smallest core count at which the loop saturates the bandwidth.

        For memory-bound loops this is the paper's observation that "using
        fewer than the maximum number of cores ... will usually not change
        the performance" once saturation is reached.
        """
        if intensity <= 0:
            raise ValueError(f"intensity must be > 0, got {intensity}")
        cores = 1
        while cores * self.peak_flops < intensity * self.mem_bandwidth:
            cores += 1
        return cores
