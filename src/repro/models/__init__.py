"""Analytic performance models.

The paper frames idle waves as a violation of simple white-box models
(Sec. I-A); this package implements those models so the experiments can
plot "model vs. measurement" exactly as the paper does:

- :mod:`repro.models.roofline` — the Roofline model for loop performance,
- :mod:`repro.models.ecm` — a simplified Execution-Cache-Memory model,
- :mod:`repro.models.hockney` — the Hockney communication model and the
  paper's Eq. 1 (nonoverlapping execution + communication runtime),
- :mod:`repro.models.loggops` — LogP/LogGP/LogGOPS parameter sets
  (the modeling language of the LogGOPSim comparator).
"""

from repro.models.ecm import ECMModel
from repro.models.hockney import HockneyCommModel, nonoverlap_runtime, triad_strong_scaling_model
from repro.models.loggops import LogGOPSParams, LogGPParams, LogPParams
from repro.models.roofline import RooflineModel

__all__ = [
    "ECMModel",
    "HockneyCommModel",
    "LogGOPSParams",
    "LogGPParams",
    "LogPParams",
    "RooflineModel",
    "nonoverlap_runtime",
    "triad_strong_scaling_model",
]
