"""``repro-experiment stats`` subcommands: inspect telemetry files.

::

    repro-experiment stats show run.jsonl [--max-depth N]
    repro-experiment stats summarize run.jsonl [--json] [--store DIR]
    repro-experiment stats diff before.jsonl after.jsonl
    repro-experiment stats trace run.jsonl [out.json]

``show`` renders the span tree; ``summarize`` reports cache hit rates,
the per-phase time breakdown, hot spans, and (with ``--store``) store
growth; ``diff`` compares two runs' summaries side by side — the tool
for checking that a change moved a hit rate or a phase the right way;
``trace`` exports the run as Chrome trace-event JSON (validated against
the schema check before writing) for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import argparse
import json
import sys

from .sinks import read_jsonl, render_summary, summarize

__all__ = ["stats_main", "build_stats_parser", "StatsError"]


class StatsError(Exception):
    """User-facing failure reading a telemetry file (no traceback)."""


def _load(path: str) -> dict:
    """Read a telemetry JSONL file, failing cleanly on bad input.

    Missing/unreadable files, non-JSONL content, and files holding no
    telemetry events (empty, or a bare meta line from a run that died
    before recording anything) all raise :class:`StatsError`, which
    :func:`stats_main` turns into a one-line message and exit code 1.
    """
    try:
        snap = read_jsonl(path)
    except OSError as exc:
        raise StatsError(
            f"cannot read {path}: {exc.strerror or exc}") from exc
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise StatsError(f"{path} is not telemetry JSONL: {exc}") from exc
    if not (snap["spans"] or snap["counters"] or snap["gauges"]
            or snap["hists"]):
        raise StatsError(
            f"{path} holds no telemetry events (empty or meta-only file); "
            "was the run profiled?")
    return snap


def build_stats_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment stats",
        description="Inspect telemetry JSONL files written by --profile / "
                    "--telemetry-out runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_show = sub.add_parser("show", help="render the span tree")
    p_show.add_argument("file", help="telemetry JSONL file")
    p_show.add_argument("--max-depth", type=int, default=None, metavar="N",
                        help="truncate the tree below this depth")

    p_sum = sub.add_parser(
        "summarize", help="hit rates, phase breakdown, hot spans")
    p_sum.add_argument("file", help="telemetry JSONL file")
    p_sum.add_argument("--json", action="store_true", dest="as_json",
                       help="machine-readable output")
    p_sum.add_argument("--store", default=None, metavar="DIR",
                       help="result store to report size/growth for")

    p_diff = sub.add_parser("diff", help="compare two telemetry files")
    p_diff.add_argument("before", help="baseline telemetry JSONL file")
    p_diff.add_argument("after", help="comparison telemetry JSONL file")

    p_trace = sub.add_parser(
        "trace", help="export Chrome trace-event JSON (Perfetto)")
    p_trace.add_argument("file", help="telemetry JSONL file")
    p_trace.add_argument("out", nargs="?", default=None, metavar="OUT",
                         help="output path (default: <file>.trace.json)")
    return parser


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _cmd_show(args) -> int:
    snap = _load(args.file)
    spans = snap["spans"]
    if not spans:
        print("[no spans recorded]")
        return 0
    children: "dict[int, list]" = {}
    for sp in spans:
        children.setdefault(sp[1], []).append(sp)
    for sibs in children.values():
        sibs.sort(key=lambda s: s[3])

    def render(parent: int, depth: int) -> None:
        if args.max_depth is not None and depth > args.max_depth:
            return
        for sid, _, name, start, dur, attrs in children.get(parent, ()):
            extra = ""
            if attrs:
                extra = "  " + " ".join(f"{k}={v}" for k, v in attrs.items())
            print(f"{'  ' * depth}{name}  [{_fmt_s(dur)} @ "
                  f"+{_fmt_s(start)}]{extra}")
            render(sid, depth + 1)

    render(-1, 0)
    return 0


def _store_growth(store_dir: str) -> dict:
    from repro.runtime.store import ResultStore

    entries = list(ResultStore(store_dir).entries())
    return {
        "n_records": len(entries),
        "json_bytes": sum(e.json_bytes for e in entries),
        "npz_bytes": sum(e.npz_bytes for e in entries),
        "total_bytes": sum(e.total_bytes for e in entries),
    }


def _cmd_summarize(args) -> int:
    snap = _load(args.file)
    store = _store_growth(args.store) if args.store else None
    if args.as_json:
        payload = summarize(snap)
        if store is not None:
            payload["store"] = store
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(render_summary(snap))
    if store is not None:
        print(f"  store: {store['n_records']} record(s), "
              f"{store['total_bytes']} bytes "
              f"({store['json_bytes']} json + {store['npz_bytes']} npz)")
    return 0


def _fmt_rate(rate: "float | None") -> str:
    return "--" if rate is None else f"{rate * 100:.1f}%"


def _fmt_speed(before_s: "float | None", after_s: "float | None") -> str:
    """``before/after`` speed ratio, guarded: zero or missing → ``n/a``.

    A run with no spans (counter-only telemetry) or a zero-duration root
    must never turn the diff into a ZeroDivisionError or an ``inf%``.
    """
    if not before_s or not after_s:
        return "n/a"
    return f"{before_s / after_s:.2f}x"


def _cmd_diff(args) -> int:
    before = summarize(_load(args.before))
    after = summarize(_load(args.after))
    b_total = before["phase_breakdown"]["total_s"]
    a_total = after["phase_breakdown"]["total_s"]
    print(f"{'':<28} {'before':>12} {'after':>12}")
    print(f"{'total':<28} {_fmt_s(b_total):>12} {_fmt_s(a_total):>12}"
          f"  ({_fmt_speed(b_total, a_total)})")
    for key in ("dag_cache_hit_rate", "store_hit_rate",
                "campaign_cache_hit_rate"):
        label = key.replace("_", " ")
        print(f"{label:<28} {_fmt_rate(before[key]):>12} "
              f"{_fmt_rate(after[key]):>12}")
    names = list(before["phase_breakdown"]["phases"])
    names += [n for n in after["phase_breakdown"]["phases"] if n not in names]
    for name in names:
        b = before["phase_breakdown"]["phases"].get(name, {}).get("total_s")
        a = after["phase_breakdown"]["phases"].get(name, {}).get("total_s")
        print(f"{name:<28} "
              f"{_fmt_s(b) if b is not None else '--':>12} "
              f"{_fmt_s(a) if a is not None else '--':>12}"
              f"  ({_fmt_speed(b, a)})")
    counters = sorted(set(before["counters"]) | set(after["counters"]))
    for name in counters:
        b = before["counters"].get(name, 0)
        a = after["counters"].get(name, 0)
        if b != a:
            print(f"{name:<28} {b:>12g} {a:>12g}")
    return 0


def _cmd_trace(args) -> int:
    from .trace_export import write_chrome_trace

    snap = _load(args.file)
    out = args.out or (args.file + ".trace.json")
    try:
        path = write_chrome_trace(snap, out)
    except (ValueError, OSError) as exc:
        raise StatsError(str(exc)) from exc
    n_spans = len(snap["spans"])
    n_events = len(snap.get("events", ()))
    tids = {e.get("tid") for e in json.loads(
        path.read_text())["traceEvents"] if e.get("ph") == "X"}
    print(f"[chrome trace written to {path}: {n_spans} span(s), "
          f"{n_events} lifecycle event(s), {len(tids)} track(s) — load in "
          "chrome://tracing or https://ui.perfetto.dev]")
    return 0


def stats_main(argv: "list[str] | None" = None) -> int:
    args = build_stats_parser().parse_args(argv)
    handler = {"show": _cmd_show, "summarize": _cmd_summarize,
               "diff": _cmd_diff, "trace": _cmd_trace}[args.command]
    try:
        return handler(args)
    except StatsError as exc:
        print(f"stats error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(stats_main())
