"""Zero-dependency runtime telemetry: spans, counters, sinks, stats CLI.

Instrumentation sites call the module-level fast path::

    from repro import telemetry

    with telemetry.span("engine.dag.propagate", batch=n) as sp:
        ...
        sp.set(n_levels=levels)
    telemetry.count("dag.cache.hits")

which is a no-op (shared null span, no clock reads) unless a CLI
``--profile`` run — or a test — has called :func:`enable`.  The
:func:`profiled` context manager is the one-stop wiring used by
``scenario run|sweep`` and ``report run``: enable, open a root span,
and on exit snapshot, write sinks, and print the summary.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path

from .recorder import (
    Recorder,
    Span,
    count,
    current_recorder,
    disable,
    enable,
    enabled,
    gauge,
    merge_snapshot,
    observe,
    span,
    timed_span,
)
from .sinks import read_jsonl, render_summary, summarize, write_jsonl
from .trace_export import export_chrome_trace, validate_trace, \
    write_chrome_trace

__all__ = [
    "Recorder",
    "Span",
    "count",
    "current_recorder",
    "disable",
    "enable",
    "enabled",
    "export_chrome_trace",
    "gauge",
    "merge_snapshot",
    "observe",
    "profiled",
    "read_jsonl",
    "render_summary",
    "span",
    "summarize",
    "timed_span",
    "validate_trace",
    "write_chrome_trace",
    "write_jsonl",
]


@contextmanager
def profiled(label: str, out=None, cache_dir=None, echo=print,
             on_write=None):
    """Record one profiled run and flush it to sinks on exit.

    Enables telemetry, opens a root span named ``label``, and yields the
    live recorder.  On exit (even via an exception) the recorder is
    snapshotted and disabled, the JSONL export is written to ``out``
    (``--telemetry-out``) and/or persisted under
    ``<cache_dir>/telemetry/<label>-<unix>.jsonl`` next to the store
    artifacts, and the summary table is printed through ``echo``
    (pass ``echo=None`` to silence it).  ``on_write`` is called with
    each written path — the run ledger uses it to record where a run's
    telemetry landed.

    When an obs event bus is live (the CLI nests ``profiled`` inside
    ``observe_run``), the lifecycle events emitted so far ride along in
    the snapshot as ``events`` — timestamps rebased into the recorder's
    clock domain — so one JSONL file carries both observation channels
    and ``stats trace`` can lay them out on a single timeline.
    """
    rec = enable()
    try:
        with rec.span(label):
            yield rec
    finally:
        snap = rec.snapshot()
        disable()
        from repro.obs import events as obs_events

        bus = obs_events.current_bus()
        if bus is not None and bus.events:
            snap["events"] = [(name, t + bus.t0, data)
                              for _, name, t, _, data in bus.events]
        paths = []
        if out:
            paths.append(write_jsonl(snap, out, label=label))
        if cache_dir:
            stamp = int(snap.get("wall0") or time.time())
            paths.append(write_jsonl(
                snap, Path(cache_dir) / "telemetry" / f"{label}-{stamp}.jsonl",
                label=label))
        if on_write is not None:
            for p in paths:
                on_write(p)
        if echo is not None:
            echo(render_summary(snap))
            for p in paths:
                echo(f"[telemetry written to {p}]")
