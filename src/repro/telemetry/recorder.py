"""Process-local telemetry recorder: spans, counters, gauges, histograms.

The runtime telemetry substrate the campaign server, store scale-out, and
adaptive-planner work measure themselves with.  Design constraints, in
order:

1. **Zero cost when disabled.**  Every instrumentation point in a hot
   path compiles down to one module-global check: :func:`span` returns a
   shared no-op object, :func:`count`/:func:`gauge`/:func:`observe`
   return immediately.  Disabled telemetry must never show up in a
   profile (``benchmarks/bench_telemetry.py`` asserts < 2% overhead even
   *enabled*).
2. **Cheap when enabled.**  A finished span is one list append of a
   plain tuple; counters/histograms are dict updates.  No locks — a
   recorder is process-local by construction, and worker processes run
   their own (merged back explicitly, see :func:`merge_snapshot`).
3. **Plain-data export.**  :meth:`Recorder.snapshot` returns nothing but
   dicts/lists/tuples of builtins, so snapshots travel through the
   executor's pickled result channel and serialize to JSONL unchanged
   (:mod:`repro.telemetry.sinks`).

Span clocks are ``time.perf_counter()`` values.  Within one process they
are exact; across the processes of one campaign they are comparable
wherever ``perf_counter`` is system-wide monotonic (Linux), and merged
worker spans are only ever *grouped by name* in the summaries, never
ordered against parent-process spans, so a platform with per-process
clocks degrades gracefully.

Naming convention (see CONTRIBUTING.md): dotted lowercase
``layer.noun[.verb]`` — ``engine.dag.propagate`` (span),
``dag.cache.hits`` (counter), ``executor.queue_wait_s`` (histogram; the
unit suffix is part of the name).
"""

from __future__ import annotations

import os
import time
from typing import Any, Iterator, Mapping

__all__ = [
    "Recorder",
    "Span",
    "count",
    "current_recorder",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "merge_snapshot",
    "observe",
    "span",
    "timed_span",
]

_perf_counter = time.perf_counter

#: Snapshot schema version (bumped on incompatible layout changes; the
#: JSONL sink re-exports it as the file's ``version`` field).
SNAPSHOT_VERSION = 1


class Span:
    """One timed region; a context manager handing back its duration.

    ``start``/``duration`` are always measured (two ``perf_counter``
    calls), even when recording is off — callers like the executor reuse
    them for result fields that must exist regardless of telemetry
    (:func:`timed_span`).  The span is appended to its recorder only on
    exit, so a crash mid-span loses that span alone.
    """

    __slots__ = ("name", "attrs", "start", "duration", "_rec", "_id", "_parent")

    def __init__(self, name: str, attrs: "dict | None",
                 rec: "Recorder | None") -> None:
        self.name = name
        self.attrs = attrs
        self._rec = rec
        self.start = 0.0
        self.duration = 0.0
        self._id = -1
        self._parent = -1

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes discovered while the span is running."""
        if self._rec is not None:
            if self.attrs is None:
                self.attrs = attrs
            else:
                self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        rec = self._rec
        if rec is not None:
            self._id, self._parent = rec._begin()
        self.start = _perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.duration = _perf_counter() - self.start
        rec = self._rec
        if rec is not None:
            rec._end(self)
        return False


class _NullSpan:
    """Shared do-nothing span for disabled telemetry (no timing at all)."""

    __slots__ = ()
    start = 0.0
    duration = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Collects one process's telemetry events.

    Spans are stored as plain tuples ``(id, parent, name, start,
    duration, attrs)`` with ``parent == -1`` for roots; counters are
    ``name -> number`` sums, gauges ``name -> last value``, histograms
    ``name -> [count, total, min, max]``.
    """

    __slots__ = ("spans", "counters", "gauges", "hists", "t0", "wall0",
                 "_stack", "_next_id")

    def __init__(self) -> None:
        self.spans: "list[tuple]" = []
        self.counters: "dict[str, float]" = {}
        self.gauges: "dict[str, float]" = {}
        self.hists: "dict[str, list]" = {}
        self.t0 = _perf_counter()
        self.wall0 = time.time()
        self._stack: "list[int]" = []
        self._next_id = 0

    # -- spans ---------------------------------------------------------

    def _begin(self) -> "tuple[int, int]":
        sid = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else -1
        self._stack.append(sid)
        return sid, parent

    def _end(self, sp: Span) -> None:
        # Exceptions unwinding through nested spans pop in LIFO order, so
        # the plain pop is correct even on error paths.
        if self._stack and self._stack[-1] == sp._id:
            self._stack.pop()
        self.spans.append(
            (sp._id, sp._parent, sp.name, sp.start, sp.duration, sp.attrs))

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(name, attrs or None, self)

    # -- scalar instruments --------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        h = self.hists.get(name)
        if h is None:
            self.hists[name] = [1, value, value, value]
        else:
            h[0] += 1
            h[1] += value
            if value < h[2]:
                h[2] = value
            if value > h[3]:
                h[3] = value

    # -- export / merge ------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data copy of everything recorded so far (picklable).

        ``pid`` is the recording process — :meth:`merge` uses it to tag
        a worker snapshot's re-rooted spans with their origin, which is
        what lets the Chrome-trace exporter
        (:mod:`repro.telemetry.trace_export`) lay worker spans out on
        per-worker tracks.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "t0": self.t0,
            "wall0": self.wall0,
            "pid": os.getpid(),
            "spans": list(self.spans),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "hists": {k: list(v) for k, v in self.hists.items()},
        }

    def merge(self, snap: Mapping, parent: "int | None" = None) -> None:
        """Fold another recorder's snapshot into this one.

        Span ids are remapped past this recorder's counter, and the
        snapshot's *root* spans are re-parented under ``parent`` (default:
        the innermost span currently open here — e.g. the campaign span a
        worker's results stream back into).  Counters and histograms sum;
        gauges take the snapshot's value (last writer wins, matching
        single-process semantics).

        When the snapshot came from another process (its ``pid`` differs
        from ours), each re-rooted root span gains a ``worker_pid``
        attribute — the provenance mark the trace exporter turns into
        per-worker thread ids.
        """
        if parent is None:
            parent = self._stack[-1] if self._stack else -1
        base = self._next_id
        max_id = -1
        worker_pid = snap.get("pid")
        if worker_pid == os.getpid():
            worker_pid = None
        for sid, sparent, name, start, duration, attrs in snap.get("spans", ()):
            if sid > max_id:
                max_id = sid
            if sparent < 0 and worker_pid is not None:
                attrs = {**(attrs or {}), "worker_pid": worker_pid}
            self.spans.append((
                sid + base,
                parent if sparent < 0 else sparent + base,
                name, start, duration, attrs,
            ))
        self._next_id = base + max_id + 1
        for name, value in snap.get("counters", {}).items():
            self.count(name, value)
        for name, value in snap.get("gauges", {}).items():
            self.gauges[name] = value
        for name, (n, total, lo, hi) in snap.get("hists", {}).items():
            h = self.hists.get(name)
            if h is None:
                self.hists[name] = [n, total, lo, hi]
            else:
                h[0] += n
                h[1] += total
                h[2] = min(h[2], lo)
                h[3] = max(h[3], hi)

    def iter_spans(self) -> "Iterator[tuple]":
        return iter(self.spans)


# ----------------------------------------------------------------------
# module-level fast path (the API instrumentation sites actually use)
# ----------------------------------------------------------------------

_RECORDER: "Recorder | None" = None


def enabled() -> bool:
    """Is telemetry currently recording in this process?"""
    return _RECORDER is not None


def enable(fresh: bool = True) -> Recorder:
    """Switch recording on; returns the active recorder.

    With ``fresh`` (the default) any previous recorder is discarded —
    a run's telemetry always starts from zero.  ``fresh=False`` keeps an
    existing recorder (idempotent re-enable).
    """
    global _RECORDER
    if _RECORDER is None or fresh:
        _RECORDER = Recorder()
    return _RECORDER


def disable() -> "Recorder | None":
    """Switch recording off; returns the final recorder (or ``None``)."""
    global _RECORDER
    rec, _RECORDER = _RECORDER, None
    return rec


def current_recorder() -> "Recorder | None":
    """The live recorder, or ``None`` when telemetry is disabled."""
    return _RECORDER


def span(name: str, **attrs: Any):
    """A recording span when enabled, a shared no-op otherwise.

    The no-op performs no clock reads — use :func:`timed_span` where the
    caller needs the duration regardless of telemetry.
    """
    rec = _RECORDER
    if rec is None:
        return _NULL_SPAN
    return Span(name, attrs or None, rec)


def timed_span(name: str, **attrs: Any) -> Span:
    """A span that always measures ``start``/``duration``.

    Recorded only when telemetry is enabled, but the timing fields are
    valid either way — the executor derives its ``duration``/``elapsed``
    result fields from them, so those stay bit-compatible with the old
    ad-hoc ``perf_counter`` bookkeeping whether or not telemetry is on.
    """
    return Span(name, attrs or None, _RECORDER)


def count(name: str, n: float = 1) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.count(name, n)


def gauge(name: str, value: float) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.gauge(name, value)


def observe(name: str, value: float) -> None:
    rec = _RECORDER
    if rec is not None:
        rec.observe(name, value)


def merge_snapshot(snap: "Mapping | None", parent: "int | None" = None) -> None:
    """Merge a worker snapshot into the live recorder (no-op if disabled)."""
    rec = _RECORDER
    if rec is not None and snap:
        rec.merge(snap, parent=parent)
