"""Telemetry export: JSONL event files and human-readable summaries.

A telemetry file is newline-delimited JSON.  The first line is a meta
record; every further line is one event:

    {"type": "meta", "version": 1, "label": ..., "created_unix": ...}
    {"type": "span", "id": 0, "parent": -1, "name": "campaign.run",
     "start": 0.0, "dur": 1.25, "attrs": {"n_tasks": 64}}
    {"type": "counter", "name": "dag.cache.hits", "value": 63}
    {"type": "gauge", "name": "executor.jobs", "value": 4}
    {"type": "hist", "name": "executor.queue_wait_s",
     "count": 16, "sum": 0.9, "min": 0.01, "max": 0.2}
    {"type": "event", "name": "task.cache_hit", "start": 0.003,
     "data": {"index": 7}}

Span (and event) ``start`` values are normalized to the recorder's epoch
(``t0``) so files from different runs line up at 0; ``parent`` is -1 for
roots.  ``event`` records are the obs-bus lifecycle events a profiled
*observed* run captured alongside its spans (``repro.telemetry.profiled``
snapshots the live bus) — they share the span timeline, which is what
lets the Chrome-trace exporter derive cache-hit and queue-depth counter
tracks.  The format is append-only and versioned via the meta line;
readers must ignore record types they do not know.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Mapping

from .recorder import SNAPSHOT_VERSION

__all__ = ["read_jsonl", "render_summary", "write_jsonl"]


def write_jsonl(snapshot: Mapping, path, label: str = "") -> Path:
    """Serialize a recorder snapshot to a JSONL telemetry file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    t0 = snapshot.get("t0", 0.0)
    lines = [json.dumps({
        "type": "meta",
        "version": snapshot.get("version", SNAPSHOT_VERSION),
        "label": label,
        "created_unix": snapshot.get("wall0", time.time()),
    }, sort_keys=True)]
    for sid, parent, name, start, dur, attrs in snapshot.get("spans", ()):
        rec = {"type": "span", "id": sid, "parent": parent, "name": name,
               "start": round(start - t0, 9), "dur": round(dur, 9)}
        if attrs:
            rec["attrs"] = attrs
        lines.append(json.dumps(rec, sort_keys=True))
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(json.dumps(
            {"type": "counter", "name": name, "value": value}, sort_keys=True))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(json.dumps(
            {"type": "gauge", "name": name, "value": value}, sort_keys=True))
    for name, (n, total, lo, hi) in sorted(snapshot.get("hists", {}).items()):
        lines.append(json.dumps(
            {"type": "hist", "name": name, "count": n, "sum": total,
             "min": lo, "max": hi}, sort_keys=True))
    for name, start, data in snapshot.get("events", ()):
        rec = {"type": "event", "name": name,
               "start": round(start - t0, 9)}
        if data:
            rec["data"] = data
        lines.append(json.dumps(rec, sort_keys=True))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_jsonl(path) -> dict:
    """Load a telemetry JSONL file back into snapshot form.

    Returns the same shape as :meth:`Recorder.snapshot` (with ``t0`` 0.0,
    since file span starts are already epoch-relative) plus a ``"meta"``
    key holding the file's meta record.  Unknown record types are
    skipped, per the format contract.
    """
    snap = {"version": SNAPSHOT_VERSION, "t0": 0.0, "wall0": 0.0,
            "spans": [], "counters": {}, "gauges": {}, "hists": {},
            "events": [], "meta": {}}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.get("type")
        if kind == "meta":
            snap["meta"] = rec
            snap["version"] = rec.get("version", SNAPSHOT_VERSION)
            snap["wall0"] = rec.get("created_unix", 0.0)
        elif kind == "span":
            snap["spans"].append((
                rec["id"], rec["parent"], rec["name"],
                rec["start"], rec["dur"], rec.get("attrs"),
            ))
        elif kind == "counter":
            snap["counters"][rec["name"]] = rec["value"]
        elif kind == "gauge":
            snap["gauges"][rec["name"]] = rec["value"]
        elif kind == "hist":
            snap["hists"][rec["name"]] = [
                rec["count"], rec["sum"], rec["min"], rec["max"]]
        elif kind == "event":
            snap["events"].append(
                (rec["name"], rec["start"], rec.get("data")))
    return snap


# ----------------------------------------------------------------------
# summary analysis
# ----------------------------------------------------------------------

def _hit_rate(counters: Mapping, hits: str, misses: str) -> "float | None":
    h = counters.get(hits, 0)
    m = counters.get(misses, 0)
    if h + m == 0:
        return None
    return h / (h + m)


def root_span(snapshot: Mapping) -> "tuple | None":
    """The run's root: the longest parentless span."""
    roots = [s for s in snapshot.get("spans", ()) if s[1] < 0]
    if not roots:
        return None
    return max(roots, key=lambda s: s[4])


def phase_breakdown(snapshot: Mapping) -> dict:
    """Per-phase wall-time breakdown under the root span.

    Phases are the direct children of the root, aggregated by name.
    ``coverage`` is the summed phase duration over the root duration —
    the acceptance bar for the instrumentation is that phases account
    for ≥ 90% of the run.
    """
    root = root_span(snapshot)
    if root is None:
        return {"total_s": 0.0, "phases": {}, "coverage": None, "root": None}
    phases: "dict[str, dict]" = {}
    for sid, parent, name, start, dur, attrs in snapshot.get("spans", ()):
        if parent != root[0]:
            continue
        ph = phases.setdefault(name, {"count": 0, "total_s": 0.0})
        ph["count"] += 1
        ph["total_s"] += dur
    total = root[4]
    covered = sum(p["total_s"] for p in phases.values())
    for p in phases.values():
        p["share"] = p["total_s"] / total if total else 0.0
    return {
        "total_s": total,
        "root": root[2],
        "phases": dict(sorted(phases.items(),
                              key=lambda kv: -kv[1]["total_s"])),
        "coverage": covered / total if total else None,
    }


def span_name_table(snapshot: Mapping) -> "list[dict]":
    """All spans aggregated by name, heaviest self-total first."""
    agg: "dict[str, dict]" = {}
    for sid, parent, name, start, dur, attrs in snapshot.get("spans", ()):
        row = agg.setdefault(name, {"name": name, "count": 0,
                                    "total_s": 0.0, "max_s": 0.0})
        row["count"] += 1
        row["total_s"] += dur
        row["max_s"] = max(row["max_s"], dur)
    return sorted(agg.values(), key=lambda r: -r["total_s"])


def summarize(snapshot: Mapping) -> dict:
    """Structured run summary: hit rates, phases, hot spans, instruments."""
    counters = snapshot.get("counters", {})
    return {
        "label": snapshot.get("meta", {}).get("label", ""),
        "n_spans": len(snapshot.get("spans", ())),
        "phase_breakdown": phase_breakdown(snapshot),
        "dag_cache_hit_rate": _hit_rate(
            counters, "dag.cache.hits", "dag.cache.misses"),
        "store_hit_rate": _hit_rate(
            counters, "store.get.hits", "store.get.misses"),
        "campaign_cache_hit_rate": _hit_rate(
            counters, "campaign.cache.hits", "campaign.cache.misses"),
        "spans_by_name": span_name_table(snapshot),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(snapshot.get("gauges", {}).items())),
        "hists": {
            name: {"count": n, "sum": total, "min": lo, "max": hi,
                   "mean": (total / n) if n else 0.0}
            for name, (n, total, lo, hi)
            in sorted(snapshot.get("hists", {}).items())
        },
    }


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:7.2f}ms"
    return f"{seconds * 1e6:7.1f}us"


def _fmt_rate(rate: "float | None") -> str:
    return "    --" if rate is None else f"{rate * 100:5.1f}%"


def render_summary(snapshot: Mapping) -> str:
    """The end-of-run summary table printed by ``--profile``."""
    s = summarize(snapshot)
    pb = s["phase_breakdown"]
    out = []
    label = s["label"] or pb.get("root") or "run"
    out.append(f"telemetry summary — {label}")
    out.append(f"  total {_fmt_s(pb['total_s'])}   spans {s['n_spans']}")
    out.append(
        "  cache hit rates:"
        f"  dag {_fmt_rate(s['dag_cache_hit_rate'])}"
        f"  store {_fmt_rate(s['store_hit_rate'])}"
        f"  campaign {_fmt_rate(s['campaign_cache_hit_rate'])}")
    if pb["phases"]:
        out.append("  phases:")
        for name, p in pb["phases"].items():
            out.append(f"    {name:<28} {_fmt_s(p['total_s'])}"
                       f"  {p['share'] * 100:5.1f}%  x{p['count']}")
        if pb["coverage"] is not None:
            out.append(f"    {'(coverage)':<28} {pb['coverage'] * 100:9.1f}%")
    hot = [r for r in s["spans_by_name"] if r["name"] != pb.get("root")][:8]
    if hot:
        out.append("  hot spans:")
        for r in hot:
            out.append(f"    {r['name']:<28} {_fmt_s(r['total_s'])}"
                       f"  x{r['count']}  max {_fmt_s(r['max_s'])}")
    if s["hists"]:
        out.append("  distributions:")
        for name, h in s["hists"].items():
            # Only the `_s` unit suffix means seconds (CONTRIBUTING.md);
            # anything else is a plain quantity (block sizes, bytes).
            fmt = _fmt_s if name.endswith("_s") else "{:g}".format
            out.append(f"    {name:<28} n={h['count']}"
                       f"  mean {fmt(h['mean'])}"
                       f"  max {fmt(h['max'])}")
    return "\n".join(out)
