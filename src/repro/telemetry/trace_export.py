"""Chrome trace-event export: one profiled run as a Perfetto timeline.

:func:`export_chrome_trace` converts a telemetry snapshot (live, or read
back from JSONL via :func:`repro.telemetry.sinks.read_jsonl`) into the
Chrome trace-event JSON object format — loadable in ``chrome://tracing``
and https://ui.perfetto.dev — so a campaign's execution structure
(worker occupancy, batching, queue gaps, cache behavior) is *visible*
instead of tabulated:

- every span becomes a complete duration event (``ph: "X"``) with
  microsecond ``ts``/``dur``;
- thread ids come from the worker provenance the recorder stamps at
  merge time (:meth:`Recorder.merge` tags re-rooted worker roots with
  ``worker_pid``): parent-process spans render on tid 0 (``main``),
  each worker's spans on a track named after its pid — the
  trace-level view of the executor's id-remap;
- obs lifecycle events (embedded by ``profiled`` when a bus was live)
  become instant events (``ph: "i"``), and the ``task.cache_hit`` /
  ``task.submit``/terminal streams are integrated into cumulative
  **counter tracks** (``ph: "C"``): ``cache hits`` and ``queue depth``;
- without embedded events, final counter sums (``*.cache.*``) still emit
  one closing counter sample each, so cache economics always appear.

All timestamps are shifted so the earliest one is 0 (viewers dislike
negative ``ts``).  :func:`validate_trace` is a pure-stdlib schema check
over the produced object — the CLI (``stats trace``) refuses to write a
file that does not pass it, and the tests round-trip through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

__all__ = ["export_chrome_trace", "validate_trace", "write_chrome_trace"]

#: Trace-export format version, recorded in ``otherData``.
TRACE_EXPORT_VERSION = 1

#: The single process id used for the whole run: the trace models the
#: campaign as one process with one track (thread) per OS worker.
_PID = 1

#: tid of the parent process's own spans.
_MAIN_TID = 0

#: Event phases this exporter emits (also the set the validator allows).
_PHASES = frozenset({"X", "i", "C", "M"})


def _metadata(name: str, tid: int, value: str) -> dict:
    return {"name": name, "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": value}}


def _span_tids(spans) -> "dict[int, int]":
    """Map span id -> tid: ``worker_pid`` attrs propagate to subtrees."""
    tids: "dict[int, int]" = {}
    # Spans are appended in completion order, so a parent (which outlives
    # its children) can appear *after* them; resolve via two passes over
    # a children index instead of relying on file order.
    children: "dict[int, list]" = {}
    by_id = {}
    for sp in spans:
        by_id[sp[0]] = sp
        children.setdefault(sp[1], []).append(sp)

    def assign(sid: int, tid: int) -> None:
        tids[sid] = tid
        for child in children.get(sid, ()):
            assign(child[0], tid)

    for root in children.get(-1, ()):
        attrs = root[5] or {}
        assign(root[0], int(attrs.get("worker_pid", _MAIN_TID)))
    # Merged worker roots are usually *not* file roots (they sit under
    # campaign.run); restart assignment wherever a worker_pid attr marks
    # a subtree, overriding the inherited main tid.
    for sp in spans:
        attrs = sp[5] or {}
        if "worker_pid" in attrs:
            assign(sp[0], int(attrs["worker_pid"]))
    # Anything orphaned (parent id missing from the file) renders on main.
    for sp in spans:
        tids.setdefault(sp[0], _MAIN_TID)
    return tids


def _counter_tracks(events, shift: float) -> "list[dict]":
    """Cumulative ``cache hits`` / ``queue depth`` samples from events."""
    out: "list[dict]" = []
    hits = 0
    depth = 0
    for name, start, _data in events:
        ts = (start - shift) * 1e6
        if name == "task.cache_hit":
            hits += 1
            out.append({"name": "cache hits", "ph": "C", "pid": _PID,
                        "tid": _MAIN_TID, "ts": ts,
                        "args": {"hits": hits}})
        if name == "task.submit":
            depth += 1
        elif name in ("task.done", "task.failed", "task.cache_hit"):
            depth = max(0, depth - 1)
        else:
            continue
        out.append({"name": "queue depth", "ph": "C", "pid": _PID,
                    "tid": _MAIN_TID, "ts": ts,
                    "args": {"pending": depth}})
    return out


def export_chrome_trace(snapshot: Mapping) -> dict:
    """Build the Chrome trace-event object for one telemetry snapshot."""
    spans = list(snapshot.get("spans", ()))
    events = list(snapshot.get("events", ()))
    if not all(isinstance(sp, (list, tuple)) and len(sp) == 6
               for sp in spans):
        raise ValueError("snapshot 'spans' are not (id, parent, name, "
                         "start, dur, attrs) records — not a telemetry "
                         "snapshot?")
    t0 = snapshot.get("t0", 0.0)
    starts = [sp[3] - t0 for sp in spans] + [ev[1] - t0 for ev in events]
    shift = min(starts) if starts else 0.0

    trace_events: "list[dict]" = [
        _metadata("process_name", _MAIN_TID, "repro campaign"),
        _metadata("thread_name", _MAIN_TID, "main"),
    ]
    tids = _span_tids(spans)
    for tid in sorted({t for t in tids.values() if t != _MAIN_TID}):
        trace_events.append(_metadata("thread_name", tid, f"worker {tid}"))

    for sid, _parent, name, start, dur, attrs in spans:
        rec = {"name": name, "ph": "X", "pid": _PID, "tid": tids[sid],
               "ts": (start - t0 - shift) * 1e6,
               "dur": max(0.0, dur) * 1e6}
        if attrs:
            rec["args"] = dict(attrs)
        trace_events.append(rec)

    end_ts = max((e["ts"] + e.get("dur", 0.0) for e in trace_events
                  if "ts" in e), default=0.0)
    for name, start, data in events:
        rec = {"name": name, "ph": "i", "pid": _PID, "tid": _MAIN_TID,
               "ts": (start - t0 - shift) * 1e6, "s": "t"}
        if data:
            rec["args"] = dict(data)
        trace_events.append(rec)
    if events:
        trace_events.extend(_counter_tracks(
            [(n, s - t0, d) for n, s, d in events], shift))
    # Close every cache counter with one final sample — present whether
    # or not a lifecycle stream rode along, so cache economics always
    # appear as counter tracks (hits and misses grouped per cache).
    for cname, value in sorted(snapshot.get("counters", {}).items()):
        if ".cache." not in cname and not cname.startswith("store.get."):
            continue
        trace_events.append({
            "name": cname.rsplit(".", 1)[0], "ph": "C", "pid": _PID,
            "tid": _MAIN_TID, "ts": end_ts,
            "args": {cname.rsplit(".", 1)[1]: value}})

    meta = snapshot.get("meta", {}) or {}
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.telemetry.trace_export",
            "export_version": TRACE_EXPORT_VERSION,
            "label": meta.get("label", ""),
            "snapshot_version": snapshot.get("version"),
        },
    }


def validate_trace(trace: Any) -> "list[str]":
    """Pure-stdlib schema check; returns problems (empty list = valid).

    Checks the subset of the trace-event format this exporter promises:
    object form with a ``traceEvents`` list; every event a dict with a
    non-empty string ``name``, a known ``ph``, integer ``pid``/``tid``,
    and non-negative numeric ``ts`` (plus ``dur`` for ``X``, ``args``
    numbers for ``C``, an ``s`` scope for ``i``); and the whole object
    JSON-serializable.
    """
    problems: "list[str]" = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing/empty name")
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a number >= 0")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"{where}: C event needs numeric args")
        elif ph == "i" and ev.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: i event needs scope s in t/p/g")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serializable: {exc}")
    return problems


def write_chrome_trace(snapshot: Mapping, path) -> Path:
    """Export, validate, and write one snapshot's Chrome trace JSON.

    Raises :class:`ValueError` listing every schema problem rather than
    writing a file no viewer would load.
    """
    trace = export_chrome_trace(snapshot)
    problems = validate_trace(trace)
    if problems:
        raise ValueError(
            "refusing to write an invalid Chrome trace:\n  "
            + "\n  ".join(problems))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace) + "\n")
    return path
