"""Packed shard backend for the result store: append-only files + index.

A *shard* is an append-only file of packed result records.  Each entry
is self-describing — a fixed binary header, a length-prefixed JSON
record (plain fields, spec provenance, and array descriptors), and a raw
array segment holding every ndarray field's bytes::

    offset 0   magic          b"RPS1"
    offset 4   crc32          of the JSON payload (uint32 LE)
    offset 8   json_len       bytes of JSON payload (uint32 LE)
    offset 12  arr_len        bytes of array segment (uint64 LE)
    offset 20  JSON payload   {"version", "key", "value", "arrays", "spec"}
    ...        array segment  raw C/F-contiguous array bytes, 8-aligned

Arrays are stored as raw bytes with their dtype/shape/order recorded in
the JSON descriptor, so a read can reconstruct them as **zero-copy
views** into a memory map of the shard — slicing a dense timing matrix
out of a multi-gigabyte shard touches only the pages it spans.

Next to each shard lives a sidecar index ``<shard>.idx``: one JSON line
per entry (key, offset, lengths, and the listing metadata ``entries()``
needs) appended by the shard's single writer.  The index is a derived
cache, never the source of truth: a reader validates it against the
shard's byte coverage and recovers any uncovered tail — a torn index, a
missing index, or an index that diverges from the shard is repaired by
scanning the self-describing shard entries (:meth:`PackedShards.refresh`
does this transparently; :meth:`PackedShards.rebuild_index` rewrites the
sidecars atomically, the same temp-file + ``os.replace`` pattern
``RunLedger.append`` uses).

Concurrent writers are safe by construction: every writing process
appends to its **own** shard file (named by pid + random suffix), so two
processes never contend on one file, while readers see each other's
entries by re-scanning grown shards on a miss.  A fork inheriting a
store object gets a fresh shard file the first time it writes.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import uuid
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro import telemetry
from repro.runtime import chaos

__all__ = ["PackedShards", "SHARD_DIR", "SHARD_FORMAT_VERSION",
           "ShardEntry", "StoreError"]


class StoreError(RuntimeError):
    """The result store cannot do its job — said clearly, not as a deep
    traceback from inside a write path.

    Raised when the cache directory is unwritable (``ResultStore.
    ensure_writable`` — the CLIs call it before starting a campaign) and
    when a write fails mid-run (disk full, permissions yanked).  Write
    failures leave the store consistent: per-file writes are atomic, and
    a failed packed-shard append truncates back to the entry start so
    the sidecar index never points at torn bytes.  Defined here (the
    lowest store layer) and re-exported by :mod:`repro.runtime.store`,
    its public home.
    """

#: On-disk format version, recorded in every entry's JSON record.  Bump
#: on any change to the entry layout or descriptor schema (see
#: CONTRIBUTING: "Shard format versioning").
SHARD_FORMAT_VERSION = 1

#: Subdirectory of the store root holding shard + index files.
SHARD_DIR = "shards"

_MAGIC = b"RPS1"
_HEADER = struct.Struct("<4sIIQ")  # magic, crc32(json), json_len, arr_len
_ALIGN = 8


def _pad(n: int) -> int:
    """Bytes of padding that align ``n`` to the array alignment."""
    return (-n) % _ALIGN


@dataclass(frozen=True)
class ShardEntry:
    """Index entry: where one record lives and what listing it needs."""

    key: str
    shard: str
    offset: int
    json_len: int
    arr_len: int
    n_arrays: int = 0
    fn: "str | None" = None
    seed: "int | None" = None

    @property
    def end(self) -> int:
        """First byte past this entry (header + JSON + array segment)."""
        return self.offset + _HEADER.size + self.json_len + self.arr_len

    def to_line(self) -> str:
        return json.dumps(
            {"key": self.key, "offset": self.offset,
             "json_len": self.json_len, "arr_len": self.arr_len,
             "n_arrays": self.n_arrays, "fn": self.fn, "seed": self.seed},
            sort_keys=True,
        ) + "\n"


def _describe_array(arr: np.ndarray, offset: int) -> "tuple[dict, np.ndarray]":
    """Array descriptor for the JSON record + the contiguous bytes source."""
    if arr.dtype.hasobject:
        raise TypeError(
            "object-dtype arrays cannot be stored (no stable byte "
            "representation); convert to a numeric/str dtype first"
        )
    order = "F" if (arr.flags.f_contiguous and not arr.flags.c_contiguous) \
        else "C"
    contig = arr if (arr.flags.c_contiguous or arr.flags.f_contiguous) \
        else np.ascontiguousarray(arr)
    descr = {
        "dtype": np.lib.format.dtype_to_descr(contig.dtype),
        "shape": list(contig.shape),
        "order": order,
        "offset": offset,
        "nbytes": int(contig.nbytes),
    }
    return descr, contig


def _reconstruct(buf, descr: Mapping, base_offset: int,
                 copy: bool) -> np.ndarray:
    """Rebuild one array from its descriptor over a buffer (mmap or bytes).

    With ``copy=False`` the result is a read-only view into ``buf``;
    with ``copy=True`` it is a fresh writable array, matching what
    ``np.load`` returns for the legacy per-file layout.
    """
    dtype = np.lib.format.descr_to_dtype(descr["dtype"])
    shape = tuple(descr["shape"])
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if descr["nbytes"] == 0 and count != 0:  # pragma: no cover - defensive
        raise ValueError("array descriptor with zero bytes but nonzero size")
    flat = np.frombuffer(buf, dtype=dtype, count=count,
                         offset=base_offset + int(descr["offset"]))
    arr = flat.reshape(shape, order=descr.get("order", "C"))
    if copy:
        arr = arr.copy(order=descr.get("order", "C"))
    return arr


class PackedShards:
    """Reader/writer over a store's ``shards/`` directory.

    One instance serves one process: it owns at most one shard file for
    writing (per pid — a forked child opens its own) and caches an
    in-memory key index plus per-shard memory maps for reading.  The
    on-disk state it manages is multi-process safe (see module docs).
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        # key -> ShardEntry; covered -> bytes of each shard already indexed
        self._index: "dict[str, ShardEntry]" = {}
        self._covered: "dict[str, int]" = {}
        self._mmaps: "dict[str, tuple]" = {}  # shard -> (np.memmap, size)
        self._writer = None  # (pid, shard_name, shard_fh, idx_fh)

    # -- pickling: handles and caches are process-local -----------------

    def __getstate__(self) -> dict:
        return {"root": self.root}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["root"])

    # -- basic state ----------------------------------------------------

    @property
    def exists(self) -> bool:
        return self.root.is_dir()

    def shard_paths(self) -> "list[Path]":
        if not self.exists:
            return []
        return sorted(self.root.glob("*.shard"))

    def __contains__(self, key: str) -> bool:
        return self.lookup(key) is not None

    def keys(self) -> "Iterator[str]":
        self.refresh()
        yield from sorted(self._index)

    def entries(self) -> "Iterator[ShardEntry]":
        self.refresh()
        for key in sorted(self._index):
            yield self._index[key]

    def shard_mtime(self, shard: str) -> float:
        try:
            return (self.root / shard).stat().st_mtime
        except OSError:
            return 0.0

    # -- write ----------------------------------------------------------

    def _writer_handles(self):
        """The calling process's append handles (opened on first write)."""
        pid = os.getpid()
        if self._writer is not None and self._writer[0] == pid:
            return self._writer
        if self._writer is not None:  # forked child: never reuse the
            self._close_writer()      # parent's handles
        self.root.mkdir(parents=True, exist_ok=True)
        name = f"w{pid:x}-{uuid.uuid4().hex[:8]}.shard"
        shard_fh = open(self.root / name, "ab")
        idx_fh = open(self.root / f"{name}.idx", "a")
        self._writer = (pid, name, shard_fh, idx_fh)
        return self._writer

    def _close_writer(self) -> None:
        if self._writer is None:
            return
        _, _, shard_fh, idx_fh = self._writer
        for fh in (shard_fh, idx_fh):
            try:
                fh.close()
            except OSError:  # pragma: no cover - close failures are moot
                pass
        self._writer = None

    def append(self, key: str, plain: Mapping, arrays: "Mapping[str, np.ndarray]",
               spec: "Mapping | None" = None) -> Path:
        """Pack one record into this process's shard; returns the shard path.

        The shard entry lands (flushed) before its index line, so a crash
        between the two leaves a recoverable shard tail, never an index
        line pointing at missing bytes.  A write that fails midway
        (ENOSPC, yanked permissions) is truncated back to the entry
        start and re-raised as :class:`StoreError`: the shard keeps no
        torn tail and the sidecar index — which never saw the entry —
        stays consistent.
        """
        descrs, sources, pos = {}, [], 0
        for name in sorted(arrays):
            descr, contig = _describe_array(arrays[name], pos)
            descrs[name] = descr
            sources.append(contig)
            pos += descr["nbytes"] + _pad(descr["nbytes"])
        record = {
            "version": SHARD_FORMAT_VERSION,
            "key": key,
            "value": dict(plain),
            "arrays": descrs,
        }
        if spec is not None:
            record["spec"] = dict(spec)
        payload = json.dumps(record, sort_keys=True).encode("utf-8")

        _, name, shard_fh, idx_fh = self._writer_handles()
        offset = shard_fh.tell()
        try:
            shard_fh.write(_HEADER.pack(_MAGIC, zlib.crc32(payload),
                                        len(payload), pos))
            shard_fh.write(payload)
            for descr, contig in zip(descrs.values(), sources):
                data = contig.tobytes(order=descr["order"])
                shard_fh.write(data)
                shard_fh.write(b"\0" * _pad(len(data)))
            shard_fh.flush()
        except OSError as exc:
            # Disk full (or permissions yanked) mid-entry: cut the
            # partial entry away so the shard carries no torn tail.  If
            # even the truncate fails, the recovery scan stops at the
            # torn entry anyway — either way the index stays consistent,
            # because the sidecar line below was never written.
            try:
                shard_fh.truncate(offset)
                shard_fh.seek(offset)
            except OSError:
                pass
            raise StoreError(
                f"packed-shard append of {key!r} failed mid-write: {exc} "
                f"(shard truncated back to the previous entry; the index "
                f"is consistent)") from exc

        entry = ShardEntry(
            key=key, shard=name, offset=offset, json_len=len(payload),
            arr_len=pos, n_arrays=len(descrs),
            fn=(spec or {}).get("fn"), seed=(spec or {}).get("seed"),
        )
        try:
            idx_fh.write(entry.to_line())
            idx_fh.flush()
        except OSError:
            # The entry itself is durably committed and the sidecar is
            # only a cache: a reader recovers the uncovered tail by
            # scanning the shard.  Don't fail a stored result over it.
            telemetry.count("store.shard.idx_write_failures")
        self._index[key] = entry
        self._covered[name] = entry.end
        telemetry.count("store.shard.appends")
        if chaos.active() is not None and chaos.torn_shard_write(name):
            self._tear_tail(shard_fh, name)
        return self.root / name

    def _tear_tail(self, shard_fh, name: str) -> None:
        """Chaos hook: simulate this writer crashing mid-append.

        Writes a garbage partial header at the shard tail — after the
        committed entry, whose index line is already durable — then
        retires the writer handles so the next append opens a fresh
        shard, exactly like a replacement process would.  Readers must
        scan around the torn tail (:meth:`scan_shard` stops at it).
        """
        try:
            shard_fh.write(_MAGIC + b"\x7f\x7f\x7f")
            shard_fh.flush()
        except OSError:  # pragma: no cover - chaos on a full disk
            pass
        self._close_writer()
        telemetry.count("store.shard.chaos_tears")

    # -- index maintenance ----------------------------------------------

    def refresh(self) -> None:
        """Bring the in-memory index up to date with the directory.

        Costs one directory listing plus a ``stat`` per shard when
        nothing changed; a grown shard is caught up from its sidecar
        index, and any bytes the sidecar does not faithfully cover
        (torn/missing/corrupt index) are recovered by scanning the
        shard itself.
        """
        for path in self.shard_paths():
            name = path.name
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if self._covered.get(name, -1) >= size:
                continue
            self._load_shard(path, size)

    def _load_shard(self, path: Path, size: int) -> None:
        """Index one shard: trust the sidecar as far as it matches."""
        name = path.name
        pos = 0
        for entry in self._read_sidecar(path):
            if entry.offset != pos or entry.end > size:
                break  # sidecar diverges from the shard: scan from here
            self._index[entry.key] = entry
            pos = entry.end
        if pos < size:
            n = 0
            for entry in self.scan_shard(path, start=pos):
                self._index[entry.key] = entry
                n += 1
            if n:
                telemetry.count("store.shard.recovered", n)
        self._covered[name] = size

    def _read_sidecar(self, shard_path: Path) -> "Iterator[ShardEntry]":
        """Parse the sidecar index, skipping torn/garbage lines."""
        idx_path = shard_path.with_name(shard_path.name + ".idx")
        try:
            text = idx_path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            try:
                doc = json.loads(line)
                yield ShardEntry(
                    key=doc["key"], shard=shard_path.name,
                    offset=int(doc["offset"]), json_len=int(doc["json_len"]),
                    arr_len=int(doc["arr_len"]),
                    n_arrays=int(doc.get("n_arrays", 0)),
                    fn=doc.get("fn"), seed=doc.get("seed"),
                )
            except (ValueError, KeyError, TypeError):
                return  # torn tail (or corrupt line): shard scan takes over

    def scan_shard(self, path: Path, start: int = 0) -> "Iterator[ShardEntry]":
        """Walk a shard's self-describing entries from ``start``.

        Stops at the first torn/corrupt entry (truncated header or
        payload, bad magic, CRC mismatch): an append-only file can only
        be damaged at its tail, and everything before it stays valid.
        """
        size = path.stat().st_size
        with open(path, "rb") as fh:
            fh.seek(start)
            pos = start
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return
                magic, crc, json_len, arr_len = _HEADER.unpack(header)
                if magic != _MAGIC:
                    return
                payload = fh.read(json_len)
                if len(payload) < json_len or zlib.crc32(payload) != crc:
                    return
                try:
                    record = json.loads(payload)
                    key = record["key"]
                except (ValueError, KeyError):
                    return
                entry = ShardEntry(
                    key=key, shard=path.name, offset=pos,
                    json_len=json_len, arr_len=arr_len,
                    n_arrays=len(record.get("arrays", {})),
                    fn=(record.get("spec") or {}).get("fn"),
                    seed=(record.get("spec") or {}).get("seed"),
                )
                if entry.end > size:
                    return  # array segment torn off
                pos = entry.end
                fh.seek(pos)
                yield entry

    def rebuild_index(self) -> int:
        """Rewrite every sidecar index from its shard; returns entry count.

        Each sidecar is written to a temp file and atomically swapped in
        (``os.replace``), so concurrent readers always see either the
        old or the new index — and either one is only a cache over the
        self-describing shard bytes.
        """
        n = 0
        with telemetry.span("store.shard.rebuild"):
            for path in self.shard_paths():
                entries = list(self.scan_shard(path))
                idx_path = path.with_name(path.name + ".idx")
                fd, tmp = tempfile.mkstemp(dir=self.root,
                                           prefix=f".{idx_path.name}.")
                try:
                    with os.fdopen(fd, "w") as fh:
                        for entry in entries:
                            fh.write(entry.to_line())
                    os.replace(tmp, idx_path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
                for entry in entries:
                    self._index[entry.key] = entry
                self._covered[path.name] = \
                    entries[-1].end if entries else 0
                n += len(entries)
        return n

    # -- read -----------------------------------------------------------

    def lookup(self, key: str) -> "ShardEntry | None":
        """Find a key, re-scanning the directory once on a miss (another
        process may have appended since our last refresh)."""
        entry = self._index.get(key)
        if entry is None:
            if not self.exists:
                return None
            self.refresh()
            entry = self._index.get(key)
        return entry

    def _mmap_for(self, shard: str, needed: int):
        """A (cached) read-only memory map covering at least ``needed``."""
        cached = self._mmaps.get(shard)
        if cached is not None and cached[1] >= needed:
            return cached[0]
        path = self.root / shard
        size = path.stat().st_size
        mm = np.memmap(path, dtype=np.uint8, mode="r", shape=(size,))
        self._mmaps[shard] = (mm, size)
        return mm

    def read(self, key: str, mmap: bool = False) -> "tuple[dict, dict] | None":
        """Load ``(record, value)`` for a key, or ``None`` on a miss.

        ``value`` is the caller-facing result dict (plain fields plus
        reconstructed arrays).  With ``mmap=True`` the arrays are
        read-only zero-copy views into the shard's memory map; the
        default returns fresh writable copies, byte-identical to what
        the legacy per-file layout's ``np.load`` would produce.
        """
        entry = self.lookup(key)
        if entry is None:
            return None
        try:
            if mmap:
                buf = self._mmap_for(entry.shard, entry.end)
            else:
                with open(self.root / entry.shard, "rb") as fh:
                    fh.seek(entry.offset)
                    buf = fh.read(entry.end - entry.offset)
                if len(buf) < entry.end - entry.offset:
                    raise OSError("shard truncated under a live index")
            base = entry.offset if mmap else 0
            payload = bytes(buf[base + _HEADER.size:
                                base + _HEADER.size + entry.json_len])
            record = json.loads(payload)
            value = dict(record.get("value", {}))
            arr_base = base + _HEADER.size + entry.json_len
            for name, descr in record.get("arrays", {}).items():
                value[name] = _reconstruct(buf, descr, arr_base,
                                           copy=not mmap)
        except (OSError, ValueError, KeyError):
            # Torn shard tail, raced compaction, or corrupt descriptor:
            # the store contract is "unreadable counts as a miss".
            self._index.pop(key, None)
            return None
        return record, value
