"""Reference campaign task functions.

Campaign tasks must be *importable top-level functions* (referenced by
``"module:function"`` path in a :class:`~repro.runtime.spec.RunSpec`) so
that worker processes can resolve them under any multiprocessing start
method.  This module collects the stock tasks used by the benchmarks
and the test-suite; they double as templates for new campaign
workloads.

Contract for any campaign task:

- accept only plain-data keyword arguments (scalars / lists / dicts);
- accept a ``seed`` keyword when randomness is involved and derive
  *all* randomness from it (``numpy.random.default_rng(seed)``);
- return a mapping of named result fields (JSON-able scalars/lists or
  numpy arrays) — that mapping is what the result store persists.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.core.timing import RunTiming
from repro.sim import CommPattern, Direction, LockstepConfig, simulate_lockstep
from repro.sim.campaign import DelayCampaign

__all__ = [
    "campaign_draw_task",
    "failing_task",
    "flaky_exit_task",
    "hard_exit_task",
    "lockstep_delay_task",
    "ring_runtime",
    "rng_probe_task",
    "sleeping_task",
]


def ring_runtime(n_ranks, n_steps, t_exec, msg_size, delays, sim_seed) -> float:
    """Total runtime of one lockstep run on the canonical campaign ring.

    The shared geometry of the delay-campaign studies — a periodic
    bidirectional distance-1 ring — lives here so that the experiment
    drivers (``repro.experiments.ext_campaign``) and the runtime
    benchmarks exercise one and the same configuration.
    """
    cfg = LockstepConfig(
        n_ranks=n_ranks, n_steps=n_steps, t_exec=t_exec, msg_size=msg_size,
        pattern=CommPattern(direction=Direction.BIDIRECTIONAL, distance=1,
                            periodic=True),
        delays=tuple(delays),
        seed=sim_seed,
    )
    return RunTiming.of(simulate_lockstep(cfg)).total_runtime()


def lockstep_delay_task(
    n_ranks: int,
    n_steps: int,
    t_exec: float,
    msg_size: int,
    rate: float,
    duration_low: float,
    duration_high: float,
    replicate: int = 0,
    reps: int = 1,
    seed: int = 0,
) -> dict:
    """Simulate ``reps`` lockstep runs under a random delay campaign.

    The canonical compute-bound campaign unit: draw a Poisson delay
    schedule (:class:`~repro.sim.campaign.DelayCampaign`), run the
    vectorized lockstep engine on a periodic bidirectional ring, and
    report runtime plus injected-delay accounting.  ``replicate`` only
    distinguishes otherwise-identical grid points (the seed varies with
    it through the sweep's task index); ``reps`` repeats the
    draw+simulate cycle in-process to fatten the task for benchmarking.
    """
    rng = np.random.default_rng(seed)
    campaign = DelayCampaign(rate=rate, duration_low=duration_low,
                             duration_high=duration_high)
    runtimes, injected_totals, n_delays = [], [], 0
    for _ in range(max(int(reps), 1)):
        delays = campaign.draw(n_ranks, n_steps, rng)
        runtimes.append(ring_runtime(n_ranks, n_steps, t_exec, msg_size,
                                     delays, seed))
        injected_totals.append(float(sum(d.duration for d in delays)))
        n_delays += len(delays)
    return {
        "runtime": float(np.mean(runtimes)),
        "runtimes": [float(r) for r in runtimes],
        "injected": float(np.mean(injected_totals)),
        "n_delays": n_delays,
        "replicate": int(replicate),
    }


def campaign_draw_task(
    rate: float,
    duration_low: float,
    duration_high: float,
    n_ranks: int,
    n_steps: int,
    seed: int = 0,
) -> dict:
    """Draw one :class:`~repro.sim.campaign.DelayCampaign` schedule.

    Used to validate that integer-seeded draws are bit-identical across
    process boundaries (`tests/sim/test_campaign.py`).
    """
    campaign = DelayCampaign(rate=rate, duration_low=duration_low,
                             duration_high=duration_high)
    specs = campaign.draw(n_ranks, n_steps, seed)
    return {
        "ranks": [s.rank for s in specs],
        "steps": [s.step for s in specs],
        "durations": [s.duration for s in specs],
    }


def rng_probe_task(n: int = 4, replicate: int = 0, seed: int = 0) -> dict:
    """Return the first ``n`` uniform draws of the task's seed stream.

    A pure diagnostic: campaigns over this task expose exactly which
    random stream each task received, which the tests use to prove that
    per-task streams are deterministic and pairwise distinct.
    """
    rng = np.random.default_rng(seed)
    return {"seed": int(seed), "draws": [float(x) for x in rng.random(int(n))]}


def failing_task(message: str = "synthetic task failure", replicate: int = 0,
                 seed: int = 0) -> dict:
    """Raise — the stock task for exercising campaign failure isolation."""
    raise RuntimeError(f"{message} (seed={seed})")


def sleeping_task(duration_s: float = 0.1, replicate: int = 0,
                  seed: int = 0) -> dict:
    """Sleep for ``duration_s`` wall-clock seconds, then return it.

    The stock slow-but-healthy task: the watchdog tests mix one long
    sleeper into a pool of fast tasks to provoke a ``task.stall``
    warning without faking clocks or killing workers.
    """
    time.sleep(float(duration_s))
    return {"slept_s": float(duration_s), "replicate": int(replicate),
            "seed": int(seed)}


def hard_exit_task(code: int = 1, replicate: int = 0, seed: int = 0) -> dict:
    """Kill the hosting process outright (``os._exit`` — no cleanup).

    Simulates a worker dying mid-task (segfault, OOM kill) to exercise
    the executor's broken-pool handling.  Never run this serially: in
    the serial backend the hosting process is *your* process.
    """
    os._exit(int(code))


def flaky_exit_task(sentinel: str = "", fail_times: int = 1,
                    replicate: int = 0, seed: int = 0) -> dict:
    """Kill the hosting process the first ``fail_times`` attempts, then
    succeed.

    ``sentinel`` names a directory used to count attempts across worker
    processes (one marker file per death), so the task models a
    *transient* worker crash — an OOM kill under memory pressure that a
    respawned pool survives.  The recovery tests use it to prove that a
    crashed-but-recoverable task is re-dispatched and completes instead
    of being quarantined.  Same serial caveat as :func:`hard_exit_task`.
    """
    root = Path(sentinel)
    root.mkdir(parents=True, exist_ok=True)
    attempts = len(list(root.glob(f"attempt-{replicate}-*")))
    if attempts < int(fail_times):
        (root / f"attempt-{replicate}-{attempts}").touch()
        os._exit(13)
    return {"attempts": attempts, "replicate": int(replicate),
            "seed": int(seed)}
