"""Declarative task specs: one run, or a whole parameter sweep.

A :class:`RunSpec` is the unit of campaign work: a reference to a
top-level task function (as a ``"module.path:function"`` string, so the
spec pickles cheaply and resolves identically in any worker process),
its keyword parameters, and the task's derived seed.  Specs are frozen,
hashable, and canonically serializable; :func:`spec_key` turns one into
a stable content hash that the on-disk result store uses as its address.

A :class:`SweepSpec` declares a Cartesian grid of parameter values plus
replicate runs and expands into the ordered tuple of concrete
:class:`RunSpec` tasks, each with its own deterministic seed derived
from ``(base_seed, task_index)`` (see :mod:`repro.runtime.seeding`).
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.runtime.seeding import derive_seed

__all__ = ["RunSpec", "SweepSpec", "canonical", "hashable", "spec_key"]


def canonical(value: Any, path: str = "") -> Any:
    """Normalize a parameter value into a canonical JSON-able form.

    Scalars pass through (numpy scalars are converted to Python ones),
    sequences become lists, mappings become key-sorted dicts.  Anything
    else — live objects, arrays, generators — is rejected: task inputs
    must be plain data so that the content hash is stable across
    processes and sessions.

    ``path`` names the parameter being normalized; rejections anywhere in
    a nested value raise a :class:`TypeError` that spells out the full
    key/index path of the offending entry (e.g. ``config['delays'][2]``),
    not just its type.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, Mapping):
        out = {}
        for key in sorted(value, key=str):
            if not isinstance(key, str):
                where = f" at {path}" if path else ""
                raise TypeError(
                    f"mapping keys must be str, got {key!r} "
                    f"({type(key).__name__}){where}"
                )
            out[key] = canonical(value[key], f"{path}[{key!r}]" if path else repr(key))
        return out
    if isinstance(value, (list, tuple)):
        return [
            canonical(v, f"{path}[{i}]" if path else f"[{i}]")
            for i, v in enumerate(value)
        ]
    where = f"parameter {path}" if path else "parameter"
    raise TypeError(
        f"{where} of type {type(value).__name__} is not canonicalizable; "
        "pass plain scalars / lists / dicts (e.g. refer to objects by name)"
    )


def hashable(value: Any) -> Any:
    """Canonical plain-data value → an equality-preserving hashable form.

    Task batchers key blocks by (subsets of) ``RunSpec.params``, whose
    values may be nested lists/dicts; this collapses them to nested
    tuples usable as dict keys.  The tag distinguishes mappings from
    sequences so ``{}`` and ``[]`` (equal-looking after conversion) can
    never be conflated.
    """
    if isinstance(value, Mapping):
        return ("map", tuple((k, hashable(v)) for k, v in sorted(value.items())))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(hashable(v) for v in value))
    return value


def _canonical_json(value: Any) -> str:
    """Deterministic JSON text for hashing (sorted keys, repr-exact floats)."""
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class RunSpec:
    """One campaign task: importable function + parameters + seed.

    Parameters
    ----------
    fn:
        Import path ``"package.module:function"`` of a *top-level*
        function.  String form keeps the spec picklable and lets worker
        processes resolve the callable themselves.
    params:
        Keyword arguments, stored as a sorted tuple of ``(name, value)``
        pairs of canonical plain data (see :func:`canonical`).
    seed:
        Derived per-task integer seed, or ``None`` for seedless tasks.
        Passed to the function as a ``seed=`` keyword when not ``None``.
    index:
        Position of this task within its campaign.  Metadata only: it
        determines the seed at sweep-expansion time but does not enter
        the content hash (the seed already does).
    """

    fn: str
    params: tuple = ()
    seed: "int | None" = None
    index: int = 0

    def __post_init__(self) -> None:
        if ":" not in self.fn:
            raise ValueError(
                f"fn must be an import path 'module:function', got {self.fn!r}"
            )
        if isinstance(self.params, Mapping):
            items = self.params.items()
        else:
            items = self.params
        norm = tuple(sorted((str(k), canonical(v, path=str(k))) for k, v in items))
        if self.seed is not None and any(k == "seed" for k, _ in norm):
            raise ValueError(
                "params may not contain 'seed' when the spec has a derived "
                "seed — it would be silently overwritten at call time"
            )
        object.__setattr__(self, "params", norm)

    @property
    def kwargs(self) -> dict:
        """Parameters as a keyword-argument dict (fresh copy)."""
        return {k: v for k, v in self.params}

    def resolve(self) -> Callable:
        """Import and return the task function."""
        module_name, _, func_name = self.fn.partition(":")
        module = importlib.import_module(module_name)
        try:
            func = getattr(module, func_name)
        except AttributeError as exc:
            raise AttributeError(f"{module_name} has no attribute {func_name!r}") from exc
        if not callable(func):
            raise TypeError(f"{self.fn} is not callable")
        return func

    def call(self) -> Any:
        """Execute the task in the current process."""
        kwargs = self.kwargs
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.resolve()(**kwargs)

    @property
    def key(self) -> str:
        """Stable content hash of ``(fn, params, seed)`` — the cache address."""
        return spec_key(self)

    def describe(self) -> dict:
        """Plain-data description (what the store records next to results)."""
        return {"fn": self.fn, "params": dict(self.params), "seed": self.seed}


def spec_key(spec: RunSpec) -> str:
    """SHA-256 content hash of a task spec (hex, truncated to 32 chars).

    Depends only on the function path, canonicalized parameters, and the
    derived seed — not on the task's campaign position, the backend, or
    the process that computes it.
    """
    payload = _canonical_json(
        {"fn": spec.fn, "params": dict(spec.params), "seed": spec.seed}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class SweepSpec:
    """A Cartesian parameter grid of replicated, seeded campaign tasks.

    Parameters
    ----------
    fn:
        Import path of the task function (see :class:`RunSpec.fn`).
    base:
        Fixed keyword parameters shared by every task.
    axes:
        Ordered ``(name, values)`` pairs; the grid is the Cartesian
        product in declaration order, with the *last* axis varying
        fastest (like nested loops).
    base_seed:
        Campaign seed.  Task ``i`` of the expansion receives the derived
        seed ``derive_seed(base_seed, i)``; set ``seeded=False`` for
        deterministic task functions that take no seed.
    seeded:
        Whether tasks receive a derived ``seed`` parameter.
    """

    fn: str
    base: tuple = ()
    axes: tuple = ()
    base_seed: int = 0
    seeded: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.base, Mapping):
            base_items = tuple(sorted(self.base.items()))
        else:
            base_items = tuple(self.base)
        object.__setattr__(self, "base", base_items)
        axes = []
        for name, values in self.axes:
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {name!r} has no values")
            axes.append((str(name), values))
        object.__setattr__(self, "axes", tuple(axes))
        names = [k for k, _ in self.base] + [n for n, _ in self.axes]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate parameter names: {sorted(dupes)}")
        if self.seeded and "seed" in names:
            raise ValueError(
                "'seed' is derived per task in a seeded sweep; pass "
                "seeded=False to control it as an ordinary parameter"
            )

    @property
    def size(self) -> int:
        """Number of tasks the sweep expands to."""
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def points(self) -> "list[dict]":
        """The grid points (axis-value dicts) in expansion order."""
        names = [n for n, _ in self.axes]
        grids = [v for _, v in self.axes]
        return [dict(zip(names, combo)) for combo in itertools.product(*grids)]

    def tasks(self) -> "tuple[RunSpec, ...]":
        """Expand into concrete, deterministically seeded tasks."""
        specs = []
        for i, point in enumerate(self.points()):
            params = dict(self.base)
            params.update(point)
            seed = derive_seed(self.base_seed, i) if self.seeded else None
            specs.append(RunSpec(fn=self.fn, params=tuple(params.items()),
                                 seed=seed, index=i))
        return tuple(specs)
