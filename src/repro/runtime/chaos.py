"""Deterministic chaos injection for the campaign runtime.

The fault-tolerance machinery (retries, pool respawn, quarantine, torn
shard recovery) is only trustworthy if it is *tested against real
faults* — workers that raise, workers that die mid-task, tasks that
wedge, shard files with garbage tails.  This module is the testing
substrate: a :class:`ChaosSpec` describes fault rates, and every
injection decision is a pure function of ``(chaos seed, task key,
attempt)``, so a chaos run is exactly reproducible — the same tasks
fault on the same attempts regardless of job count, pool scheduling, or
retry interleaving.  That is what lets the property tests assert that a
``--jobs 2`` sweep under injected crashes produces store records
byte-identical to a fault-free serial run.

Installation is process-global and travels two ways:

- :func:`install` sets the spec in-process (tests, serial runs);
- the :data:`ENV_VAR` environment variable carries a JSON-encoded spec
  into pool worker processes under any start method — workers load it
  lazily on their first injection check (:func:`active`).

Fault kinds (all off by default):

- ``crash_rate`` — raise :class:`ChaosError` inside the task (a soft
  failure: caught by the executor, eligible for retry);
- ``abort_rate`` — kill the hosting process via ``os._exit`` (a hard
  worker death: exercises broken-pool recovery).  Degrades to a raised
  :class:`ChaosError` outside a multiprocessing child, so a serial run
  cannot take down the calling process;
- ``stall_rate``/``stall_s`` — sleep ``stall_s`` before the task runs
  (exercises the stall watchdog; keep it finite so tests terminate);
- ``torn_write_rate`` — after a successful packed-shard append, write a
  garbage partial record at the shard tail and retire the writer handle
  (simulating a writer killed mid-append; the committed record stays
  readable and recovery must scan around the torn tail).

``max_faults_per_task`` bounds injection per task: attempts at or above
it always run clean, so any retry budget >= that bound converges.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass

__all__ = ["ChaosError", "ChaosSpec", "ENV_VAR", "active", "install",
           "maybe_inject", "maybe_inject_block", "torn_shard_write",
           "uninstall"]

#: Environment variable carrying a JSON-encoded :class:`ChaosSpec` into
#: worker processes (and CLI runs: ``REPRO_CHAOS='{"seed":7,...}'``).
ENV_VAR = "REPRO_CHAOS"


class ChaosError(RuntimeError):
    """The injected task failure — unmistakable in tracebacks and logs."""


@dataclass(frozen=True)
class ChaosSpec:
    """Fault rates and the seed that makes their injection deterministic."""

    seed: int = 0
    crash_rate: float = 0.0
    abort_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.0
    torn_write_rate: float = 0.0
    max_faults_per_task: int = 1

    def __post_init__(self) -> None:
        for name in ("crash_rate", "abort_rate", "stall_rate",
                     "torn_write_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stall_s < 0:
            raise ValueError(f"stall_s must be >= 0, got {self.stall_s}")
        if self.max_faults_per_task < 0:
            raise ValueError("max_faults_per_task must be >= 0")

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"chaos spec must be a JSON object, got: {text!r}")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown chaos spec fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}")
        return cls(**data)

    def roll(self, kind: str, task_key: str, attempt: int) -> float:
        """The uniform draw deciding fault ``kind`` for one attempt.

        A pure hash of ``(seed, kind, task_key, attempt)`` mapped to
        ``[0, 1)`` — no RNG state, no process affinity: every process
        asking about the same attempt gets the same answer.
        """
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{task_key}:{attempt}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def faults_for(self, task_key: str, attempt: int) -> "list[str]":
        """Fault kinds injected for this attempt, in application order."""
        if attempt >= self.max_faults_per_task:
            return []
        out = []
        if self.stall_rate > 0 and self.stall_s > 0 and \
                self.roll("stall", task_key, attempt) < self.stall_rate:
            out.append("stall")
        if self.abort_rate > 0 and \
                self.roll("abort", task_key, attempt) < self.abort_rate:
            out.append("abort")
        elif self.crash_rate > 0 and \
                self.roll("crash", task_key, attempt) < self.crash_rate:
            out.append("crash")
        return out


# Process-global installation.  ``_env_checked`` makes the common no-op
# path (no chaos anywhere) a single attribute test after the first call.
_spec: "ChaosSpec | None" = None
_env_checked = False


def install(spec: "ChaosSpec | None") -> None:
    """Install (or clear, with ``None``) the in-process chaos spec."""
    global _spec, _env_checked
    _spec = spec
    _env_checked = True


def uninstall() -> None:
    """Remove any installed spec and forget the env lookup."""
    global _spec, _env_checked
    _spec = None
    _env_checked = False


def active() -> "ChaosSpec | None":
    """The effective spec: installed one, else lazily loaded from env."""
    global _spec, _env_checked
    if not _env_checked:
        _env_checked = True
        text = os.environ.get(ENV_VAR)
        if text:
            _spec = ChaosSpec.from_json(text)
    return _spec


def _in_worker() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


def maybe_inject(task_key: str, attempt: int) -> None:
    """Apply any faults due for this task attempt (no-op without a spec).

    Called by the executor immediately before running a task.  ``abort``
    hard-kills a worker process; in the parent process (serial backend)
    it degrades to a raised :class:`ChaosError` so chaos can never kill
    the campaign driver itself.
    """
    spec = active()
    if spec is None:
        return
    for fault in spec.faults_for(task_key, attempt):
        if fault == "stall":
            import time

            time.sleep(spec.stall_s)
        elif fault == "abort":
            if _in_worker():
                os._exit(37)
            raise ChaosError(
                f"injected abort (degraded to exception outside a worker) "
                f"for task {task_key} attempt {attempt}")
        else:
            raise ChaosError(
                f"injected failure for task {task_key} attempt {attempt}")


def maybe_inject_block(task_keys: "list[str]") -> None:
    """Fault a batched block if any member task would fault on attempt 0.

    Batched blocks run through the engine in one call, so per-task
    injection cannot reach inside them; instead the whole block faults,
    which exercises exactly the production path: a failed block falls
    back to per-task execution, where per-task injection (and the retry
    policy) takes over.
    """
    spec = active()
    if spec is None:
        return
    for key in task_keys:
        for fault in spec.faults_for(key, 0):
            if fault == "stall":
                import time

                time.sleep(spec.stall_s)
            elif fault == "abort" and _in_worker():
                os._exit(37)
            else:
                raise ChaosError(
                    f"injected block failure (member task {key})")


def torn_shard_write(shard_name: str) -> bool:
    """Whether to tear the shard tail after the append just committed.

    Decided per ``(seed, shard name, committed-append count)`` so the
    injection is deterministic per writer lineage; the caller tracks the
    count and performs the actual tear.
    """
    spec = active()
    if spec is None or spec.torn_write_rate <= 0:
        return False
    global _torn_count
    _torn_count += 1
    return spec.roll("torn", shard_name, _torn_count) < spec.torn_write_rate


_torn_count = 0
