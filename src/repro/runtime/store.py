"""Content-addressed on-disk result store for campaign runs.

Every task result is addressed by the task's content hash
(:func:`repro.runtime.spec.spec_key`), so a rerun of the same campaign —
same function, parameters, and derived seed — finds its results already
on disk and skips the simulation entirely, while any change to the spec
transparently misses the cache.

Two layouts implement that address space:

- **per-file** (the legacy layout): one JSON record per task under a
  two-level fan-out, plus an optional ``.npz`` side-car for ndarray
  fields.  Simple and greppable, but at campaign scale the directory
  scans and per-file open/parse dominate.
- **packed** (:mod:`repro.runtime.shards`): append-only shard files of
  length-prefixed records with raw array segments, a sidecar index per
  shard, and memory-mapped zero-copy reads.  Listing a 10k-record store
  parses a handful of index files instead of touching 10k records.

A store auto-detects the packed layout (a ``shards/`` directory under
the root activates it for writes), keeps **legacy records readable
forever**, and :meth:`ResultStore.migrate` packs them — byte-identical
``get()`` results before and after, with :meth:`ResultStore.gc` pruning
the packed originals.  Writes are concurrent-multi-writer safe in both
layouts: per-file writes are atomic (temp file + ``os.replace``) and
packed writes go to per-process shard files, so concurrent campaign
processes sharing one cache directory never observe torn records.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro import telemetry
from repro.runtime.shards import PackedShards, SHARD_DIR, StoreError

__all__ = ["GcStats", "MigrateStats", "ResultStore", "StoreEntry",
           "StoreError"]

_FORMAT_VERSION = 1
_ARRAYS_MARKER = "__arrays__"

#: Exceptions a corrupt/truncated NPZ side-car can raise from ``np.load``
#: or member access.  ``zipfile.BadZipFile`` (garbage/torn zip) and
#: ``ValueError`` (damaged npy member, pickled payloads with
#: ``allow_pickle=False``) are *not* ``OSError`` subclasses — a handler
#: missing them turns one corrupt side-car into a crashed campaign.
_NPZ_ERRORS = (OSError, KeyError, ValueError, zipfile.BadZipFile)


def _split_arrays(value: Mapping) -> "tuple[dict, dict]":
    """Separate ndarray fields (array payloads) from plain JSON fields."""
    plain, arrays = {}, {}
    for name, item in value.items():
        if not isinstance(name, str):
            raise TypeError(f"result field names must be str, got {name!r}")
        if isinstance(item, np.ndarray):
            arrays[name] = item
        elif isinstance(item, np.generic):
            plain[name] = item.item()
        else:
            plain[name] = item
    return plain, arrays


@dataclass(frozen=True)
class StoreEntry:
    """Metadata of one stored result (no array payloads loaded).

    ``fn`` and ``seed`` come from the provenance ``spec`` the executor
    records next to each value; they are ``None`` for records written
    without one.  For per-file records, sizes and ``mtime`` come from
    ``stat()``; for packed records, sizes come from the shard index and
    ``mtime`` is the owning shard file's.  Listing a store never reads
    result payloads in either layout.
    """

    key: str
    json_bytes: int
    npz_bytes: int
    fn: "str | None"
    seed: "int | None"
    n_arrays: int
    mtime: float = 0.0
    packed: bool = False

    @property
    def total_bytes(self) -> int:
        return self.json_bytes + self.npz_bytes


@dataclass(frozen=True)
class GcStats:
    """What one :meth:`ResultStore.gc` pass removed."""

    n_orphan_npz: int  # .npz side-cars whose JSON record is gone
    n_corrupt: int  # unreadable/torn JSON records (and their side-cars)
    n_tmp: int  # temp files abandoned by interrupted writes
    bytes_freed: int
    n_orphan_telemetry: int = 0  # telemetry/ files no ledger record names
    n_torn_runs: int = 0  # unreadable runs/ ledger records
    n_corrupt_npz: int = 0  # valid-JSON records with an unreadable side-car
    n_migrated: int = 0  # per-file originals already packed into shards

    @property
    def n_removed(self) -> int:
        return (self.n_orphan_npz + self.n_corrupt + self.n_tmp
                + self.n_orphan_telemetry + self.n_torn_runs
                + self.n_corrupt_npz + self.n_migrated)


@dataclass(frozen=True)
class MigrateStats:
    """What one :meth:`ResultStore.migrate` pass packed."""

    n_packed: int  # per-file records appended to shards
    n_already: int  # keys already present in the packed index
    n_skipped: int  # unreadable records left for gc
    bytes_packed: int  # legacy bytes now also represented in shards

    @property
    def n_records(self) -> int:
        return self.n_packed + self.n_already + self.n_skipped


class ResultStore:
    """A directory of task results addressed by spec content hash.

    Parameters
    ----------
    root:
        Cache directory (created on first write; ``~`` is expanded).
    layout:
        ``"auto"`` (default) writes packed records iff the store has a
        ``shards/`` directory (i.e. was migrated or born packed) and
        per-file records otherwise; ``"packed"`` / ``"file"`` force a
        layout for new writes.  Reads always consult both layouts.
    """

    _LAYOUTS = ("auto", "file", "packed")

    def __init__(self, root: "str | Path", layout: str = "auto") -> None:
        self.root = Path(root).expanduser()
        if layout not in self._LAYOUTS:
            raise ValueError(
                f"layout must be one of {self._LAYOUTS}, got {layout!r}")
        self.layout = layout
        self._shards = PackedShards(self.root / SHARD_DIR)

    # -- addressing ---------------------------------------------------

    def path_for(self, key: str) -> Path:
        """JSON record path for a content hash (two-level fan-out).

        Keys shorter than the two-character fan-out prefix are rejected:
        they would be writable but invisible to ``keys()``/``gc()``.
        """
        if len(key) < 2 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.path_for(key).with_suffix(".npz")

    @property
    def packed_active(self) -> bool:
        """Whether new writes go to packed shards."""
        if self.layout == "packed":
            return True
        if self.layout == "file":
            return False
        return self._shards.exists

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists() or key in self._shards

    # -- read ---------------------------------------------------------

    def get(self, key: str, mmap: bool = False) -> "dict | None":
        """Load the stored result for ``key``, or ``None`` on a miss.

        A record whose bytes are unreadable — JSON torn by a crash
        predating the atomic-write path, a corrupt/truncated NPZ
        side-car, a torn shard tail — counts as a miss: the task is
        simply recomputed and the record rewritten.

        With ``mmap=True``, array fields of *packed* records are
        returned as read-only zero-copy views into the shard's memory
        map (per-file records still load normally); callers that mutate
        result arrays must use the default copying read.
        """
        with telemetry.span("store.get") as sp:
            packed = self._shards.read(key, mmap=mmap) \
                if self._shards.exists else None
            if packed is not None:
                record, value = packed
                telemetry.count("store.get.hits")
                entry = self._shards.lookup(key)
                nbytes = (entry.json_len + entry.arr_len) if entry else 0
                telemetry.count("store.read_bytes", nbytes)
                sp.set(bytes=nbytes, n_arrays=len(record.get("arrays", {})),
                       packed=True)
                return value
            path = self.path_for(key)
            try:
                text = path.read_text()
                record = json.loads(text)
            except (OSError, json.JSONDecodeError):
                telemetry.count("store.get.misses")
                return None
            value = dict(record.get("value", {}))
            array_fields = record.get(_ARRAYS_MARKER, [])
            if array_fields:
                try:
                    with np.load(self._npz_path(key)) as npz:
                        for name in array_fields:
                            value[name] = npz[name]
                except _NPZ_ERRORS:
                    telemetry.count("store.get.misses")
                    return None
            telemetry.count("store.get.hits")
            telemetry.count("store.read_bytes", len(text))
            sp.set(bytes=len(text), n_arrays=len(array_fields))
        return value

    # -- write --------------------------------------------------------

    def put(self, key: str, value: Mapping, spec: "Mapping | None" = None) -> Path:
        """Persist one task result; returns the record (or shard) path.

        ``value`` must be a mapping of str field names to JSON-able data
        or :class:`numpy.ndarray`.  ``spec`` (e.g. ``RunSpec.describe()``)
        is recorded alongside for provenance and debuggability.  The
        write is concurrency-safe in both layouts (atomic replace for
        per-file records, a per-process append-only shard for packed
        ones).
        """
        if not isinstance(value, Mapping):
            raise TypeError(
                f"task results must be mappings, got {type(value).__name__}; "
                "return a dict of named fields from the task function"
            )
        self.path_for(key)  # validate the key in either layout
        with telemetry.span("store.put") as sp:
            plain, arrays = _split_arrays(value)
            if self.packed_active:
                path = self._shards.append(key, plain, arrays, spec=spec)
                entry = self._shards.lookup(key)
                nbytes = (entry.json_len + entry.arr_len) if entry else 0
                telemetry.count("store.puts")
                telemetry.count("store.write_bytes", nbytes)
                sp.set(bytes=nbytes, n_arrays=len(arrays), packed=True)
                return path
            path = self.path_for(key)
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                if arrays:
                    self._atomic_write(
                        self._npz_path(key),
                        lambda fh: np.savez_compressed(fh, **arrays),
                        binary=True,
                    )
                record = {
                    "version": _FORMAT_VERSION,
                    "key": key,
                    "value": plain,
                    _ARRAYS_MARKER: sorted(arrays),
                }
                if spec is not None:
                    record["spec"] = dict(spec)
                text = json.dumps(record, indent=1)
                self._atomic_write(path, lambda fh: fh.write(text))
            except OSError as exc:
                # Full disk, revoked permissions, dead mount.  The
                # atomic-write path already unlinked its temp file, so no
                # torn record exists — surface one typed error instead of
                # a backend-specific OSError mid-campaign.
                raise StoreError(
                    f"result store write of {key!r} under {self.root} "
                    f"failed: {exc}") from exc
            telemetry.count("store.puts")
            telemetry.count("store.write_bytes", len(text))
            sp.set(bytes=len(text), n_arrays=len(arrays))
        return path

    def ensure_writable(self) -> None:
        """Fail fast with :class:`StoreError` if the store cannot accept
        writes — unwritable/uncreatable root, root that is a file, or a
        full disk.  Probes with a real temp-file write so the failure
        surfaces before a campaign burns compute it cannot persist.
        """
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".writable.")
            try:
                os.write(fd, b"probe")
            finally:
                os.close(fd)
                os.unlink(tmp)
        except OSError as exc:
            raise StoreError(
                f"cache directory {self.root} is not writable: {exc}"
            ) from exc

    def _atomic_write(self, path: Path, writer, binary: bool = False) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb" if binary else "w") as fh:
                writer(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- migration ----------------------------------------------------

    def migrate(self, dry_run: bool = False) -> MigrateStats:
        """Pack every readable per-file record into shards.

        The per-file originals are left in place (a concurrent reader
        may be mid-``get``); :meth:`gc` prunes any original whose key is
        already packed.  ``get()`` results are byte-identical before and
        after — plain fields round-trip through canonical JSON and array
        fields through their raw bytes with dtype/shape/order preserved.
        Unreadable records are skipped (they were already misses) and
        left for :meth:`gc`.

        With ``dry_run`` nothing is written and the stats report what a
        real pass would pack.
        """
        n_packed = n_already = n_skipped = packed_bytes = 0
        with telemetry.span("store.migrate") as sp:
            for key in self._file_keys():
                if key in self._shards:
                    n_already += 1
                    continue
                path = self.path_for(key)
                try:
                    record = json.loads(path.read_text())
                    value = dict(record.get("value", {}))
                    nbytes = path.stat().st_size
                    array_fields = record.get(_ARRAYS_MARKER, [])
                    if array_fields:
                        npz_path = self._npz_path(key)
                        with np.load(npz_path) as npz:
                            for name in array_fields:
                                value[name] = npz[name]
                        nbytes += npz_path.stat().st_size
                except (*_NPZ_ERRORS, json.JSONDecodeError):
                    n_skipped += 1
                    continue
                if not dry_run:
                    plain, arrays = _split_arrays(value)
                    self._shards.append(key, plain, arrays,
                                        spec=record.get("spec"))
                n_packed += 1
                packed_bytes += nbytes
            sp.set(n_packed=n_packed, n_already=n_already,
                   n_skipped=n_skipped)
            telemetry.count("store.migrate.packed", n_packed)
        return MigrateStats(n_packed=n_packed, n_already=n_already,
                            n_skipped=n_skipped, bytes_packed=packed_bytes)

    # -- maintenance --------------------------------------------------

    def _file_keys(self) -> "Iterator[str]":
        """Content hashes stored in the per-file layout."""
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def keys(self) -> Iterator[str]:
        """All content hashes currently stored (both layouts, deduped)."""
        packed = set(self._shards.keys()) if self._shards.exists else set()
        seen = set()
        for key in self._file_keys():
            seen.add(key)
            yield key
        for key in sorted(packed - seen):
            yield key

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every stored record; returns how many keys were removed.

        Unlike :meth:`gc`, this is unconditional: both layouts, orphaned
        ``.npz`` side-cars whose JSON record is already gone, and the
        emptied fan-out directories are all removed.
        """
        removed: "set[str]" = set()
        for path in list(self.root.glob("??/*.json")) \
                + list(self.root.glob("??/*.npz")):
            removed.add(path.stem)
            path.unlink(missing_ok=True)
        for sub in self.root.glob("??"):
            if sub.is_dir() and not any(sub.iterdir()):
                sub.rmdir()
        if self._shards.exists:
            removed.update(self._shards.keys())
            self._shards._close_writer()
            shutil.rmtree(self._shards.root, ignore_errors=True)
            self._shards = PackedShards(self.root / SHARD_DIR)
        return len(removed)

    #: How much of a record's tail to read when listing it.  The header
    #: fields (``__arrays__`` + ``spec``) are written after the payload,
    #: so they live in the last few KB of even multi-megabyte records.
    _HEADER_TAIL_BYTES = 65536

    def _read_header(self, path: Path, size: int) -> "dict | None":
        """The record's trailing header fields without parsing the payload.

        Records are written as ``{"version", "key", "value", "__arrays__",
        "spec"}`` with ``indent=1``, so the ``__arrays__`` key appears as
        the byte sequence ``\\n "__arrays__":`` at nesting depth 1 — and
        *only* there: JSON strings cannot contain a raw newline, and
        deeper keys carry more indentation.  Parsing from that marker to
        EOF yields the header fields at a cost independent of the (often
        large) ``value`` payload.  Returns ``None`` for unreadable/torn
        records — the same skip semantics :meth:`get` applies.
        """
        try:
            with open(path, "rb") as fh:
                if size > self._HEADER_TAIL_BYTES:
                    fh.seek(size - self._HEADER_TAIL_BYTES)
                tail = fh.read(self._HEADER_TAIL_BYTES)
        except OSError:
            return None
        # The seek may land mid-codepoint; the marker is pure ASCII, so
        # replacement of a leading partial character is harmless.
        text = tail.decode("utf-8", errors="replace")
        marker = text.rfind(f'\n "{_ARRAYS_MARKER}":')
        if marker >= 0:
            try:
                return json.loads("{" + text[marker + 1:])
            except json.JSONDecodeError:
                return None
        # Header not inside the tail window (oversized spec, foreign
        # format): fall back to a full parse.  ValueError covers both
        # JSONDecodeError and the UnicodeDecodeError a torn binary write
        # produces.
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def entries(self) -> "Iterator[StoreEntry]":
        """Metadata of every readable record (unreadable ones are skipped;
        :meth:`gc` is the tool that deals with those).

        Packed records list from the shard indexes alone — no record
        bytes are touched.  Per-file records read ``stat()`` plus the
        trailing header fields (``__arrays__``, ``spec``); a key present
        in both layouts (a migrated original not yet gc'd) lists once,
        from the packed side.
        """
        packed_keys: "set[str]" = set()
        if self._shards.exists:
            shard_mtimes: "dict[str, float]" = {}
            for entry in self._shards.entries():
                packed_keys.add(entry.key)
                if entry.shard not in shard_mtimes:
                    shard_mtimes[entry.shard] = \
                        self._shards.shard_mtime(entry.shard)
                yield StoreEntry(
                    key=entry.key,
                    json_bytes=entry.json_len,
                    npz_bytes=entry.arr_len,
                    fn=entry.fn,
                    seed=entry.seed,
                    n_arrays=entry.n_arrays,
                    mtime=shard_mtimes[entry.shard],
                    packed=True,
                )
        for key in self._file_keys():
            if key in packed_keys:
                continue
            path = self.path_for(key)
            try:
                st = path.stat()
            except OSError:
                telemetry.count("store.entries.torn_skips")
                continue
            header = self._read_header(path, st.st_size)
            if header is None:
                telemetry.count("store.entries.torn_skips")
                continue
            try:
                npz_bytes = self._npz_path(key).stat().st_size
            except OSError:
                npz_bytes = 0
            spec = header.get("spec") or {}
            yield StoreEntry(
                key=key,
                json_bytes=st.st_size,
                npz_bytes=npz_bytes,
                fn=spec.get("fn"),
                seed=spec.get("seed"),
                n_arrays=len(header.get(_ARRAYS_MARKER, [])),
                mtime=st.st_mtime,
            )

    def gc(self, dry_run: bool = False,
           min_age_s: float = 3600.0) -> GcStats:
        """Prune unreferenced blobs; returns what was (or would be) removed.

        Garbage accumulates in a long-lived cache directory and is never
        read back by :meth:`get` or the run ledger:

        - ``.npz`` side-cars whose JSON record was deleted or lost
          (the record is the only reference to the blob);
        - JSON records that no longer parse (torn by a crash predating
          the atomic-write path, or hand-edited) — these already count
          as misses, so dropping them (and their side-cars) only frees
          space;
        - JSON records that parse but whose NPZ side-car is corrupt or
          truncated — without this they poison the cache forever: every
          ``get`` re-misses, every recompute rewrites, and the broken
          pair survives;
        - per-file originals whose key is already packed into shards
          (what :meth:`migrate` leaves behind for concurrent readers);
        - temp files abandoned by interrupted writes (in the record
          fan-out, in ``shards/``, and in ``runs/``);
        - ``telemetry/`` JSONL files no valid ledger record references —
          profiled runs whose ledger entry is gone (or that predate the
          ledger) leave their telemetry behind forever otherwise;
        - torn/unparseable ``runs/`` ledger records.

        Temp files, orphaned side-cars, and orphaned telemetry younger
        than ``min_age_s`` are left alone: a concurrent campaign process
        may be mid-write (its NPZ lands before its JSON record, a
        profiled run's telemetry before its ledger record), and
        unlinking its in-flight files would lose data it is about to
        reference.  Valid store records (in either layout, minus packed
        duplicates) *and valid ledger records* are never touched — the
        ledger is provenance, not cache.  Emptied fan-out directories
        are removed at the end of a real (non-dry-run) pass.

        With ``dry_run`` nothing is deleted and the stats report what a
        real pass would remove.
        """
        n_orphan = n_corrupt = n_tmp = n_tele = n_torn_runs = freed = 0
        n_corrupt_npz = n_migrated = 0
        if not self.root.exists():
            return GcStats(0, 0, 0, 0)

        now = time.time()

        def remove(path: Path) -> int:
            try:
                size = path.stat().st_size
            except OSError:
                return 0
            if not dry_run:
                path.unlink(missing_ok=True)
            return size

        def old_enough(path: Path) -> bool:
            try:
                return now - path.stat().st_mtime >= min_age_s
            except OSError:
                return False  # already gone (e.g. the writer finished)

        packed_keys: "set[str]" = set()
        if self._shards.exists:
            packed_keys = set(self._shards.keys())
            for path in sorted(self._shards.root.glob(".*")):
                if old_enough(path):
                    n_tmp += 1
                    freed += remove(path)

        for path in sorted(self.root.glob("??/.*")):
            if not old_enough(path):
                continue
            n_tmp += 1
            freed += remove(path)
        for path in sorted(self.root.glob("??/*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                n_corrupt += 1
                freed += remove(path)
                freed += remove(path.with_suffix(".npz"))
                continue
            if path.stem in packed_keys:
                n_migrated += 1
                freed += remove(path)
                freed += remove(path.with_suffix(".npz"))
                continue
            if isinstance(record, dict) and record.get(_ARRAYS_MARKER):
                # A record whose side-car is corrupt, truncated, or gone
                # is dead weight: every get() is a miss, and only a
                # rerun of that exact task would rewrite the pair.
                npz = path.with_suffix(".npz")
                try:
                    with np.load(npz) as z:
                        z.files
                except _NPZ_ERRORS:
                    n_corrupt_npz += 1
                    freed += remove(path)
                    freed += remove(npz)
        for path in sorted(self.root.glob("??/*.npz")):
            if not path.with_suffix(".json").exists() and old_enough(path):
                n_orphan += 1
                freed += remove(path)

        # Run-ledger maintenance: collect the telemetry files valid
        # records reference, drop torn records and abandoned temp files.
        referenced: "set[str]" = set()
        runs_dir = self.root / "runs"
        if runs_dir.exists():
            for path in sorted(runs_dir.iterdir()):
                if path.name.startswith("."):
                    if old_enough(path):
                        n_tmp += 1
                        freed += remove(path)
                    continue
                try:
                    record = json.loads(path.read_text())
                    tele = record.get("telemetry")
                except (OSError, ValueError, AttributeError):
                    if old_enough(path):
                        n_torn_runs += 1
                        freed += remove(path)
                    continue
                if tele:
                    referenced.add(Path(tele).name)

        # Telemetry files whose run is gone from the ledger (or that
        # never had a ledger record) are unreachable: nothing maps a
        # JSONL filename back to a run except the records scanned above.
        tele_dir = self.root / "telemetry"
        if tele_dir.exists():
            for path in sorted(tele_dir.iterdir()):
                if not old_enough(path):
                    continue
                if path.name.startswith("."):
                    n_tmp += 1
                    freed += remove(path)
                elif path.name not in referenced:
                    n_tele += 1
                    freed += remove(path)

        if not dry_run:
            for sub in self.root.glob("??"):
                if sub.is_dir() and not any(sub.iterdir()):
                    sub.rmdir()

        telemetry.count("store.gc.removed",
                        n_orphan + n_corrupt + n_tmp + n_tele + n_torn_runs
                        + n_corrupt_npz + n_migrated)
        telemetry.count("store.gc.bytes_freed", freed)
        return GcStats(n_orphan_npz=n_orphan, n_corrupt=n_corrupt,
                       n_tmp=n_tmp, bytes_freed=freed,
                       n_orphan_telemetry=n_tele, n_torn_runs=n_torn_runs,
                       n_corrupt_npz=n_corrupt_npz, n_migrated=n_migrated)
