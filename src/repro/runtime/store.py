"""Content-addressed on-disk result store for campaign runs.

Each task result lives under the cache root at a path derived from the
task's content hash (:func:`repro.runtime.spec.spec_key`): a JSON record
for plain data plus an optional ``.npz`` side-car for ndarray fields.
Because the address is a pure function of the task description, a rerun
of the same campaign — same function, parameters, and derived seed —
finds its results already on disk and skips the simulation entirely,
while any change to the spec transparently misses the cache.

Writes are atomic (temp file + ``os.replace``) so concurrent campaign
processes sharing one cache directory never observe torn records.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro import telemetry

__all__ = ["GcStats", "ResultStore", "StoreEntry"]

_FORMAT_VERSION = 1
_ARRAYS_MARKER = "__arrays__"


def _split_arrays(value: Mapping) -> "tuple[dict, dict]":
    """Separate ndarray fields (NPZ side-car) from plain JSON fields."""
    plain, arrays = {}, {}
    for name, item in value.items():
        if not isinstance(name, str):
            raise TypeError(f"result field names must be str, got {name!r}")
        if isinstance(item, np.ndarray):
            arrays[name] = item
        elif isinstance(item, np.generic):
            plain[name] = item.item()
        else:
            plain[name] = item
    return plain, arrays


@dataclass(frozen=True)
class StoreEntry:
    """Metadata of one stored result (no array payloads loaded).

    ``fn`` and ``seed`` come from the provenance ``spec`` the executor
    records next to each value; they are ``None`` for records written
    without one.  Sizes and ``mtime`` come from ``stat()`` — listing a
    store never reads result payloads.
    """

    key: str
    json_bytes: int
    npz_bytes: int
    fn: "str | None"
    seed: "int | None"
    n_arrays: int
    mtime: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.json_bytes + self.npz_bytes


@dataclass(frozen=True)
class GcStats:
    """What one :meth:`ResultStore.gc` pass removed."""

    n_orphan_npz: int  # .npz side-cars whose JSON record is gone
    n_corrupt: int  # unreadable/torn JSON records (and their side-cars)
    n_tmp: int  # temp files abandoned by interrupted writes
    bytes_freed: int
    n_orphan_telemetry: int = 0  # telemetry/ files no ledger record names
    n_torn_runs: int = 0  # unreadable runs/ ledger records

    @property
    def n_removed(self) -> int:
        return (self.n_orphan_npz + self.n_corrupt + self.n_tmp
                + self.n_orphan_telemetry + self.n_torn_runs)


class ResultStore:
    """A directory of task results addressed by spec content hash.

    Parameters
    ----------
    root:
        Cache directory (created on first write; ``~`` is expanded).
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root).expanduser()

    # -- addressing ---------------------------------------------------

    def path_for(self, key: str) -> Path:
        """JSON record path for a content hash (two-level fan-out)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.path_for(key).with_suffix(".npz")

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # -- read ---------------------------------------------------------

    def get(self, key: str) -> "dict | None":
        """Load the stored result for ``key``, or ``None`` on a miss.

        A record whose JSON is unreadable (torn by a crash predating the
        atomic-write path, or hand-edited) counts as a miss: the task is
        simply recomputed and the record rewritten.
        """
        path = self.path_for(key)
        with telemetry.span("store.get") as sp:
            try:
                text = path.read_text()
                record = json.loads(text)
            except (OSError, json.JSONDecodeError):
                telemetry.count("store.get.misses")
                return None
            value = dict(record.get("value", {}))
            array_fields = record.get(_ARRAYS_MARKER, [])
            if array_fields:
                try:
                    with np.load(self._npz_path(key)) as npz:
                        for name in array_fields:
                            value[name] = npz[name]
                except (OSError, KeyError):
                    telemetry.count("store.get.misses")
                    return None
            telemetry.count("store.get.hits")
            telemetry.count("store.read_bytes", len(text))
            sp.set(bytes=len(text), n_arrays=len(array_fields))
        return value

    # -- write --------------------------------------------------------

    def put(self, key: str, value: Mapping, spec: "Mapping | None" = None) -> Path:
        """Persist one task result (atomically); returns the JSON path.

        ``value`` must be a mapping of str field names to JSON-able data
        or :class:`numpy.ndarray`.  ``spec`` (e.g. ``RunSpec.describe()``)
        is recorded alongside for provenance and debuggability.
        """
        if not isinstance(value, Mapping):
            raise TypeError(
                f"task results must be mappings, got {type(value).__name__}; "
                "return a dict of named fields from the task function"
            )
        with telemetry.span("store.put") as sp:
            plain, arrays = _split_arrays(value)
            path = self.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            if arrays:
                self._atomic_write(
                    self._npz_path(key),
                    lambda fh: np.savez_compressed(fh, **arrays),
                    binary=True,
                )
            record = {
                "version": _FORMAT_VERSION,
                "key": key,
                "value": plain,
                _ARRAYS_MARKER: sorted(arrays),
            }
            if spec is not None:
                record["spec"] = dict(spec)
            text = json.dumps(record, indent=1)
            self._atomic_write(path, lambda fh: fh.write(text))
            telemetry.count("store.puts")
            telemetry.count("store.write_bytes", len(text))
            sp.set(bytes=len(text), n_arrays=len(arrays))
        return path

    def _atomic_write(self, path: Path, writer, binary: bool = False) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb" if binary else "w") as fh:
                writer(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance --------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All content hashes currently stored."""
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        n = 0
        for key in list(self.keys()):
            self.path_for(key).unlink(missing_ok=True)
            self._npz_path(key).unlink(missing_ok=True)
            n += 1
        return n

    #: How much of a record's tail to read when listing it.  The header
    #: fields (``__arrays__`` + ``spec``) are written after the payload,
    #: so they live in the last few KB of even multi-megabyte records.
    _HEADER_TAIL_BYTES = 65536

    def _read_header(self, path: Path, size: int) -> "dict | None":
        """The record's trailing header fields without parsing the payload.

        Records are written as ``{"version", "key", "value", "__arrays__",
        "spec"}`` with ``indent=1``, so the ``__arrays__`` key appears as
        the byte sequence ``\\n "__arrays__":`` at nesting depth 1 — and
        *only* there: JSON strings cannot contain a raw newline, and
        deeper keys carry more indentation.  Parsing from that marker to
        EOF yields the header fields at a cost independent of the (often
        large) ``value`` payload.  Returns ``None`` for unreadable/torn
        records — the same skip semantics :meth:`get` applies.
        """
        try:
            with open(path, "rb") as fh:
                if size > self._HEADER_TAIL_BYTES:
                    fh.seek(size - self._HEADER_TAIL_BYTES)
                tail = fh.read(self._HEADER_TAIL_BYTES)
        except OSError:
            return None
        # The seek may land mid-codepoint; the marker is pure ASCII, so
        # replacement of a leading partial character is harmless.
        text = tail.decode("utf-8", errors="replace")
        marker = text.rfind(f'\n "{_ARRAYS_MARKER}":')
        if marker >= 0:
            try:
                return json.loads("{" + text[marker + 1:])
            except json.JSONDecodeError:
                return None
        # Header not inside the tail window (oversized spec, foreign
        # format): fall back to a full parse.  ValueError covers both
        # JSONDecodeError and the UnicodeDecodeError a torn binary write
        # produces.
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def entries(self) -> "Iterator[StoreEntry]":
        """Metadata of every readable record (unreadable ones are skipped;
        :meth:`gc` is the tool that deals with those).

        Sizes and modification times come from ``stat()`` and only the
        trailing header fields (``__arrays__``, ``spec``) are parsed —
        listing a store of multi-megabyte records never deserializes
        their payloads.
        """
        for key in self.keys():
            path = self.path_for(key)
            try:
                st = path.stat()
            except OSError:
                telemetry.count("store.entries.torn_skips")
                continue
            header = self._read_header(path, st.st_size)
            if header is None:
                telemetry.count("store.entries.torn_skips")
                continue
            try:
                npz_bytes = self._npz_path(key).stat().st_size
            except OSError:
                npz_bytes = 0
            spec = header.get("spec") or {}
            yield StoreEntry(
                key=key,
                json_bytes=st.st_size,
                npz_bytes=npz_bytes,
                fn=spec.get("fn"),
                seed=spec.get("seed"),
                n_arrays=len(header.get(_ARRAYS_MARKER, [])),
                mtime=st.st_mtime,
            )

    def gc(self, dry_run: bool = False,
           min_age_s: float = 3600.0) -> GcStats:
        """Prune unreferenced blobs; returns what was (or would be) removed.

        Garbage accumulates in a long-lived cache directory and is never
        read back by :meth:`get` or the run ledger:

        - ``.npz`` side-cars whose JSON record was deleted or lost
          (the record is the only reference to the blob);
        - JSON records that no longer parse (torn by a crash predating
          the atomic-write path, or hand-edited) — these already count
          as misses, so dropping them (and their side-cars) only frees
          space;
        - temp files abandoned by interrupted writes (in the record
          fan-out and in ``runs/``);
        - ``telemetry/`` JSONL files no valid ledger record references —
          profiled runs whose ledger entry is gone (or that predate the
          ledger) leave their telemetry behind forever otherwise;
        - torn/unparseable ``runs/`` ledger records.

        Temp files, orphaned side-cars, and orphaned telemetry younger
        than ``min_age_s`` are left alone: a concurrent campaign process
        may be mid-write (its NPZ lands before its JSON record, a
        profiled run's telemetry before its ledger record), and
        unlinking its in-flight files would lose data it is about to
        reference.  Valid store records *and valid ledger records* are
        never touched — the ledger is provenance, not cache.

        With ``dry_run`` nothing is deleted and the stats report what a
        real pass would remove.
        """
        n_orphan = n_corrupt = n_tmp = n_tele = n_torn_runs = freed = 0
        if not self.root.exists():
            return GcStats(0, 0, 0, 0)

        now = time.time()

        def remove(path: Path) -> int:
            try:
                size = path.stat().st_size
            except OSError:
                return 0
            if not dry_run:
                path.unlink(missing_ok=True)
            return size

        def old_enough(path: Path) -> bool:
            try:
                return now - path.stat().st_mtime >= min_age_s
            except OSError:
                return False  # already gone (e.g. the writer finished)

        for path in sorted(self.root.glob("??/.*")):
            if not old_enough(path):
                continue
            n_tmp += 1
            freed += remove(path)
        for path in sorted(self.root.glob("??/*.json")):
            try:
                json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                n_corrupt += 1
                freed += remove(path)
                freed += remove(path.with_suffix(".npz"))
        for path in sorted(self.root.glob("??/*.npz")):
            if not path.with_suffix(".json").exists() and old_enough(path):
                n_orphan += 1
                freed += remove(path)

        # Run-ledger maintenance: collect the telemetry files valid
        # records reference, drop torn records and abandoned temp files.
        referenced: "set[str]" = set()
        runs_dir = self.root / "runs"
        if runs_dir.exists():
            for path in sorted(runs_dir.iterdir()):
                if path.name.startswith("."):
                    if old_enough(path):
                        n_tmp += 1
                        freed += remove(path)
                    continue
                try:
                    record = json.loads(path.read_text())
                    tele = record.get("telemetry")
                except (OSError, ValueError, AttributeError):
                    if old_enough(path):
                        n_torn_runs += 1
                        freed += remove(path)
                    continue
                if tele:
                    referenced.add(Path(tele).name)

        # Telemetry files whose run is gone from the ledger (or that
        # never had a ledger record) are unreachable: nothing maps a
        # JSONL filename back to a run except the records scanned above.
        tele_dir = self.root / "telemetry"
        if tele_dir.exists():
            for path in sorted(tele_dir.iterdir()):
                if not old_enough(path):
                    continue
                if path.name.startswith("."):
                    n_tmp += 1
                    freed += remove(path)
                elif path.name not in referenced:
                    n_tele += 1
                    freed += remove(path)

        telemetry.count("store.gc.removed",
                        n_orphan + n_corrupt + n_tmp + n_tele + n_torn_runs)
        telemetry.count("store.gc.bytes_freed", freed)
        return GcStats(n_orphan_npz=n_orphan, n_corrupt=n_corrupt,
                       n_tmp=n_tmp, bytes_freed=freed,
                       n_orphan_telemetry=n_tele, n_torn_runs=n_torn_runs)
