"""Content-addressed on-disk result store for campaign runs.

Each task result lives under the cache root at a path derived from the
task's content hash (:func:`repro.runtime.spec.spec_key`): a JSON record
for plain data plus an optional ``.npz`` side-car for ndarray fields.
Because the address is a pure function of the task description, a rerun
of the same campaign — same function, parameters, and derived seed —
finds its results already on disk and skips the simulation entirely,
while any change to the spec transparently misses the cache.

Writes are atomic (temp file + ``os.replace``) so concurrent campaign
processes sharing one cache directory never observe torn records.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

__all__ = ["ResultStore"]

_FORMAT_VERSION = 1
_ARRAYS_MARKER = "__arrays__"


def _split_arrays(value: Mapping) -> "tuple[dict, dict]":
    """Separate ndarray fields (NPZ side-car) from plain JSON fields."""
    plain, arrays = {}, {}
    for name, item in value.items():
        if not isinstance(name, str):
            raise TypeError(f"result field names must be str, got {name!r}")
        if isinstance(item, np.ndarray):
            arrays[name] = item
        elif isinstance(item, np.generic):
            plain[name] = item.item()
        else:
            plain[name] = item
    return plain, arrays


class ResultStore:
    """A directory of task results addressed by spec content hash.

    Parameters
    ----------
    root:
        Cache directory (created on first write; ``~`` is expanded).
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root).expanduser()

    # -- addressing ---------------------------------------------------

    def path_for(self, key: str) -> Path:
        """JSON record path for a content hash (two-level fan-out)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.path_for(key).with_suffix(".npz")

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    # -- read ---------------------------------------------------------

    def get(self, key: str) -> "dict | None":
        """Load the stored result for ``key``, or ``None`` on a miss.

        A record whose JSON is unreadable (torn by a crash predating the
        atomic-write path, or hand-edited) counts as a miss: the task is
        simply recomputed and the record rewritten.
        """
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        value = dict(record.get("value", {}))
        array_fields = record.get(_ARRAYS_MARKER, [])
        if array_fields:
            try:
                with np.load(self._npz_path(key)) as npz:
                    for name in array_fields:
                        value[name] = npz[name]
            except (OSError, KeyError):
                return None
        return value

    # -- write --------------------------------------------------------

    def put(self, key: str, value: Mapping, spec: "Mapping | None" = None) -> Path:
        """Persist one task result (atomically); returns the JSON path.

        ``value`` must be a mapping of str field names to JSON-able data
        or :class:`numpy.ndarray`.  ``spec`` (e.g. ``RunSpec.describe()``)
        is recorded alongside for provenance and debuggability.
        """
        if not isinstance(value, Mapping):
            raise TypeError(
                f"task results must be mappings, got {type(value).__name__}; "
                "return a dict of named fields from the task function"
            )
        plain, arrays = _split_arrays(value)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if arrays:
            self._atomic_write(
                self._npz_path(key),
                lambda fh: np.savez_compressed(fh, **arrays),
                binary=True,
            )
        record = {
            "version": _FORMAT_VERSION,
            "key": key,
            "value": plain,
            _ARRAYS_MARKER: sorted(arrays),
        }
        if spec is not None:
            record["spec"] = dict(spec)
        self._atomic_write(path, lambda fh: fh.write(json.dumps(record, indent=1)))
        return path

    def _atomic_write(self, path: Path, writer, binary: bool = False) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb" if binary else "w") as fh:
                writer(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance --------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All content hashes currently stored."""
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        n = 0
        for key in list(self.keys()):
            self.path_for(key).unlink(missing_ok=True)
            self._npz_path(key).unlink(missing_ok=True)
            n += 1
        return n
