"""Parallel campaign runtime: sharded execution, seeding, result store.

The paper's statistical figures (Figs. 6-9, Sec. IV-B) rest on campaigns
of many independent simulation runs.  This package turns such campaigns
into first-class, schedulable work:

- :mod:`repro.runtime.spec` — :class:`RunSpec` / :class:`SweepSpec`,
  picklable and hashable declarations of a single run or a whole
  parameter grid, with a stable content hash per task.
- :mod:`repro.runtime.seeding` — deterministic per-task seed derivation
  from ``(base_seed, task_index)`` via :class:`numpy.random.SeedSequence`,
  so shards draw from provably disjoint streams regardless of execution
  order or backend.
- :mod:`repro.runtime.executor` — a serial backend and a
  ``concurrent.futures.ProcessPoolExecutor`` backend that shard tasks
  across cores, stream results back as they complete, and isolate
  per-task failures instead of killing the campaign.
- :mod:`repro.runtime.store` — a content-addressed on-disk result store
  (packed append-only shards with a sidecar index and mmap reads, plus
  the legacy JSON + NPZ per-file layout, keyed by the task hash) so
  repeated invocations skip already-computed runs.
- :mod:`repro.runtime.shards` — the packed shard backend: per-process
  append-only shard files, index recovery from self-describing entries,
  and zero-copy array reconstruction over memory maps.
- :mod:`repro.runtime.aggregate` — reduction helpers (mean / percentile
  across runs, grouping by sweep parameter) consumed by the campaign
  analyses.
- :mod:`repro.runtime.tasks` — importable reference task functions used
  by the benchmarks and tests, and templates for new campaign workloads.

Typical use::

    from repro.runtime import SweepSpec, run_campaign, ResultStore

    sweep = SweepSpec(
        fn="repro.runtime.tasks:lockstep_delay_task",
        base={"n_ranks": 50, "n_steps": 40, "t_exec": 3e-3,
              "msg_size": 8192, "rate": 0.01,
              "duration_low": 6e-3, "duration_high": 24e-3},
        axes=(("replicate", tuple(range(32))),),
        base_seed=0,
    )
    campaign = run_campaign(sweep.tasks(), jobs=4,
                            store=ResultStore("~/.cache/repro"))
    runtimes = [v["runtime"] for v in campaign.values()]
"""

from repro.runtime.aggregate import (
    AggregationError,
    collect,
    group_by_param,
    reduce_runs,
    summarize,
)
from repro.runtime.chaos import ChaosError, ChaosSpec
from repro.runtime.executor import (
    QUARANTINE_AFTER,
    CampaignResult,
    TaskBatcher,
    TaskError,
    TaskResult,
    resolve_jobs,
    run_campaign,
)
from repro.runtime.retry import RetryPolicy
from repro.runtime.seeding import derive_rng, derive_seed, seed_sequence
from repro.runtime.spec import RunSpec, SweepSpec, canonical, spec_key
from repro.runtime.store import (
    GcStats,
    MigrateStats,
    ResultStore,
    StoreEntry,
    StoreError,
)

__all__ = [
    "AggregationError",
    "CampaignResult",
    "ChaosError",
    "ChaosSpec",
    "GcStats",
    "MigrateStats",
    "QUARANTINE_AFTER",
    "ResultStore",
    "RetryPolicy",
    "StoreEntry",
    "StoreError",
    "RunSpec",
    "SweepSpec",
    "TaskBatcher",
    "TaskError",
    "TaskResult",
    "canonical",
    "collect",
    "derive_rng",
    "derive_seed",
    "group_by_param",
    "reduce_runs",
    "resolve_jobs",
    "run_campaign",
    "seed_sequence",
    "spec_key",
    "summarize",
]
