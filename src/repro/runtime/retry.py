"""Deterministic retry policy for campaign tasks.

A transient worker failure (OOM-killed sibling, flaky I/O, injected
chaos fault) should cost one extra execution, not the sweep.  The
:class:`RetryPolicy` gives every campaign task a bounded number of
re-executions with exponential backoff — and keeps the campaign's
determinism contract intact:

- **Results are untouched.**  A retried task re-runs the same
  :class:`~repro.runtime.spec.RunSpec` with the same baked-in seed, so
  the value it produces — and the store record written for it — is
  bit-identical to a first-attempt success.  Retrying changes wall
  clock, never bytes.
- **Backoff jitter is seeded, not sampled.**  The jitter fraction is
  drawn from a dedicated :class:`numpy.random.SeedSequence` stream
  derived from the task's own seed and the attempt number under a
  private ``spawn_key`` namespace (:data:`_JITTER_STREAM`).  It never
  touches the task's RNG stream (the task re-expands its integer seed
  itself) and never touches global random state, so two runs of the
  same campaign sleep the same schedule and compute the same values.

The policy is a frozen, picklable value object: the pool backend ships
it into worker processes next to the task block, so backoff sleeps
happen inside the worker that will re-execute the task and never block
the parent's completion loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.runtime.spec import RunSpec

__all__ = ["RetryPolicy"]

#: Private ``spawn_key`` namespace for backoff jitter streams.  Task
#: RNG streams use ``spawn_key=(task_index,)`` (repro.runtime.seeding);
#: keeping jitter under a disjoint constant first element guarantees the
#: two families of streams can never collide.
_JITTER_STREAM = 0x52455452  # "RETR"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-execute a failed task, and how to pace it.

    Parameters
    ----------
    retries:
        Maximum number of *re*-executions per task (0 disables retrying;
        a task is attempted at most ``retries + 1`` times).
    backoff_s:
        Base delay before the first retry.  Subsequent retries multiply
        it by ``multiplier`` per attempt, capped at ``max_backoff_s``.
    multiplier:
        Exponential growth factor of the backoff.
    max_backoff_s:
        Upper bound on any single delay.
    jitter:
        Fraction of the base delay added as deterministic jitter: the
        actual delay is ``base * (1 + jitter * u)`` with ``u`` drawn
        from the task's seeded jitter stream (see module docstring).
    """

    retries: int = 0
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"backoff multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def should_retry(self, attempt: int) -> bool:
        """True when retry number ``attempt`` (1-based) is within budget."""
        return 1 <= attempt <= self.retries

    def delay_s(self, spec: RunSpec, attempt: int) -> float:
        """Deterministic backoff delay before retry ``attempt`` (1-based).

        Exponential in ``attempt`` with a jitter term drawn from a
        seeded stream keyed on ``(spec.seed, spec.index, attempt)`` —
        the same spec retried the same number of times always sleeps
        the same schedule, in any process.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.backoff_s * self.multiplier ** (attempt - 1),
                   self.max_backoff_s)
        if base <= 0:
            return 0.0
        if self.jitter > 0:
            seq = np.random.SeedSequence(
                entropy=int(spec.seed or 0),
                spawn_key=(_JITTER_STREAM, int(spec.index), int(attempt)))
            u = float(np.random.default_rng(seq).random())
            base *= 1.0 + self.jitter * u
        return min(base, self.max_backoff_s)

    def sleep(self, spec: RunSpec, attempt: int) -> float:
        """Sleep the backoff for retry ``attempt``; returns the delay."""
        delay = self.delay_s(spec, attempt)
        if delay > 0:
            time.sleep(delay)
        return delay
