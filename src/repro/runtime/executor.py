"""Campaign execution: serial and process-pool backends, with task batching.

:func:`run_campaign` takes an ordered collection of
:class:`~repro.runtime.spec.RunSpec` tasks and executes the cache misses
on one of two backends:

- **serial** (``jobs=1``, the default): runs tasks in order in the
  current process — zero overhead, trivially debuggable.
- **process pool** (``jobs>1`` or ``jobs=0`` for CPU-count auto-detect):
  shards tasks across a ``concurrent.futures.ProcessPoolExecutor`` and
  streams results back *as they complete* (an ``on_result`` callback
  fires in completion order), while the returned campaign keeps task
  order.

An optional **batcher** lets a task family execute contiguous blocks of
compatible cache-missing tasks in one call (e.g. B delay-campaign draws
as a single batched engine invocation) instead of one call per task.
Batching is an execution detail: per-task results, cache keys, stored
values, and streaming callbacks are exactly those of unbatched execution
— a batcher that cannot honor that contract must not group the tasks.
The block becomes the unit of sharding; a failing block transparently
falls back to per-task execution, preserving failure isolation.

Because per-task seeds are baked into the specs before execution (see
:mod:`repro.runtime.seeding`), both backends produce bit-identical
results for the same campaign — sharding changes wall-clock time, never
values.

**Fault tolerance.**  A failing task never kills the campaign: the
exception (with its traceback, captured inside the worker) is recorded
on that task's :class:`TaskResult` and every other shard proceeds.  On
top of that isolation sit three recovery layers:

- a :class:`~repro.runtime.retry.RetryPolicy` re-executes soft task
  failures (raised exceptions) with deterministic exponential backoff —
  inside the worker, so retries never block the parent's completion
  loop, and with results bit-identical to a first-attempt success;
- a **broken pool is respawned**: when a worker dies hard (segfault,
  OOM kill, ``os._exit``), the in-flight tasks are re-enqueued and
  probed *one at a time* on a fresh pool so a repeat death attributes
  the kill to exactly one task; a task that kills workers
  ``quarantine_after`` times is **quarantined** — recorded as a typed
  failure (:attr:`TaskResult.quarantined`), never retried again — so
  one poison task cannot wedge a campaign;
- ``stall_action="retry"`` gives the stall watchdog teeth: a stalled
  unit's future is abandoned and its tasks re-dispatched per task (the
  first completion wins; the zombie's late result is discarded).

``KeyboardInterrupt`` / ``SystemExit`` in the calling process are *not*
treated as task failures: the pool is shut down deliberately (queued
futures cancelled, no waiting on running workers) and the exception
re-raised, so an interrupted campaign leaves no torn state behind —
results are only ever persisted from the parent's completion loop.
"""

from __future__ import annotations

import os
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro import telemetry
from repro.obs import events
from repro.runtime import chaos
from repro.runtime.retry import RetryPolicy
from repro.runtime.spec import RunSpec
from repro.runtime.store import ResultStore

__all__ = [
    "CampaignResult",
    "QUARANTINE_AFTER",
    "TaskBatcher",
    "TaskError",
    "TaskResult",
    "resolve_jobs",
    "run_campaign",
]

# Pending-future window per worker: enough to keep the pool saturated
# without materializing one future per task for huge sweeps.
_INFLIGHT_PER_JOB = 4

#: Default number of worker kills after which a task is quarantined.
#: The first kill is ambiguous (every in-flight task is a suspect);
#: subsequent kills happen in one-at-a-time probe isolation, so two
#: probe deaths on top of one group death is decisive.
QUARANTINE_AFTER = 3

_NO_RETRIES = (0, 0.0)  # retry_info of an un-retried outcome


class TaskError(RuntimeError):
    """Raised by :meth:`CampaignResult.raise_failures` when tasks failed."""


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one campaign task.

    Exactly one of ``value`` (success) and ``error`` (failure) is set;
    ``cached`` marks results served from the store without execution.
    ``duration`` is the task's own wall-clock seconds (0 for cache hits);
    tasks executed inside a batched block report the block's wall clock
    divided evenly across its tasks, since the engine computes them as
    one inseparable call.  ``retries`` counts the soft re-executions the
    final dispatch of this task consumed, ``wasted_s`` the wall clock
    its failed attempts burned, and ``quarantined`` marks a task the
    executor refused to run again after it repeatedly killed workers.
    """

    spec: RunSpec
    value: "Mapping | None" = None
    error: "str | None" = None
    cached: bool = False
    duration: float = 0.0
    retries: int = 0
    wasted_s: float = 0.0
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def index(self) -> int:
        return self.spec.index


@dataclass(frozen=True)
class CampaignResult:
    """All task outcomes of one campaign, in task (spec) order.

    ``n_redispatched`` counts parent-side re-dispatches (tasks re-run
    after a worker death or an abandoned stall); ``n_pool_respawns`` the
    times a broken pool was replaced.  Both are 0 for serial runs.
    """

    results: "tuple[TaskResult, ...]"
    jobs: int = 1
    elapsed: float = 0.0
    n_redispatched: int = 0
    n_pool_respawns: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def values(self) -> "list[Mapping]":
        """Values of the successful tasks, in task order."""
        return [r.value for r in self.results if r.ok]

    @property
    def failures(self) -> "tuple[TaskResult, ...]":
        return tuple(r for r in self.results if not r.ok)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def n_executed(self) -> int:
        return sum(1 for r in self.results if r.ok and not r.cached)

    @property
    def n_retried(self) -> int:
        """Total re-executions: worker-side soft retries + re-dispatches."""
        return self.n_redispatched + sum(r.retries for r in self.results)

    @property
    def n_quarantined(self) -> int:
        return sum(1 for r in self.results if r.quarantined)

    @property
    def retry_wasted_s(self) -> float:
        """Wall-clock seconds burned by failed attempts that were retried."""
        return sum(r.wasted_s for r in self.results)

    def raise_failures(self) -> "CampaignResult":
        """Raise :class:`TaskError` if any task failed; else return self."""
        if self.failures:
            first = self.failures[0]
            raise TaskError(
                f"{len(self.failures)}/{len(self.results)} campaign tasks "
                f"failed; first failure (task {first.index}, {first.spec.fn}):\n"
                f"{first.error}"
            )
        return self


def resolve_jobs(jobs: "int | None") -> int:
    """Normalize a ``--jobs`` value: ``None``/1 → serial, <=0 → CPU count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


class TaskBatcher:
    """Strategy interface: execute blocks of compatible tasks in one call.

    Implementations must be picklable (blocks are sharded to worker
    processes whole) and must honor the batching contract: the values
    returned by :meth:`execute` for a block are exactly — bit for bit —
    the values the tasks would produce when called one by one.

    See :class:`repro.scenarios.batch.ScenarioTaskBatcher` for the
    canonical implementation (batched lockstep-engine execution of
    scenario replicate blocks).
    """

    def plan(self, specs: "Sequence[RunSpec]") -> "list[list[int]]":
        """Partition ``specs`` into ordered blocks of batchable tasks.

        Returns a list of index blocks covering ``range(len(specs))``
        exactly once, in order.  Singleton blocks run through the normal
        per-task path.  The default plan batches nothing.
        """
        return [[i] for i in range(len(specs))]

    def execute(self, specs: "Sequence[RunSpec]") -> "list[Mapping]":
        """Run one multi-task block; returns one value per spec, in order."""
        raise NotImplementedError


def _execute(spec: RunSpec,
             retry: "RetryPolicy | None" = None
             ) -> "tuple[str, Any, float, tuple[int, float]]":
    """Worker entry point: run one task, capturing any exception.

    Returns ``("ok", value, duration, retry_info)`` or ``("error",
    traceback_text, duration, retry_info)`` so that failures — including
    ones whose exception types would not survive pickling — travel back
    to the parent as plain data; ``retry_info`` is ``(retries_used,
    wasted_s)``.  The duration comes from an always-timed
    ``executor.task`` telemetry span around the task code itself, so
    pool queue wait never inflates it.  With a :class:`RetryPolicy`,
    soft failures are re-executed in place — ``task.retry`` is emitted,
    the deterministic backoff is slept, and the task reruns with its
    unchanged spec (same baked-in seed), so a retried success is
    bit-identical to a first-attempt one.  ``KeyboardInterrupt`` and
    ``SystemExit`` propagate: in the serial backend they must abort the
    campaign, and in a worker the pool machinery reports them anyway.
    """
    attempt = 0
    wasted = 0.0
    while True:
        status, payload = "ok", None
        events.emit("task.start", index=spec.index)
        with telemetry.timed_span("executor.task", fn=spec.fn) as sp:
            try:
                if chaos.active() is not None:
                    chaos.maybe_inject(spec.key, attempt)
                payload = spec.call()
            except Exception:  # noqa: BLE001 — isolation is the whole point
                status, payload = "error", traceback.format_exc()
                telemetry.count("executor.task_failures")
        if status == "ok" or retry is None \
                or not retry.should_retry(attempt + 1):
            return status, payload, sp.duration, (attempt, wasted)
        attempt += 1
        wasted += sp.duration
        telemetry.count("executor.task_retries")
        telemetry.observe("executor.retry_wasted_s", sp.duration)
        events.emit("task.retry", index=spec.index, attempt=attempt)
        retry.sleep(spec, attempt)


def _execute_block(
    unit: "tuple[RunSpec, ...]", batcher: TaskBatcher,
    retry: "RetryPolicy | None" = None,
) -> "list[tuple[str, Any, float, tuple[int, float]]]":
    """Run one batched block; one outcome per task.

    A block that raises falls back to per-task execution, so a
    batch-infrastructure failure degrades to exactly the isolation
    semantics of unbatched execution — with a :class:`RuntimeWarning`
    naming the cause, since per-task execution may succeed and would
    otherwise hide the batcher defect entirely.  The retry policy rides
    the fallback path: blocks themselves are never retried (the
    per-task fallback already re-executes their tasks), but each
    fallen-back task gets the full per-task retry budget.
    ``KeyboardInterrupt``/``SystemExit`` propagate as in :func:`_execute`.
    """
    failure = None
    values: "list | None" = None
    with telemetry.timed_span("executor.block", n_tasks=len(unit)) as sp:
        try:
            if chaos.active() is not None:
                chaos.maybe_inject_block([spec.key for spec in unit])
            values = batcher.execute(unit)
        except Exception:  # noqa: BLE001 — degrade to per-task isolation
            failure = (
                f"batched execution of a {len(unit)}-task block failed; "
                f"falling back to per-task execution:\n{traceback.format_exc()}"
            )
    if failure is None and values is not None and len(values) != len(unit):
        failure = (
            f"batcher contract violation: {len(values)} values returned for "
            f"a {len(unit)}-task block; falling back to per-task execution"
        )
    if failure is not None:
        warnings.warn(failure, RuntimeWarning, stacklevel=3)
        telemetry.count("executor.batch_fallbacks")
        # The failed block emitted no per-task events (it never started
        # any task individually), so the fallback's task.start stream
        # counts each task exactly once.
        events.emit("block.fallback", n_tasks=len(unit))
        return [_execute(spec, retry) for spec in unit]
    telemetry.observe("executor.block_size", len(unit))
    per_task = sp.duration / len(unit)
    return [("ok", value, per_task, _NO_RETRIES) for value in values]


def _execute_unit(
    unit: "tuple[RunSpec, ...]",
    batcher: "TaskBatcher | None",
    profile: bool = False,
    submit_t: "float | None" = None,
    observe: bool = False,
    retry: "RetryPolicy | None" = None,
) -> "tuple[list[tuple], dict | None, list | None, dict | None]":
    """Run one unit (a single task or a batched block) plus its telemetry.

    Returns ``(outcomes, snapshot, events, health)`` where ``snapshot``
    is the unit's own telemetry, ``events`` its drained lifecycle
    events, and ``health`` a post-unit resource sample of the worker
    process (:func:`repro.obs.health.sample_resources`) — the heartbeat
    payload the parent turns into a ``worker.heartbeat`` event.  The
    pool backend passes ``profile=True`` / ``observe=True`` into its
    worker processes, each of which records into a fresh recorder/bus of
    its own and ships the data back through the result channel;
    ``enable()`` here also discards the stale recorder/bus copy a
    fork-started worker inherits from a profiling parent.  The serial
    backend records straight into the caller's recorder and bus and
    returns ``None`` for snapshot, events, and health alike (serial runs
    emit no heartbeats — see the determinism note in
    :mod:`repro.obs.health`).  ``submit_t`` is the parent's
    ``perf_counter()`` at submission: ``perf_counter`` is system-wide
    monotonic on Linux, so the difference is the unit's pool queue wait.
    ``retry`` applies the per-task retry policy inside this process (see
    :func:`_execute`), so backoff sleeps occupy the worker, never the
    parent's completion loop.
    """
    owns = profile
    if owns:
        telemetry.enable()
    owns_events = observe
    if owns_events:
        # in_run: the worker executes one unit of the parent's run, so
        # task code must not open a nested run lifecycle of its own.
        events.enable(in_run=True)
    try:
        if submit_t is not None:
            telemetry.observe("executor.queue_wait_s",
                              max(0.0, time.perf_counter() - submit_t))
        if len(unit) == 1 or batcher is None:
            outcomes = [_execute(spec, retry) for spec in unit]
        else:
            outcomes = _execute_block(unit, batcher, retry)
    finally:
        # Workers are reused across units: always release an owned
        # recorder/bus, or an aborting unit would leave it live (and
        # growing) for every later unit this process executes.
        snap = telemetry.disable().snapshot() if owns else None
        drained = events.disable().drain() if owns_events else None
    health = None
    if owns or owns_events:
        from repro.obs.health import sample_resources

        health = sample_resources()
    return outcomes, snap, drained, health


def _plan_units(
    pending: "Sequence[tuple[int, RunSpec]]", batcher: "TaskBatcher | None"
) -> "list[tuple[tuple[int, RunSpec], ...]]":
    """Group the pending (position, spec) pairs into execution units."""
    if batcher is None or len(pending) <= 1:
        return [(entry,) for entry in pending]
    blocks = batcher.plan([spec for _, spec in pending])
    covered = sorted(i for block in blocks for i in block)
    if covered != list(range(len(pending))):
        raise ValueError(
            f"batcher plan must partition all {len(pending)} pending tasks "
            "exactly once"
        )
    return [tuple(pending[i] for i in block) for block in blocks]


def _as_task_result(spec: RunSpec, status: str, payload: Any,
                    duration: float,
                    retry_info: "tuple[int, float]" = _NO_RETRIES
                    ) -> TaskResult:
    retries, wasted_s = retry_info
    if status == "ok":
        if not isinstance(payload, Mapping):
            return TaskResult(
                spec=spec,
                error=(
                    f"task returned {type(payload).__name__}, expected a "
                    "mapping of named result fields"
                ),
                duration=duration, retries=retries, wasted_s=wasted_s,
            )
        return TaskResult(spec=spec, value=payload, duration=duration,
                          retries=retries, wasted_s=wasted_s)
    return TaskResult(spec=spec, error=str(payload), duration=duration,
                      retries=retries, wasted_s=wasted_s)


def _emit_dispatch(unit: "tuple[tuple[int, RunSpec], ...]") -> None:
    """Publish a unit's submission: one ``task.submit`` per task, plus a
    ``block.dispatch`` header for multi-task blocks."""
    if not events.enabled():
        return
    if len(unit) > 1:
        events.emit("block.dispatch", n_tasks=len(unit),
                    first=unit[0][1].index)
    for _, spec in unit:
        events.emit("task.submit", index=spec.index)


def run_campaign(
    specs: "Iterable[RunSpec]",
    *,
    jobs: "int | None" = 1,
    store: "ResultStore | None" = None,
    on_result: "Callable[[TaskResult], None] | None" = None,
    batcher: "TaskBatcher | None" = None,
    watchdog: "Any | None" = None,
    retry: "RetryPolicy | None" = None,
    stall_action: str = "warn",
    quarantine_after: int = QUARANTINE_AFTER,
) -> CampaignResult:
    """Execute a campaign of tasks, sharded, cached, and optionally batched.

    Parameters
    ----------
    specs:
        The tasks, typically ``SweepSpec.tasks()``.  Order defines the
        order of :attr:`CampaignResult.results`.
    jobs:
        Parallelism: 1 (default) runs serially in-process, N>1 shards
        over N worker processes, 0 auto-detects the CPU count.
    store:
        Optional :class:`~repro.runtime.store.ResultStore`.  Hits skip
        execution entirely; fresh results are persisted on completion.
    on_result:
        Streaming callback, invoked in completion order (cache hits
        first) from the calling process.
    batcher:
        Optional :class:`TaskBatcher` that groups contiguous compatible
        cache misses into blocks executed by one call each.  Results,
        cache addressing, and failure semantics are unchanged — batching
        only reduces per-task invocation overhead.
    watchdog:
        Optional :class:`repro.obs.health.StallWatchdog` for the pool
        backend.  When an event bus is live and none is given, a default
        watchdog is installed; pass one to tune its thresholds (tests
        inject aggressive ones).  Serial runs never use it — stall
        detection is pool-only by the determinism contract.
    retry:
        Optional :class:`~repro.runtime.retry.RetryPolicy`: soft task
        failures are re-executed with deterministic backoff (in the
        worker, for the pool backend).  ``None`` disables retrying.
    stall_action:
        ``"warn"`` (default) leaves ``task.stall`` a warning; ``"retry"``
        abandons a stalled unit's future and re-dispatches its tasks per
        task (pool backend only — first completion wins).
    quarantine_after:
        Worker kills after which a task is quarantined instead of
        re-probed (see the module docstring).

    Returns
    -------
    CampaignResult
        Per-task outcomes in task order.  Failed tasks carry their
        worker traceback instead of a value; they never abort siblings.
    """
    if stall_action not in ("warn", "retry"):
        raise ValueError(
            f"stall_action must be 'warn' or 'retry', got {stall_action!r}")
    if quarantine_after < 1:
        raise ValueError(
            f"quarantine_after must be >= 1, got {quarantine_after}")
    specs = tuple(specs)
    jobs = resolve_jobs(jobs)
    slots: "list[TaskResult | None]" = [None] * len(specs)

    def finish(pos: int, result: TaskResult) -> None:
        if slots[pos] is not None:
            # A re-dispatched task's abandoned first future can still
            # come home; whichever completion lands first is the task's
            # one result — the straggler is discarded.
            return
        slots[pos] = result
        if store is not None and result.ok and not result.cached:
            store.put(result.spec.key, result.value, spec=result.spec.describe())
        # Terminal lifecycle events carry only the task index: payloads
        # with durations or tracebacks would break the event-identity
        # determinism contract (repro.obs.events).
        if result.cached:
            events.emit("task.cache_hit", index=result.index)
        elif result.ok:
            events.emit("task.done", index=result.index)
        else:
            events.emit("task.failed", index=result.index)
        if on_result is not None:
            on_result(result)

    # A campaign is always *inside* a run: mark the bus so task code
    # that would own a run lifecycle at top level (run_scenario inside
    # scenario_task) stays silent — even when run_campaign is driven
    # directly without an enclosing runner.
    bus = events.current_bus()
    if bus is not None:
        bus.mark_in_run()
    pool_stats = {"respawns": 0, "redispatched": 0}
    try:
        # ``elapsed`` is the span's wall clock — the same two perf_counter
        # reads the pre-telemetry bookkeeping made, recorded only if a
        # profiling run is live.
        with telemetry.timed_span("campaign.run", n_tasks=len(specs),
                                  jobs=jobs) as campaign_span:
            pending: "list[tuple[int, RunSpec]]" = []
            for pos, spec in enumerate(specs):
                cached = store.get(spec.key) if store is not None else None
                if cached is not None:
                    telemetry.count("campaign.cache.hits")
                    finish(pos, TaskResult(spec=spec, value=cached,
                                           cached=True))
                else:
                    if store is not None:
                        telemetry.count("campaign.cache.misses")
                    pending.append((pos, spec))

            units = _plan_units(pending, batcher)
            if jobs == 1 or len(units) <= 1:
                for unit in units:
                    _emit_dispatch(unit)
                    outcomes, _, _, _ = _execute_unit(
                        tuple(spec for _, spec in unit), batcher, retry=retry)
                    for (pos, spec), outcome in zip(unit, outcomes):
                        finish(pos, _as_task_result(spec, *outcome))
            else:
                pool_stats = _run_pool(units, jobs, batcher, finish,
                                       watchdog, retry, stall_action,
                                       quarantine_after)
    finally:
        if bus is not None:
            bus.unmark_in_run()

    return CampaignResult(
        results=tuple(slots),
        jobs=jobs,
        elapsed=campaign_span.duration,
        n_redispatched=pool_stats["redispatched"],
        n_pool_respawns=pool_stats["respawns"],
    )


class _PoolBroke(Exception):
    """Internal: a worker died hard; ``units`` are the crash suspects."""

    def __init__(self, units: "list[tuple]") -> None:
        super().__init__("worker pool broke")
        self.units = units


def _run_pool(
    units: "Sequence[tuple[tuple[int, RunSpec], ...]]",
    jobs: int,
    batcher: "TaskBatcher | None",
    finish: "Callable[[int, TaskResult], None]",
    watchdog: "Any | None" = None,
    retry: "RetryPolicy | None" = None,
    stall_action: str = "warn",
    quarantine_after: int = QUARANTINE_AFTER,
) -> dict:
    """Shard execution units over a process pool, streaming completions.

    A unit is one task or one batched block; blocks travel to a worker
    whole.  A multi-task block whose future dies with the pool intact
    (result unpicklable) is re-enqueued as singleton units so only the
    task that actually fails is lost — the same per-task isolation as
    unbatched execution.

    A **broken pool** (a worker killed by the OS or ``os._exit``
    mid-task) is survived by respawning: the generation's in-flight
    units become crash suspects, a fresh pool is started
    (``pool.respawn`` event), and the suspects are re-dispatched as
    singletons *one at a time* — probe isolation — so a repeat death is
    attributed to exactly one task.  A task whose crash count reaches
    ``quarantine_after`` is quarantined: finished as a typed failure
    (``task.quarantined`` event, :attr:`TaskResult.quarantined`) and
    never submitted again.  Submit errors never propagate out of here:
    if the pool cannot even be (re)started, the remaining tasks are
    recorded as failures and the campaign result stays complete.

    When an event bus is live, the completion loop also runs worker
    health plumbing: each returned unit's resource sample becomes a
    ``worker.heartbeat`` event (plus ``worker.rss_bytes`` /
    ``worker.cpu_s`` telemetry histograms), and between completions a
    :class:`~repro.obs.health.StallWatchdog` scans the in-flight table,
    emitting ``task.stall`` for units out far longer than the EWMA task
    duration.  With ``stall_action="retry"`` a flagged unit's future is
    abandoned and its tasks are re-dispatched per task — *first
    completion wins*: if the abandoned zombie comes home before the
    re-dispatch, its results are applied and the re-dispatch is dropped
    at submit time (and vice versa, via the ``finish`` slot guard), so a
    watchdog misfire costs duplicated work, never a wrong or missing
    result.  A worker left running an abandoned unit at campaign end is
    not waited for.

    ``KeyboardInterrupt``/``SystemExit`` shut the pool down deliberately
    — queued futures cancelled, running workers not waited for — and
    re-raise, so an interrupt never leaves the campaign wedged on dead
    futures.

    Returns ``{"respawns": ..., "redispatched": ...}`` — the recovery
    economics :func:`run_campaign` folds into the campaign result.
    """
    max_workers = min(jobs, len(units))
    window = max_workers * _INFLIGHT_PER_JOB
    pending: "deque" = deque(units)
    probe: "deque" = deque()  # crash suspects, probed one at a time
    crashes: "dict[int, int]" = {}  # position -> worker kills survived
    redispatches: "dict[int, int]" = {}  # position -> re-dispatch count
    stats = {"respawns": 0, "redispatched": 0}
    profile = telemetry.enabled()
    observe = events.enabled()
    if watchdog is None and observe:
        from repro.obs.health import StallWatchdog

        watchdog = StallWatchdog()
    telemetry.gauge("executor.jobs", max_workers)

    # Positions already finished in this pool run (including by a zombie
    # whose unit was abandoned): re-dispatches of them are dropped at
    # submit time, so an always-stalling task cannot livelock the loop.
    completed: "set[int]" = set()

    def finish_pos(pos: int, result: TaskResult) -> None:
        completed.add(pos)
        finish(pos, result)

    def fail_unit(unit, note: str) -> None:
        telemetry.count("executor.not_attempted", len(unit))
        for pos, spec in unit:
            finish_pos(pos, _as_task_result(spec, "error", note, 0.0))

    def fail_remaining(note: str) -> None:
        while probe:
            fail_unit(probe.popleft(), note)
        while pending:
            fail_unit(pending.popleft(), note)

    def note_redispatch(entry) -> None:
        """Count one task's parent-side re-dispatch and emit task.retry."""
        pos, spec = entry
        n = redispatches[pos] = redispatches.get(pos, 0) + 1
        stats["redispatched"] += 1
        telemetry.count("executor.task_redispatches")
        events.emit("task.retry", index=spec.index, attempt=n)

    def absorb_crash(suspect_units) -> None:
        """Sort a broken generation's casualties into probe vs quarantine."""
        for unit in suspect_units:
            for entry in unit:
                pos, spec = entry
                n = crashes[pos] = crashes.get(pos, 0) + 1
                if n >= quarantine_after:
                    telemetry.count("executor.quarantined")
                    events.emit("task.quarantined", index=spec.index)
                    finish_pos(pos, TaskResult(
                        spec=spec, quarantined=True,
                        error=(f"quarantined after killing its worker "
                               f"{n} time(s); not retried again"),
                    ))
                else:
                    note_redispatch(entry)
                    probe.append((entry,))

    while pending or probe:
        try:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        except OSError as exc:  # resources exhausted: give up cleanly
            fail_remaining(f"task not attempted: cannot start a worker "
                           f"pool: {exc}")
            break
        in_flight: dict = {}
        abandoned: dict = {}  # zombie future -> its unit (race still open)
        block_retries: "deque" = deque()  # healthy-pool singleton re-runs

        def submit_unit(unit) -> None:
            # A zombie may have finished some (or all) of these tasks
            # since they were queued: only dispatch what is still open.
            unit = tuple(e for e in unit if e[0] not in completed)
            if not unit:
                return
            spec_block = tuple(spec for _, spec in unit)
            _emit_dispatch(unit)
            submit_t = time.perf_counter()
            try:
                future = pool.submit(_execute_unit, spec_block, batcher,
                                     profile, submit_t, observe, retry)
            except BrokenProcessPool:
                raise _PoolBroke([unit] + [u for u, _ in in_flight.values()])
            except Exception:  # shutdown races, unpicklable spec
                fail_unit(unit, "task not attempted: submit failed\n"
                          + traceback.format_exc())
                return
            in_flight[future] = (unit, submit_t)

        def refill() -> None:
            # Probe isolation: while crash suspects are queued, run them
            # strictly one at a time with nothing else in flight.  (Loop:
            # a suspect already finished by a zombie submits nothing.)
            if probe:
                while probe and not in_flight and not block_retries:
                    submit_unit(probe.popleft())
                return
            while len(in_flight) < window:
                if block_retries:
                    unit = block_retries.popleft()
                elif pending:
                    unit = pending.popleft()
                else:
                    break
                submit_unit(unit)

        try:
            refill()
            # Keep the generation alive while real futures are out — and
            # while abandoned zombies might still win races that queued
            # work would otherwise re-run.  (Zombies with no remaining
            # work are not waited for: shutdown below skips them.)
            while in_flight or (abandoned
                                and (pending or probe or block_retries)):
                timeout = watchdog.poll_s if watchdog is not None else None
                done, _ = wait(set(in_flight) | set(abandoned),
                               timeout=timeout,
                               return_when=FIRST_COMPLETED)
                if watchdog is not None:
                    flagged = watchdog.scan_flagged(in_flight)
                    if stall_action == "retry":
                        for token in flagged:
                            unit, _sub = in_flight.pop(token)
                            abandoned[token] = unit
                            watchdog.forget(token)
                            telemetry.count("executor.stall_abandons",
                                            len(unit))
                            for entry in unit:
                                note_redispatch(entry)
                            for entry in reversed(unit):
                                pending.appendleft((entry,))
                for future in done:
                    if future in abandoned:
                        # The zombie came home: first completion wins.
                        # Apply whatever it finished (the slot guard
                        # drops anything its re-dispatch already won);
                        # a zombie that errored is simply forgotten —
                        # its re-dispatch owns recovery.
                        zombie_unit = abandoned.pop(future)
                        try:
                            outcomes, snap, drained, _health = \
                                future.result()
                        except Exception:
                            continue
                        telemetry.merge_snapshot(snap)
                        events.absorb(drained)
                        if watchdog is not None:
                            for outcome in outcomes:
                                watchdog.note_duration(outcome[2])
                        for (pos, spec), outcome in zip(zombie_unit,
                                                        outcomes):
                            finish_pos(pos, _as_task_result(spec, *outcome))
                        continue
                    if future not in in_flight:
                        continue
                    unit, _submit_t = in_flight.pop(future)
                    if watchdog is not None:
                        watchdog.forget(future)
                    try:
                        outcomes, snap, drained, health = future.result()
                    except BrokenProcessPool:
                        raise _PoolBroke(
                            [unit] + [u for u, _ in in_flight.values()])
                    except Exception:  # result unpicklable, pool intact
                        if len(unit) > 1:
                            # Don't fail the whole block for one bad task:
                            # retry its tasks individually (at most once
                            # each) — loudly, or a systematic batcher defect
                            # would hide behind green per-task retries at
                            # ~2x the work.
                            warnings.warn(
                                f"batched block of {len(unit)} tasks failed "
                                "to return from its worker; retrying per "
                                "task:\n" + traceback.format_exc(),
                                RuntimeWarning, stacklevel=2,
                            )
                            telemetry.count("executor.block_retries")
                            block_retries.extend((entry,) for entry in unit)
                            continue
                        outcomes, snap, drained, health = \
                            [("error", traceback.format_exc(), 0.0,
                              _NO_RETRIES)], None, None, None
                    if watchdog is not None:
                        for outcome in outcomes:
                            watchdog.note_duration(outcome[2])
                    # Worker spans land under the live campaign.run span
                    # with their counters/histograms summed in; worker
                    # lifecycle events are re-sequenced onto the live bus.
                    # A died block's events never came back, so its retried
                    # singletons are the only events its tasks produce.
                    telemetry.merge_snapshot(snap)
                    events.absorb(drained)
                    if health is not None:
                        events.emit("worker.heartbeat", **health)
                        telemetry.observe("worker.rss_bytes",
                                          health["rss_bytes"])
                        telemetry.observe("worker.cpu_s", health["cpu_s"])
                    for (pos, spec), outcome in zip(unit, outcomes):
                        finish_pos(pos, _as_task_result(spec, *outcome))
                refill()
        except _PoolBroke as broke:
            stats["respawns"] += 1
            telemetry.count("executor.pool_respawns")
            pool.shutdown(wait=False, cancel_futures=True)
            # Units queued for healthy-pool re-runs were never submitted
            # to the broken pool: they go back to pending, not to probe.
            while block_retries:
                pending.appendleft(block_retries.pop())
            absorb_crash(broke.units)
            if pending or probe:
                warnings.warn(
                    f"worker pool broke ({len(broke.units)} unit(s) in "
                    "flight); respawning and re-dispatching the suspects "
                    "one at a time", RuntimeWarning, stacklevel=2)
                events.emit("pool.respawn")
            continue
        except BaseException:
            # ^C / SystemExit / unexpected error: deliberate shutdown —
            # cancel everything queued, do not wait on running workers,
            # and let the exception propagate.  Results are only written
            # by finish() in this process, so nothing is torn.
            for future in in_flight:
                future.cancel()
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            # Abandoned zombies may still be running; don't wait on them.
            pool.shutdown(wait=not abandoned, cancel_futures=True)
    return stats
