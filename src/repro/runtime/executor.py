"""Campaign execution: serial and process-pool backends.

:func:`run_campaign` takes an ordered collection of
:class:`~repro.runtime.spec.RunSpec` tasks and executes the cache misses
on one of two backends:

- **serial** (``jobs=1``, the default): runs tasks in order in the
  current process — zero overhead, trivially debuggable.
- **process pool** (``jobs>1`` or ``jobs=0`` for CPU-count auto-detect):
  shards tasks across a ``concurrent.futures.ProcessPoolExecutor`` and
  streams results back *as they complete* (an ``on_result`` callback
  fires in completion order), while the returned campaign keeps task
  order.

Because per-task seeds are baked into the specs before execution (see
:mod:`repro.runtime.seeding`), both backends produce bit-identical
results for the same campaign — sharding changes wall-clock time, never
values.

A failing task never kills the campaign: the exception (with its
traceback, captured inside the worker) is recorded on that task's
:class:`TaskResult` and every other shard proceeds.  Even a hard worker
death (segfault, OOM kill) only fails the tasks it takes down — the
campaign still returns a complete :class:`CampaignResult`.  Callers
decide whether failures are fatal via :attr:`CampaignResult.failures`
or :meth:`CampaignResult.raise_failures`.  ``KeyboardInterrupt`` /
``SystemExit`` in the calling process are *not* treated as task
failures: they abort the campaign as usual.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.runtime.spec import RunSpec
from repro.runtime.store import ResultStore

__all__ = [
    "CampaignResult",
    "TaskError",
    "TaskResult",
    "resolve_jobs",
    "run_campaign",
]

# Pending-future window per worker: enough to keep the pool saturated
# without materializing one future per task for huge sweeps.
_INFLIGHT_PER_JOB = 4


class TaskError(RuntimeError):
    """Raised by :meth:`CampaignResult.raise_failures` when tasks failed."""


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one campaign task.

    Exactly one of ``value`` (success) and ``error`` (failure) is set;
    ``cached`` marks results served from the store without execution.
    ``duration`` is the task's own wall-clock seconds (0 for cache hits).
    """

    spec: RunSpec
    value: "Mapping | None" = None
    error: "str | None" = None
    cached: bool = False
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def index(self) -> int:
        return self.spec.index


@dataclass(frozen=True)
class CampaignResult:
    """All task outcomes of one campaign, in task (spec) order."""

    results: "tuple[TaskResult, ...]"
    jobs: int = 1
    elapsed: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def values(self) -> "list[Mapping]":
        """Values of the successful tasks, in task order."""
        return [r.value for r in self.results if r.ok]

    @property
    def failures(self) -> "tuple[TaskResult, ...]":
        return tuple(r for r in self.results if not r.ok)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def n_executed(self) -> int:
        return sum(1 for r in self.results if r.ok and not r.cached)

    def raise_failures(self) -> "CampaignResult":
        """Raise :class:`TaskError` if any task failed; else return self."""
        if self.failures:
            first = self.failures[0]
            raise TaskError(
                f"{len(self.failures)}/{len(self.results)} campaign tasks "
                f"failed; first failure (task {first.index}, {first.spec.fn}):\n"
                f"{first.error}"
            )
        return self


def resolve_jobs(jobs: "int | None") -> int:
    """Normalize a ``--jobs`` value: ``None``/1 → serial, <=0 → CPU count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


def _execute(spec: RunSpec) -> "tuple[str, Any, float]":
    """Worker entry point: run one task, capturing any exception.

    Returns ``("ok", value, duration)`` or ``("error", traceback_text,
    duration)`` so that failures — including ones whose exception types
    would not survive pickling — travel back to the parent as plain
    data.  The duration is measured here, around the task code itself,
    so pool queue wait never inflates it.  ``KeyboardInterrupt`` and
    ``SystemExit`` propagate: in the serial backend they must abort the
    campaign, and in a worker the pool machinery reports them anyway.
    """
    t0 = time.perf_counter()
    try:
        value = spec.call()
    except Exception:  # noqa: BLE001 — isolation is the whole point
        return "error", traceback.format_exc(), time.perf_counter() - t0
    return "ok", value, time.perf_counter() - t0


def _as_task_result(spec: RunSpec, status: str, payload: Any,
                    duration: float) -> TaskResult:
    if status == "ok":
        if not isinstance(payload, Mapping):
            return TaskResult(
                spec=spec,
                error=(
                    f"task returned {type(payload).__name__}, expected a "
                    "mapping of named result fields"
                ),
                duration=duration,
            )
        return TaskResult(spec=spec, value=payload, duration=duration)
    return TaskResult(spec=spec, error=str(payload), duration=duration)


def run_campaign(
    specs: "Iterable[RunSpec]",
    *,
    jobs: "int | None" = 1,
    store: "ResultStore | None" = None,
    on_result: "Callable[[TaskResult], None] | None" = None,
) -> CampaignResult:
    """Execute a campaign of tasks, sharded and cached.

    Parameters
    ----------
    specs:
        The tasks, typically ``SweepSpec.tasks()``.  Order defines the
        order of :attr:`CampaignResult.results`.
    jobs:
        Parallelism: 1 (default) runs serially in-process, N>1 shards
        over N worker processes, 0 auto-detects the CPU count.
    store:
        Optional :class:`~repro.runtime.store.ResultStore`.  Hits skip
        execution entirely; fresh results are persisted on completion.
    on_result:
        Streaming callback, invoked in completion order (cache hits
        first) from the calling process.

    Returns
    -------
    CampaignResult
        Per-task outcomes in task order.  Failed tasks carry their
        worker traceback instead of a value; they never abort siblings.
    """
    specs = tuple(specs)
    jobs = resolve_jobs(jobs)
    t0 = time.perf_counter()
    slots: "list[TaskResult | None]" = [None] * len(specs)

    def finish(pos: int, result: TaskResult) -> None:
        slots[pos] = result
        if store is not None and result.ok and not result.cached:
            store.put(result.spec.key, result.value, spec=result.spec.describe())
        if on_result is not None:
            on_result(result)

    pending: "list[tuple[int, RunSpec]]" = []
    for pos, spec in enumerate(specs):
        cached = store.get(spec.key) if store is not None else None
        if cached is not None:
            finish(pos, TaskResult(spec=spec, value=cached, cached=True))
        else:
            pending.append((pos, spec))

    if jobs == 1 or len(pending) <= 1:
        for pos, spec in pending:
            finish(pos, _as_task_result(spec, *_execute(spec)))
    else:
        _run_pool(pending, jobs, finish)

    return CampaignResult(
        results=tuple(slots),
        jobs=jobs,
        elapsed=time.perf_counter() - t0,
    )


def _run_pool(
    pending: "Sequence[tuple[int, RunSpec]]",
    jobs: int,
    finish: "Callable[[int, TaskResult], None]",
) -> None:
    """Shard pending tasks over a process pool, streaming completions.

    Survives a broken pool (a worker killed by the OS mid-task): the
    tasks that were in flight or still queued are recorded as failures
    and the campaign result stays complete — submit errors never
    propagate out of here.
    """
    max_workers = min(jobs, len(pending))
    window = max_workers * _INFLIGHT_PER_JOB
    queue = iter(pending)

    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        in_flight: dict = {}
        pool_broken = False

        def refill() -> None:
            nonlocal pool_broken
            for pos, spec in queue:
                try:
                    in_flight[pool.submit(_execute, spec)] = (pos, spec)
                except Exception:  # BrokenProcessPool, shutdown races
                    pool_broken = True
                    finish(pos, _as_task_result(
                        spec, "error",
                        "task not attempted: worker pool broke\n"
                        + traceback.format_exc(), 0.0))
                if pool_broken or len(in_flight) >= window:
                    break
            if pool_broken:
                for pos, spec in queue:
                    finish(pos, _as_task_result(
                        spec, "error",
                        "task not attempted: worker pool broke", 0.0))

        refill()
        while in_flight:
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                pos, spec = in_flight.pop(future)
                try:
                    status, payload, duration = future.result()
                except Exception:  # worker death / pickling failure
                    status, payload, duration = (
                        "error", traceback.format_exc(), 0.0)
                finish(pos, _as_task_result(spec, status, payload, duration))
            refill()
