"""Campaign execution: serial and process-pool backends, with task batching.

:func:`run_campaign` takes an ordered collection of
:class:`~repro.runtime.spec.RunSpec` tasks and executes the cache misses
on one of two backends:

- **serial** (``jobs=1``, the default): runs tasks in order in the
  current process — zero overhead, trivially debuggable.
- **process pool** (``jobs>1`` or ``jobs=0`` for CPU-count auto-detect):
  shards tasks across a ``concurrent.futures.ProcessPoolExecutor`` and
  streams results back *as they complete* (an ``on_result`` callback
  fires in completion order), while the returned campaign keeps task
  order.

An optional **batcher** lets a task family execute contiguous blocks of
compatible cache-missing tasks in one call (e.g. B delay-campaign draws
as a single batched engine invocation) instead of one call per task.
Batching is an execution detail: per-task results, cache keys, stored
values, and streaming callbacks are exactly those of unbatched execution
— a batcher that cannot honor that contract must not group the tasks.
The block becomes the unit of sharding; a failing block transparently
falls back to per-task execution, preserving failure isolation.

Because per-task seeds are baked into the specs before execution (see
:mod:`repro.runtime.seeding`), both backends produce bit-identical
results for the same campaign — sharding changes wall-clock time, never
values.

A failing task never kills the campaign: the exception (with its
traceback, captured inside the worker) is recorded on that task's
:class:`TaskResult` and every other shard proceeds.  Even a hard worker
death (segfault, OOM kill) only fails the tasks it takes down — the
campaign still returns a complete :class:`CampaignResult`.  Callers
decide whether failures are fatal via :attr:`CampaignResult.failures`
or :meth:`CampaignResult.raise_failures`.  ``KeyboardInterrupt`` /
``SystemExit`` in the calling process are *not* treated as task
failures: they abort the campaign as usual.
"""

from __future__ import annotations

import os
import time
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro import telemetry
from repro.obs import events
from repro.runtime.spec import RunSpec
from repro.runtime.store import ResultStore

__all__ = [
    "CampaignResult",
    "TaskBatcher",
    "TaskError",
    "TaskResult",
    "resolve_jobs",
    "run_campaign",
]

# Pending-future window per worker: enough to keep the pool saturated
# without materializing one future per task for huge sweeps.
_INFLIGHT_PER_JOB = 4


class TaskError(RuntimeError):
    """Raised by :meth:`CampaignResult.raise_failures` when tasks failed."""


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one campaign task.

    Exactly one of ``value`` (success) and ``error`` (failure) is set;
    ``cached`` marks results served from the store without execution.
    ``duration`` is the task's own wall-clock seconds (0 for cache hits);
    tasks executed inside a batched block report the block's wall clock
    divided evenly across its tasks, since the engine computes them as
    one inseparable call.
    """

    spec: RunSpec
    value: "Mapping | None" = None
    error: "str | None" = None
    cached: bool = False
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def index(self) -> int:
        return self.spec.index


@dataclass(frozen=True)
class CampaignResult:
    """All task outcomes of one campaign, in task (spec) order."""

    results: "tuple[TaskResult, ...]"
    jobs: int = 1
    elapsed: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def values(self) -> "list[Mapping]":
        """Values of the successful tasks, in task order."""
        return [r.value for r in self.results if r.ok]

    @property
    def failures(self) -> "tuple[TaskResult, ...]":
        return tuple(r for r in self.results if not r.ok)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def n_executed(self) -> int:
        return sum(1 for r in self.results if r.ok and not r.cached)

    def raise_failures(self) -> "CampaignResult":
        """Raise :class:`TaskError` if any task failed; else return self."""
        if self.failures:
            first = self.failures[0]
            raise TaskError(
                f"{len(self.failures)}/{len(self.results)} campaign tasks "
                f"failed; first failure (task {first.index}, {first.spec.fn}):\n"
                f"{first.error}"
            )
        return self


def resolve_jobs(jobs: "int | None") -> int:
    """Normalize a ``--jobs`` value: ``None``/1 → serial, <=0 → CPU count."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


class TaskBatcher:
    """Strategy interface: execute blocks of compatible tasks in one call.

    Implementations must be picklable (blocks are sharded to worker
    processes whole) and must honor the batching contract: the values
    returned by :meth:`execute` for a block are exactly — bit for bit —
    the values the tasks would produce when called one by one.

    See :class:`repro.scenarios.batch.ScenarioTaskBatcher` for the
    canonical implementation (batched lockstep-engine execution of
    scenario replicate blocks).
    """

    def plan(self, specs: "Sequence[RunSpec]") -> "list[list[int]]":
        """Partition ``specs`` into ordered blocks of batchable tasks.

        Returns a list of index blocks covering ``range(len(specs))``
        exactly once, in order.  Singleton blocks run through the normal
        per-task path.  The default plan batches nothing.
        """
        return [[i] for i in range(len(specs))]

    def execute(self, specs: "Sequence[RunSpec]") -> "list[Mapping]":
        """Run one multi-task block; returns one value per spec, in order."""
        raise NotImplementedError


def _execute(spec: RunSpec) -> "tuple[str, Any, float]":
    """Worker entry point: run one task, capturing any exception.

    Returns ``("ok", value, duration)`` or ``("error", traceback_text,
    duration)`` so that failures — including ones whose exception types
    would not survive pickling — travel back to the parent as plain
    data.  The duration comes from an always-timed ``executor.task``
    telemetry span around the task code itself, so pool queue wait never
    inflates it.  ``KeyboardInterrupt`` and ``SystemExit`` propagate: in
    the serial backend they must abort the campaign, and in a worker the
    pool machinery reports them anyway.
    """
    status, payload = "ok", None
    events.emit("task.start", index=spec.index)
    with telemetry.timed_span("executor.task", fn=spec.fn) as sp:
        try:
            payload = spec.call()
        except Exception:  # noqa: BLE001 — isolation is the whole point
            status, payload = "error", traceback.format_exc()
            telemetry.count("executor.task_failures")
    return status, payload, sp.duration


def _execute_block(
    unit: "tuple[RunSpec, ...]", batcher: TaskBatcher
) -> "list[tuple[str, Any, float]]":
    """Run one batched block; one outcome per task.

    A block that raises falls back to per-task execution, so a
    batch-infrastructure failure degrades to exactly the isolation
    semantics of unbatched execution — with a :class:`RuntimeWarning`
    naming the cause, since per-task execution may succeed and would
    otherwise hide the batcher defect entirely.
    ``KeyboardInterrupt``/``SystemExit`` propagate as in :func:`_execute`.
    """
    failure = None
    values: "list | None" = None
    with telemetry.timed_span("executor.block", n_tasks=len(unit)) as sp:
        try:
            values = batcher.execute(unit)
        except Exception:  # noqa: BLE001 — degrade to per-task isolation
            failure = (
                f"batched execution of a {len(unit)}-task block failed; "
                f"falling back to per-task execution:\n{traceback.format_exc()}"
            )
    if failure is None and values is not None and len(values) != len(unit):
        failure = (
            f"batcher contract violation: {len(values)} values returned for "
            f"a {len(unit)}-task block; falling back to per-task execution"
        )
    if failure is not None:
        warnings.warn(failure, RuntimeWarning, stacklevel=3)
        telemetry.count("executor.batch_fallbacks")
        # The failed block emitted no per-task events (it never started
        # any task individually), so the fallback's task.start stream
        # counts each task exactly once.
        events.emit("block.fallback", n_tasks=len(unit))
        return [_execute(spec) for spec in unit]
    telemetry.observe("executor.block_size", len(unit))
    per_task = sp.duration / len(unit)
    return [("ok", value, per_task) for value in values]


def _execute_unit(
    unit: "tuple[RunSpec, ...]",
    batcher: "TaskBatcher | None",
    profile: bool = False,
    submit_t: "float | None" = None,
    observe: bool = False,
) -> "tuple[list[tuple[str, Any, float]], dict | None, list | None, dict | None]":
    """Run one unit (a single task or a batched block) plus its telemetry.

    Returns ``(outcomes, snapshot, events, health)`` where ``snapshot``
    is the unit's own telemetry, ``events`` its drained lifecycle
    events, and ``health`` a post-unit resource sample of the worker
    process (:func:`repro.obs.health.sample_resources`) — the heartbeat
    payload the parent turns into a ``worker.heartbeat`` event.  The
    pool backend passes ``profile=True`` / ``observe=True`` into its
    worker processes, each of which records into a fresh recorder/bus of
    its own and ships the data back through the result channel;
    ``enable()`` here also discards the stale recorder/bus copy a
    fork-started worker inherits from a profiling parent.  The serial
    backend records straight into the caller's recorder and bus and
    returns ``None`` for snapshot, events, and health alike (serial runs
    emit no heartbeats — see the determinism note in
    :mod:`repro.obs.health`).  ``submit_t`` is the parent's
    ``perf_counter()`` at submission: ``perf_counter`` is system-wide
    monotonic on Linux, so the difference is the unit's pool queue wait.
    """
    owns = profile
    if owns:
        telemetry.enable()
    owns_events = observe
    if owns_events:
        # in_run: the worker executes one unit of the parent's run, so
        # task code must not open a nested run lifecycle of its own.
        events.enable(in_run=True)
    try:
        if submit_t is not None:
            telemetry.observe("executor.queue_wait_s",
                              max(0.0, time.perf_counter() - submit_t))
        if len(unit) == 1 or batcher is None:
            outcomes = [_execute(spec) for spec in unit]
        else:
            outcomes = _execute_block(unit, batcher)
    finally:
        # Workers are reused across units: always release an owned
        # recorder/bus, or an aborting unit would leave it live (and
        # growing) for every later unit this process executes.
        snap = telemetry.disable().snapshot() if owns else None
        drained = events.disable().drain() if owns_events else None
    health = None
    if owns or owns_events:
        from repro.obs.health import sample_resources

        health = sample_resources()
    return outcomes, snap, drained, health


def _plan_units(
    pending: "Sequence[tuple[int, RunSpec]]", batcher: "TaskBatcher | None"
) -> "list[tuple[tuple[int, RunSpec], ...]]":
    """Group the pending (position, spec) pairs into execution units."""
    if batcher is None or len(pending) <= 1:
        return [(entry,) for entry in pending]
    blocks = batcher.plan([spec for _, spec in pending])
    covered = sorted(i for block in blocks for i in block)
    if covered != list(range(len(pending))):
        raise ValueError(
            f"batcher plan must partition all {len(pending)} pending tasks "
            "exactly once"
        )
    return [tuple(pending[i] for i in block) for block in blocks]


def _as_task_result(spec: RunSpec, status: str, payload: Any,
                    duration: float) -> TaskResult:
    if status == "ok":
        if not isinstance(payload, Mapping):
            return TaskResult(
                spec=spec,
                error=(
                    f"task returned {type(payload).__name__}, expected a "
                    "mapping of named result fields"
                ),
                duration=duration,
            )
        return TaskResult(spec=spec, value=payload, duration=duration)
    return TaskResult(spec=spec, error=str(payload), duration=duration)


def _emit_dispatch(unit: "tuple[tuple[int, RunSpec], ...]") -> None:
    """Publish a unit's submission: one ``task.submit`` per task, plus a
    ``block.dispatch`` header for multi-task blocks."""
    if not events.enabled():
        return
    if len(unit) > 1:
        events.emit("block.dispatch", n_tasks=len(unit),
                    first=unit[0][1].index)
    for _, spec in unit:
        events.emit("task.submit", index=spec.index)


def run_campaign(
    specs: "Iterable[RunSpec]",
    *,
    jobs: "int | None" = 1,
    store: "ResultStore | None" = None,
    on_result: "Callable[[TaskResult], None] | None" = None,
    batcher: "TaskBatcher | None" = None,
    watchdog: "Any | None" = None,
) -> CampaignResult:
    """Execute a campaign of tasks, sharded, cached, and optionally batched.

    Parameters
    ----------
    specs:
        The tasks, typically ``SweepSpec.tasks()``.  Order defines the
        order of :attr:`CampaignResult.results`.
    jobs:
        Parallelism: 1 (default) runs serially in-process, N>1 shards
        over N worker processes, 0 auto-detects the CPU count.
    store:
        Optional :class:`~repro.runtime.store.ResultStore`.  Hits skip
        execution entirely; fresh results are persisted on completion.
    on_result:
        Streaming callback, invoked in completion order (cache hits
        first) from the calling process.
    batcher:
        Optional :class:`TaskBatcher` that groups contiguous compatible
        cache misses into blocks executed by one call each.  Results,
        cache addressing, and failure semantics are unchanged — batching
        only reduces per-task invocation overhead.
    watchdog:
        Optional :class:`repro.obs.health.StallWatchdog` for the pool
        backend.  When an event bus is live and none is given, a default
        watchdog is installed; pass one to tune its thresholds (tests
        inject aggressive ones).  Serial runs never use it — stall
        detection is pool-only by the determinism contract.

    Returns
    -------
    CampaignResult
        Per-task outcomes in task order.  Failed tasks carry their
        worker traceback instead of a value; they never abort siblings.
    """
    specs = tuple(specs)
    jobs = resolve_jobs(jobs)
    slots: "list[TaskResult | None]" = [None] * len(specs)

    def finish(pos: int, result: TaskResult) -> None:
        slots[pos] = result
        if store is not None and result.ok and not result.cached:
            store.put(result.spec.key, result.value, spec=result.spec.describe())
        # Terminal lifecycle events carry only the task index: payloads
        # with durations or tracebacks would break the event-identity
        # determinism contract (repro.obs.events).
        if result.cached:
            events.emit("task.cache_hit", index=result.index)
        elif result.ok:
            events.emit("task.done", index=result.index)
        else:
            events.emit("task.failed", index=result.index)
        if on_result is not None:
            on_result(result)

    # A campaign is always *inside* a run: mark the bus so task code
    # that would own a run lifecycle at top level (run_scenario inside
    # scenario_task) stays silent — even when run_campaign is driven
    # directly without an enclosing runner.
    bus = events.current_bus()
    if bus is not None:
        bus.mark_in_run()
    try:
        # ``elapsed`` is the span's wall clock — the same two perf_counter
        # reads the pre-telemetry bookkeeping made, recorded only if a
        # profiling run is live.
        with telemetry.timed_span("campaign.run", n_tasks=len(specs),
                                  jobs=jobs) as campaign_span:
            pending: "list[tuple[int, RunSpec]]" = []
            for pos, spec in enumerate(specs):
                cached = store.get(spec.key) if store is not None else None
                if cached is not None:
                    telemetry.count("campaign.cache.hits")
                    finish(pos, TaskResult(spec=spec, value=cached,
                                           cached=True))
                else:
                    if store is not None:
                        telemetry.count("campaign.cache.misses")
                    pending.append((pos, spec))

            units = _plan_units(pending, batcher)
            if jobs == 1 or len(units) <= 1:
                for unit in units:
                    _emit_dispatch(unit)
                    outcomes, _, _, _ = _execute_unit(
                        tuple(spec for _, spec in unit), batcher)
                    for (pos, spec), outcome in zip(unit, outcomes):
                        finish(pos, _as_task_result(spec, *outcome))
            else:
                _run_pool(units, jobs, batcher, finish, watchdog)
    finally:
        if bus is not None:
            bus.unmark_in_run()

    return CampaignResult(
        results=tuple(slots),
        jobs=jobs,
        elapsed=campaign_span.duration,
    )


def _run_pool(
    units: "Sequence[tuple[tuple[int, RunSpec], ...]]",
    jobs: int,
    batcher: "TaskBatcher | None",
    finish: "Callable[[int, TaskResult], None]",
    watchdog: "Any | None" = None,
) -> None:
    """Shard execution units over a process pool, streaming completions.

    A unit is one task or one batched block; blocks travel to a worker
    whole.  A multi-task block whose future dies (worker killed mid-block,
    result unpicklable) is re-enqueued as singleton units so only the task
    that actually breaks a worker is lost — the same per-task isolation as
    unbatched execution.  Survives a broken pool (a worker killed by the
    OS mid-task): the tasks that were in flight or still queued are
    recorded as failures and the campaign result stays complete — submit
    errors never propagate out of here.

    When an event bus is live, the completion loop also runs worker
    health plumbing: each returned unit's resource sample becomes a
    ``worker.heartbeat`` event (plus ``worker.rss_bytes`` /
    ``worker.cpu_s`` telemetry histograms), and between completions a
    :class:`~repro.obs.health.StallWatchdog` scans the in-flight table,
    emitting ``task.stall`` for units out far longer than the EWMA task
    duration.  Neither path touches outcomes: health is observation
    only.
    """
    from collections import deque

    max_workers = min(jobs, len(units))
    window = max_workers * _INFLIGHT_PER_JOB
    queue = iter(units)
    retries: "deque[tuple[tuple[int, RunSpec], ...]]" = deque()
    profile = telemetry.enabled()
    observe = events.enabled()
    if watchdog is None and observe:
        from repro.obs.health import StallWatchdog

        watchdog = StallWatchdog()
    telemetry.gauge("executor.jobs", max_workers)

    def fail_unit(unit, note: str) -> None:
        telemetry.count("executor.not_attempted", len(unit))
        for pos, spec in unit:
            finish(pos, _as_task_result(spec, "error", note, 0.0))

    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        in_flight: dict = {}
        pool_broken = False

        def refill() -> None:
            nonlocal pool_broken
            while not pool_broken and len(in_flight) < window:
                unit = retries.popleft() if retries else next(queue, None)
                if unit is None:
                    break
                spec_block = tuple(spec for _, spec in unit)
                _emit_dispatch(unit)
                submit_t = time.perf_counter()
                try:
                    in_flight[pool.submit(
                        _execute_unit, spec_block, batcher, profile,
                        submit_t, observe)] = (unit, submit_t)
                except Exception:  # BrokenProcessPool, shutdown races
                    pool_broken = True
                    fail_unit(unit, "task not attempted: worker pool broke\n"
                              + traceback.format_exc())
            if pool_broken:
                while retries:
                    fail_unit(retries.popleft(),
                              "task not attempted: worker pool broke")
                for unit in queue:
                    fail_unit(unit, "task not attempted: worker pool broke")

        refill()
        while in_flight:
            timeout = watchdog.poll_s if watchdog is not None else None
            done, _ = wait(in_flight, timeout=timeout,
                           return_when=FIRST_COMPLETED)
            if watchdog is not None:
                watchdog.scan(in_flight)
            for future in done:
                unit, _submit_t = in_flight.pop(future)
                if watchdog is not None:
                    watchdog.forget(future)
                try:
                    outcomes, snap, drained, health = future.result()
                except Exception:  # worker death / pickling failure
                    if len(unit) > 1:
                        # Don't fail the whole block for one bad task:
                        # retry its tasks individually (at most once each) —
                        # loudly, or a systematic batcher defect would hide
                        # behind green per-task retries at ~2x the work.
                        warnings.warn(
                            f"batched block of {len(unit)} tasks failed to "
                            "return from its worker; retrying per task:\n"
                            + traceback.format_exc(),
                            RuntimeWarning, stacklevel=2,
                        )
                        telemetry.count("executor.block_retries")
                        retries.extend((entry,) for entry in unit)
                        continue
                    outcomes, snap, drained, health = \
                        [("error", traceback.format_exc(), 0.0)], None, \
                        None, None
                if watchdog is not None:
                    for _status, _payload, duration in outcomes:
                        watchdog.note_duration(duration)
                # Worker spans land under the live campaign.run span with
                # their counters/histograms summed in; worker lifecycle
                # events are re-sequenced onto the live bus.  A died
                # block's events never came back, so its retried
                # singletons are the only events its tasks produce.
                telemetry.merge_snapshot(snap)
                events.absorb(drained)
                if health is not None:
                    events.emit("worker.heartbeat", **health)
                    telemetry.observe("worker.rss_bytes",
                                      health["rss_bytes"])
                    telemetry.observe("worker.cpu_s", health["cpu_s"])
                for (pos, spec), outcome in zip(unit, outcomes):
                    finish(pos, _as_task_result(spec, *outcome))
            refill()
