"""``repro-experiment store`` subcommands: result-store maintenance.

::

    repro-experiment store ls --cache-dir DIR [--json]
    repro-experiment store migrate --cache-dir DIR [--dry-run]
    repro-experiment store gc --cache-dir DIR [--dry-run]

``ls`` lists every cached task result with its spec key, owning task
function, derived seed, and on-disk size — packed shard records straight
from the shard indexes, per-file records via their trailing headers.
``migrate`` packs the per-file records into append-only shards (get()
results stay byte-identical; the originals remain until ``gc`` prunes
them).  ``gc`` prunes unreferenced blobs — orphaned NPZ side-cars,
unreadable/torn JSON records, valid records whose NPZ side-car is
corrupt, packed-over per-file originals, temp files abandoned by
interrupted writes, telemetry JSONL no ledger record references, and
torn run-ledger records — without ever touching a live record.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.runtime.store import ResultStore

__all__ = ["store_main", "build_store_parser"]


def _human_bytes(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment store",
        description="Inspect and maintain the content-addressed result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ls = sub.add_parser("ls", help="list cached results (key, task, size)")
    p_ls.add_argument("--cache-dir", required=True, metavar="DIR",
                      help="result store directory")
    p_ls.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable output")

    p_mig = sub.add_parser("migrate",
                           help="pack per-file records into append-only "
                                "shards (byte-identical reads)")
    p_mig.add_argument("--cache-dir", required=True, metavar="DIR",
                       help="result store directory")
    p_mig.add_argument("--dry-run", action="store_true",
                       help="report what would be packed without writing")

    p_gc = sub.add_parser("gc", help="prune unreferenced blobs "
                                     "(orphan NPZ, torn records, temp files)")
    p_gc.add_argument("--cache-dir", required=True, metavar="DIR",
                      help="result store directory")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be removed without deleting")
    p_gc.add_argument("--min-age", type=float, default=3600.0,
                      metavar="SECONDS",
                      help="spare temp files/orphan blobs younger than this "
                           "(a concurrent campaign may be mid-write; "
                           "default 3600)")
    return parser


def _cmd_ls(args) -> int:
    store = ResultStore(args.cache_dir)
    entries = list(store.entries())
    if args.as_json:
        print(json.dumps(
            [
                {"key": e.key, "fn": e.fn, "seed": e.seed,
                 "n_arrays": e.n_arrays, "json_bytes": e.json_bytes,
                 "npz_bytes": e.npz_bytes, "total_bytes": e.total_bytes,
                 "mtime": e.mtime, "packed": e.packed}
                for e in entries
            ],
            indent=2,
        ))
        return 0
    if not entries:
        print(f"[empty store at {store.root}]")
        return 0
    for e in entries:
        arrays = f" +{e.n_arrays} array(s)" if e.n_arrays else ""
        packed = " [packed]" if e.packed else ""
        print(f"{e.key}  {_human_bytes(e.total_bytes):>10}  "
              f"{e.fn or '(no spec)'}{arrays}{packed}")
    total = sum(e.total_bytes for e in entries)
    n_packed = sum(1 for e in entries if e.packed)
    print(f"[{len(entries)} result(s) ({n_packed} packed), "
          f"{_human_bytes(total)} in {store.root}]")
    return 0


def _cmd_migrate(args) -> int:
    store = ResultStore(args.cache_dir)
    stats = store.migrate(dry_run=args.dry_run)
    verb = "would pack" if args.dry_run else "packed"
    print(f"[{verb} {stats.n_packed} record(s) "
          f"({_human_bytes(stats.bytes_packed)}) into shards; "
          f"{stats.n_already} already packed, {stats.n_skipped} unreadable "
          f"(left for gc); originals remain until 'store gc']")
    return 0


def _cmd_gc(args) -> int:
    store = ResultStore(args.cache_dir)
    stats = store.gc(dry_run=args.dry_run, min_age_s=args.min_age)
    verb = "would remove" if args.dry_run else "removed"
    print(f"[{verb} {stats.n_removed} file(s): {stats.n_orphan_npz} orphan "
          f"NPZ, {stats.n_corrupt} torn record(s), "
          f"{stats.n_corrupt_npz} corrupt-NPZ pair(s), "
          f"{stats.n_migrated} packed original(s), {stats.n_tmp} temp "
          f"file(s), {stats.n_orphan_telemetry} orphan telemetry, "
          f"{stats.n_torn_runs} torn run record(s); "
          f"{_human_bytes(stats.bytes_freed)} freed]")
    return 0


def store_main(argv: "list[str] | None" = None) -> int:
    args = build_store_parser().parse_args(argv)
    return {"ls": _cmd_ls, "migrate": _cmd_migrate,
            "gc": _cmd_gc}[args.command](args)


if __name__ == "__main__":
    sys.exit(store_main())
