"""Deterministic per-task seed derivation for campaign runs.

Campaigns fan out across processes, so per-run randomness must be fixed
by the *task description* alone — never by execution order, backend, or
worker identity.  Each task's stream is derived from ``(base_seed,
task_index)`` through :class:`numpy.random.SeedSequence`'s ``spawn_key``
mechanism, which guarantees streams that are both reproducible and
statistically independent (the same hashing construction used by
``SeedSequence.spawn``).

The derived value is collapsed to a single 64-bit integer seed so that a
task spec stays a plain, picklable, JSON-able record: the task function
re-expands it with :func:`numpy.random.default_rng`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_rng", "derive_seed", "seed_sequence"]


def seed_sequence(base_seed: int, task_index: int) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` for one task of a campaign."""
    if task_index < 0:
        raise ValueError(f"task_index must be >= 0, got {task_index}")
    return np.random.SeedSequence(entropy=int(base_seed), spawn_key=(int(task_index),))


def derive_seed(base_seed: int, task_index: int) -> int:
    """Collapse a task's seed sequence to one 64-bit integer seed.

    Deterministic in ``(base_seed, task_index)`` and distinct across
    task indices (collisions are as unlikely as 64-bit hash collisions).
    """
    return int(seed_sequence(base_seed, task_index).generate_state(1, np.uint64)[0])


def derive_rng(base_seed: int, task_index: int) -> np.random.Generator:
    """A ready-made generator on the task's independent stream."""
    return np.random.default_rng(seed_sequence(base_seed, task_index))
