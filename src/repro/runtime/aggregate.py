"""Reduction helpers for campaign results.

Campaign analyses consume many per-run result dicts and reduce them to
summary statistics (mean / std / percentiles) or group them by a sweep
parameter before reducing.  These helpers keep that logic in one place
and operate on plain values, :class:`~repro.runtime.executor.TaskResult`
objects, or whole :class:`~repro.runtime.executor.CampaignResult`
campaigns.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

__all__ = ["collect", "group_by_param", "reduce_runs", "summarize"]


def _values(runs: Any) -> "list[Mapping]":
    """Accept a CampaignResult, TaskResults, or plain value mappings."""
    if hasattr(runs, "values") and callable(runs.values) and hasattr(runs, "results"):
        return runs.values()  # CampaignResult
    out = []
    for run in runs:
        if hasattr(run, "ok"):  # TaskResult
            if run.ok:
                out.append(run.value)
        else:
            out.append(run)
    return out


def collect(runs: Any, field: str) -> np.ndarray:
    """Gather one numeric field across runs into an array (task order)."""
    values = _values(runs)
    try:
        return np.asarray([v[field] for v in values], dtype=float)
    except KeyError as exc:
        raise KeyError(
            f"field {field!r} missing from a run result; available fields "
            f"of the first run: {sorted(values[0]) if values else '[]'}"
        ) from exc


def summarize(samples: "Iterable[float]",
              percentiles: "tuple[float, ...]" = (50.0, 95.0)) -> dict:
    """Mean / std / min / max / percentile summary of one sample set."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample set")
    out = {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
    for q in percentiles:
        out[f"p{q:g}"] = float(np.percentile(arr, q))
    return out


def reduce_runs(runs: Any, fields: "Iterable[str] | None" = None,
                percentiles: "tuple[float, ...]" = (50.0, 95.0)) -> dict:
    """Summary statistics per field across a campaign's runs.

    ``fields`` defaults to every numeric field of the first run.
    Returns ``{field: {"n", "mean", "std", "min", "max", "p50", ...}}``.
    """
    values = _values(runs)
    if not values:
        raise ValueError("cannot reduce an empty campaign")
    if fields is None:
        fields = [k for k, v in values[0].items()
                  if isinstance(v, (int, float, np.integer, np.floating))
                  and not isinstance(v, bool)]
    return {field: summarize(collect(values, field), percentiles)
            for field in fields}


def group_by_param(results: Any, param: str) -> dict:
    """Group successful task results by one sweep-parameter value.

    Takes :class:`TaskResult` objects (or a whole campaign) and returns
    an insertion-ordered ``{param_value: [value_dict, ...]}`` mapping —
    the shape the rate/level scans consume.
    """
    if hasattr(results, "results"):
        results = results.results  # CampaignResult
    grouped: dict = {}
    for result in results:
        if not result.ok:
            continue
        kwargs = result.spec.kwargs
        if param not in kwargs:
            raise KeyError(
                f"task {result.index} has no parameter {param!r}; "
                f"available: {sorted(kwargs)}"
            )
        grouped.setdefault(kwargs[param], []).append(result.value)
    return grouped
