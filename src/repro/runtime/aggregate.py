"""Reduction helpers for campaign results.

Campaign analyses consume many per-run result dicts and reduce them to
summary statistics (mean / std / percentiles) or group them by a sweep
parameter before reducing.  These helpers keep that logic in one place
and operate on plain values, :class:`~repro.runtime.executor.TaskResult`
objects, or whole :class:`~repro.runtime.executor.CampaignResult`
campaigns.

Error contract: every way an aggregation can fail — an empty campaign, a
campaign whose tasks all failed, a missing result field, an unknown sweep
parameter — raises :class:`AggregationError` with a message naming what
was being aggregated and what is available, never a bare ``KeyError``
from deep inside a comprehension.  Partially-failed campaigns aggregate
over their *successful* runs (failures are the executor's concern; see
:meth:`~repro.runtime.executor.CampaignResult.raise_failures`).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

__all__ = ["AggregationError", "collect", "group_by_param", "reduce_runs",
           "summarize"]


class AggregationError(RuntimeError):
    """Campaign results cannot be aggregated as requested.

    Raised for empty campaigns (no successful runs to reduce), result
    fields absent from a run, and sweep parameters the tasks were never
    given.  The message always names the offending field/parameter and
    what *is* available, so a typo in an analysis script fails with a
    pointer instead of a ``KeyError`` traceback.
    """


def _values(runs: Any) -> "list[Mapping]":
    """Accept a CampaignResult, TaskResults, or plain value mappings."""
    if hasattr(runs, "values") and callable(runs.values) and hasattr(runs, "results"):
        return runs.values()  # CampaignResult
    out = []
    for run in runs:
        if hasattr(run, "ok"):  # TaskResult
            if run.ok:
                out.append(run.value)
        else:
            out.append(run)
    return out


def collect(runs: Any, field: str) -> np.ndarray:
    """Gather one numeric field across runs into an array (task order).

    Raises
    ------
    AggregationError
        If there are no successful runs, or ``field`` is missing from one.
    """
    values = _values(runs)
    if not values:
        raise AggregationError(
            f"cannot collect field {field!r}: the campaign has no "
            "successful runs (empty, or every task failed)"
        )
    try:
        return np.asarray([v[field] for v in values], dtype=float)
    except KeyError as exc:
        raise AggregationError(
            f"field {field!r} missing from a run result; available fields "
            f"of the first run: {sorted(values[0])}"
        ) from exc


def summarize(samples: "Iterable[float]",
              percentiles: "tuple[float, ...]" = (50.0, 95.0)) -> dict:
    """Mean / std / min / max / percentile summary of one sample set.

    Raises
    ------
    AggregationError
        If the sample set is empty.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise AggregationError("cannot summarize an empty sample set")
    out = {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
    for q in percentiles:
        out[f"p{q:g}"] = float(np.percentile(arr, q))
    return out


def reduce_runs(runs: Any, fields: "Iterable[str] | None" = None,
                percentiles: "tuple[float, ...]" = (50.0, 95.0)) -> dict:
    """Summary statistics per field across a campaign's runs.

    ``fields`` defaults to every numeric field of the first run.
    Returns ``{field: {"n", "mean", "std", "min", "max", "p50", ...}}``.

    Raises
    ------
    AggregationError
        If the campaign has no successful runs, or a requested field is
        missing.
    """
    values = _values(runs)
    if not values:
        raise AggregationError(
            "cannot reduce an empty campaign (no successful runs)"
        )
    if fields is None:
        fields = [k for k, v in values[0].items()
                  if isinstance(v, (int, float, np.integer, np.floating))
                  and not isinstance(v, bool)]
    return {field: summarize(collect(values, field), percentiles)
            for field in fields}


def group_by_param(results: Any, param: str) -> dict:
    """Group successful task results by one sweep-parameter value.

    Takes :class:`TaskResult` objects (or a whole campaign) and returns
    an insertion-ordered ``{param_value: [value_dict, ...]}`` mapping —
    the shape the rate/level scans consume.  Failed tasks are skipped
    (aggregate over what succeeded); a campaign with *no* successful
    task cannot be grouped at all.

    Raises
    ------
    AggregationError
        If no task succeeded, or ``param`` is not a parameter of a task.
    """
    if hasattr(results, "results"):
        results = results.results  # CampaignResult
    grouped: dict = {}
    n_failed = 0
    results = list(results)
    for result in results:
        if not result.ok:
            n_failed += 1
            continue
        kwargs = result.spec.kwargs
        if param not in kwargs:
            raise AggregationError(
                f"task {result.index} has no parameter {param!r}; "
                f"available: {sorted(kwargs)}"
            )
        grouped.setdefault(kwargs[param], []).append(result.value)
    if not grouped:
        raise AggregationError(
            f"cannot group by {param!r}: no successful task results "
            f"({n_failed}/{len(results)} task(s) failed)"
        )
    return grouped
