"""Idle-wave analysis — the paper's primary contribution.

Given a simulated (or, in principle, measured) run of a bulk-synchronous
message-passing program, this package detects idle waves, measures their
propagation speed against the analytic model (Eq. 2), quantifies their
decay under noise (Fig. 8), analyzes wave interaction/cancellation
(Fig. 6), and evaluates when noise eliminates the runtime impact of a delay
entirely (Fig. 9).
"""

from repro.core.decay import DecayMeasurement, DecayStatistics, decay_statistics, measure_decay
from repro.core.elimination import (
    EliminationPoint,
    elimination_scan,
    excess_runtime,
    runtime_spread,
)
from repro.core.idle_wave import (
    IdlePeriod,
    WaveFront,
    default_threshold,
    idle_periods,
    wave_front,
)
from repro.core.interaction import (
    Wave,
    find_waves,
    meeting_ranks,
    resync_step,
    superposition_defect,
)
from repro.core.speed import (
    SpeedMeasurement,
    measure_speed,
    sigma_factor,
    silent_speed,
    silent_speed_for,
)
from repro.core.timing import RunTiming
from repro.core.tracking import WaveSnapshot, WaveTrack, track_wave

__all__ = [
    "DecayMeasurement",
    "DecayStatistics",
    "EliminationPoint",
    "IdlePeriod",
    "RunTiming",
    "SpeedMeasurement",
    "Wave",
    "WaveFront",
    "WaveSnapshot",
    "WaveTrack",
    "decay_statistics",
    "default_threshold",
    "elimination_scan",
    "excess_runtime",
    "find_waves",
    "idle_periods",
    "measure_decay",
    "measure_speed",
    "meeting_ranks",
    "resync_step",
    "runtime_spread",
    "sigma_factor",
    "silent_speed",
    "silent_speed_for",
    "superposition_defect",
    "track_wave",
    "wave_front",
]
