"""Idle-period elimination by noise (Sec. V-B, Fig. 9).

The practical punchline of the paper: on a sufficiently noisy system, the
*excess* runtime caused by a strong injected delay becomes unobservable —
the noise absorbs the idle wave.  The metric is

``excess(E) = runtime(delay, E) - runtime(no delay, E)``

evaluated with identical noise realizations (same seed), so the difference
isolates the delay's contribution.  At ``E = 0`` the excess equals the
injected delay; past the elimination threshold it drops to ~0 even though
the total runtime keeps growing with ``E``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.timing import RunTiming
from repro.sim.lockstep import simulate_lockstep
from repro.sim.program import LockstepConfig

__all__ = ["EliminationPoint", "excess_runtime", "elimination_scan", "runtime_spread"]


@dataclass(frozen=True)
class EliminationPoint:
    """Result of one noise level in an elimination scan."""

    E: float
    runtime_with_delay: float
    runtime_without_delay: float

    @property
    def excess(self) -> float:
        """Extra wall-clock seconds attributable to the injected delay."""
        return self.runtime_with_delay - self.runtime_without_delay

    def excess_fraction(self, delay: float) -> float:
        """Excess as a fraction of the injected delay (1 → fully visible)."""
        if delay <= 0:
            raise ValueError(f"delay must be > 0, got {delay}")
        return self.excess / delay


def excess_runtime(run_with, run_without) -> float:
    """Excess wall-clock runtime of a delayed run over its undelayed twin."""
    return RunTiming.of(run_with).total_runtime() - RunTiming.of(run_without).total_runtime()


def elimination_scan(
    base_cfg: LockstepConfig,
    noise_levels: "list[float] | np.ndarray",
    noise_factory=None,
    simulate=simulate_lockstep,
    **sim_kwargs,
) -> list[EliminationPoint]:
    """Scan noise levels and measure the delay's runtime visibility.

    For every ``E`` in ``noise_levels`` two runs are performed with the
    *same* seed: one with ``base_cfg``'s delays, one with the delays
    stripped.  The returned points expose the excess runtime — Fig. 9's
    orange bar.

    Parameters
    ----------
    base_cfg:
        Configuration including the injected delay(s).
    noise_levels:
        Values of ``E`` (mean relative delay per execution phase).
    noise_factory:
        ``(E, t_exec) -> NoiseModel``; defaults to the paper's exponential
        noise (Eq. 3).
    simulate:
        Simulation entry point (``simulate_lockstep`` by default); must
        accept a :class:`LockstepConfig` and return something
        :class:`~repro.core.timing.RunTiming` understands.
    sim_kwargs:
        Extra keyword arguments forwarded to ``simulate``.
    """
    if not base_cfg.delays:
        raise ValueError("base_cfg must include at least one injected delay")
    if noise_factory is None:
        from repro.sim.noise import exponential_for_level

        noise_factory = exponential_for_level

    points: list[EliminationPoint] = []
    for E in noise_levels:
        noise = noise_factory(float(E), base_cfg.t_exec)
        cfg_delay = replace(base_cfg, noise=noise)
        cfg_clean = replace(base_cfg, noise=noise, delays=())
        run_delay = simulate(cfg_delay, **sim_kwargs)
        run_clean = simulate(cfg_clean, **sim_kwargs)
        points.append(
            EliminationPoint(
                E=float(E),
                runtime_with_delay=RunTiming.of(run_delay).total_runtime(),
                runtime_without_delay=RunTiming.of(run_clean).total_runtime(),
            )
        )
    return points


def runtime_spread(
    base_cfg: LockstepConfig,
    E: float,
    n_runs: int = 8,
    noise_factory=None,
    simulate=simulate_lockstep,
    seed0: int = 100,
    **sim_kwargs,
) -> float:
    """Run-to-run standard deviation of the *undelayed* total runtime.

    The paper judges elimination from single runs, so an excess below the
    run-to-run spread is unobservable ("we observe no excess runtime").
    This measures that spread at noise level ``E`` over ``n_runs``
    independent seeds.
    """
    if n_runs < 2:
        raise ValueError(f"n_runs must be >= 2, got {n_runs}")
    if noise_factory is None:
        from repro.sim.noise import exponential_for_level

        noise_factory = exponential_for_level
    noise = noise_factory(float(E), base_cfg.t_exec)
    runtimes = []
    for r in range(n_runs):
        cfg = replace(base_cfg, noise=noise, delays=(), seed=seed0 + r)
        runtimes.append(RunTiming.of(simulate(cfg, **sim_kwargs)).total_runtime())
    return float(np.std(runtimes, ddof=1))
