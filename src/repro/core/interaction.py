"""Interaction and cancellation of idle waves (Sec. IV-B, Fig. 6).

Idle waves are *not* linear: when two waves meet they (partially) cancel
instead of passing through each other.  This module provides the analyses
behind that claim:

- :func:`find_waves` — connected-component extraction of idle activity in
  the (rank, step) plane, so interacting waves can be counted and located,
- :func:`resync_step` / :func:`meeting_ranks` — when and where the system
  returns to lockstep after waves annihilate,
- :func:`superposition_defect` — a direct quantitative test of
  nonlinearity: the idle time of a combined-injection run minus the sum of
  the single-injection runs.  Zero would mean linear superposition; the
  strongly negative values observed prove cancellation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.idle_wave import default_threshold
from repro.core.timing import RunTiming

__all__ = [
    "Wave",
    "find_waves",
    "resync_step",
    "meeting_ranks",
    "superposition_defect",
]


@dataclass(frozen=True)
class Wave:
    """A connected region of above-threshold idleness in the (rank, step) plane."""

    cells: tuple[tuple[int, int], ...]  # (rank, step) pairs
    total_idle: float
    first_step: int
    last_step: int

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(sorted({r for r, _ in self.cells}))

    @property
    def extent(self) -> int:
        """Number of distinct ranks the wave touched."""
        return len(self.ranks)


def find_waves(run, threshold: float | None = None, periodic: bool | None = None) -> list[Wave]:
    """Extract idle waves as connected components of above-threshold cells.

    Two cells are connected when they are within one rank *and* one step of
    each other (8-neighborhood, with rank wraparound on periodic chains) —
    a travelling wave moves at most a few ranks per step, so its footprint
    is connected under this notion.  Returns waves sorted by first step.
    """
    timing = RunTiming.of(run)
    if threshold is None:
        threshold = default_threshold(timing)
    if periodic is None:
        pattern = timing.meta.get("pattern")
        periodic = bool(getattr(pattern, "periodic", False))

    mask = timing.idle > threshold
    n_ranks, n_steps = mask.shape
    seen = np.zeros_like(mask, dtype=bool)
    waves: list[Wave] = []

    for r0 in range(n_ranks):
        for k0 in range(n_steps):
            if not mask[r0, k0] or seen[r0, k0]:
                continue
            # BFS flood fill.
            stack = [(r0, k0)]
            seen[r0, k0] = True
            cells: list[tuple[int, int]] = []
            while stack:
                r, k = stack.pop()
                cells.append((r, k))
                for dr in (-1, 0, 1):
                    for dk in (-1, 0, 1):
                        if dr == 0 and dk == 0:
                            continue
                        rr, kk = r + dr, k + dk
                        if periodic:
                            rr %= n_ranks
                        elif not 0 <= rr < n_ranks:
                            continue
                        if not 0 <= kk < n_steps:
                            continue
                        if mask[rr, kk] and not seen[rr, kk]:
                            seen[rr, kk] = True
                            stack.append((rr, kk))
            steps = [k for _, k in cells]
            waves.append(
                Wave(
                    cells=tuple(sorted(cells)),
                    total_idle=float(sum(timing.idle[r, k] for r, k in cells)),
                    first_step=min(steps),
                    last_step=max(steps),
                )
            )
    waves.sort(key=lambda w: (w.first_step, w.cells))
    return waves


def resync_step(run, threshold: float | None = None) -> int | None:
    """First step index after which no rank idles above threshold.

    After interacting waves have annihilated ("everything is in sync
    again"), the idle matrix goes quiet; this returns that step, or ``None``
    if idleness persists to the end of the run.
    """
    timing = RunTiming.of(run)
    if threshold is None:
        threshold = default_threshold(timing)
    active_steps = np.nonzero((timing.idle > threshold).any(axis=0))[0]
    if active_steps.size == 0:
        return 0
    last = int(active_steps[-1])
    return last + 1 if last + 1 < timing.n_steps else None


def meeting_ranks(run, threshold: float | None = None) -> list[int]:
    """Ranks where idle activity is seen at the latest active step.

    For two symmetric counter-propagating waves on a periodic ring these
    are the ranks where they met and cancelled (rank 14 in Fig. 5(d)).
    """
    timing = RunTiming.of(run)
    if threshold is None:
        threshold = default_threshold(timing)
    mask = timing.idle > threshold
    active_steps = np.nonzero(mask.any(axis=0))[0]
    if active_steps.size == 0:
        return []
    last = int(active_steps[-1])
    return [int(r) for r in np.nonzero(mask[:, last])[0]]


def superposition_defect(combined, singles, baseline=None) -> float:
    """Quantify nonlinearity of wave interaction.

    Parameters
    ----------
    combined:
        Run with all delays injected together.
    singles:
        Runs with each delay injected alone (same seeds/noise).
    baseline:
        Optional run with *no* delays.  When given, the quiet run's idle
        time (regular communication waits) is subtracted from every term,
        so the comparison involves only delay-induced idleness.  Without
        it, the defect carries an offset of roughly ``(len(singles) - 1) ×
        total_idle(baseline)`` — negligible for long waves, visible for
        short ones.

    Returns
    -------
    float
        ``excess_idle(combined) - sum(excess_idle(single_i))`` in
        rank-seconds.  Linear (non-interacting) waves give ~0; cancellation
        gives a negative defect whose magnitude measures how much idleness
        the collisions destroyed.
    """
    base = RunTiming.of(baseline).total_idle() if baseline is not None else 0.0
    total_c = RunTiming.of(combined).total_idle() - base
    total_s = sum(RunTiming.of(s).total_idle() - base for s in singles)
    return float(total_c - total_s)
