"""Wall-clock wave tracking: leading and trailing edges.

Sec. IV-C of the paper distinguishes the *leading* slope of an idle wave
(noise-insensitive) from the *trailing* slope ("strongly influenced" by
noise, because "system noise and past delays ... mainly interact with the
trailing edge").  The :func:`~repro.core.idle_wave.wave_front` analysis
measures arrivals only; this module samples the wave's full spatial
footprint at wall-clock instants — in the geometry of the paper's
rank/time diagrams, where a delay of ``D`` seconds keeps ``~D / (T_exec +
T_comm)`` consecutive ranks idle *simultaneously* — so both edges, the
width, and the idle mass can be followed through time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.idle_wave import default_threshold
from repro.core.timing import RunTiming

__all__ = ["WaveSnapshot", "WaveTrack", "track_wave"]


@dataclass(frozen=True)
class WaveSnapshot:
    """The wave's footprint at one wall-clock instant.

    Hops are distances from the source in the tracked direction (1 = the
    nearest neighbor), which unwraps periodic chains.
    """

    time: float
    hops: tuple[int, ...]  # hop distances currently idling above threshold
    idle_remaining: float  # summed remaining idle seconds over the footprint

    @property
    def width(self) -> int:
        """Number of ranks simultaneously idled by the wave."""
        return len(self.hops)

    @property
    def leading_hop(self) -> int:
        return max(self.hops)

    @property
    def trailing_hop(self) -> int:
        return min(self.hops)


@dataclass(frozen=True)
class WaveTrack:
    """The wave's evolution over the sampled instants where it was visible."""

    source: int
    direction: int
    snapshots: tuple[WaveSnapshot, ...]

    def __len__(self) -> int:
        return len(self.snapshots)

    def times(self) -> np.ndarray:
        return np.array([s.time for s in self.snapshots])

    def leading_positions(self) -> np.ndarray:
        return np.array([s.leading_hop for s in self.snapshots])

    def trailing_positions(self) -> np.ndarray:
        return np.array([s.trailing_hop for s in self.snapshots])

    def widths(self) -> np.ndarray:
        return np.array([s.width for s in self.snapshots])

    def idle_masses(self) -> np.ndarray:
        return np.array([s.idle_remaining for s in self.snapshots])

    def edge_speeds(self) -> tuple[float, float]:
        """(leading, trailing) edge speeds in ranks/s (least-squares fits).

        Fitted over the steady growth window — after the birth transient
        (the trailing edge sits at hop 1 while the source absorbs the
        delay) and before the leading edge saturates (chain end or ring
        antipode).  On a noise-free system both equal Eq. 2's ``v_silent``
        — the wave translates rigidly.  Under noise the trailing edge moves
        *faster* than the leading edge: the wave shrinks from behind,
        exactly the paper's erosion mechanism.
        """
        if len(self.snapshots) < 3:
            raise ValueError("need at least three visible snapshots to fit edge speeds")
        t = self.times()

        def fit(pos: np.ndarray) -> float:
            # Each edge gets its own motion window: from its departure (the
            # trailing edge sits at hop 1 until the source's delay has
            # drained there) to its saturation (chain end / ring antipode).
            moving = np.nonzero(pos > pos[0])[0]
            i0 = int(moving[0]) if moving.size else 0
            saturated = np.nonzero(pos == pos.max())[0]
            i1 = int(saturated[0]) + 1 if saturated.size else len(pos)
            if i1 - i0 < 3:
                i0, i1 = 0, len(pos)  # degenerate track: fit everything
            return float(np.polyfit(t[i0:i1], pos[i0:i1], 1)[0])

        return fit(self.leading_positions()), fit(self.trailing_positions())


def track_wave(
    run,
    source: int,
    direction: int = +1,
    threshold: float | None = None,
    periodic: bool | None = None,
    n_samples: int = 120,
) -> WaveTrack:
    """Sample the idle wave's wall-clock footprint on one side of the source.

    At each sampled instant, a hop belongs to the footprint when its rank
    is inside an above-threshold wait interval.  On periodic chains only
    hops up to the antipode are followed (the branch moving in the
    requested direction).  Sampling covers the whole run; empty snapshots
    before the wave's birth and after its death are dropped.
    """
    if direction not in (+1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    if n_samples < 2:
        raise ValueError(f"n_samples must be >= 2, got {n_samples}")
    timing = RunTiming.of(run)
    if not 0 <= source < timing.n_ranks:
        raise IndexError(f"source rank {source} out of range [0, {timing.n_ranks})")
    if threshold is None:
        threshold = default_threshold(timing)
    if periodic is None:
        pattern = timing.meta.get("pattern")
        periodic = bool(getattr(pattern, "periodic", False))

    max_hops = timing.n_ranks // 2 if periodic else (
        timing.n_ranks - 1 - source if direction > 0 else source
    )
    wait_start = timing.wait_start()
    completion = timing.completion
    idle = timing.idle

    # Collect each tracked rank's above-threshold wait intervals once.
    intervals: list[tuple[int, np.ndarray, np.ndarray]] = []  # (hop, starts, ends)
    for hop in range(1, max_hops + 1):
        rank = (source + direction * hop) % timing.n_ranks if periodic else (
            source + direction * hop
        )
        mask = idle[rank] > threshold
        if mask.any():
            intervals.append((hop, wait_start[rank][mask], completion[rank][mask]))

    total = timing.total_runtime()
    sample_times = np.linspace(0.0, total, n_samples)
    snapshots: list[WaveSnapshot] = []
    for t in sample_times:
        hops_here: list[int] = []
        remaining = 0.0
        for hop, starts, ends in intervals:
            inside = (starts <= t) & (t < ends)
            if inside.any():
                hops_here.append(hop)
                remaining += float((ends[inside] - t).sum())
        if hops_here:
            snapshots.append(
                WaveSnapshot(time=float(t), hops=tuple(hops_here),
                             idle_remaining=remaining)
            )
    return WaveTrack(source=source, direction=direction, snapshots=tuple(snapshots))
