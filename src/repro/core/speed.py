"""Idle-wave propagation speed: analytic model (Eq. 2) and measurement.

The paper's central quantitative result for the noise-free system is

.. math::

    v_{silent} = \\frac{\\sigma \\cdot d}{T_{exec} + T_{comm}}
    \\qquad \\left[\\frac{ranks}{s}\\right],

with :math:`\\sigma = 2` for *bidirectional rendezvous* communication and
:math:`\\sigma = 1` for every other mode, and ``d`` the largest distance to
any communication partner.  :func:`silent_speed` implements the model;
:func:`measure_speed` extracts the empirical speed from a run by fitting the
wave front's arrival times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.idle_wave import WaveFront, default_threshold, wave_front
from repro.core.timing import RunTiming
from repro.sim.mpi import Protocol
from repro.sim.program import CommPattern, Direction

__all__ = ["SpeedMeasurement", "silent_speed", "silent_speed_for", "measure_speed", "sigma_factor"]


def sigma_factor(bidirectional: bool, rendezvous: bool) -> int:
    """The paper's σ: 2 for bidirectional rendezvous, 1 otherwise.

    Two neighbors of the delayed process are blocked in either direction
    only when the protocol synchronizes both ways (Fig. 5(g,h)).
    """
    return 2 if (bidirectional and rendezvous) else 1


def silent_speed(
    t_exec: float,
    t_comm: float,
    d: int = 1,
    bidirectional: bool = False,
    rendezvous: bool = False,
) -> float:
    """Eq. 2: idle-wave speed in ranks/second on a noise-free system.

    Parameters
    ----------
    t_exec:
        Execution-phase duration in seconds.
    t_comm:
        Communication time per phase in seconds.  Per the paper, its
        composition (latency, overhead, transfer) is irrelevant — it enters
        on an equal footing with ``t_exec``.
    d:
        Neighbor-communication distance (largest partner offset).
    bidirectional / rendezvous:
        Communication mode; together they determine σ.
    """
    if t_exec <= 0:
        raise ValueError(f"t_exec must be > 0, got {t_exec}")
    if t_comm < 0:
        raise ValueError(f"t_comm must be >= 0, got {t_comm}")
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    return sigma_factor(bidirectional, rendezvous) * d / (t_exec + t_comm)


def silent_speed_for(
    pattern: CommPattern,
    protocol: Protocol,
    t_exec: float,
    t_comm: float,
) -> float:
    """Eq. 2 evaluated for a concrete pattern/protocol combination."""
    if protocol == Protocol.AUTO:
        raise ValueError("resolve the protocol (eager/rendezvous) before computing the speed")
    return silent_speed(
        t_exec,
        t_comm,
        d=pattern.distance,
        bidirectional=pattern.direction == Direction.BIDIRECTIONAL,
        rendezvous=protocol == Protocol.RENDEZVOUS,
    )


@dataclass(frozen=True)
class SpeedMeasurement:
    """Empirical propagation speed of one idle wave.

    Attributes
    ----------
    speed:
        Fitted speed in ranks/second (always positive; direction is
        recorded separately).
    direction:
        +1 (towards higher ranks) or -1.
    front:
        The underlying :class:`~repro.core.idle_wave.WaveFront`.
    residual:
        RMS deviation of arrival times from the linear fit, in seconds —
        small residuals mean cleanly constant speed.
    """

    speed: float
    direction: int
    front: WaveFront
    residual: float

    @property
    def hops(self) -> int:
        return self.front.reach


def measure_speed(
    run,
    source: int,
    direction: int = +1,
    threshold: float | None = None,
    periodic: bool | None = None,
    min_hops: int = 2,
    max_hops: int | None = None,
) -> SpeedMeasurement:
    """Fit the leading-edge speed of the idle wave emanating from ``source``.

    A straight line is fitted to (arrival time, hop distance); the slope is
    the speed in ranks/second.  The leading slope is the quantity the paper
    finds insensitive to noise (Sec. IV-C).

    Raises
    ------
    ValueError
        If the wave is detected on fewer than ``min_hops`` ranks (no
        propagation to measure).
    """
    timing = RunTiming.of(run)
    if threshold is None:
        threshold = default_threshold(timing)
    front = wave_front(
        run, source, direction=direction, threshold=threshold, periodic=periodic,
        max_hops=max_hops,
    )
    if len(front) < min_hops:
        raise ValueError(
            f"idle wave from rank {source} (direction {direction:+d}) reached only "
            f"{len(front)} ranks above threshold {threshold:.3g}s; need {min_hops}"
        )
    t = front.arrival_times
    h = front.hops.astype(float)
    # With d > 1 (or σ = 2) the front advances in groups of ranks released
    # by the same bulk-synchronous step; group members arrive essentially
    # simultaneously, and a group truncated by the chain boundary would
    # bias a naive per-rank regression.  We collapse each arrival *step* to
    # its leading hop before fitting — leaders always exist, so truncation
    # is harmless.  (With d = 1 there is one hop per step and this reduces
    # to the plain per-hop fit.)
    steps = front.arrival_steps
    group_t: list[float] = []
    group_h: list[float] = []
    last_step = None
    for ti, hi, ki in zip(t, h, steps):
        if last_step is not None and ki == last_step:
            continue  # keep the group's first (smallest) hop
        group_t.append(float(ti))
        group_h.append(float(hi))
        last_step = int(ki)
    if len(group_t) >= min_hops:
        t = np.asarray(group_t)
        h = np.asarray(group_h)
    # Fit hops(t): slope = ranks per second.
    slope, intercept = np.polyfit(t, h, 1)
    fitted = slope * t + intercept
    residual = float(np.sqrt(np.mean((fitted - h) ** 2))) / abs(slope) if slope != 0 else np.inf
    if slope <= 0:
        raise ValueError(
            f"non-positive fitted speed {slope:.3g} ranks/s — arrivals are not "
            "monotonically ordered; check threshold and source"
        )
    return SpeedMeasurement(
        speed=float(slope),
        direction=direction,
        front=front,
        residual=residual,
    )
