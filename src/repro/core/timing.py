"""Unified timing view over traces and fast-engine results.

Every analysis in :mod:`repro.core` consumes three dense matrices
(``exec_end``, ``completion``, ``idle``); this module adapts both the DAG
engine's :class:`~repro.sim.trace.Trace` and the fast engines'
:class:`~repro.sim.lockstep.LockstepResult` to that common shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.engine import DagResult
from repro.sim.lockstep import LockstepResult
from repro.sim.trace import Trace

__all__ = ["RunTiming"]


@dataclass
class RunTiming:
    """Dense per-(rank, step) timing of one simulated run.

    Attributes
    ----------
    exec_end:
        Wall-clock end of each execution phase, ``[n_ranks, n_steps]``.
    completion:
        Wall-clock end of each step's Waitall.
    idle:
        Seconds spent inside each step's Waitall (the red bars of the
        paper's timeline figures).
    meta:
        Propagated run metadata (t_exec, pattern, protocol, ...).
    """

    exec_end: np.ndarray
    completion: np.ndarray
    idle: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.exec_end.shape != self.completion.shape or self.exec_end.shape != self.idle.shape:
            raise ValueError(
                f"matrix shapes differ: exec_end {self.exec_end.shape}, "
                f"completion {self.completion.shape}, idle {self.idle.shape}"
            )
        if self.exec_end.ndim != 2:
            raise ValueError(f"expected 2-D matrices, got {self.exec_end.ndim}-D")

    @property
    def n_ranks(self) -> int:
        return self.exec_end.shape[0]

    @property
    def n_steps(self) -> int:
        return self.exec_end.shape[1]

    @property
    def t_exec(self) -> float | None:
        """Nominal execution-phase length, if the run recorded it."""
        return self.meta.get("t_exec")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace) -> "RunTiming":
        completion = trace.completion_matrix()
        idle = trace.idle_matrix()
        return cls(
            exec_end=trace.exec_end_matrix(),
            completion=completion,
            idle=idle,
            meta=dict(trace.meta),
        )

    @classmethod
    def from_lockstep(cls, result: LockstepResult) -> "RunTiming":
        return cls(
            exec_end=result.exec_end.copy(),
            completion=result.completion.copy(),
            idle=result.idle_matrix(),
            meta=dict(result.meta),
        )

    @classmethod
    def from_dag(cls, result: DagResult) -> "RunTiming":
        """Adopt a columnar DAG-engine result — no trace records involved.

        Bitwise identical to ``from_trace(simulate(...))`` for the same
        program: the dense matrices are extracted straight from the
        propagated node times.
        """
        return cls(
            exec_end=result.exec_end.copy(),
            completion=result.completion.copy(),
            idle=result.idle.copy(),
            meta=dict(result.meta),
        )

    @classmethod
    def of(cls, run: "Trace | LockstepResult | DagResult | RunTiming") -> "RunTiming":
        """Coerce any supported run representation to a :class:`RunTiming`."""
        if isinstance(run, RunTiming):
            return run
        if isinstance(run, Trace):
            return cls.from_trace(run)
        if isinstance(run, LockstepResult):
            return cls.from_lockstep(run)
        if isinstance(run, DagResult):
            return cls.from_dag(run)
        raise TypeError(f"cannot derive timing from {type(run).__name__}")

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def total_runtime(self) -> float:
        """Wall-clock completion time of the whole run."""
        return float(np.nanmax(self.completion))

    def wait_start(self) -> np.ndarray:
        """``[rank, step]`` time each rank entered its Waitall."""
        return self.completion - self.idle

    def total_idle(self) -> float:
        """Sum of all wait durations (rank-seconds of idleness)."""
        return float(np.nansum(self.idle))

    def idle_by_step(self) -> np.ndarray:
        """Per-step sum of idle time across ranks."""
        return np.nansum(self.idle, axis=0)

    def idle_by_rank(self) -> np.ndarray:
        """Per-rank sum of idle time across steps."""
        return np.nansum(self.idle, axis=1)
