"""Idle-wave decay under noise (Sec. V-A, Fig. 8).

Fine-grained noise erodes the *trailing* edge of an idle wave: on each hop,
part of the idle period is "swallowed" by the accumulated noise delays of
the ranks it passes.  The paper quantifies this with the **average decay
rate** β̄ in µs/rank — how much idle duration the wave loses per rank
travelled — and finds a clear positive correlation between β̄ and the noise
level ``E`` (mean relative delay per execution period).

This module measures β̄ from a run and provides the multi-run statistics
(median/min/max over seeds) the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.idle_wave import default_threshold, wave_front
from repro.core.timing import RunTiming

__all__ = ["DecayMeasurement", "measure_decay", "decay_statistics"]


@dataclass(frozen=True)
class DecayMeasurement:
    """Decay of one idle wave along its propagation path.

    Attributes
    ----------
    beta:
        Average decay rate in **seconds/rank**: amplitude lost per hop,
        averaged over the wave's survival distance.  (Multiply by 1e6 for
        the paper's µs/rank.)
    slope_beta:
        Decay rate from a least-squares fit of amplitude vs. hop — more
        robust to non-monotonic noise wiggles than the endpoint estimate.
    initial_amplitude:
        Idle duration at the first hop (seconds).
    survival_hops:
        Number of ranks the wave reached before dropping below threshold.
    amplitudes:
        Idle duration at each hop (seconds).
    """

    beta: float
    slope_beta: float
    initial_amplitude: float
    survival_hops: int
    amplitudes: np.ndarray


def measure_decay(
    run,
    source: int,
    direction: int = +1,
    threshold: float | None = None,
    periodic: bool | None = None,
) -> DecayMeasurement:
    """Measure the decay rate of the idle wave emanating from ``source``.

    The wave's amplitude at each hop is its idle duration on that rank
    (leading-edge arrival period).  The endpoint estimator

    ``beta = (A_first - A_last) / (hops - 1)``

    matches the paper's "average decay rate"; the least-squares slope over
    all hops is reported alongside.  On a noise-free system both are ~0
    (the wave propagates without decay until it runs out or cancels).

    Raises
    ------
    ValueError
        If the wave is not detected on at least one rank.
    """
    timing = RunTiming.of(run)
    if threshold is None:
        threshold = default_threshold(timing)
    front = wave_front(run, source, direction=direction, threshold=threshold, periodic=periodic)
    if len(front) == 0:
        raise ValueError(
            f"no idle wave detected from rank {source} above threshold {threshold:.3g}s"
        )
    amps = front.amplitudes
    if len(amps) == 1:
        # Wave died after a single hop: it lost its whole amplitude in one
        # further hop (the next rank shows nothing above threshold).
        beta = float(amps[0])
        slope_beta = float(amps[0])
    else:
        beta = float((amps[0] - amps[-1]) / (len(amps) - 1))
        slope = np.polyfit(front.hops.astype(float), amps, 1)[0]
        slope_beta = float(-slope)
    return DecayMeasurement(
        beta=beta,
        slope_beta=slope_beta,
        initial_amplitude=float(amps[0]),
        survival_hops=int(front.reach),
        amplitudes=amps,
    )


@dataclass(frozen=True)
class DecayStatistics:
    """Median/min/max decay rate over repeated runs (Fig. 8 error bars)."""

    median: float
    minimum: float
    maximum: float
    samples: tuple[float, ...]

    @property
    def n_runs(self) -> int:
        return len(self.samples)


def decay_statistics(betas: "list[float] | np.ndarray") -> DecayStatistics:
    """Summarize per-run decay rates the way Fig. 8 reports them."""
    arr = np.asarray(list(betas), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one decay-rate sample")
    return DecayStatistics(
        median=float(np.median(arr)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        samples=tuple(float(x) for x in arr),
    )
