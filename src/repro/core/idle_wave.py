"""Idle-period and idle-wave detection.

An *idle wave* (Sec. IV) is the travelling disturbance seeded by a one-off
delay: each rank in turn spends a long time in ``MPI_Waitall`` because its
neighbor's message is late.  This module turns the dense idle matrix of a
run into structured objects:

- :func:`idle_periods` — all (rank, step) wait intervals above a threshold,
- :func:`wave_front` — per-rank arrival time/step of the wave's leading
  edge, measured outward from the injection rank,
- :func:`default_threshold` — a sensible cut separating genuine wave idle
  time from background communication/noise jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.timing import RunTiming

__all__ = ["IdlePeriod", "WaveFront", "default_threshold", "idle_periods", "wave_front"]


@dataclass(frozen=True)
class IdlePeriod:
    """One above-threshold wait interval on one rank at one step."""

    rank: int
    step: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class WaveFront:
    """The leading edge of an idle wave, indexed by hop distance.

    Attributes
    ----------
    source:
        Rank where the delay was injected.
    hops:
        Hop distances (1, 2, ...) at which the wave was detected,
        in increasing order, contiguous from 1.
    ranks:
        The rank at each hop (depends on direction and periodicity).
    arrival_times:
        Wall-clock start of the wave's idle period at each hop.
    arrival_steps:
        Bulk-synchronous step index of the arrival at each hop.
    amplitudes:
        Idle duration (seconds) of the wave at each hop — the quantity
        whose per-hop decrease is the decay rate of Sec. V.
    """

    source: int
    hops: np.ndarray
    ranks: np.ndarray
    arrival_times: np.ndarray
    arrival_steps: np.ndarray
    amplitudes: np.ndarray

    def __len__(self) -> int:
        return len(self.hops)

    @property
    def reach(self) -> int:
        """Number of hops the wave survived."""
        return int(self.hops[-1]) if len(self.hops) else 0


def default_threshold(timing: RunTiming, factor: float = 0.5) -> float:
    """Idle-duration cut separating wave idleness from background jitter.

    Two regimes are combined:

    - ``factor * t_exec`` when the run records its nominal phase length (a
      wave by construction idles for a sizable fraction of a phase), with a
      fallback of ``10 x`` the median positive idle time;
    - for runs dominated by a *large* idle wave (max idle >> phase length,
      e.g. the 90 ms delays of Fig. 8), the cut additionally scales with
      the wave amplitude (5 % of the maximum idle), so that exponential
      noise excursions above the phase-based cut cannot masquerade as the
      wave front.
    """
    t_exec = timing.t_exec
    if t_exec:
        base = factor * float(t_exec)
    else:
        positive = timing.idle[timing.idle > 0]
        if positive.size == 0:
            return 0.0
        base = 10.0 * float(np.median(positive))
    if timing.idle.size == 0:
        return base
    # Three competing demands, combined as a max:
    # - `base`: a wave idles for a sizable fraction of a phase;
    # - 5 % of the dominant amplitude: for very long delays (e.g. the 90 ms
    #   waves of Fig. 8) exponential-noise excursions can exceed `base`, so
    #   the cut must scale with the wave;
    # - twice the 90th idle percentile: regular communication waits (long
    #   message flights, pipeline-fill transients) put a floor under many
    #   cells that can exceed `base`.  Clipped to a quarter of the dominant
    #   amplitude so that wide waves (> 10 % of cells) cannot push the cut
    #   above themselves.
    max_idle = float(np.nanmax(timing.idle))
    p90 = float(np.nanpercentile(timing.idle, 90))
    background_term = min(2.0 * p90, 0.25 * max_idle)
    return max(base, 0.05 * max_idle, background_term)


def idle_periods(run, threshold: float | None = None) -> list[IdlePeriod]:
    """All wait intervals with duration above ``threshold``, sorted by start.

    Parameters
    ----------
    run:
        A ``Trace``, ``LockstepResult`` or ``RunTiming``.
    threshold:
        Minimum duration in seconds; defaults to :func:`default_threshold`.
    """
    timing = RunTiming.of(run)
    if threshold is None:
        threshold = default_threshold(timing)
    starts = timing.wait_start()
    out: list[IdlePeriod] = []
    ranks, steps = np.nonzero(timing.idle > threshold)
    for r, k in zip(ranks.tolist(), steps.tolist()):
        out.append(
            IdlePeriod(rank=r, step=k, start=float(starts[r, k]), end=float(timing.completion[r, k]))
        )
    out.sort(key=lambda p: (p.start, p.rank))
    return out


def _hop_rank(source: int, hop: int, direction: int, n_ranks: int, periodic: bool) -> int | None:
    """Rank at ``hop`` steps from ``source`` in ``direction`` (+1 = up)."""
    r = source + direction * hop
    if periodic:
        return r % n_ranks
    return r if 0 <= r < n_ranks else None


def wave_front(
    run,
    source: int,
    direction: int = +1,
    threshold: float | None = None,
    periodic: bool | None = None,
    max_hops: int | None = None,
) -> WaveFront:
    """Trace the leading edge of the idle wave emanating from ``source``.

    Walks outward rank by rank in ``direction`` (+1 towards higher ranks,
    -1 towards lower).  At each hop the wave's *arrival* is the first
    above-threshold idle period on that rank; the walk stops at the first
    rank showing no such period (the wave has decayed or run out) or after
    one full traversal on a periodic chain.

    Parameters
    ----------
    run:
        A ``Trace``, ``LockstepResult`` or ``RunTiming``.
    source:
        Injection rank (hop 0; not itself part of the front).
    direction:
        +1 or -1 along the rank chain.
    threshold:
        Idle-duration cut; defaults to :func:`default_threshold`.
    periodic:
        Whether the chain wraps around.  Read from the run's communication
        pattern metadata when available, else False.
    max_hops:
        Stop after this many hops even if the wave continues.
    """
    if direction not in (+1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    timing = RunTiming.of(run)
    if not 0 <= source < timing.n_ranks:
        raise IndexError(f"source rank {source} out of range [0, {timing.n_ranks})")
    if threshold is None:
        threshold = default_threshold(timing)
    if periodic is None:
        pattern = timing.meta.get("pattern")
        periodic = bool(getattr(pattern, "periodic", False))

    starts = timing.wait_start()
    limit = timing.n_ranks - 1 if periodic else timing.n_ranks
    if max_hops is not None:
        limit = min(limit, max_hops)

    hops: list[int] = []
    ranks: list[int] = []
    times: list[float] = []
    steps: list[int] = []
    amps: list[float] = []

    prev_arrival_step = -1
    for hop in range(1, limit + 1):
        rank = _hop_rank(source, hop, direction, timing.n_ranks, periodic)
        if rank is None:
            break
        # Arrival: first above-threshold idle at/after the previous arrival
        # step (the front cannot move backwards in step index).
        row = timing.idle[rank]
        candidates = np.nonzero(row > threshold)[0]
        candidates = candidates[candidates >= prev_arrival_step]
        if candidates.size == 0:
            break
        k = int(candidates[0])
        hops.append(hop)
        ranks.append(rank)
        times.append(float(starts[rank, k]))
        steps.append(k)
        amps.append(float(row[k]))
        prev_arrival_step = k

    return WaveFront(
        source=source,
        hops=np.asarray(hops, dtype=int),
        ranks=np.asarray(ranks, dtype=int),
        arrival_times=np.asarray(times, dtype=float),
        arrival_steps=np.asarray(steps, dtype=int),
        amplitudes=np.asarray(amps, dtype=float),
    )
