"""Machine specifications: everything the experiments need about a cluster.

A :class:`MachineSpec` bundles the topology shape, network characteristics,
memory-bandwidth figures, CPU microarchitectural constants (for the divide
workload), and the calibrated *natural noise* models (Fig. 3) of one
cluster.  The two presets in :mod:`repro.cluster.presets` describe the
paper's systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sim.network import NetworkModel
from repro.sim.noise import NoiseModel
from repro.sim.topology import MachineTopology, ProcessMapping

__all__ = ["CpuSpec", "MachineSpec"]


@dataclass(frozen=True)
class CpuSpec:
    """Microarchitectural constants of one CPU model.

    Parameters
    ----------
    name:
        Marketing/microarchitecture name.
    clock_hz:
        Fixed core clock (the paper pins 2.2 GHz on both systems).
    vdivpd_cycles:
        Reciprocal throughput of the AVX ``vdivpd`` instruction in clock
        cycles (28 on Ivy Bridge, 16 on Broadwell — Sec. III-B), the basis
        of the compute-bound divide workload.
    flops_per_cycle:
        Double-precision flops per cycle per core at peak.
    """

    name: str
    clock_hz: float = 2.2e9
    vdivpd_cycles: int = 28
    flops_per_cycle: int = 8

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError(f"clock_hz must be > 0, got {self.clock_hz}")
        if self.vdivpd_cycles < 1:
            raise ValueError(f"vdivpd_cycles must be >= 1, got {self.vdivpd_cycles}")
        if self.flops_per_cycle < 1:
            raise ValueError(f"flops_per_cycle must be >= 1, got {self.flops_per_cycle}")

    @property
    def peak_flops(self) -> float:
        """Single-core peak in flop/s."""
        return self.clock_hz * self.flops_per_cycle


@dataclass(frozen=True)
class MachineSpec:
    """A complete cluster description.

    Parameters
    ----------
    name:
        Cluster name ("Emmy", "Meggie", ...).
    topology:
        Node/socket/core shape.
    network:
        Transfer-time model with per-domain parameters.
    cpu:
        CPU constants.
    b_core:
        Single-core sustainable memory bandwidth (bytes/s).
    b_socket:
        Saturated per-socket memory bandwidth (bytes/s).
    natural_noise:
        Calibrated model of the system's own fine-grained noise in the
        *operational* SMT configuration (Fig. 3; SMT on for Emmy, off for
        Meggie).
    noise_smt_on / noise_smt_off:
        Noise models for both SMT configurations, for the Fig. 3 scan.
    interconnect:
        Human-readable fabric name.
    """

    name: str
    topology: MachineTopology
    network: NetworkModel
    cpu: CpuSpec
    b_core: float
    b_socket: float
    natural_noise: NoiseModel
    noise_smt_on: NoiseModel | None = None
    noise_smt_off: NoiseModel | None = None
    interconnect: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.b_core <= 0 or self.b_socket <= 0:
            raise ValueError("b_core and b_socket must be > 0")
        if self.b_core > self.b_socket:
            raise ValueError(
                f"b_core ({self.b_core}) cannot exceed b_socket ({self.b_socket})"
            )

    # ------------------------------------------------------------------
    def mapping(self, n_ranks: int, ppn: int | None = None) -> ProcessMapping:
        """Place ``n_ranks`` ranks on this machine (compact, block-wise).

        ``ppn`` defaults to all physical cores per node, matching the
        paper's fully-populated runs; pass ``ppn=1`` for the one-process-
        per-node configurations of Figs. 4, 5 and 7.
        """
        return ProcessMapping(
            topology=self.topology,
            n_ranks=n_ranks,
            ppn=ppn if ppn is not None else self.topology.cores_per_node,
        )

    def with_nodes(self, n_nodes: int) -> "MachineSpec":
        """A copy of this spec restricted/extended to ``n_nodes`` nodes."""
        return replace(self, topology=replace(self.topology, n_nodes=n_nodes))

    def saturation_cores(self) -> int:
        """Cores per socket needed to saturate the memory interface."""
        cores = 1
        while cores * self.b_core < self.b_socket:
            cores += 1
        return cores

    def divide_phase_elements(self, t_exec: float) -> int:
        """Number of ``vdivpd`` instructions for a phase of ``t_exec`` seconds.

        The compute-bound workload of Sec. III-B: back-to-back dependent
        divides with an exactly known throughput, so the pure execution
        time is known and any excess is noise.
        """
        if t_exec <= 0:
            raise ValueError(f"t_exec must be > 0, got {t_exec}")
        per_instr = self.cpu.vdivpd_cycles / self.cpu.clock_hz
        return max(1, round(t_exec / per_instr))
