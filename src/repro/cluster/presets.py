"""Calibrated presets for the paper's two clusters.

**Emmy** (RRZE): 560 dual-socket nodes, 10-core Intel Xeon E5-2660v2
"Ivy Bridge" @ 2.2 GHz, QDR InfiniBand fat-tree (40 Gbit/s/link/direction).
Operated with SMT *enabled*; natural noise is unimodal with a mean of
~2.4 µs per 3 ms phase and maxima below 30 µs (Fig. 3a).

**Meggie** (RRZE): 724 dual-socket nodes, 10-core Intel Xeon E5-2630v4
"Broadwell" @ 2.2 GHz, Omni-Path fat-tree (100 Gbit/s/link/direction).
Operated with SMT *disabled*; in that configuration the noise is bimodal
with a second peak near 660 µs, attributed to the CPU-intensive Omni-Path
driver (Fig. 3b).

Noise calibration notes: the histograms in Fig. 3 are means over 3.3·10⁵
samples of the deviation of a 3 ms compute phase from its ideal duration.
We model the fine-grained component as an exponential (matching the paper's
choice of exponential *injected* noise "to mimic the natural noise
distribution") and add the Meggie-SMT-off driver mode as a rare Gaussian
spike.  SMT damps noise (León et al. 2016), which we reflect with a smaller
mean in the SMT-on models.
"""

from __future__ import annotations

from repro.cluster.machine import CpuSpec, MachineSpec
from repro.sim.network import HockneyModel
from repro.sim.noise import BimodalNoise, ExponentialNoise
from repro.sim.topology import CommDomain, MachineTopology

__all__ = ["EMMY", "MEGGIE", "SIMULATED", "get_machine", "noise_for_smt", "MACHINES"]


def _emmy() -> MachineSpec:
    noise_smt_on = ExponentialNoise(mean_delay=2.4e-6)
    noise_smt_off = ExponentialNoise(mean_delay=4.0e-6)
    return MachineSpec(
        name="Emmy",
        topology=MachineTopology(
            cores_per_socket=10, sockets_per_node=2, n_nodes=560, smt=2
        ),
        network=HockneyModel(
            latency={
                CommDomain.INTRA_SOCKET: 3e-7,
                CommDomain.INTER_SOCKET: 6e-7,
                CommDomain.INTER_NODE: 1.6e-6,  # QDR IB
            },
            bandwidth={
                CommDomain.INTRA_SOCKET: 8e9,
                CommDomain.INTER_SOCKET: 5e9,
                CommDomain.INTER_NODE: 3.0e9,  # asymptotic node-to-node (paper)
            },
            overhead=5e-7,
        ),
        cpu=CpuSpec(name="Ivy Bridge E5-2660v2", clock_hz=2.2e9, vdivpd_cycles=28),
        b_core=6.5e9,
        b_socket=40e9,  # paper: b_mem ≈ 40 GB/s per socket
        natural_noise=noise_smt_on,  # official configuration: SMT enabled
        noise_smt_on=noise_smt_on,
        noise_smt_off=noise_smt_off,
        interconnect="QDR InfiniBand (40 Gbit/s)",
        meta={"site": "RRZE", "figure3_mean_us": 2.4},
    )


def _meggie() -> MachineSpec:
    noise_smt_on = ExponentialNoise(mean_delay=2.8e-6)
    noise_smt_off = BimodalNoise(
        base=ExponentialNoise(mean_delay=2.8e-6),
        spike_delay=660e-6,  # Omni-Path driver mode (Fig. 3b)
        spike_probability=0.008,
        spike_jitter=0.08,
    )
    return MachineSpec(
        name="Meggie",
        topology=MachineTopology(
            cores_per_socket=10, sockets_per_node=2, n_nodes=724, smt=2
        ),
        network=HockneyModel(
            latency={
                CommDomain.INTRA_SOCKET: 3e-7,
                CommDomain.INTER_SOCKET: 6e-7,
                CommDomain.INTER_NODE: 1.1e-6,  # Omni-Path
            },
            bandwidth={
                CommDomain.INTRA_SOCKET: 9e9,
                CommDomain.INTER_SOCKET: 6e9,
                CommDomain.INTER_NODE: 10e9,  # 100 Gbit/s OPA, ~80% efficiency
            },
            overhead=6e-7,  # OPA's onload design costs more CPU
        ),
        cpu=CpuSpec(name="Broadwell E5-2630v4", clock_hz=2.2e9, vdivpd_cycles=16),
        b_core=7.0e9,
        b_socket=55e9,
        natural_noise=noise_smt_off,  # official configuration: SMT disabled
        noise_smt_on=noise_smt_on,
        noise_smt_off=noise_smt_off,
        interconnect="Omni-Path (100 Gbit/s)",
        meta={"site": "RRZE", "figure3_mean_us": 2.8, "figure3_second_peak_us": 660},
    )


def _simulated() -> MachineSpec:
    """The noise-free "Simulated system" of Fig. 8 (modified LogGOPSim).

    A flat, perfectly homogeneous machine with Hockney communication and
    zero natural noise — only deliberately injected noise acts.
    """
    from repro.sim.noise import NoNoise

    return MachineSpec(
        name="Simulated",
        topology=MachineTopology(
            cores_per_socket=10, sockets_per_node=2, n_nodes=64, smt=1
        ),
        network=HockneyModel(
            latency={
                CommDomain.INTRA_SOCKET: 1.5e-6,
                CommDomain.INTER_SOCKET: 1.5e-6,
                CommDomain.INTER_NODE: 1.5e-6,
            },
            bandwidth={
                CommDomain.INTRA_SOCKET: 3e9,
                CommDomain.INTER_SOCKET: 3e9,
                CommDomain.INTER_NODE: 3e9,
            },
            overhead=5e-7,
        ),
        cpu=CpuSpec(name="ideal", clock_hz=2.2e9, vdivpd_cycles=28),
        b_core=6.5e9,
        b_socket=40e9,
        natural_noise=NoNoise(),
        noise_smt_on=NoNoise(),
        noise_smt_off=NoNoise(),
        interconnect="Hockney model (LogGOPSim-style)",
        meta={"role": "reference simulator"},
    )


EMMY: MachineSpec = _emmy()
MEGGIE: MachineSpec = _meggie()
SIMULATED: MachineSpec = _simulated()

MACHINES: dict[str, MachineSpec] = {
    "emmy": EMMY,
    "meggie": MEGGIE,
    "simulated": SIMULATED,
}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine preset by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        return MACHINES[key]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(MACHINES)}"
        ) from None


def noise_for_smt(machine: MachineSpec, smt: "str | None" = None):
    """The machine's calibrated natural-noise model for an SMT setting.

    ``smt`` is ``"on"``, ``"off"``, or ``None`` for the machine's
    operational configuration (SMT on for Emmy, off for Meggie — the
    setups behind Fig. 3).  Raises :class:`KeyError` for other values and
    :class:`ValueError` when the machine has no calibration for the
    requested setting.
    """
    if smt is None:
        return machine.natural_noise
    key = smt.strip().lower()
    if key not in ("on", "off"):
        raise KeyError(f"smt must be 'on', 'off', or None, got {smt!r}")
    model = machine.noise_smt_on if key == "on" else machine.noise_smt_off
    if model is None:
        raise ValueError(
            f"machine {machine.name!r} has no SMT-{key} noise calibration"
        )
    return model
