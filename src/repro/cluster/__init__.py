"""Cluster descriptions: the paper's testbeds as calibrated machine specs."""

from repro.cluster.machine import CpuSpec, MachineSpec
from repro.cluster.presets import (
    EMMY,
    MACHINES,
    MEGGIE,
    SIMULATED,
    get_machine,
    noise_for_smt,
)

__all__ = [
    "CpuSpec",
    "EMMY",
    "MACHINES",
    "MEGGIE",
    "MachineSpec",
    "SIMULATED",
    "get_machine",
    "noise_for_smt",
]
