"""``repro-experiment perf`` subcommands: the cross-run history surface.

::

    repro-experiment perf record --cache-dir DIR --run latest
    repro-experiment perf record --cache-dir DIR --telemetry run.jsonl
    repro-experiment perf record --history H.jsonl --bench BENCH_x.json
    repro-experiment perf history --cache-dir DIR [--label L] [-n N]
    repro-experiment perf diff --cache-dir DIR --label L [OLD NEW]
    repro-experiment perf check --cache-dir DIR [--threshold 0.30]

``record`` ingests one or more observation products (run-ledger runs,
telemetry JSONL, ``BENCH_*.json``) into the append-only history;
``history`` lists it; ``diff`` compares two entries of one label;
``check`` runs the EWMA trend analysis and exits 1 when any directional
metric regressed past the threshold — the CI gate against slow drift.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .history import (
    PerfHistory,
    metrics_from_bench,
    metrics_from_run_record,
    metrics_from_telemetry,
    new_record,
)
from .trend import analyze_history

__all__ = ["perf_main", "build_perf_parser", "PerfError"]


class PerfError(Exception):
    """User-facing failure (bad paths, empty history) — no traceback."""


def build_perf_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment perf",
        description="Record and trend performance metrics across runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_history_args(p) -> None:
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache dir; history lives in DIR/perf/")
        p.add_argument("--history", default=None, metavar="FILE",
                       help="explicit history JSONL (overrides --cache-dir)")

    p_rec = sub.add_parser("record", help="ingest observations into history")
    add_history_args(p_rec)
    p_rec.add_argument("--run", default=None, metavar="ID",
                       help="run-ledger id/prefix, or 'latest' "
                            "(needs --cache-dir)")
    p_rec.add_argument("--telemetry", action="append", default=[],
                       metavar="FILE", help="telemetry JSONL to ingest "
                       "(repeatable)")
    p_rec.add_argument("--bench", action="append", default=[],
                       metavar="FILE", help="BENCH_*.json to ingest "
                       "(repeatable)")
    p_rec.add_argument("--label", default=None,
                       help="override the derived record label")

    p_hist = sub.add_parser("history", help="list recorded history")
    add_history_args(p_hist)
    p_hist.add_argument("--label", default=None, help="only this label")
    p_hist.add_argument("-n", type=int, default=20, dest="tail",
                        metavar="N", help="show the last N records "
                        "(default 20)")

    p_diff = sub.add_parser("diff", help="compare two entries of one label")
    add_history_args(p_diff)
    p_diff.add_argument("--label", default=None,
                        help="label to diff (required when the history "
                             "holds several)")
    p_diff.add_argument("old", nargs="?", type=int, default=-2,
                        help="old entry index within the label "
                             "(default -2)")
    p_diff.add_argument("new", nargs="?", type=int, default=-1,
                        help="new entry index within the label "
                             "(default -1)")

    p_check = sub.add_parser(
        "check", help="EWMA trend gate: exit 1 on regression")
    add_history_args(p_check)
    p_check.add_argument("--label", default=None, help="only this label")
    p_check.add_argument("--threshold", type=float, default=0.30,
                         help="tolerated relative drift (default 0.30)")
    return parser


def _open_history(args) -> PerfHistory:
    if args.history:
        return PerfHistory(args.history)
    if args.cache_dir:
        return PerfHistory(Path(args.cache_dir).expanduser() / "perf")
    raise PerfError("need --cache-dir DIR or --history FILE")


def _fmt_when(ts: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M", time.localtime(ts))


def _fmt_metric(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def _headline(metrics: dict) -> str:
    for key in ("wall_s", "total_s", "speedup", "t_observed_s"):
        if key in metrics:
            return f"{key}={_fmt_metric(metrics[key])}"
    first = next(iter(sorted(metrics)), None)
    return f"{first}={_fmt_metric(metrics[first])}" if first else ""


def _cmd_record(args) -> int:
    history = _open_history(args)
    records = []
    if args.run:
        if not args.cache_dir:
            raise PerfError("--run needs --cache-dir (the run ledger)")
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(args.cache_dir)
        if args.run == "latest":
            tail = ledger.tail(1)
            if not tail:
                raise PerfError(f"no runs recorded under {ledger.root}")
            run = tail[-1]
        else:
            try:
                run = ledger.find(args.run)
            except KeyError as exc:
                raise PerfError(str(exc.args[0])) from exc
        label, metrics, context = metrics_from_run_record(run)
        records.append(new_record(args.label or label, "run-ledger",
                                  metrics, context,
                                  ts=run.get("finished_unix")))
    for path in args.telemetry:
        from repro.telemetry.sinks import read_jsonl

        try:
            snap = read_jsonl(path)
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            raise PerfError(f"cannot read telemetry {path}: {exc}") from exc
        label, metrics, context = metrics_from_telemetry(snap)
        if not metrics:
            raise PerfError(f"{path} holds no phase timings to record")
        records.append(new_record(args.label or label, "telemetry",
                                  metrics, context, ts=snap.get("wall0")))
    for path in args.bench:
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise PerfError(f"cannot read bench file {path}: {exc}") from exc
        entries = metrics_from_bench(payload)
        if not entries:
            raise PerfError(f"{path} holds no numeric bench results")
        for label, metrics, context in entries:
            records.append(new_record(args.label or label, "bench",
                                      metrics, context))
    if not records:
        raise PerfError("nothing to record: pass --run, --telemetry, "
                        "and/or --bench")
    for record in records:
        path = history.append(record)
    print(f"[{len(records)} perf record(s) appended to {path}]")
    return 0


def _cmd_history(args) -> int:
    history = _open_history(args)
    records = history.records(label=args.label)
    if not records:
        where = f" for label {args.label!r}" if args.label else ""
        print(f"[no perf history{where} in {history.path}]")
        return 0
    shown = records[-max(args.tail, 0):] if args.tail else records
    offset = len(records) - len(shown)
    for i, record in enumerate(shown):
        metrics = record.get("metrics", {})
        print(f"{offset + i:>4}  {_fmt_when(record.get('ts', 0))}  "
              f"{record.get('source', '?'):<10}  "
              f"{record.get('label', '?'):<40}  {_headline(metrics)}")
    print(f"[{len(records)} record(s), {len(history.labels())} label(s) "
          f"in {history.path}]")
    return 0


def _pick_label(history: PerfHistory, label: "str | None") -> str:
    labels = history.labels()
    if not labels:
        raise PerfError(f"no perf history in {history.path}")
    if label is not None:
        if label not in labels:
            raise PerfError(f"label {label!r} not in history "
                            f"(have: {', '.join(labels)})")
        return label
    if len(labels) == 1:
        return labels[0]
    raise PerfError(
        f"history holds {len(labels)} labels; pick one with --label "
        f"({', '.join(labels)})")


def _cmd_diff(args) -> int:
    history = _open_history(args)
    label = _pick_label(history, args.label)
    records = history.records(label=label)
    try:
        old, new = records[args.old], records[args.new]
    except IndexError:
        raise PerfError(
            f"label {label!r} has {len(records)} record(s); indices "
            f"{args.old}/{args.new} are out of range") from None
    old_m, new_m = old.get("metrics", {}), new.get("metrics", {})
    print(f"{label}: {_fmt_when(old.get('ts', 0))} -> "
          f"{_fmt_when(new.get('ts', 0))}")
    print(f"{'metric':<32} {'old':>12} {'new':>12}")
    for metric in sorted(set(old_m) | set(new_m)):
        b, a = old_m.get(metric), new_m.get(metric)
        # Ratio guarded exactly like stats diff: zero or missing -> n/a.
        ratio = f"{a / b:.2f}x" if b and a is not None else "n/a"
        print(f"{metric:<32} "
              f"{_fmt_metric(b) if b is not None else '--':>12} "
              f"{_fmt_metric(a) if a is not None else '--':>12}"
              f"  ({ratio})")
    return 0


def _cmd_check(args) -> int:
    if not 0.0 < args.threshold < 10.0:
        raise PerfError(
            f"--threshold must be in (0, 10), got {args.threshold}")
    history = _open_history(args)
    by_label = history.by_label()
    if args.label is not None:
        by_label = {args.label: by_label.get(args.label, [])}
    findings = analyze_history(by_label, threshold=args.threshold)
    if not findings:
        print(f"[no comparable perf series in {history.path} — need two "
              "records of a label with directional metrics]")
        return 0
    regressions = [f for f in findings if f["status"] == "regression"]
    for finding in sorted(findings,
                          key=lambda f: (f["status"] != "regression",
                                         f["label"], f["metric"])):
        status = finding["status"]
        mark = {"regression": "REGRESSION", "improvement": "improved",
                "ok": "ok"}[status]
        print(f"{mark:>10}  {finding['label']}::{finding['metric']} "
              f"latest {_fmt_metric(finding['latest'])} vs ewma "
              f"{_fmt_metric(finding['ewma'])} "
              f"({finding['ratio']:.2f}x, {finding['direction']} is "
              "better)")
    if regressions:
        print(f"\n[{len(regressions)} metric(s) drifted >"
              f"{args.threshold:.0%} past their history]", file=sys.stderr)
        return 1
    print(f"\n[{len(findings)} directional metric(s) within "
          f"{args.threshold:.0%} of history]")
    return 0


def perf_main(argv: "list[str] | None" = None) -> int:
    args = build_perf_parser().parse_args(argv)
    handler = {"record": _cmd_record, "history": _cmd_history,
               "diff": _cmd_diff, "check": _cmd_check}[args.command]
    try:
        return handler(args)
    except PerfError as exc:
        print(f"perf error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(perf_main())
