"""EWMA trend analysis over the performance history.

For every ``(label, metric)`` series the latest observation is compared
against an exponentially weighted moving average of the *prior* ones —
the smoothed expectation given history — and flagged when it moved past
the threshold in the metric's bad direction.  EWMA rather than
last-vs-previous makes the gate robust to one noisy entry: a single
slow CI machine shifts the average by ``alpha``, not to itself.

Direction rules are purely name-based (the history is schema-free):

- ``*_s``, ``*_bytes``, ``phase.*``, ``n_stalls``, ``n_failed`` —
  lower is better (time, memory, trouble);
- ``speedup``, ``*_speedup``, ``tasks_per_s`` — higher is better;
- anything else (hit rates, counts, sizes) is informational — workload
  shape, not performance health, so it is never failed on.  The same
  split ``benchmarks/check_regression.py`` draws for bench emissions.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["analyze_history", "metric_direction"]

#: EWMA smoothing over prior observations (oldest first): the last few
#: entries dominate, ancient history decays away.
_EWMA_ALPHA = 0.3

#: Series whose values never exceed this are ignored entirely: at
#: sub-millisecond scale the signal is scheduler noise, and a 10x blip
#: on 0.0001s is not a regression worth failing CI over.
_MIN_SCALE = 1e-3


def metric_direction(name: str) -> "str | None":
    """``"lower"`` / ``"higher"`` is better, or ``None`` (informational)."""
    if name == "tasks_per_s":
        return "higher"
    if name == "speedup" or name.endswith("_speedup"):
        return "higher"
    if (name.endswith("_s") or name.endswith("_bytes")
            or name.startswith("phase.")
            or name in ("n_stalls", "n_failed", "n_retried",
                        "n_quarantined", "n_pool_respawns",
                        "retries_per_task")):
        return "lower"
    return None


def _ewma(values: "Sequence[float]") -> float:
    acc = float(values[0])
    for value in values[1:]:
        acc = _EWMA_ALPHA * float(value) + (1.0 - _EWMA_ALPHA) * acc
    return acc


def analyze_history(by_label: "Mapping[str, Sequence[Mapping]]",
                    threshold: float = 0.30) -> "list[dict]":
    """Compare each series' latest entry against the EWMA of its priors.

    ``by_label`` is :meth:`PerfHistory.by_label` output (records in file
    order).  Returns one finding dict per directional metric that has at
    least two observations::

        {"label": ..., "metric": ..., "direction": "lower",
         "latest": 2.1, "ewma": 1.0, "ratio": 2.1,
         "status": "regression" | "improvement" | "ok"}

    ``ratio`` is always latest/ewma; ``status`` applies ``threshold`` in
    the metric's bad (regression) or good (improvement) direction.
    Labels with a single record yield nothing — there is no history to
    drift from yet.
    """
    if not 0.0 < threshold < 10.0:
        raise ValueError(f"threshold must be in (0, 10), got {threshold}")
    findings: "list[dict]" = []
    for label, records in by_label.items():
        if len(records) < 2:
            continue
        *prior, latest = records
        latest_metrics = latest.get("metrics", {})
        for metric in sorted(latest_metrics):
            direction = metric_direction(metric)
            if direction is None:
                continue
            history = [r["metrics"][metric] for r in prior
                       if metric in r.get("metrics", {})]
            if not history:
                continue
            ewma = _ewma(history)
            value = float(latest_metrics[metric])
            if max(abs(ewma), abs(value)) < _MIN_SCALE:
                continue
            if ewma <= 0:
                # A zero baseline (e.g. n_stalls) has no meaningful
                # ratio; any positive latest value is the regression.
                ratio = float("inf") if value > 0 else 1.0
            else:
                ratio = value / ewma
            if direction == "lower":
                if ratio > 1.0 + threshold:
                    status = "regression"
                elif ratio < 1.0 - threshold:
                    status = "improvement"
                else:
                    status = "ok"
            else:
                if ratio < 1.0 - threshold:
                    status = "regression"
                elif ratio > 1.0 + threshold:
                    status = "improvement"
                else:
                    status = "ok"
            findings.append({
                "label": label, "metric": metric, "direction": direction,
                "latest": value, "ewma": ewma, "ratio": ratio,
                "status": status, "n_history": len(history),
            })
    return findings
