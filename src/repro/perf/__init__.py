"""Cross-run performance history: record, trend, and gate over time.

The run ledger answers *"what did this run do?"* and telemetry answers
*"where did its time go?"* — both are single-run views.  This package
adds the time axis: an append-only JSONL **performance history** under
``<cache-dir>/perf/`` that ingests ledger records, telemetry phase
breakdowns, and benchmark emissions (``BENCH_*.json``) into one flat
metric stream per label, plus EWMA trend analysis that flags when the
latest entry regresses against the smoothed history.

CLI surface (``repro-experiment perf ...``)::

    perf record --cache-dir DIR --run latest      # ingest a ledger run
    perf record --cache-dir DIR --telemetry F.jsonl --bench BENCH_x.json
    perf history --cache-dir DIR [--label L] [-n N]
    perf diff --cache-dir DIR [--label L] [OLD NEW]
    perf check --cache-dir DIR [--threshold 0.3]  # exit 1 on regression

CI runs ``perf check`` against the committed seed history
(``benchmarks/baselines/perf_history.jsonl``) next to the existing
``check_regression.py`` ratio gate: the bench gate catches collapses of
the architectural speedups within one run, the history gate catches
slow drift across runs.
"""

from __future__ import annotations

from .history import (
    PERF_RECORD_VERSION,
    PerfHistory,
    metrics_from_bench,
    metrics_from_run_record,
    metrics_from_telemetry,
    new_record,
)
from .trend import analyze_history, metric_direction

__all__ = [
    "PERF_RECORD_VERSION",
    "PerfHistory",
    "analyze_history",
    "metric_direction",
    "metrics_from_bench",
    "metrics_from_run_record",
    "metrics_from_telemetry",
    "new_record",
]
