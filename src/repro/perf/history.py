"""The performance-history file: append-only JSONL of flat metric records.

One history line is one *observation* of a labelled workload::

    {"version": 1, "ts": 1754650000.0, "label": "scenario.sweep/rate",
     "source": "run-ledger", "metrics": {"wall_s": 1.93, ...},
     "context": {"run_id": "sweep-...", "jobs": 4}}

``metrics`` is deliberately flat (``str -> number``): trend analysis,
diffing, and rendering all iterate one dict without schema knowledge.
The ``metrics_from_*`` adapters flatten the three existing observation
products — run-ledger records, telemetry snapshots (phase breakdown as
``phase.<name>_s``), and ``BENCH_*.json`` emissions — into that shape;
anything they cannot coerce to a finite number is dropped, never
guessed.

Append-only by construction: records are only ever added at the end of
``history.jsonl``, torn or foreign lines are skipped on read, and the
file stays ``cat``-able and diff-able in review (CI commits a seed
history under ``benchmarks/baselines/``).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "PERF_RECORD_VERSION",
    "PerfHistory",
    "metrics_from_bench",
    "metrics_from_run_record",
    "metrics_from_telemetry",
    "new_record",
]

#: Schema version of one history line.  Bump on renames or semantic
#: changes of existing fields; *adding* metric keys is compatible (old
#: records simply lack them and trend analysis skips the gap).
PERF_RECORD_VERSION = 1

#: Sources a record can declare — where its metrics were measured.
_SOURCES = frozenset({"run-ledger", "telemetry", "bench", "manual"})


def _clean_metrics(metrics: Mapping) -> "dict[str, float]":
    """Keep only finite-number values; booleans and NaNs are not metrics."""
    out: "dict[str, float]" = {}
    for key, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        value = float(value)
        if math.isfinite(value):
            out[str(key)] = value
    return out


def new_record(label: str, source: str, metrics: Mapping,
               context: "Mapping | None" = None,
               ts: "float | None" = None) -> dict:
    """Build one validated history record (not yet persisted)."""
    if not label:
        raise ValueError("perf record needs a non-empty label")
    if source not in _SOURCES:
        raise ValueError(
            f"unknown perf source {source!r}; expected one of "
            f"{sorted(_SOURCES)}")
    cleaned = _clean_metrics(metrics)
    if not cleaned:
        raise ValueError(
            f"perf record {label!r} has no numeric metrics to store")
    record = {
        "version": PERF_RECORD_VERSION,
        "ts": float(ts) if ts is not None else time.time(),
        "label": str(label),
        "source": source,
        "metrics": cleaned,
    }
    if context:
        record["context"] = {k: v for k, v in context.items() if v is not None}
    return record


# -- adapters ----------------------------------------------------------

def metrics_from_run_record(record: Mapping) -> "tuple[str, dict, dict]":
    """Flatten a run-ledger record: ``(label, metrics, context)``.

    The label is ``<kind>/<name>`` so sweeps of different scenarios
    trend independently; wall time, task counts, cache economics, and
    the v2 worker-health fields all become metrics.
    """
    label = f"{record.get('kind', 'run')}/{record.get('name', '?')}"
    metrics = _clean_metrics({
        "wall_s": record.get("wall_s"),
        "n_tasks": record.get("n_tasks"),
        "n_cached": record.get("n_cached"),
        "n_executed": record.get("n_executed"),
        "n_failed": record.get("n_failed"),
        "cache_hit_rate": record.get("cache_hit_rate"),
        "n_stalls": record.get("n_stalls"),
        # v3 fault-tolerance economics: the retry family lets the trend
        # gate flag a retry storm (a workload that still passes but now
        # burns attempts) as a regression, not silence.
        "n_retried": record.get("n_retried"),
        "n_quarantined": record.get("n_quarantined"),
        "n_pool_respawns": record.get("n_pool_respawns"),
        "retry_wasted_s": record.get("retry_wasted_s"),
        # 0 here means "no heartbeat sampled" (serial or fully cached
        # run), not "zero memory" — recording it would make the next
        # real measurement an infinite regression against a zero EWMA.
        "worker_rss_peak_bytes": record.get("worker_rss_peak_bytes") or None,
    })
    wall = metrics.get("wall_s")
    n_tasks = metrics.get("n_tasks")
    if wall and n_tasks:
        metrics["tasks_per_s"] = n_tasks / wall
    if n_tasks and metrics.get("n_retried") is not None:
        metrics["retries_per_task"] = metrics["n_retried"] / n_tasks
    context = {"run_id": record.get("id"), "jobs": record.get("jobs"),
               "status": record.get("status"),
               "spec_key": record.get("spec_key")}
    return label, metrics, context


def metrics_from_telemetry(snapshot: Mapping) -> "tuple[str, dict, dict]":
    """Flatten a telemetry snapshot: total and per-phase wall seconds.

    Phases become ``phase.<name>_s`` — the metric family the trend
    analysis watches for the "one phase quietly doubled" regressions a
    total-only gate averages away.
    """
    from repro.telemetry.sinks import summarize

    summary = summarize(snapshot)
    breakdown = summary["phase_breakdown"]
    metrics = {"total_s": breakdown["total_s"]}
    for name, phase in breakdown["phases"].items():
        metrics[f"phase.{name}_s"] = phase["total_s"]
    for key in ("dag_cache_hit_rate", "store_hit_rate",
                "campaign_cache_hit_rate"):
        if summary.get(key) is not None:
            metrics[key] = summary[key]
    label = f"telemetry/{summary.get('label') or 'run'}"
    context = {"n_spans": summary.get("n_spans"),
               "coverage": breakdown.get("coverage")}
    return label, _clean_metrics(metrics), context


def metrics_from_bench(payload: Mapping) -> "list[tuple[str, dict, dict]]":
    """Flatten one ``BENCH_*.json`` emission: one entry per test.

    Labels are ``bench/<benchmark>/<test>``; every numeric field of the
    test record (speedup, absolute timings, sizes) becomes a metric.
    """
    bench = payload.get("benchmark", "bench")
    out = []
    for test_name, fields in sorted(payload.get("tests", {}).items()):
        metrics = _clean_metrics(fields if isinstance(fields, Mapping) else {})
        if not metrics:
            continue
        out.append((f"bench/{bench}/{test_name}", metrics,
                    {"schema": payload.get("schema")}))
    return out


# -- storage -----------------------------------------------------------

class PerfHistory:
    """Append-only ``history.jsonl`` under a perf directory.

    Constructed from the directory (``<cache-dir>/perf``) or pointed at
    an explicit history file (CI uses the committed seed history under
    ``benchmarks/baselines/``).
    """

    def __init__(self, root: "str | Path", filename: str = "history.jsonl"):
        root = Path(root).expanduser()
        if root.suffix == ".jsonl":
            self.path = root
        else:
            self.path = root / filename

    def append(self, record: Mapping) -> Path:
        """Persist one record as one line; returns the history path."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return self.path

    def records(self, label: "str | None" = None) -> "list[dict]":
        """All readable records in file order (torn lines are skipped)."""
        if not self.path.exists():
            return []
        out: "list[dict]" = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict) or "metrics" not in record:
                continue
            if label is not None and record.get("label") != label:
                continue
            out.append(record)
        return out

    def labels(self) -> "list[str]":
        """Distinct labels in first-seen order."""
        seen: "dict[str, None]" = {}
        for record in self.records():
            seen.setdefault(record.get("label", "?"))
        return list(seen)

    def by_label(self) -> "dict[str, list[dict]]":
        """Records grouped per label, file order preserved within each."""
        grouped: "dict[str, list[dict]]" = {}
        for record in self.records():
            grouped.setdefault(record.get("label", "?"), []).append(record)
        return grouped
