"""repro — idle-wave propagation and decay on clusters.

A production-quality reproduction of Afzal, Hager, Wellein:
*"Propagation and Decay of Injected One-Off Delays on Clusters: A Case
Study"* (IEEE CLUSTER 2019, arXiv:1905.10603).

The package has four layers:

1. :mod:`repro.sim` — a discrete-event simulator of MPI point-to-point
   message passing on hierarchical clusters (the substrate; the paper used
   two real clusters plus LogGOPSim).
2. :mod:`repro.core` — the idle-wave analysis toolkit: detection, speed
   (Eq. 2), decay (Fig. 8), interaction (Fig. 6), elimination (Fig. 9).
3. :mod:`repro.models`, :mod:`repro.cluster`, :mod:`repro.workloads` —
   analytic performance models, machine presets (Emmy/Meggie), and the
   paper's workloads (STREAM triad, LBM, vdivpd).
4. :mod:`repro.experiments` — one driver per paper figure, runnable via
   ``python -m repro`` or the ``repro-experiment`` script.
5. :mod:`repro.scenarios` — declarative scenarios: TOML/JSON specs
   compiled onto the simulator (``repro-experiment scenario run ...``),
   with sweeps executing through the campaign runtime
   (:mod:`repro.runtime`).

Quickstart::

    import repro

    cfg = repro.LockstepConfig(
        n_ranks=18, n_steps=20,
        delays=(repro.DelaySpec(rank=5, step=0, duration=4.5 * 3e-3),),
    )
    res = repro.simulate_lockstep(cfg)
    v = repro.measure_speed(res, source=5).speed
    print(f"idle wave speed: {v:.1f} ranks/s")
"""

from repro.core import (
    DecayMeasurement,
    DecayStatistics,
    EliminationPoint,
    IdlePeriod,
    RunTiming,
    SpeedMeasurement,
    Wave,
    WaveFront,
    decay_statistics,
    default_threshold,
    elimination_scan,
    excess_runtime,
    find_waves,
    idle_periods,
    measure_decay,
    measure_speed,
    meeting_ranks,
    resync_step,
    runtime_spread,
    sigma_factor,
    silent_speed,
    silent_speed_for,
    superposition_defect,
    wave_front,
)
from repro.sim import (
    BimodalNoise,
    CommDomain,
    CommPattern,
    DelaySpec,
    Direction,
    ExponentialNoise,
    GammaNoise,
    HockneyModel,
    LockstepConfig,
    LockstepResult,
    LogGPModel,
    MachineTopology,
    NetworkModel,
    NoNoise,
    NoiseModel,
    OpRecord,
    ProcessMapping,
    Program,
    Protocol,
    SaturationConfig,
    SimConfig,
    Trace,
    TraceNoise,
    UniformNetwork,
    UniformNoise,
    build_exec_times,
    build_lockstep_program,
    delays_at_local_rank,
    random_delays,
    select_protocol,
    simulate,
    simulate_lockstep,
    simulate_saturation,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # sim
    "BimodalNoise",
    "CommDomain",
    "CommPattern",
    "DelaySpec",
    "Direction",
    "ExponentialNoise",
    "GammaNoise",
    "HockneyModel",
    "LockstepConfig",
    "LockstepResult",
    "LogGPModel",
    "MachineTopology",
    "NetworkModel",
    "NoNoise",
    "NoiseModel",
    "OpRecord",
    "ProcessMapping",
    "Program",
    "Protocol",
    "SaturationConfig",
    "SimConfig",
    "Trace",
    "TraceNoise",
    "UniformNetwork",
    "UniformNoise",
    "build_exec_times",
    "build_lockstep_program",
    "delays_at_local_rank",
    "random_delays",
    "select_protocol",
    "simulate",
    "simulate_lockstep",
    "simulate_saturation",
    # core
    "DecayMeasurement",
    "DecayStatistics",
    "EliminationPoint",
    "IdlePeriod",
    "RunTiming",
    "SpeedMeasurement",
    "Wave",
    "WaveFront",
    "decay_statistics",
    "default_threshold",
    "elimination_scan",
    "excess_runtime",
    "find_waves",
    "idle_periods",
    "measure_decay",
    "measure_speed",
    "meeting_ranks",
    "resync_step",
    "runtime_spread",
    "sigma_factor",
    "silent_speed",
    "silent_speed_for",
    "superposition_defect",
    "wave_front",
]
