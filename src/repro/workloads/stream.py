"""The MPI STREAM triad workload (Fig. 1).

The paper's motivating experiment: a pure-MPI McCalpin STREAM triad
``A(:) = B(:) + s*C(:)`` in a strong-scaling setup — an overall working set
of 1.2 GB (5·10⁷ double elements across three arrays) split evenly over the
ranks, with a 2 MB ring exchange to both neighbors after every traversal.

This module provides the actual kernel (for node-level fidelity checks),
the traffic/flop accounting, and the bridge to the saturation simulator
that reproduces the desynchronization-induced overlap of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.sim.program import CommPattern, Direction
from repro.sim.saturation import SaturationConfig
from repro.sim.topology import CommDomain

__all__ = ["TriadWorkload", "triad_kernel", "triad_saturation_config"]


def triad_kernel(a: np.ndarray, b: np.ndarray, c: np.ndarray, s: float) -> None:
    """One STREAM triad sweep ``a[:] = b[:] + s * c[:]`` (in place)."""
    if not (a.shape == b.shape == c.shape):
        raise ValueError(f"array shapes differ: {a.shape}, {b.shape}, {c.shape}")
    np.multiply(c, s, out=a)
    a += b


@dataclass(frozen=True)
class TriadWorkload:
    """Strong-scaling MPI STREAM triad accounting.

    Parameters (defaults = the paper's Fig. 1 setup)
    ----------
    n_elements:
        Total elements per array across all ranks (5·10⁷).
    v_net:
        Bytes exchanged with each ring neighbor per iteration (2 MB).
    bytes_per_element:
        Memory traffic per element: 24 B for 2 loads + 1 store, 32 B with
        write-allocate.  The paper's Eq. 1 uses the 3-array working set
        V_mem = 24 B × n, so that is the default.
    """

    n_elements: int = 50_000_000
    v_net: int = 2_000_000
    bytes_per_element: int = 24

    def __post_init__(self) -> None:
        if self.n_elements < 1:
            raise ValueError(f"n_elements must be >= 1, got {self.n_elements}")
        if self.v_net < 0:
            raise ValueError(f"v_net must be >= 0, got {self.v_net}")
        if self.bytes_per_element < 8:
            raise ValueError(
                f"bytes_per_element must be >= 8, got {self.bytes_per_element}"
            )

    @property
    def v_mem(self) -> float:
        """Total working-set traffic per iteration in bytes."""
        return float(self.n_elements) * self.bytes_per_element

    @property
    def flops_per_iteration(self) -> float:
        """Total flops of one triad sweep (one mul + one add per element)."""
        return 2.0 * self.n_elements

    def work_per_rank(self, n_ranks: int) -> float:
        """Bytes each rank streams per iteration (even split)."""
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        return self.v_mem / n_ranks

    def performance(self, time_per_iteration: float) -> float:
        """Flop/s given the measured/simulated seconds per iteration."""
        if time_per_iteration <= 0:
            raise ValueError(
                f"time_per_iteration must be > 0, got {time_per_iteration}"
            )
        return self.flops_per_iteration / time_per_iteration


def triad_saturation_config(
    machine: MachineSpec,
    n_sockets: int,
    ppn: int | None = None,
    n_steps: int = 50,
    workload: TriadWorkload | None = None,
    n_ranks: int | None = None,
    seed: int = 0,
) -> SaturationConfig:
    """Build the saturation-simulator configuration for Fig. 1.

    Parameters
    ----------
    machine:
        Machine spec (Fig. 1 uses Emmy).
    n_sockets:
        Number of sockets in the strong-scaling scan (x-axis of Fig. 1a).
    ppn:
        Processes per node; default fills every physical core (PPN=20).
        ``ppn=1`` gives the Fig. 1(c) configuration.
    n_steps:
        Compute-communicate iterations to simulate.
    n_ranks:
        Explicit rank count; overrides the ``n_sockets × ranks-per-socket``
        default (used for the Fig. 1(b) node-level closeup, where a node is
        only partially populated).
    """
    if workload is None:
        workload = TriadWorkload()
    if n_sockets < 1:
        raise ValueError(f"n_sockets must be >= 1, got {n_sockets}")
    topo = machine.topology
    if ppn is None:
        ppn = topo.cores_per_node
    if n_ranks is None:
        ranks_per_socket = max(1, ppn // topo.sockets_per_node)
        n_ranks = n_sockets * ranks_per_socket
    if n_ranks < 2:
        raise ValueError(
            "triad ring exchange needs >= 2 ranks; increase n_sockets or ppn"
        )
    mapping = machine.mapping(n_ranks, ppn=ppn)

    # Ring exchange with both neighbors (closed ring => periodic).
    pattern = CommPattern(direction=Direction.BIDIRECTIONAL, distance=1, periodic=True)
    t_flight = machine.network.transfer_time(workload.v_net, CommDomain.INTER_NODE)

    return SaturationConfig(
        mapping=mapping,
        n_steps=n_steps,
        work_bytes=workload.work_per_rank(n_ranks),
        b_core=machine.b_core,
        b_socket=machine.b_socket,
        t_serial=0.0,
        noise=machine.natural_noise,
        pattern=pattern,
        msg_size=workload.v_net,
        t_flight=t_flight,
        o_post=machine.network.send_overhead(CommDomain.INTER_NODE),
        rendezvous=True,  # 2 MB messages are far beyond any eager limit
        seed=seed,
    )
