"""Lattice-Boltzmann (D3Q19, SRT) workload — the Fig. 2 application.

Two layers:

1. :class:`LbmKernel` — an actual, runnable D3Q19 single-relaxation-time
   (BGK) lattice-Boltzmann solver on a small lattice, used for fidelity
   checks (mass conservation, equilibrium stability) and as a genuine
   example application.
2. :class:`LbmWorkload` + :func:`lbm_saturation_config` — the traffic/flop
   accounting of the paper's production run (302³ cells, 100 ranks on five
   nodes, 1-D domain decomposition along the outer axis with periodic
   boundaries, ≥30 % communication share) bridged to the saturation
   simulator for the Fig. 2 timeline study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.sim.program import CommPattern, Direction
from repro.sim.saturation import SaturationConfig
from repro.sim.topology import CommDomain

__all__ = ["D3Q19", "LbmKernel", "LbmWorkload", "lbm_saturation_config"]


class D3Q19:
    """The D3Q19 velocity set: 1 rest + 6 face + 12 edge directions."""

    #: Discrete velocities, shape (19, 3).
    C = np.array(
        [
            (0, 0, 0),
            (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1),
            (1, 1, 0), (-1, -1, 0), (1, -1, 0), (-1, 1, 0),
            (1, 0, 1), (-1, 0, -1), (1, 0, -1), (-1, 0, 1),
            (0, 1, 1), (0, -1, -1), (0, 1, -1), (0, -1, 1),
        ],
        dtype=np.int64,
    )

    #: Quadrature weights: 1/3 rest, 1/18 face, 1/36 edge.
    W = np.array([1 / 3] + [1 / 18] * 6 + [1 / 36] * 12)

    Q = 19

    @classmethod
    def opposite(cls) -> np.ndarray:
        """Index of the opposite direction for each velocity (bounce-back)."""
        opp = np.empty(cls.Q, dtype=np.int64)
        for i, c in enumerate(cls.C):
            matches = np.nonzero((cls.C == -c).all(axis=1))[0]
            opp[i] = matches[0]
        return opp


class LbmKernel:
    """A runnable D3Q19-SRT (BGK) solver on a periodic box.

    Collision: ``f_i <- f_i - (f_i - f_i^eq)/tau``; streaming via
    ``np.roll``.  Intended for small lattices (validation and examples),
    not production CFD.

    Parameters
    ----------
    shape:
        Lattice dimensions (nx, ny, nz).
    tau:
        BGK relaxation time (> 0.5 for stability).
    """

    def __init__(self, shape: tuple[int, int, int], tau: float = 0.8) -> None:
        if len(shape) != 3 or min(shape) < 2:
            raise ValueError(f"shape must be 3-D with each dim >= 2, got {shape}")
        if tau <= 0.5:
            raise ValueError(f"tau must be > 0.5 for stability, got {tau}")
        self.shape = tuple(int(s) for s in shape)
        self.tau = float(tau)
        self.f = np.empty((D3Q19.Q, *self.shape))
        self.reset()

    def reset(self, density: float = 1.0) -> None:
        """Initialize to uniform equilibrium at rest."""
        if density <= 0:
            raise ValueError(f"density must be > 0, got {density}")
        for i in range(D3Q19.Q):
            self.f[i] = D3Q19.W[i] * density

    # ------------------------------------------------------------------
    # moments
    # ------------------------------------------------------------------
    def density(self) -> np.ndarray:
        """Macroscopic density field ρ."""
        return self.f.sum(axis=0)

    def velocity(self) -> np.ndarray:
        """Macroscopic velocity field u, shape (3, nx, ny, nz)."""
        rho = self.density()
        mom = np.einsum("qd,qxyz->dxyz", D3Q19.C.astype(float), self.f)
        return mom / rho

    def total_mass(self) -> float:
        """Total mass — conserved exactly by collide+stream."""
        return float(self.f.sum())

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def equilibrium(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Second-order BGK equilibrium distributions."""
        cu = np.einsum("qd,dxyz->qxyz", D3Q19.C.astype(float), u)
        usq = (u**2).sum(axis=0)
        feq = np.empty_like(self.f)
        for i in range(D3Q19.Q):
            feq[i] = D3Q19.W[i] * rho * (1 + 3 * cu[i] + 4.5 * cu[i] ** 2 - 1.5 * usq)
        return feq

    def collide(self) -> None:
        """SRT/BGK collision step (in place)."""
        rho = self.density()
        u = self.velocity()
        feq = self.equilibrium(rho, u)
        self.f += (feq - self.f) / self.tau

    def stream(self) -> None:
        """Periodic streaming step (in place)."""
        for i in range(1, D3Q19.Q):
            cx, cy, cz = D3Q19.C[i]
            self.f[i] = np.roll(self.f[i], shift=(cx, cy, cz), axis=(0, 1, 2))

    def step(self, n: int = 1) -> None:
        """Advance ``n`` collide+stream time steps."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        for _ in range(n):
            self.collide()
            self.stream()

    def perturb(self, amplitude: float = 0.01, seed: int = 0) -> None:
        """Add a random density perturbation (to make dynamics nontrivial)."""
        rng = np.random.default_rng(seed)
        rho = 1.0 + amplitude * rng.standard_normal(self.shape)
        u = np.zeros((3, *self.shape))
        self.f = self.equilibrium(rho, u)


@dataclass(frozen=True)
class LbmWorkload:
    """Traffic/flop accounting of the paper's LBM production run.

    Parameters (defaults = Fig. 2 setup)
    ----------
    domain:
        Global lattice including the boundary layer (302³).
    n_ranks:
        MPI ranks (100 = five Emmy nodes fully populated).
    bytes_per_cell_update:
        Memory traffic per cell per time step.  A D3Q19 two-grid update
        reads and writes 19 populations: 2 × 19 × 8 = 304 B (+write-
        allocate on the stores for a real machine).
    exchange_populations:
        Populations crossing a face per boundary cell (5 of 19 leave
        through a face in D3Q19).
    """

    domain: tuple[int, int, int] = (302, 302, 302)
    n_ranks: int = 100
    bytes_per_cell_update: int = 304
    exchange_populations: int = 5

    def __post_init__(self) -> None:
        if len(self.domain) != 3 or min(self.domain) < 1:
            raise ValueError(f"domain must be 3-D positive, got {self.domain}")
        if self.n_ranks < 2:
            raise ValueError(f"n_ranks must be >= 2, got {self.n_ranks}")
        if self.domain[0] < self.n_ranks:
            raise ValueError(
                f"outer dimension {self.domain[0]} smaller than n_ranks {self.n_ranks}"
            )

    @property
    def cells_per_rank(self) -> float:
        """Lattice cells per rank (1-D decomposition along the outer axis)."""
        nx, ny, nz = self.domain
        return nx * ny * nz / self.n_ranks

    @property
    def work_bytes_per_rank(self) -> float:
        """Memory traffic per rank per time step."""
        return self.cells_per_rank * self.bytes_per_cell_update

    @property
    def halo_bytes(self) -> float:
        """Bytes exchanged with *each* neighbor per time step."""
        _, ny, nz = self.domain
        return ny * nz * self.exchange_populations * 8.0

    @property
    def working_set_bytes(self) -> float:
        """Total distribution storage (the paper quotes > 8 GB)."""
        nx, ny, nz = self.domain
        return nx * ny * nz * 19 * 8.0 * 2  # two grids

    def flops_per_step(self, flops_per_cell: float = 200.0) -> float:
        """Approximate total flops per time step (collide dominates)."""
        nx, ny, nz = self.domain
        return nx * ny * nz * flops_per_cell


def lbm_saturation_config(
    machine: MachineSpec,
    workload: LbmWorkload | None = None,
    n_steps: int = 500,
    seed: int = 0,
) -> SaturationConfig:
    """Saturation-simulator configuration for the Fig. 2 timeline study."""
    if workload is None:
        workload = LbmWorkload()
    mapping = machine.mapping(workload.n_ranks)
    pattern = CommPattern(direction=Direction.BIDIRECTIONAL, distance=1, periodic=True)
    halo = int(workload.halo_bytes)
    t_flight = machine.network.transfer_time(halo, CommDomain.INTER_NODE)
    return SaturationConfig(
        mapping=mapping,
        n_steps=n_steps,
        work_bytes=workload.work_bytes_per_rank,
        b_core=machine.b_core,
        b_socket=machine.b_socket,
        t_serial=0.0,
        noise=machine.natural_noise,
        pattern=pattern,
        msg_size=halo,
        t_flight=t_flight,
        o_post=machine.network.send_overhead(CommDomain.INTER_NODE),
        rendezvous=True,  # multi-MB halos
        seed=seed,
    )
