"""Synthetic execution-time generators for controlled experiments.

The propagation experiments of Secs. IV and V use a purely compute-bound
phase of fixed length (3 ms).  These helpers generate per-(rank, step)
execution-time matrices for the standard case and for structured
imbalance variants used in tests and ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticWorkload", "constant_times", "imbalanced_times", "ramp_times"]


def constant_times(n_ranks: int, n_steps: int, t_exec: float) -> np.ndarray:
    """Perfectly balanced phases: every rank, every step takes ``t_exec``."""
    if n_ranks < 1 or n_steps < 1:
        raise ValueError("n_ranks and n_steps must be >= 1")
    if t_exec <= 0:
        raise ValueError(f"t_exec must be > 0, got {t_exec}")
    return np.full((n_ranks, n_steps), t_exec)


def imbalanced_times(
    n_ranks: int,
    n_steps: int,
    t_exec: float,
    slow_ranks: "list[int] | tuple[int, ...]",
    factor: float,
) -> np.ndarray:
    """Static imbalance: ``slow_ranks`` take ``factor``× the base time.

    Manifest load imbalance is "considered an application-induced delay"
    (Sec. II-A); this generator creates the persistent variant.
    """
    times = constant_times(n_ranks, n_steps, t_exec)
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor}")
    for r in slow_ranks:
        if not 0 <= r < n_ranks:
            raise IndexError(f"slow rank {r} out of range [0, {n_ranks})")
        times[r, :] *= factor
    return times


def ramp_times(n_ranks: int, n_steps: int, t_min: float, t_max: float) -> np.ndarray:
    """Linear ramp of phase duration across ranks (systematic imbalance)."""
    if t_min <= 0 or t_max < t_min:
        raise ValueError(f"need 0 < t_min <= t_max, got {t_min}, {t_max}")
    per_rank = np.linspace(t_min, t_max, n_ranks)
    return np.repeat(per_rank[:, None], n_steps, axis=1)


@dataclass(frozen=True)
class SyntheticWorkload:
    """A named, parameterized execution-time generator.

    ``kind`` is one of ``"constant"``, ``"imbalanced"``, ``"ramp"``; extra
    parameters are forwarded to the matching generator.  Useful for
    declaratively configured sweeps.
    """

    kind: str = "constant"
    t_exec: float = 3e-3
    slow_ranks: tuple[int, ...] = ()
    factor: float = 1.5
    t_max: float | None = None

    def generate(self, n_ranks: int, n_steps: int) -> np.ndarray:
        if self.kind == "constant":
            return constant_times(n_ranks, n_steps, self.t_exec)
        if self.kind == "imbalanced":
            return imbalanced_times(
                n_ranks, n_steps, self.t_exec, list(self.slow_ranks), self.factor
            )
        if self.kind == "ramp":
            t_max = self.t_max if self.t_max is not None else 2 * self.t_exec
            return ramp_times(n_ranks, n_steps, self.t_exec, t_max)
        raise ValueError(f"unknown synthetic workload kind {self.kind!r}")
