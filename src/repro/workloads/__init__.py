"""Workloads: the paper's benchmarks as runnable kernels + traffic models."""

from repro.workloads.divide import DivideWorkload, measure_host_noise
from repro.workloads.lbm import D3Q19, LbmKernel, LbmWorkload, lbm_saturation_config
from repro.workloads.stream import TriadWorkload, triad_kernel, triad_saturation_config
from repro.workloads.synthetic import (
    SyntheticWorkload,
    constant_times,
    imbalanced_times,
    ramp_times,
)

__all__ = [
    "D3Q19",
    "DivideWorkload",
    "LbmKernel",
    "LbmWorkload",
    "SyntheticWorkload",
    "TriadWorkload",
    "constant_times",
    "imbalanced_times",
    "lbm_saturation_config",
    "measure_host_noise",
    "ramp_times",
    "triad_kernel",
    "triad_saturation_config",
]
